#include "core/checker.hpp"

#include <sstream>
#include <stdexcept>

namespace lcl {

std::size_t CheckResult::node_failures() const noexcept {
  std::size_t count = 0;
  for (const auto& v : violations) {
    if (v.kind == Violation::Kind::kNode) ++count;
  }
  return count;
}

std::size_t CheckResult::edge_failures() const noexcept {
  return violations.size() - node_failures();
}

std::string CheckResult::to_string() const {
  std::ostringstream os;
  for (const auto& v : violations) {
    os << (v.kind == Violation::Kind::kNode ? "node " : "edge ") << v.id
       << ": " << v.detail << '\n';
  }
  return os.str();
}

namespace {

void validate_labeling(const char* what, const Graph& graph,
                       const HalfEdgeLabeling& labeling,
                       std::size_t alphabet_size) {
  if (labeling.size() != graph.half_edge_count()) {
    throw std::invalid_argument(
        std::string("check_solution: ") + what + " labeling has " +
        std::to_string(labeling.size()) + " entries, expected " +
        std::to_string(graph.half_edge_count()));
  }
  for (std::size_t h = 0; h < labeling.size(); ++h) {
    if (labeling[h] >= alphabet_size) {
      throw std::invalid_argument(
          std::string("check_solution: ") + what + " label " +
          std::to_string(labeling[h]) + " at half-edge " + std::to_string(h) +
          " outside alphabet of size " + std::to_string(alphabet_size));
    }
  }
}

}  // namespace

CheckResult check_solution(const NodeEdgeCheckableLcl& problem,
                           const Graph& graph, const HalfEdgeLabeling& input,
                           const HalfEdgeLabeling& output) {
  validate_labeling("input", graph, input, problem.input_alphabet().size());
  validate_labeling("output", graph, output,
                    problem.output_alphabet().size());
  if (graph.max_degree() > problem.max_degree()) {
    throw std::invalid_argument(
        "check_solution: graph max degree " +
        std::to_string(graph.max_degree()) + " exceeds problem max degree " +
        std::to_string(problem.max_degree()));
  }

  CheckResult result;
  const auto& out_alpha = problem.output_alphabet();

  // Node constraint + g on incident half-edges (Definition 2.4, node part).
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    const int degree = graph.degree(v);
    if (degree == 0) continue;  // isolated nodes carry no half-edges
    std::vector<Label> around;
    around.reserve(static_cast<std::size_t>(degree));
    bool g_ok = true;
    for (int p = 0; p < degree; ++p) {
      const HalfEdgeId h = graph.half_edge(v, p);
      around.push_back(output[h]);
      if (!problem.allowed_outputs(input[h]).contains(output[h])) {
        g_ok = false;
      }
    }
    const Configuration config(std::move(around));
    if (!problem.node_allows(config)) {
      result.violations.push_back(
          {Violation::Kind::kNode, v,
           "node configuration " + config.to_string(out_alpha) +
               " not allowed for degree " + std::to_string(degree)});
    }
    if (!g_ok) {
      result.violations.push_back(
          {Violation::Kind::kNode, v,
           "some incident half-edge output is not permitted by g for its "
           "input label"});
    }
  }

  // Edge constraint + g on the edge's half-edges (Definition 2.4, edge part).
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const HalfEdgeId h0 = 2 * e;
    const HalfEdgeId h1 = 2 * e + 1;
    if (!problem.edge_allows(output[h0], output[h1])) {
      result.violations.push_back(
          {Violation::Kind::kEdge, e,
           "edge configuration " +
               Configuration::pair(output[h0], output[h1]).to_string(out_alpha) +
               " not allowed"});
    }
    if (!problem.allowed_outputs(input[h0]).contains(output[h0]) ||
        !problem.allowed_outputs(input[h1]).contains(output[h1])) {
      result.violations.push_back(
          {Violation::Kind::kEdge, e,
           "half-edge output not permitted by g for its input label"});
    }
  }
  return result;
}

bool is_correct_solution(const NodeEdgeCheckableLcl& problem,
                         const Graph& graph, const HalfEdgeLabeling& input,
                         const HalfEdgeLabeling& output) {
  return check_solution(problem, graph, input, output).ok();
}

}  // namespace lcl
