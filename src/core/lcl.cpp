#include "core/lcl.hpp"

#include <sstream>
#include <stdexcept>

namespace lcl {

bool NodeEdgeCheckableLcl::node_allows(const Configuration& config) const {
  const auto degree = static_cast<int>(config.size());
  if (degree < 0 || degree > max_degree_) return false;
  return node_[static_cast<std::size_t>(degree)].count(config) != 0;
}

bool NodeEdgeCheckableLcl::edge_allows(Label a, Label b) const {
  if (a >= edge_partners_.size() || b >= edge_partners_.size()) return false;
  return edge_partners_[a].contains(b);
}

const LabelSet& NodeEdgeCheckableLcl::edge_partners(Label a) const {
  if (a >= edge_partners_.size()) {
    throw std::out_of_range("NodeEdgeCheckableLcl::edge_partners: label " +
                            std::to_string(a) + " out of range");
  }
  return edge_partners_[a];
}

const LabelSet& NodeEdgeCheckableLcl::allowed_outputs(Label input) const {
  if (input >= g_.size()) {
    throw std::out_of_range("NodeEdgeCheckableLcl::allowed_outputs: input " +
                            std::to_string(input) + " out of range");
  }
  return g_[input];
}

const std::set<Configuration>& NodeEdgeCheckableLcl::node_configs(
    int degree) const {
  if (degree < 0 || degree > max_degree_) return empty_;
  return node_[static_cast<std::size_t>(degree)];
}

std::size_t NodeEdgeCheckableLcl::total_node_configs() const noexcept {
  std::size_t total = 0;
  for (const auto& per_degree : node_) total += per_degree.size();
  return total;
}

std::string NodeEdgeCheckableLcl::to_string() const {
  std::ostringstream os;
  os << "LCL '" << name_ << "' (Delta = " << max_degree_ << ")\n";
  os << "  Sigma_in  (" << input_.size() << "):";
  for (Label l = 0; l < input_.size(); ++l) os << ' ' << input_.name(l);
  os << "\n  Sigma_out (" << output_.size() << "):";
  for (Label l = 0; l < output_.size(); ++l) os << ' ' << output_.name(l);
  os << "\n  node configurations:\n";
  for (int d = 0; d <= max_degree_; ++d) {
    for (const auto& c : node_configs(d)) {
      os << "    " << c.to_string(output_) << '\n';
    }
  }
  os << "  edge configurations:\n";
  for (const auto& c : edge_) os << "    " << c.to_string(output_) << '\n';
  os << "  g (input -> allowed outputs):\n";
  for (Label l = 0; l < input_.size(); ++l) {
    os << "    " << input_.name(l) << " -> "
       << g_[l].to_string(
              [this](std::uint32_t o) { return output_.name(o); })
       << '\n';
  }
  return os.str();
}

bool same_constraints(const NodeEdgeCheckableLcl& a,
                      const NodeEdgeCheckableLcl& b) {
  if (a.input_alphabet().size() != b.input_alphabet().size() ||
      a.output_alphabet().size() != b.output_alphabet().size() ||
      a.max_degree() != b.max_degree()) {
    return false;
  }
  for (int d = 1; d <= a.max_degree(); ++d) {
    if (a.node_configs(d) != b.node_configs(d)) return false;
  }
  if (a.edge_configs() != b.edge_configs()) return false;
  for (Label in = 0; in < a.input_alphabet().size(); ++in) {
    if (a.allowed_outputs(in) != b.allowed_outputs(in)) return false;
  }
  return true;
}

namespace {

/// Per-output-label invariant preserved by any constraint isomorphism:
/// edge-partner count, self-edge flag, g-membership per input, and the
/// number of node configurations per degree the label occurs in (counted
/// with multiplicity).
std::vector<std::uint64_t> label_invariant(const NodeEdgeCheckableLcl& p,
                                           Label l) {
  std::vector<std::uint64_t> inv;
  inv.push_back(p.edge_partners(l).size());
  inv.push_back(p.edge_allows(l, l) ? 1 : 0);
  for (Label in = 0; in < p.input_alphabet().size(); ++in) {
    inv.push_back(p.allowed_outputs(in).contains(l) ? 1 : 0);
  }
  for (int d = 1; d <= p.max_degree(); ++d) {
    std::uint64_t occurrences = 0;
    for (const auto& config : p.node_configs(d)) {
      for (const auto c : config.labels()) {
        if (c == l) ++occurrences;
      }
    }
    inv.push_back(occurrences);
  }
  return inv;
}

/// True iff relabeling `a` through `perm` (old label -> new label) yields
/// exactly `b`'s constraint system.
bool permutation_matches(const NodeEdgeCheckableLcl& a,
                         const NodeEdgeCheckableLcl& b,
                         const std::vector<Label>& perm) {
  for (int d = 1; d <= a.max_degree(); ++d) {
    if (a.node_configs(d).size() != b.node_configs(d).size()) return false;
    for (const auto& config : a.node_configs(d)) {
      std::vector<Label> mapped;
      mapped.reserve(config.size());
      for (const auto l : config.labels()) mapped.push_back(perm[l]);
      if (!b.node_allows(Configuration(std::move(mapped)))) return false;
    }
  }
  if (a.edge_configs().size() != b.edge_configs().size()) return false;
  for (const auto& config : a.edge_configs()) {
    if (!b.edge_allows(perm[config[0]], perm[config[1]])) return false;
  }
  for (Label in = 0; in < a.input_alphabet().size(); ++in) {
    const auto& ga = a.allowed_outputs(in);
    const auto& gb = b.allowed_outputs(in);
    if (ga.size() != gb.size()) return false;
    for (const auto l : ga.to_vector()) {
      if (!gb.contains(perm[l])) return false;
    }
  }
  return true;
}

}  // namespace

bool isomorphic_constraints(const NodeEdgeCheckableLcl& a,
                            const NodeEdgeCheckableLcl& b,
                            std::uint64_t max_attempts) {
  if (a.input_alphabet().size() != b.input_alphabet().size() ||
      a.output_alphabet().size() != b.output_alphabet().size() ||
      a.max_degree() != b.max_degree()) {
    return false;
  }
  const std::size_t n = a.output_alphabet().size();

  // Candidate images of each a-label: the b-labels sharing its invariant.
  std::vector<std::vector<Label>> candidates(n);
  {
    std::vector<std::vector<std::uint64_t>> b_inv(n);
    for (Label l = 0; l < n; ++l) b_inv[l] = label_invariant(b, l);
    for (Label l = 0; l < n; ++l) {
      const auto inv = label_invariant(a, l);
      for (Label m = 0; m < n; ++m) {
        if (inv == b_inv[m]) candidates[l].push_back(m);
      }
      if (candidates[l].empty()) return false;
    }
  }

  std::vector<Label> perm(n, 0);
  std::vector<char> taken(n, 0);
  std::uint64_t attempts = 0;
  const auto search = [&](auto&& self, std::size_t pos) -> bool {
    if (pos == n) return permutation_matches(a, b, perm);
    for (const auto m : candidates[pos]) {
      if (taken[m]) continue;
      if (++attempts > max_attempts) return false;
      taken[m] = 1;
      perm[pos] = m;
      if (self(self, pos + 1)) return true;
      taken[m] = 0;
    }
    return false;
  };
  return search(search, 0);
}

NodeEdgeCheckableLcl::Builder::Builder(std::string name, Alphabet input,
                                       Alphabet output, int max_degree) {
  if (max_degree < 1) {
    throw std::invalid_argument("Builder: max_degree must be >= 1");
  }
  if (output.empty()) {
    throw std::invalid_argument("Builder: output alphabet must be non-empty");
  }
  if (input.empty()) {
    throw std::invalid_argument(
        "Builder: input alphabet must be non-empty (use a single dummy label "
        "for problems without inputs)");
  }
  problem_.name_ = std::move(name);
  problem_.input_ = std::move(input);
  problem_.output_ = std::move(output);
  problem_.max_degree_ = max_degree;
  problem_.node_.resize(static_cast<std::size_t>(max_degree) + 1);
  problem_.edge_partners_.assign(problem_.output_.size(),
                                 LabelSet(problem_.output_.size()));
  problem_.g_.assign(problem_.input_.size(),
                     LabelSet(problem_.output_.size()));
}

void NodeEdgeCheckableLcl::Builder::check_output_label(Label l) const {
  if (l >= problem_.output_.size()) {
    throw std::out_of_range("Builder: output label " + std::to_string(l) +
                            " out of range");
  }
}

void NodeEdgeCheckableLcl::Builder::check_input_label(Label l) const {
  if (l >= problem_.input_.size()) {
    throw std::out_of_range("Builder: input label " + std::to_string(l) +
                            " out of range");
  }
}

NodeEdgeCheckableLcl::Builder& NodeEdgeCheckableLcl::Builder::allow_node(
    const std::vector<Label>& labels) {
  if (labels.empty() ||
      labels.size() > static_cast<std::size_t>(problem_.max_degree_)) {
    throw std::invalid_argument(
        "Builder::allow_node: configuration size must be in [1, max_degree]");
  }
  for (auto l : labels) check_output_label(l);
  problem_.node_[labels.size()].insert(Configuration(labels));
  return *this;
}

NodeEdgeCheckableLcl::Builder& NodeEdgeCheckableLcl::Builder::allow_node(
    std::vector<Label>&& labels) {
  if (labels.empty() ||
      labels.size() > static_cast<std::size_t>(problem_.max_degree_)) {
    throw std::invalid_argument(
        "Builder::allow_node: configuration size must be in [1, max_degree]");
  }
  for (auto l : labels) check_output_label(l);
  auto& bucket = problem_.node_[labels.size()];
  bucket.insert(bucket.end(), Configuration(std::move(labels)));
  return *this;
}

NodeEdgeCheckableLcl::Builder&
NodeEdgeCheckableLcl::Builder::allow_node_named(
    const std::vector<std::string>& names) {
  std::vector<Label> labels;
  labels.reserve(names.size());
  for (const auto& n : names) labels.push_back(problem_.output_.at(n));
  return allow_node(labels);
}

NodeEdgeCheckableLcl::Builder& NodeEdgeCheckableLcl::Builder::allow_edge(
    Label a, Label b) {
  check_output_label(a);
  check_output_label(b);
  problem_.edge_.insert(Configuration::pair(a, b));
  problem_.edge_partners_[a].insert(b);
  problem_.edge_partners_[b].insert(a);
  return *this;
}

NodeEdgeCheckableLcl::Builder&
NodeEdgeCheckableLcl::Builder::allow_edge_named(const std::string& a,
                                                const std::string& b) {
  return allow_edge(problem_.output_.at(a), problem_.output_.at(b));
}

NodeEdgeCheckableLcl::Builder&
NodeEdgeCheckableLcl::Builder::allow_output_for_input(Label in, Label out) {
  check_input_label(in);
  check_output_label(out);
  problem_.g_[in].insert(out);
  return *this;
}

NodeEdgeCheckableLcl::Builder&
NodeEdgeCheckableLcl::Builder::allow_all_outputs_for_input(Label in) {
  check_input_label(in);
  problem_.g_[in] = LabelSet::full(problem_.output_.size());
  return *this;
}

NodeEdgeCheckableLcl::Builder&
NodeEdgeCheckableLcl::Builder::unrestricted_inputs() {
  for (Label in = 0; in < problem_.input_.size(); ++in) {
    allow_all_outputs_for_input(in);
  }
  return *this;
}

NodeEdgeCheckableLcl::Builder&
NodeEdgeCheckableLcl::Builder::allow_unsatisfiable_inputs() {
  allow_unsatisfiable_inputs_ = true;
  return *this;
}

NodeEdgeCheckableLcl NodeEdgeCheckableLcl::Builder::build() {
  if (built_) {
    throw std::logic_error("Builder::build called twice");
  }
  if (problem_.total_node_configs() == 0) {
    throw std::logic_error("Builder::build: no node configuration added");
  }
  if (problem_.edge_.empty()) {
    throw std::logic_error("Builder::build: no edge configuration added");
  }
  for (Label in = 0; in < problem_.input_.size(); ++in) {
    if (!allow_unsatisfiable_inputs_ && problem_.g_[in].empty()) {
      throw std::logic_error(
          "Builder::build: input label '" + problem_.input_.name(in) +
          "' permits no output label; call allow_output_for_input / "
          "unrestricted_inputs");
    }
  }
  built_ = true;
  return std::move(problem_);
}

}  // namespace lcl
