#pragma once

#include <cstdint>
#include <optional>

#include "core/lcl.hpp"
#include "graph/graph.hpp"
#include "graph/labeling.hpp"

namespace lcl {

/// Exhaustive backtracking solver: finds a correct solution of `problem` on
/// `(graph, input)` or proves none exists.
///
/// Used wherever the paper's arguments rely on "map the component in some
/// arbitrary but fixed deterministic fashion to some correct solution"
/// (Lemma 3.3's small-component case), as the reference oracle in tests, and
/// by the empirical locality classifier. Deterministic: given the same
/// arguments it always returns the same solution (half-edges are decided in
/// increasing `HalfEdgeId` order, labels tried in increasing order).
///
/// The search is exponential in the worst case; `max_steps` bounds the
/// number of backtracking steps (throws `std::runtime_error` when
/// exhausted, which distinguishes "too hard" from "unsolvable").
std::optional<HalfEdgeLabeling> brute_force_solve(
    const NodeEdgeCheckableLcl& problem, const Graph& graph,
    const HalfEdgeLabeling& input, std::uint64_t max_steps = 50'000'000);

/// True iff a correct solution exists (same search, discarding the witness).
bool brute_force_solvable(const NodeEdgeCheckableLcl& problem,
                          const Graph& graph, const HalfEdgeLabeling& input,
                          std::uint64_t max_steps = 50'000'000);

}  // namespace lcl
