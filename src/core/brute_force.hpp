#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>

#include "core/lcl.hpp"
#include "graph/graph.hpp"
#include "graph/labeling.hpp"

namespace lcl {

/// Thrown when the brute-force search exhausts its step budget - the
/// instance is "too hard", as opposed to "unsolvable" (which returns
/// nullopt). Carries the budget that was in force so callers (and error
/// messages) can distinguish a deliberately tight budget (the fuzzer runs
/// with small ones to stay fast) from the default.
class StepBudgetExceeded : public std::runtime_error {
 public:
  explicit StepBudgetExceeded(std::uint64_t budget);
  std::uint64_t budget() const noexcept { return budget_; }

 private:
  std::uint64_t budget_;
};

/// Exhaustive backtracking solver: finds a correct solution of `problem` on
/// `(graph, input)` or proves none exists.
///
/// Used wherever the paper's arguments rely on "map the component in some
/// arbitrary but fixed deterministic fashion to some correct solution"
/// (Lemma 3.3's small-component case), as the reference oracle in tests, and
/// by the empirical locality classifier. Deterministic: given the same
/// arguments it always returns the same solution (half-edges are decided in
/// increasing `HalfEdgeId` order, labels tried in increasing order).
///
/// The search is exponential in the worst case; `max_steps` bounds the
/// number of backtracking steps (throws `StepBudgetExceeded` when
/// exhausted, which distinguishes "too hard" from "unsolvable").
std::optional<HalfEdgeLabeling> brute_force_solve(
    const NodeEdgeCheckableLcl& problem, const Graph& graph,
    const HalfEdgeLabeling& input, std::uint64_t max_steps = 50'000'000);

/// True iff a correct solution exists (same search, discarding the witness).
bool brute_force_solvable(const NodeEdgeCheckableLcl& problem,
                          const Graph& graph, const HalfEdgeLabeling& input,
                          std::uint64_t max_steps = 50'000'000);

}  // namespace lcl
