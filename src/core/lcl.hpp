#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/alphabet.hpp"
#include "core/configuration.hpp"
#include "util/label_set.hpp"

namespace lcl {

/// A node-edge-checkable LCL problem (Definition 2.3):
/// `Pi = (Sigma_in, Sigma_out, N_Pi, E_Pi, g_Pi)`.
///
/// - `Sigma_in`, `Sigma_out`: finite input/output label alphabets;
/// - `N_Pi` (node constraint): for each degree `i`, the collection of
///   cardinality-`i` multisets of output labels allowed around a node;
/// - `E_Pi` (edge constraint): the collection of cardinality-2 multisets of
///   output labels allowed on the two half-edges of an edge;
/// - `g_Pi`: maps each input label to the set of output labels allowed on a
///   half-edge carrying that input.
///
/// A correct solution labels every half-edge with an output label such that
/// all three constraints hold everywhere (Definition 2.3, items 1-3).
///
/// Instances are immutable; use `Builder` to construct them.
class NodeEdgeCheckableLcl {
 public:
  class Builder;

  /// Default-constructs an *empty* problem (no alphabets, no constraints).
  /// Only useful as a placeholder to move a built problem into; every query
  /// on an empty problem returns "nothing allowed".
  NodeEdgeCheckableLcl() = default;

  const std::string& name() const noexcept { return name_; }
  const Alphabet& input_alphabet() const noexcept { return input_; }
  const Alphabet& output_alphabet() const noexcept { return output_; }

  /// Maximum node degree for which node configurations exist.
  int max_degree() const noexcept { return max_degree_; }

  /// True iff the multiset `config` is an allowed node configuration for
  /// degree `config.size()`.
  bool node_allows(const Configuration& config) const;

  /// True iff `{a, b}` is an allowed edge configuration.
  bool edge_allows(Label a, Label b) const;

  /// The set of output labels `b` such that `{a, b}` is an allowed edge
  /// configuration. Useful for constraint propagation.
  const LabelSet& edge_partners(Label a) const;

  /// `g_Pi(input)`: outputs allowed on a half-edge with this input label.
  const LabelSet& allowed_outputs(Label input) const;

  /// All node configurations of a given degree (may be empty).
  const std::set<Configuration>& node_configs(int degree) const;

  /// All edge configurations.
  const std::set<Configuration>& edge_configs() const noexcept {
    return edge_;
  }

  /// Total number of node configurations across all degrees.
  std::size_t total_node_configs() const noexcept;

  /// Multi-line human-readable rendering of the whole problem definition.
  std::string to_string() const;

 private:
  std::string name_;
  Alphabet input_;
  Alphabet output_;
  int max_degree_ = 0;
  std::vector<std::set<Configuration>> node_;  // indexed by degree, 0..max
  std::set<Configuration> edge_;
  std::vector<LabelSet> edge_partners_;  // indexed by output label
  std::vector<LabelSet> g_;              // indexed by input label
  std::set<Configuration> empty_;        // returned for out-of-range degrees
};

/// Structural equality of two problems' constraint systems: same alphabet
/// sizes, same max degree, identical node/edge configuration sets and
/// identical `g` sets, all compared label-index by label-index. Names (of
/// the problems and of the labels) are ignored: two problems that differ
/// only in naming behave identically everywhere.
///
/// This is the exact confirmation behind the engine's cheap fixed-point
/// signature: a matching signature is necessary but not sufficient.
bool same_constraints(const NodeEdgeCheckableLcl& a,
                      const NodeEdgeCheckableLcl& b);

/// True iff some permutation of the *output* labels (identity on inputs)
/// maps `a`'s constraint system exactly onto `b`'s - i.e. the problems are
/// equal up to renaming output labels. Backtracking over permutations,
/// pruned by per-label invariants; `max_attempts` bounds the number of
/// candidate assignments examined (returns false when exhausted, so a
/// `false` from huge pathological alphabets is conservative).
bool isomorphic_constraints(const NodeEdgeCheckableLcl& a,
                            const NodeEdgeCheckableLcl& b,
                            std::uint64_t max_attempts = 1'000'000);

/// Incremental builder for `NodeEdgeCheckableLcl`. All label arguments are
/// validated eagerly; `build()` additionally checks structural sanity (every
/// referenced degree has a constraint table, `g` covers all input labels).
class NodeEdgeCheckableLcl::Builder {
 public:
  /// `max_degree` bounds the degrees for which node configurations may be
  /// added (the `Delta` of the paper; LCLs are defined on bounded-degree
  /// graphs only).
  Builder(std::string name, Alphabet input, Alphabet output, int max_degree);

  /// Allows the node configuration given by `labels` (its degree is
  /// `labels.size()`).
  Builder& allow_node(const std::vector<Label>& labels);
  /// Move overload: additionally hints the set insertion at the end, which
  /// is amortized O(1) when configurations arrive in increasing canonical
  /// order - exactly how the round-elimination kernels enumerate them.
  Builder& allow_node(std::vector<Label>&& labels);

  /// Convenience overload taking label names in the output alphabet.
  Builder& allow_node_named(const std::vector<std::string>& names);

  /// Allows the edge configuration `{a, b}`.
  Builder& allow_edge(Label a, Label b);
  Builder& allow_edge_named(const std::string& a, const std::string& b);

  /// Permits output `out` on half-edges whose input label is `in`.
  Builder& allow_output_for_input(Label in, Label out);

  /// Permits every output label for input `in`.
  Builder& allow_all_outputs_for_input(Label in);

  /// Permits every output label for every input label (the common case of an
  /// LCL "without inputs", footnote 2 of the paper).
  Builder& unrestricted_inputs();

  /// Opts out of the build-time check that every input label permits at
  /// least one output. A problem violating it is unsolvable on any instance
  /// where that input occurs - usually a specification bug, but derived
  /// problems (round elimination after trimming) can hit it legitimately.
  Builder& allow_unsatisfiable_inputs();

  /// Finalizes. Throws `std::logic_error` if no node or edge configuration
  /// was added, or if some input label has an empty `g` set while node
  /// configurations exist (such a problem is trivially unsolvable on any
  /// graph with an edge; we reject it to surface specification bugs early).
  NodeEdgeCheckableLcl build();

 private:
  void check_output_label(Label l) const;
  void check_input_label(Label l) const;

  NodeEdgeCheckableLcl problem_;
  bool built_ = false;
  bool allow_unsatisfiable_inputs_ = false;
};

}  // namespace lcl
