#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/alphabet.hpp"

namespace lcl {

/// A multiset of labels in canonical (sorted) form.
///
/// Node configurations `{A_1, .., A_i}` and edge configurations `{B_1, B_2}`
/// of Definition 2.3 are multisets, so equality and ordering must ignore the
/// order in which labels were supplied; `Configuration` sorts on
/// construction and is immutable afterwards.
class Configuration {
 public:
  Configuration() = default;

  /// Builds the canonical form of the multiset `labels`.
  explicit Configuration(std::vector<Label> labels);

  /// Convenience factory for edge configurations.
  static Configuration pair(Label a, Label b);

  std::size_t size() const noexcept { return labels_.size(); }
  Label operator[](std::size_t i) const { return labels_[i]; }
  const std::vector<Label>& labels() const noexcept { return labels_; }

  std::string to_string(const Alphabet& alphabet) const;

  bool operator<(const Configuration& other) const {
    return labels_ < other.labels_;
  }
  bool operator==(const Configuration& other) const {
    return labels_ == other.labels_;
  }
  bool operator!=(const Configuration& other) const {
    return !(*this == other);
  }

  std::size_t hash() const noexcept;

 private:
  std::vector<Label> labels_;
};

}  // namespace lcl

template <>
struct std::hash<lcl::Configuration> {
  std::size_t operator()(const lcl::Configuration& c) const noexcept {
    return c.hash();
  }
};
