#include "core/configuration.hpp"

#include <algorithm>
#include <sstream>

namespace lcl {

Configuration::Configuration(std::vector<Label> labels)
    : labels_(std::move(labels)) {
  std::sort(labels_.begin(), labels_.end());
}

Configuration Configuration::pair(Label a, Label b) {
  return Configuration(std::vector<Label>{a, b});
}

std::string Configuration::to_string(const Alphabet& alphabet) const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) os << ' ';
    os << alphabet.name(labels_[i]);
  }
  os << ']';
  return os.str();
}

std::size_t Configuration::hash() const noexcept {
  std::size_t h = labels_.size();
  for (auto l : labels_) {
    h ^= static_cast<std::size_t>(l) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

}  // namespace lcl
