#pragma once

#include "core/lcl.hpp"

namespace lcl {
namespace problems {

/// Canonical LCL problems in node-edge-checkable form (Definition 2.3).
/// These are the witnesses the paper's Figure 1 landscape refers to:
///
///  - class O(1):              `trivial`, `any_orientation`
///  - class Theta(log* n):     `coloring(Delta+1)`, `mis`,
///                             `maximal_matching`, `forbidden_color`
///  - class Theta(log n) det / Theta(log log n) rand:
///                             `sinkless_orientation`
///  - class Theta(n) on paths: `two_coloring`
///
/// All constructors validate their arguments and throw
/// `std::invalid_argument` on nonsense (e.g. 0 colors).

/// Single output label, every configuration allowed. Solvable in 0 rounds.
NodeEdgeCheckableLcl trivial(int max_degree);

/// Proper node coloring with `colors` colors: a node writes its color on all
/// incident half-edges (node configurations are constant multisets), and the
/// two sides of an edge must differ.
NodeEdgeCheckableLcl coloring(int colors, int max_degree);

/// Proper 2-coloring (global, Theta(n), on paths/cycles; unsolvable on odd
/// cycles). Shorthand for `coloring(2, max_degree)`.
NodeEdgeCheckableLcl two_coloring(int max_degree);

/// Maximal independent set. Output labels: `I` (in the set, written on all
/// half-edges), `P` (pointer: "this neighbor is my dominating MIS node"),
/// `O` (other). Node configurations: all-`I`, or exactly one `P` and the
/// rest `O`. Edge configurations: `{I,I}` forbidden; `P` pairs only with
/// `I`; `{O,O}`, `{O,I}` allowed.
NodeEdgeCheckableLcl mis(int max_degree);

/// Maximal matching. Output labels: `M` (this edge is my matching edge),
/// `Y` ("I am matched, but not on this edge"), `U` ("I am unmatched").
/// Node configurations: `{M, Y^(d-1)}` or `{U^d}`. Edge configurations:
/// `{M,M}`, `{Y,Y}`, `{Y,U}` (maximality: `{U,U}` forbidden).
NodeEdgeCheckableLcl maximal_matching(int max_degree);

/// Sinkless orientation on trees: orient every edge (half-edge labels `O`
/// out / `I` in, edge configuration `{O,I}` only); every node of degree
/// exactly `max_degree` must have at least one outgoing half-edge (nodes of
/// smaller degree are unconstrained). Theta(log n) deterministic,
/// Theta(log log n) randomized on trees.
NodeEdgeCheckableLcl sinkless_orientation(int max_degree);

/// Any consistent orientation of the edges - no node constraint at all.
/// Solvable in 0 rounds given ports/IDs... but note this requires the two
/// endpoints to agree; with IDs it is 1-round solvable (orient toward the
/// larger ID). A "just above trivial" O(1) witness.
NodeEdgeCheckableLcl any_orientation(int max_degree);

/// Proper `colors`-edge-coloring: both half-edges of an edge carry the same
/// color (the edge's color); colors around a node are pairwise distinct.
/// For colors >= 2*max_degree - 1 this is Theta(log* n).
NodeEdgeCheckableLcl edge_coloring(int colors, int max_degree);

/// An LCL *with inputs* (exercising `g_Pi`): proper node coloring with
/// `colors` colors where each half-edge carries an input label in
/// `{forbid_0, .., forbid_(colors-1), free}`; output color `c` is not
/// permitted on a half-edge with input `forbid_c`. With `colors >=
/// max_degree + 2`, greedy arguments still apply and the complexity stays
/// Theta(log* n).
NodeEdgeCheckableLcl forbidden_color(int colors, int max_degree);

/// Perfect matching: like `maximal_matching`, but every node must be
/// matched (labels `M` / `Y` only). On paths and cycles this is solvable
/// exactly for even lengths and is a global (Theta(n)) problem - a clean
/// witness that solvable-length structure and complexity are decided
/// together by the classifiers.
NodeEdgeCheckableLcl perfect_matching(int max_degree);

/// Weak c-coloring: every non-isolated node must have at least one neighbor
/// with a different color (node writes its color on all half-edges; an edge
/// may be monochromatic, but the node constraint... cannot see neighbors).
/// Encoded via half-edge labels (color, flag) where the flag marks one
/// incident edge as the "witness" edge which must be bichromatic.
NodeEdgeCheckableLcl weak_coloring(int colors, int max_degree);

/// Synthetic wide-alphabet stress family (not from the paper): `labels`
/// output labels `t0..t(n-1)` at max degree 2, with
///   - node configurations: every single `{a}`, and every pair `{a, b}`
///     with `|a - b| <= window`;
///   - edge configurations: `{a, b}` allowed iff `a + b >= labels - 1`;
///   - unrestricted inputs.
/// The threshold edge constraint makes the partner sets a strict chain
/// (partners(a) subset partners(b) for a < b) while the banded node
/// constraint limits which replacements stay legal, so `reduce()`'s
/// dominated-label pass keeps firing - one label per pass - across the
/// whole alphabet. Sized at 63..129+ labels this is the workload that
/// drives the multi-word mask tiers (the parity battery) and the wide
/// kernel-slice benchmarks; nothing else in the canonical battery has
/// alphabets past 64 labels before an operator is applied.
NodeEdgeCheckableLcl threshold_band(int labels, int window);

}  // namespace problems
}  // namespace lcl
