#pragma once

#include <string>
#include <vector>

#include "core/lcl.hpp"
#include "graph/graph.hpp"
#include "graph/labeling.hpp"

namespace lcl {

/// A single constraint violation, attributed to a node or an edge exactly as
/// in Definition 2.4 ("incorrect at node v" / "incorrect on edge e").
struct Violation {
  enum class Kind { kNode, kEdge };
  Kind kind;
  std::uint32_t id;  // NodeId or EdgeId depending on kind
  std::string detail;
};

/// Result of checking an output labeling against a problem.
struct CheckResult {
  std::vector<Violation> violations;

  bool ok() const noexcept { return violations.empty(); }
  std::size_t node_failures() const noexcept;
  std::size_t edge_failures() const noexcept;
  /// All violations rendered one per line (empty string when ok).
  std::string to_string() const;
};

/// Checks whether `output` is a correct solution of `problem` on
/// `(graph, input)` per Definition 2.3:
///  1. around every node, the multiset of incident half-edge output labels
///     is an allowed node configuration for the node's degree;
///  2. on every edge, the pair of half-edge output labels is an allowed edge
///     configuration;
///  3. on every half-edge, the output label is in `g(input label)`.
///
/// `input` and `output` must have exactly `graph.half_edge_count()` entries
/// with labels inside the respective alphabets, and the graph's maximum
/// degree must not exceed the problem's; otherwise `std::invalid_argument`
/// is thrown (malformed arguments are API misuse, not a "wrong solution").
///
/// Following Definition 2.4, a `g`-violation on half-edge `(v, e)` is
/// attributed to *both* the node `v` and the edge `e`.
CheckResult check_solution(const NodeEdgeCheckableLcl& problem,
                           const Graph& graph, const HalfEdgeLabeling& input,
                           const HalfEdgeLabeling& output);

/// Convenience: true iff `check_solution(...).ok()`.
bool is_correct_solution(const NodeEdgeCheckableLcl& problem,
                         const Graph& graph, const HalfEdgeLabeling& input,
                         const HalfEdgeLabeling& output);

}  // namespace lcl
