#include "core/brute_force.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace lcl {

StepBudgetExceeded::StepBudgetExceeded(std::uint64_t budget)
    : std::runtime_error("brute_force_solve: step budget of " +
                         std::to_string(budget) +
                         " exhausted (instance too hard)"),
      budget_(budget) {}

namespace {

/// True iff the sorted multiset `partial` is a sub-multiset of some allowed
/// node configuration of cardinality `degree`.
bool extendable_node_config(const NodeEdgeCheckableLcl& problem, int degree,
                            std::vector<Label> partial) {
  std::sort(partial.begin(), partial.end());
  for (const auto& config : problem.node_configs(degree)) {
    // Multiset inclusion test on two sorted ranges.
    const auto& full = config.labels();
    std::size_t i = 0;
    for (std::size_t j = 0; j < full.size() && i < partial.size(); ++j) {
      if (full[j] == partial[i]) ++i;
    }
    if (i == partial.size()) return true;
  }
  return false;
}

}  // namespace

std::optional<HalfEdgeLabeling> brute_force_solve(
    const NodeEdgeCheckableLcl& problem, const Graph& graph,
    const HalfEdgeLabeling& input, std::uint64_t max_steps) {
  if (input.size() != graph.half_edge_count()) {
    throw std::invalid_argument(
        "brute_force_solve: input labeling size mismatch");
  }
  if (graph.max_degree() > problem.max_degree()) {
    throw std::invalid_argument(
        "brute_force_solve: graph degree exceeds problem degree");
  }
  const std::size_t h_count = graph.half_edge_count();
  const std::size_t out_size = problem.output_alphabet().size();

  // Half-edges are decided in id order (2e, 2e+1, ...), so the edge
  // constraint prunes immediately after both sides of an edge are assigned.
  HalfEdgeLabeling assignment(h_count, 0);
  std::vector<char> assigned(h_count, 0);

  std::uint64_t steps = 0;

  // Checks all constraints involving half-edge h against current partials.
  auto feasible = [&](HalfEdgeId h, Label label) {
    if (!problem.allowed_outputs(input[h]).contains(label)) return false;
    const HalfEdgeId t = Graph::twin(h);
    if (assigned[t] && !problem.edge_allows(label, assignment[t])) {
      return false;
    }
    const NodeId v = graph.node_of(h);
    const int degree = graph.degree(v);
    std::vector<Label> partial;
    partial.reserve(static_cast<std::size_t>(degree));
    for (int p = 0; p < degree; ++p) {
      const HalfEdgeId hv = graph.half_edge(v, p);
      if (hv == h) {
        partial.push_back(label);
      } else if (assigned[hv]) {
        partial.push_back(assignment[hv]);
      }
    }
    return extendable_node_config(problem, degree, std::move(partial));
  };

  // Iterative backtracking over half-edge ids.
  std::vector<Label> next_try(h_count, 0);
  std::size_t pos = 0;
  while (pos < h_count) {
    if (++steps > max_steps) {
      throw StepBudgetExceeded(max_steps);
    }
    const HalfEdgeId h = static_cast<HalfEdgeId>(pos);
    bool placed = false;
    for (Label label = next_try[pos]; label < out_size; ++label) {
      if (feasible(h, label)) {
        assignment[h] = label;
        assigned[h] = 1;
        next_try[pos] = label + 1;
        placed = true;
        break;
      }
    }
    if (placed) {
      ++pos;
      if (pos < h_count) next_try[pos] = 0;
      continue;
    }
    // Backtrack.
    if (pos == 0) return std::nullopt;
    next_try[pos] = 0;
    --pos;
    const HalfEdgeId prev = static_cast<HalfEdgeId>(pos);
    assigned[prev] = 0;
  }
  return assignment;
}

bool brute_force_solvable(const NodeEdgeCheckableLcl& problem,
                          const Graph& graph, const HalfEdgeLabeling& input,
                          std::uint64_t max_steps) {
  return brute_force_solve(problem, graph, input, max_steps).has_value();
}

}  // namespace lcl
