#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace lcl {

/// A finite, ordered set of named labels (`Sigma_in` / `Sigma_out` of
/// Definition 2.2). Label values are dense indices `0 .. size()-1`.
class Alphabet {
 public:
  Alphabet() = default;

  /// Builds an alphabet from `names`; throws `std::invalid_argument` on
  /// duplicate names.
  explicit Alphabet(std::vector<std::string> names);

  /// Appends a new label; throws `std::invalid_argument` if the name already
  /// exists. Returns the new label's index.
  Label add(std::string name);

  std::size_t size() const noexcept { return names_.size(); }
  bool empty() const noexcept { return names_.empty(); }

  /// Name of `label`; throws `std::out_of_range` for invalid labels.
  const std::string& name(Label label) const;

  /// Index of the label called `name`, or nullopt.
  std::optional<Label> find(const std::string& name) const;

  /// Index of the label called `name`; throws `std::out_of_range` if absent.
  Label at(const std::string& name) const;

  bool operator==(const Alphabet& other) const {
    return names_ == other.names_;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Label> index_;
};

}  // namespace lcl
