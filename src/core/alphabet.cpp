#include "core/alphabet.hpp"

#include <stdexcept>

namespace lcl {

Alphabet::Alphabet(std::vector<std::string> names) {
  for (auto& n : names) add(std::move(n));
}

Label Alphabet::add(std::string name) {
  if (index_.count(name) != 0) {
    throw std::invalid_argument("Alphabet: duplicate label name '" + name +
                                "'");
  }
  const Label label = static_cast<Label>(names_.size());
  index_.emplace(name, label);
  names_.push_back(std::move(name));
  return label;
}

const std::string& Alphabet::name(Label label) const {
  if (label >= names_.size()) {
    throw std::out_of_range("Alphabet: label " + std::to_string(label) +
                            " out of range (size " +
                            std::to_string(names_.size()) + ")");
  }
  return names_[label];
}

std::optional<Label> Alphabet::find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Label Alphabet::at(const std::string& name) const {
  auto found = find(name);
  if (!found) {
    throw std::out_of_range("Alphabet: no label named '" + name + "'");
  }
  return *found;
}

}  // namespace lcl
