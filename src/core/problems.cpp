#include "core/problems.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace lcl {
namespace problems {

namespace {

Alphabet no_input_alphabet() { return Alphabet({"-"}); }

void require(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}

// Builds "<prefix><index><suffix>" without std::string operator+ chains
// (GCC 12's -Wrestrict misfires on the inlined char* + to_string overload).
std::string numbered(const char* prefix, int index, const char* suffix = "") {
  std::ostringstream os;
  os << prefix << index << suffix;
  return os.str();
}

}  // namespace

NodeEdgeCheckableLcl trivial(int max_degree) {
  require(max_degree >= 1, "trivial: max_degree >= 1");
  NodeEdgeCheckableLcl::Builder b("trivial", no_input_alphabet(),
                                  Alphabet({"x"}), max_degree);
  for (int d = 1; d <= max_degree; ++d) {
    b.allow_node(std::vector<Label>(static_cast<std::size_t>(d), 0));
  }
  b.allow_edge(0, 0);
  b.unrestricted_inputs();
  return b.build();
}

NodeEdgeCheckableLcl coloring(int colors, int max_degree) {
  require(colors >= 1, "coloring: colors >= 1");
  require(max_degree >= 1, "coloring: max_degree >= 1");
  std::vector<std::string> names;
  for (int c = 0; c < colors; ++c) names.push_back(numbered("c", c));
  NodeEdgeCheckableLcl::Builder b(
      numbered("", colors, "-coloring"), no_input_alphabet(),
      Alphabet(names), max_degree);
  for (Label c = 0; c < static_cast<Label>(colors); ++c) {
    for (int d = 1; d <= max_degree; ++d) {
      b.allow_node(std::vector<Label>(static_cast<std::size_t>(d), c));
    }
  }
  for (Label c1 = 0; c1 < static_cast<Label>(colors); ++c1) {
    for (Label c2 = c1 + 1; c2 < static_cast<Label>(colors); ++c2) {
      b.allow_edge(c1, c2);
    }
  }
  b.unrestricted_inputs();
  return b.build();
}

NodeEdgeCheckableLcl two_coloring(int max_degree) {
  return coloring(2, max_degree);
}

NodeEdgeCheckableLcl mis(int max_degree) {
  require(max_degree >= 1, "mis: max_degree >= 1");
  NodeEdgeCheckableLcl::Builder b("mis", no_input_alphabet(),
                                  Alphabet({"I", "P", "O"}), max_degree);
  const Label kI = 0, kP = 1, kO = 2;
  for (int d = 1; d <= max_degree; ++d) {
    b.allow_node(std::vector<Label>(static_cast<std::size_t>(d), kI));
    std::vector<Label> pointer(static_cast<std::size_t>(d), kO);
    pointer[0] = kP;
    b.allow_node(pointer);
  }
  b.allow_edge(kP, kI);
  b.allow_edge(kO, kI);
  b.allow_edge(kO, kO);
  b.unrestricted_inputs();
  return b.build();
}

NodeEdgeCheckableLcl maximal_matching(int max_degree) {
  require(max_degree >= 1, "maximal_matching: max_degree >= 1");
  NodeEdgeCheckableLcl::Builder b("maximal-matching", no_input_alphabet(),
                                  Alphabet({"M", "Y", "U"}), max_degree);
  const Label kM = 0, kY = 1, kU = 2;
  for (int d = 1; d <= max_degree; ++d) {
    std::vector<Label> matched(static_cast<std::size_t>(d), kY);
    matched[0] = kM;
    b.allow_node(matched);
    b.allow_node(std::vector<Label>(static_cast<std::size_t>(d), kU));
  }
  b.allow_edge(kM, kM);
  b.allow_edge(kY, kY);
  b.allow_edge(kY, kU);
  b.unrestricted_inputs();
  return b.build();
}

NodeEdgeCheckableLcl sinkless_orientation(int max_degree) {
  require(max_degree >= 2, "sinkless_orientation: max_degree >= 2");
  NodeEdgeCheckableLcl::Builder b("sinkless-orientation",
                                  no_input_alphabet(), Alphabet({"O", "I"}),
                                  max_degree);
  const Label kOut = 0, kIn = 1;
  for (int d = 1; d <= max_degree; ++d) {
    // Any mix of O/I, except that degree-max_degree nodes need >= 1 out.
    const int min_out = (d == max_degree) ? 1 : 0;
    for (int outs = min_out; outs <= d; ++outs) {
      std::vector<Label> config;
      config.insert(config.end(), static_cast<std::size_t>(outs), kOut);
      config.insert(config.end(), static_cast<std::size_t>(d - outs), kIn);
      b.allow_node(config);
    }
  }
  b.allow_edge(kOut, kIn);
  b.unrestricted_inputs();
  return b.build();
}

NodeEdgeCheckableLcl any_orientation(int max_degree) {
  require(max_degree >= 1, "any_orientation: max_degree >= 1");
  NodeEdgeCheckableLcl::Builder b("any-orientation", no_input_alphabet(),
                                  Alphabet({"O", "I"}), max_degree);
  for (int d = 1; d <= max_degree; ++d) {
    for (int outs = 0; outs <= d; ++outs) {
      std::vector<Label> config;
      config.insert(config.end(), static_cast<std::size_t>(outs), 0);
      config.insert(config.end(), static_cast<std::size_t>(d - outs), 1);
      b.allow_node(config);
    }
  }
  b.allow_edge(0, 1);
  b.unrestricted_inputs();
  return b.build();
}

NodeEdgeCheckableLcl edge_coloring(int colors, int max_degree) {
  require(colors >= 1, "edge_coloring: colors >= 1");
  require(max_degree >= 1, "edge_coloring: max_degree >= 1");
  require(colors >= max_degree,
          "edge_coloring: need colors >= max_degree for solvability");
  std::vector<std::string> names;
  for (int c = 0; c < colors; ++c) names.push_back(numbered("e", c));
  NodeEdgeCheckableLcl::Builder b(
      numbered("", colors, "-edge-coloring"), no_input_alphabet(),
      Alphabet(names), max_degree);
  // Node: pairwise distinct colors. Enumerate strictly increasing tuples.
  for (int d = 1; d <= max_degree; ++d) {
    std::vector<Label> combo(static_cast<std::size_t>(d));
    for (int i = 0; i < d; ++i) combo[static_cast<std::size_t>(i)] = i;
    while (true) {
      b.allow_node(combo);
      int pos = d;
      bool advanced = false;
      while (pos > 0) {
        --pos;
        if (combo[static_cast<std::size_t>(pos)] + 1 <=
            static_cast<Label>(colors - (d - pos))) {
          ++combo[static_cast<std::size_t>(pos)];
          for (int j = pos + 1; j < d; ++j) {
            combo[static_cast<std::size_t>(j)] =
                combo[static_cast<std::size_t>(j - 1)] + 1;
          }
          advanced = true;
          break;
        }
      }
      if (!advanced) break;
    }
  }
  for (Label c = 0; c < static_cast<Label>(colors); ++c) b.allow_edge(c, c);
  b.unrestricted_inputs();
  return b.build();
}

NodeEdgeCheckableLcl forbidden_color(int colors, int max_degree) {
  require(colors >= 2, "forbidden_color: colors >= 2");
  require(max_degree >= 1, "forbidden_color: max_degree >= 1");
  std::vector<std::string> in_names;
  for (int c = 0; c < colors; ++c) {
    in_names.push_back(numbered("forbid", c));
  }
  in_names.push_back("free");
  std::vector<std::string> out_names;
  for (int c = 0; c < colors; ++c) out_names.push_back(numbered("c", c));
  NodeEdgeCheckableLcl::Builder b("forbidden-color", Alphabet(in_names),
                                  Alphabet(out_names), max_degree);
  for (Label c = 0; c < static_cast<Label>(colors); ++c) {
    for (int d = 1; d <= max_degree; ++d) {
      b.allow_node(std::vector<Label>(static_cast<std::size_t>(d), c));
    }
  }
  for (Label c1 = 0; c1 < static_cast<Label>(colors); ++c1) {
    for (Label c2 = c1 + 1; c2 < static_cast<Label>(colors); ++c2) {
      b.allow_edge(c1, c2);
    }
  }
  for (Label in = 0; in < static_cast<Label>(colors); ++in) {
    for (Label out = 0; out < static_cast<Label>(colors); ++out) {
      if (out != in) b.allow_output_for_input(in, out);
    }
  }
  b.allow_all_outputs_for_input(static_cast<Label>(colors));  // "free"
  return b.build();
}

NodeEdgeCheckableLcl perfect_matching(int max_degree) {
  require(max_degree >= 1, "perfect_matching: max_degree >= 1");
  NodeEdgeCheckableLcl::Builder b("perfect-matching", no_input_alphabet(),
                                  Alphabet({"M", "Y"}), max_degree);
  for (int d = 1; d <= max_degree; ++d) {
    std::vector<Label> matched(static_cast<std::size_t>(d), 1);
    matched[0] = 0;
    b.allow_node(matched);  // exactly one M per node
  }
  b.allow_edge(0, 0);
  b.allow_edge(1, 1);
  b.unrestricted_inputs();
  return b.build();
}

NodeEdgeCheckableLcl weak_coloring(int colors, int max_degree) {
  require(colors >= 2, "weak_coloring: colors >= 2");
  require(max_degree >= 1, "weak_coloring: max_degree >= 1");
  // Output labels: (color, witness-flag). The flagged half-edge must lead to
  // a differently-colored neighbor.
  std::vector<std::string> names;
  for (int c = 0; c < colors; ++c) {
    names.push_back(numbered("c", c));
    names.push_back(numbered("c", c, "!"));
  }
  const auto plain = [](int c) { return static_cast<Label>(2 * c); };
  const auto witness = [](int c) { return static_cast<Label>(2 * c + 1); };
  NodeEdgeCheckableLcl::Builder b(numbered("weak-", colors, "-coloring"),
                                  no_input_alphabet(), Alphabet(names),
                                  max_degree);
  for (int c = 0; c < colors; ++c) {
    for (int d = 1; d <= max_degree; ++d) {
      std::vector<Label> config(static_cast<std::size_t>(d), plain(c));
      config[0] = witness(c);
      b.allow_node(config);
    }
  }
  for (int c1 = 0; c1 < colors; ++c1) {
    for (int c2 = 0; c2 < colors; ++c2) {
      if (c1 > c2) continue;  // configurations are multisets
      if (c1 != c2) {
        b.allow_edge(plain(c1), plain(c2));
        b.allow_edge(plain(c1), witness(c2));
        b.allow_edge(witness(c1), plain(c2));
        b.allow_edge(witness(c1), witness(c2));
      } else {
        b.allow_edge(plain(c1), plain(c2));  // same color: only unflagged
      }
    }
  }
  b.unrestricted_inputs();
  return b.build();
}

NodeEdgeCheckableLcl threshold_band(int labels, int window) {
  require(labels >= 2, "threshold_band: labels >= 2");
  require(window >= 1, "threshold_band: window >= 1");
  std::vector<std::string> names;
  for (int l = 0; l < labels; ++l) names.push_back(numbered("t", l));
  NodeEdgeCheckableLcl::Builder b(numbered("threshold-band-", labels),
                                  no_input_alphabet(), Alphabet(names),
                                  /*max_degree=*/2);
  for (Label a = 0; a < static_cast<Label>(labels); ++a) {
    b.allow_node({a});
    const Label hi = std::min<Label>(static_cast<Label>(labels) - 1,
                                     a + static_cast<Label>(window));
    for (Label c = a; c <= hi; ++c) b.allow_node({a, c});
  }
  for (Label a = 0; a < static_cast<Label>(labels); ++a) {
    for (Label c = a; c < static_cast<Label>(labels); ++c) {
      if (a + c >= static_cast<Label>(labels) - 1) b.allow_edge(a, c);
    }
  }
  b.unrestricted_inputs();
  return b.build();
}

}  // namespace problems
}  // namespace lcl
