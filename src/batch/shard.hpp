#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "batch/survey.hpp"
#include "core/lcl.hpp"
#include "obs/json.hpp"

namespace lcl::batch {

/// Which shard of a sharded survey run a process is responsible for.
/// `count == 1, index == 0` is the unsharded (single-pool) degenerate case.
struct ShardRef {
  std::size_t index = 0;
  std::size_t count = 1;
};

/// Deterministic shard key of one problem: the label-permutation-invariant
/// `lint::canonical_signature` when the orbit search completes within
/// budget, the raw `constraint_signature` otherwise (the same fallback the
/// survey's `canonical_key` column uses). Permutation-equivalent problems
/// therefore land on the same shard - which keeps the canonical cache tier
/// effective *within* a shard - and the key depends only on the problem's
/// constraints, never on thread counts, enumeration order, or label names.
std::uint64_t shard_key(const NodeEdgeCheckableLcl& problem);

/// `key -> shard` assignment: a fixed bijective finalizer (so consecutive
/// signatures spread) reduced mod `shard_count`. Total and deterministic;
/// `shard_count == 0` throws `std::invalid_argument`.
std::size_t shard_index(std::uint64_t key, std::size_t shard_count);

/// The versioned `lclscape.shards.v1` manifest describing one shard of a
/// survey run: which slice of the spec space it covers, where its cache
/// tier lives, and which engine version produced it. Written next to the
/// shard report by `lcl_batch --shard=I/N` and embedded in the report's
/// top-level "shard" block; the merge step cross-checks manifests before
/// joining rows.
struct ShardManifest {
  /// Full family description (the whole spec space, not just this shard).
  std::string family;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Size of the full spec space across all shards.
  std::size_t members_total = 0;
  /// This shard's member names, in family enumeration order - the "spec
  /// range" of the manifest. Explicit names (not an index interval) because
  /// the signature-keyed assignment is not contiguous in enumeration order.
  std::vector<std::string> members;
  /// Path of this shard's JSONL cache tier ("" = no disk tier).
  std::string cache_tier;
  /// `lcl::git_sha()` of the producing binary ("unknown" outside git).
  std::string git_sha;

  obs::json::Value to_json_value() const;
  std::string to_json() const;
  /// Parses a manifest back; throws `std::runtime_error` on a missing or
  /// wrong "schema" marker or malformed fields.
  static ShardManifest from_json_value(const obs::json::Value& value);
};

/// The deterministic shard plan: the restricted family a shard process
/// sweeps plus its manifest. Planning is a pure function of
/// (family, shard ref, cache tier path, git sha): every process that
/// enumerates the same family computes the same partition, so N
/// independent `lcl_batch --shard=i/N` invocations cover the spec space
/// exactly once with no coordination.
struct ShardPlan {
  /// Restricted family: only this shard's members, in family enumeration
  /// order; `description` is the full family's.
  Family members;
  ShardManifest manifest;
};
ShardPlan plan_shard(const Family& family, ShardRef shard,
                     const std::string& cache_tier = "",
                     const std::string& git_sha = "");

/// A merge inconsistency that means the shard set does NOT reassemble the
/// surveyed spec space: a class-verdict conflict between shards, a missing
/// or duplicated shard index, mismatched family/options echoes, or a row
/// count that does not add up. Distinct from parse errors (plain
/// `std::runtime_error`) so the CLI can exit 1 vs 2.
class MergeConflictError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The merge/dedup step: joins N shard report documents (each a
/// `lclscape.survey.v3` doc carrying a "shard" manifest block) into the one
/// report a single-pool run over the full family would have produced,
/// byte-for-byte. Rows are keyed on `key` (constraint signature + name);
/// byte-identical duplicate rows between shards are deduplicated, rows that
/// share a key but disagree on any field make the merge refuse with a
/// `MergeConflictError` naming the key and the conflicting verdicts.
struct MergeResult {
  SurveyReport report;
  /// The input manifests, sorted by shard index.
  std::vector<ShardManifest> manifests;
  /// Cross-shard duplicate rows that were deduplicated (identical bytes).
  std::size_t duplicates = 0;
};
MergeResult merge_shard_reports(const std::vector<obs::json::Value>& docs);

}  // namespace lcl::batch
