#include "batch/survey.hpp"

#include <algorithm>
#include <filesystem>
#include <future>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>

#include "batch/pool.hpp"
#include "classify/cycle_classifier.hpp"
#include "classify/path_classifier.hpp"
#include "core/brute_force.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "lint/analyzer.hpp"
#include "lint/canonical.hpp"
#include "lint/spec_io.hpp"
#include "obs/obs.hpp"
#include "re/operators.hpp"
#include "re/reduce.hpp"
#include "re/zero_round.hpp"
#include "util/combinatorics.hpp"

namespace lcl::batch {

namespace json = lcl::obs::json;

namespace {

std::string hex_signature(std::uint64_t sig) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << sig;
  return out.str();
}

std::string degrees_tag(const std::vector<int>& degrees) {
  if (degrees.empty()) return "forest";
  std::string tag;
  for (const int d : degrees) {
    if (!tag.empty()) tag += '-';
    tag += std::to_string(d);
  }
  return tag;
}

/// Two-tier lookup for label-permutation-invariant verdict kinds
/// ("engine:", "zr:", "cycle:", "path:", "check:"): nothing in those
/// payloads names a label, so a canonical-tier hit can be replayed verbatim
/// - the permutation evidence degenerates to "no field needs mapping". With
/// the tier off this is exactly the raw confirmed lookup.
std::optional<json::Value> cache_find(Cache* cache, const std::string& kind,
                                      const NodeEdgeCheckableLcl& problem,
                                      const lint::CanonicalForm* form =
                                          nullptr) {
  if (cache == nullptr) return std::nullopt;
  if (auto hit = cache->find_canonical(kind, problem, form)) {
    return std::move(hit->value);
  }
  return std::nullopt;
}

void cache_put(Cache* cache, const std::string& kind,
               const NodeEdgeCheckableLcl& problem, const json::Value& value,
               const lint::CanonicalForm* form = nullptr,
               bool index_canonical = true) {
  if (cache != nullptr) {
    cache->insert(kind, problem, value, form, index_canonical);
  }
}

/// 0-round solvability through the cache (the verdict depends on the degree
/// set, so it is part of the kind).
bool zero_round_cached(const NodeEdgeCheckableLcl& problem,
                       const std::vector<int>& degrees, Cache* cache) {
  const std::string kind = "zr:" + degrees_tag(degrees);
  if (const auto hit = cache_find(cache, kind, problem)) {
    if (const auto* solvable = hit->find("solvable");
        solvable != nullptr && solvable->is_bool()) {
      return solvable->as_bool();
    }
  }
  const bool solvable = zero_round_solvable(problem, degrees);
  json::Value value = json::Value::make_object();
  value.object()["solvable"] = json::Value(solvable);
  cache_put(cache, kind, problem, value);
  return solvable;
}

/// One reduced `Rbar(R(.))` iterate through the cache. The enumeration
/// limits are part of the kind: an iterate computed under generous limits
/// must not be served to a run whose limits would have aborted it. Throws
/// `ReBlowupError` / `std::runtime_error` exactly like the uncached step.
NodeEdgeCheckableLcl speedup_step_cached(const NodeEdgeCheckableLcl& current,
                                         const ReLimits& limits,
                                         bool reduce_labels, Cache* cache) {
  const std::string kind = std::string("step:") + (reduce_labels ? "r" : "f") +
                           ":l" + std::to_string(limits.max_labels) + ":c" +
                           std::to_string(limits.max_configs);
  if (auto* run = obs::RunContext::current(); run != nullptr) {
    run->bump("engine_steps");
  }
  // Exact tier ONLY: the payload embeds the derived next problem in the
  // *stored* problem's label space, and a canonical-tier hit would come
  // with an unknown induced permutation on that derived spec. Every other
  // survey kind stores label-invariant verdicts and goes two-tier.
  if (cache != nullptr) {
    if (const auto hit = cache->find(kind, current)) {
      if (const auto* next = hit->find("next"); next != nullptr) {
        return lint::build_spec(lint::spec_from_json_value(*next));
      }
    }
  }
  ReStep psi = apply_r(current, limits);
  if (reduce_labels) psi = reduce_step(std::move(psi), limits.kernel);
  ReStep next = apply_rbar(psi.problem, limits);
  if (reduce_labels) next = reduce_step(std::move(next), limits.kernel);
  json::Value value = json::Value::make_object();
  value.object()["next"] =
      lint::spec_to_json_value(lint::spec_from_problem(next.problem));
  cache_put(cache, kind, current, value, nullptr,
            /*index_canonical=*/false);  // payload is not label-invariant
  return std::move(next.problem);
}

/// The speedup-synthesis certificate the survey records per problem: the
/// observable outcome of `SpeedupEngine::run`, without the lifting data the
/// survey does not consume.
struct EngineSummary {
  int zero_round_step = -1;
  int steps_applied = 0;
  bool fixed_point = false;
  bool budget_exhausted = false;
  bool detected_unsolvable = false;
  std::size_t preflight_dead_labels = 0;
  std::string message;
};

json::Value summary_to_json(const EngineSummary& s) {
  json::Value value = json::Value::make_object();
  auto& object = value.object();
  object["zero_round_step"] =
      json::Value(static_cast<std::int64_t>(s.zero_round_step));
  object["steps_applied"] =
      json::Value(static_cast<std::int64_t>(s.steps_applied));
  object["fixed_point"] = json::Value(s.fixed_point);
  object["budget_exhausted"] = json::Value(s.budget_exhausted);
  object["detected_unsolvable"] = json::Value(s.detected_unsolvable);
  object["preflight_dead_labels"] =
      json::Value(static_cast<std::int64_t>(s.preflight_dead_labels));
  object["message"] = json::Value(s.message);
  return value;
}

EngineSummary summary_from_json(const json::Value& value) {
  EngineSummary s;
  const auto read_int = [&value](const char* key, auto& out) {
    if (const auto* v = value.find(key); v != nullptr && v->is_number()) {
      out = static_cast<std::remove_reference_t<decltype(out)>>(v->as_int());
    }
  };
  read_int("zero_round_step", s.zero_round_step);
  read_int("steps_applied", s.steps_applied);
  read_int("preflight_dead_labels", s.preflight_dead_labels);
  const auto read_bool = [&value](const char* key, bool& out) {
    if (const auto* v = value.find(key); v != nullptr && v->is_bool()) {
      out = v->as_bool();
    }
  };
  read_bool("fixed_point", s.fixed_point);
  read_bool("budget_exhausted", s.budget_exhausted);
  read_bool("detected_unsolvable", s.detected_unsolvable);
  if (const auto* m = value.find("message"); m != nullptr && m->is_string()) {
    s.message = m->as_string();
  }
  return s;
}

/// `SpeedupEngine::run` semantics, re-expressed over the result cache: the
/// whole-run summary is memoized per base problem, and on a miss every
/// `Rbar o R` iterate and 0-round verdict flows through the shared step
/// cache - so two different base problems whose sequences merge (common
/// after reduction) never recompute the shared tail.
EngineSummary cached_speedup(const NodeEdgeCheckableLcl& base,
                             const SpeedupEngine::Options& options,
                             Cache* cache,
                             const lint::CanonicalForm* base_form) {
  const std::string kind =
      "engine:" + degrees_tag(options.degrees) + ":s" +
      std::to_string(options.max_steps) + ":l" +
      std::to_string(options.limits.max_labels) + ":c" +
      std::to_string(options.limits.max_configs) +
      (options.reduce ? ":r" : ":f");
  if (const auto hit = cache_find(cache, kind, base, base_form)) {
    return summary_from_json(*hit);
  }

  EngineSummary s;
  NodeEdgeCheckableLcl effective = base;
  if (options.preflight_lint) {
    lint::LintOptions lint_options;
    lint_options.zero_round = false;
    auto preflight = lint::prune_problem(base, lint_options);
    s.preflight_dead_labels = preflight.report.dead_labels;
    if (preflight.report.trivially_unsolvable) {
      s.detected_unsolvable = true;
      s.message = "preflight lint (L020): the pruned constraint set is empty";
      cache_put(cache, kind, base, summary_to_json(s), base_form);
      return s;
    }
    if (preflight.changed) effective = std::move(preflight.problem);
  }

  const auto finish = [&]() {
    cache_put(cache, kind, base, summary_to_json(s), base_form);
    return s;
  };

  if (zero_round_cached(effective, options.degrees, cache)) {
    s.zero_round_step = 0;
    return finish();
  }
  NodeEdgeCheckableLcl current = std::move(effective);
  std::uint64_t current_signature = constraint_signature(current);
  for (int step = 0; step < options.max_steps; ++step) {
    NodeEdgeCheckableLcl next;
    try {
      next = speedup_step_cached(current, options.limits, options.reduce,
                                 cache);
    } catch (const ReBlowupError& e) {
      s.budget_exhausted = true;
      s.message = e.what();
      return finish();
    } catch (const std::runtime_error& e) {
      // reduce() trimmed every output label: unsolvable on any graph with
      // an edge (same interpretation as SpeedupEngine::run).
      s.detected_unsolvable = true;
      s.message = e.what();
      return finish();
    }
    s.steps_applied = step + 1;
    if (zero_round_cached(next, options.degrees, cache)) {
      s.zero_round_step = step + 1;
      return finish();
    }
    const std::uint64_t next_signature = constraint_signature(next);
    if (next_signature == current_signature &&
        (same_constraints(next, current) ||
         isomorphic_constraints(next, current))) {
      s.fixed_point = true;
      return finish();
    }
    current = std::move(next);
    current_signature = next_signature;
  }
  return finish();
}

bool classifiers_applicable(const NodeEdgeCheckableLcl& problem) {
  return problem.input_alphabet().size() == 1 && problem.max_degree() >= 2;
}

ProblemOutcome survey_one(const FamilyMember& member,
                          const SurveyOptions& options) {
  LCL_OBS_SPAN(span, "batch/problem", "batch");
  const NodeEdgeCheckableLcl& problem = member.problem;
  ProblemOutcome out;
  out.name = member.name;
  out.signature = constraint_signature(problem);
  out.key = hex_signature(out.signature) + "/" + member.name;
  out.labels = problem.output_alphabet().size();
  out.node_configs = problem.total_node_configs();
  out.edge_configs = problem.edge_configs().size();

  try {
    Cache* cache = options.cache;
    // One orbit search per member, shared by the canonical-key column and
    // every canonical-tier lookup below. The key is permutation-invariant
    // only when the search completed; an exhausted form falls back to the
    // raw constraint signature (grouping only exact duplicates), so the
    // report never claims two members equivalent on a truncated search.
    const lint::CanonicalForm canonical =
        lint::canonical_form(lint::spec_from_problem(problem));
    out.canonical_key =
        canonical.complete
            ? hex_signature(lint::spec_signature(canonical.spec))
            : hex_signature(out.signature) + "/incomplete";
    const lint::CanonicalForm* form = &canonical;
    if (classifiers_applicable(problem)) {
      if (options.classify_cycles) {
        const std::string kind =
            "cycle:s" + std::to_string(options.classifier_speedup_steps);
        if (const auto hit = cache_find(cache, kind, problem, form)) {
          if (const auto* c = hit->find("complexity");
              c != nullptr && c->is_string()) {
            out.cycle_class = c->as_string();
          }
        } else {
          const auto verdict =
              classify_on_cycles(problem, options.classifier_speedup_steps);
          out.cycle_class = to_string(verdict.complexity);
          json::Value value = json::Value::make_object();
          value.object()["complexity"] = json::Value(out.cycle_class);
          value.object()["collapse"] = json::Value(
              static_cast<std::int64_t>(verdict.zero_round_collapse_step));
          value.object()["pruned"] =
              json::Value(static_cast<std::int64_t>(verdict.pruned_labels));
          cache_put(cache, kind, problem, value, form);
        }
      }
      if (options.classify_paths) {
        const std::string kind =
            "path:s" + std::to_string(options.classifier_speedup_steps);
        if (const auto hit = cache_find(cache, kind, problem, form)) {
          if (const auto* c = hit->find("complexity");
              c != nullptr && c->is_string()) {
            out.path_class = c->as_string();
          }
        } else {
          const auto verdict =
              classify_on_paths(problem, options.classifier_speedup_steps);
          out.path_class = to_string(verdict.complexity);
          json::Value value = json::Value::make_object();
          value.object()["complexity"] = json::Value(out.path_class);
          value.object()["collapse"] = json::Value(
              static_cast<std::int64_t>(verdict.zero_round_collapse_step));
          value.object()["pruned"] =
              json::Value(static_cast<std::int64_t>(verdict.pruned_labels));
          cache_put(cache, kind, problem, value, form);
        }
      }
    }

    const EngineSummary summary =
        cached_speedup(problem, options.engine, options.cache, form);
    out.zero_round_step = summary.zero_round_step;
    out.steps_applied = summary.steps_applied;
    out.fixed_point = summary.fixed_point;
    out.budget_exhausted = summary.budget_exhausted;
    out.detected_unsolvable = summary.detected_unsolvable;
    out.preflight_dead_labels = summary.preflight_dead_labels;
    out.note = summary.message;

    if (options.check_nodes >= 2) {
      const std::string kind = "check:n" +
                               std::to_string(options.check_nodes) + ":b" +
                               std::to_string(options.check_budget);
      if (const auto hit = cache_find(cache, kind, problem, form)) {
        if (const auto* s = hit->find("solvable");
            s != nullptr && s->is_bool()) {
          out.check = s->as_bool() ? "solvable" : "unsolvable";
        }
      } else {
        const Graph graph = make_path(options.check_nodes);
        const bool solvable = brute_force_solvable(
            problem, graph, uniform_labeling(graph, 0), options.check_budget);
        out.check = solvable ? "solvable" : "unsolvable";
        json::Value value = json::Value::make_object();
        value.object()["solvable"] = json::Value(solvable);
        cache_put(cache, kind, problem, value, form);
      }
    }
  } catch (const StepBudgetExceeded& e) {
    // Budget blow-ups are per-member verdicts, not survey failures: the row
    // records the exhausted budget and the sweep continues.
    out.error = e.what();
    out.error_budget = e.budget();
    LCL_OBS_EVENT1("batch/task_budget_exceeded", "batch", "budget",
                   static_cast<std::int64_t>(e.budget()));
  } catch (const std::exception& e) {
    out.error = e.what();
  }

  if (!out.error.empty()) {
    out.landscape_class = "error";
  } else if (out.cycle_class != "n/a") {
    out.landscape_class = out.cycle_class;
  } else if (out.detected_unsolvable) {
    out.landscape_class = "unsolvable";
  } else if (out.zero_round_step >= 0) {
    out.landscape_class = "O(1)";
  } else if (out.fixed_point) {
    out.landscape_class = "fixed-point";
  } else if (out.budget_exhausted) {
    out.landscape_class = "blow-up";
  } else {
    out.landscape_class = "unresolved";
  }
  return out;
}

}  // namespace

Family exhaustive_family(const ExhaustiveFamilyOptions& options) {
  if (options.max_degree < 2) {
    throw std::invalid_argument("exhaustive_family: max_degree must be >= 2");
  }
  if (options.labels < 1 || options.labels > 26) {
    throw std::invalid_argument("exhaustive_family: labels must be in 1..26");
  }
  const auto node_candidates =
      enumerate_multisets(options.labels,
                          static_cast<std::size_t>(options.max_degree));
  const auto edge_candidates = enumerate_multisets(options.labels, 2);
  if (node_candidates.size() > 20 || edge_candidates.size() > 20) {
    throw std::invalid_argument(
        "exhaustive_family: bounds give more than 2^20 constraint subsets; "
        "shrink labels or max_degree");
  }

  std::vector<std::string> names(options.labels);
  for (std::size_t i = 0; i < options.labels; ++i) {
    names[i] = std::string(1, static_cast<char>('a' + i));
  }

  Family family;
  family.description = "exhaustive:d" + std::to_string(options.max_degree) +
                       ":l" + std::to_string(options.labels);
  const std::uint64_t node_masks = std::uint64_t{1} << node_candidates.size();
  const std::uint64_t edge_masks = std::uint64_t{1} << edge_candidates.size();
  for (std::uint64_t node_mask = 1; node_mask < node_masks; ++node_mask) {
    for (std::uint64_t edge_mask = 1; edge_mask < edge_masks; ++edge_mask) {
      if (options.max_problems != 0 &&
          family.members.size() >= options.max_problems) {
        family.description += ":capped" +
                              std::to_string(options.max_problems);
        return family;
      }
      const std::string name = "d" + std::to_string(options.max_degree) +
                               "l" + std::to_string(options.labels) + "-n" +
                               std::to_string(node_mask) + "-e" +
                               std::to_string(edge_mask);
      NodeEdgeCheckableLcl::Builder builder(name, Alphabet({"-"}),
                                            Alphabet(names),
                                            options.max_degree);
      for (std::size_t i = 0; i < node_candidates.size(); ++i) {
        if ((node_mask >> i) & 1) builder.allow_node(node_candidates[i]);
      }
      // Degrees below Delta are unconstrained: every multiset allowed. This
      // keeps the family size at 2^|N_Delta| * 2^|E| while still giving the
      // path classifier meaningful endpoint states.
      for (int degree = 1; degree < options.max_degree; ++degree) {
        for (const auto& config :
             enumerate_multisets(options.labels,
                                 static_cast<std::size_t>(degree))) {
          builder.allow_node(config);
        }
      }
      for (std::size_t i = 0; i < edge_candidates.size(); ++i) {
        if ((edge_mask >> i) & 1) {
          builder.allow_edge(edge_candidates[i][0], edge_candidates[i][1]);
        }
      }
      builder.unrestricted_inputs();
      family.members.push_back(FamilyMember{name, builder.build()});
    }
  }
  return family;
}

Family spec_dir_family(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    throw std::runtime_error("spec_dir_family: '" + dir +
                             "' is not a directory");
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  Family family;
  family.description = "specs:" + dir;
  for (const auto& file : files) {
    const auto spec = lint::load_spec(file.string());
    const auto report = lint::lint_spec(spec);
    if (!report.structurally_valid) {
      throw std::runtime_error("spec_dir_family: '" + file.string() +
                               "' has structural lint errors (run lcl_lint)");
    }
    family.members.push_back(
        FamilyMember{file.stem().string(), lint::build_spec(spec)});
  }
  return family;
}

SurveyReport run_survey(const Family& family, const SurveyOptions& options) {
  LCL_OBS_SPAN(span, "batch/survey", "batch");
  LCL_OBS_SPAN_ARG(span, "problems", family.members.size());
  SurveyReport report;
  report.family = family.description;
  report.problems = family.members.size();
  report.engine_max_steps = options.engine.max_steps;
  report.engine_degrees = options.engine.degrees;
  report.check_nodes = options.check_nodes;
  report.check_budget = options.check_budget;
  report.classify_cycles = options.classify_cycles;
  report.classify_paths = options.classify_paths;
  report.classifier_speedup_steps = options.classifier_speedup_steps;

  obs::RunContext* run = options.run;
  if (run != nullptr) {
    run->set_phase("survey");
    run->set_rows_total(family.members.size());
    if (options.cache != nullptr) {
      Cache* cache = options.cache;
      run->set_cache_stats_provider([cache]() {
        const auto stats = cache->stats();
        return std::make_pair(stats.hits, stats.misses);
      });
    }
  }

  std::vector<ProblemOutcome> outcomes(family.members.size());
  const auto work = [&](std::size_t i) {
    outcomes[i] = survey_one(family.members[i], options);
    if (run != nullptr) {
      run->add_rows_done(1);
      if (!outcomes[i].error.empty()) run->add_errors(1);
      // Gauges track row completions immediately (a scrape between
      // sampler ticks still sees fresh survey.rows_done).
      run->publish_gauges();
    }
  };

  std::size_t jobs = options.jobs;
  if (jobs == 0) {
    jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (jobs <= 1) {
    for (std::size_t i = 0; i < outcomes.size(); ++i) work(i);
  } else {
    Pool pool(Pool::Options{jobs});
    std::vector<std::future<void>> futures;
    futures.reserve(outcomes.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      futures.push_back(pool.submit([&work, i]() { work(i); }));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      try {
        futures[i].get();
      } catch (const std::exception& e) {
        // survey_one captures task errors itself; this is the last-resort
        // net (e.g. bad_alloc constructing the outcome). The slot still
        // renders deterministically.
        outcomes[i].name = family.members[i].name;
        outcomes[i].error = e.what();
        outcomes[i].landscape_class = "error";
      }
    }
    if (run != nullptr) run->record_busy_fractions(pool.busy_fractions());
  }
  if (run != nullptr) {
    run->set_phase("report");
    run->publish_gauges();
  }

  // Canonical order: the report is byte-identical for any thread count.
  std::sort(outcomes.begin(), outcomes.end(),
            [](const ProblemOutcome& a, const ProblemOutcome& b) {
              return a.key < b.key;
            });
  for (const auto& outcome : outcomes) {
    ++report.class_counts[outcome.landscape_class];
    report.class_exemplars.emplace(outcome.landscape_class, outcome.name);
    if (!outcome.error.empty()) ++report.errors;
  }
  {
    std::vector<std::string> keys;
    keys.reserve(outcomes.size());
    for (const auto& outcome : outcomes) {
      if (!outcome.canonical_key.empty()) keys.push_back(outcome.canonical_key);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    report.canonical_classes = keys.size();
  }
  report.outcomes = std::move(outcomes);
  return report;
}

json::Value SurveyReport::to_json_value() const {
  json::Value root = json::Value::make_object();
  auto& top = root.object();
  top["schema"] = json::Value(std::string("lclscape.survey.v3"));

  json::Value survey = json::Value::make_object();
  survey.object()["family"] = json::Value(family);
  survey.object()["problems"] =
      json::Value(static_cast<std::int64_t>(problems));
  survey.object()["engine_max_steps"] =
      json::Value(static_cast<std::int64_t>(engine_max_steps));
  json::Value degrees = json::Value::make_array();
  for (const int d : engine_degrees) {
    degrees.array().push_back(json::Value(static_cast<std::int64_t>(d)));
  }
  survey.object()["engine_degrees"] = std::move(degrees);
  survey.object()["check_nodes"] =
      json::Value(static_cast<std::int64_t>(check_nodes));
  survey.object()["check_budget"] =
      json::Value(static_cast<std::int64_t>(check_budget));
  survey.object()["classify_cycles"] = json::Value(classify_cycles);
  survey.object()["classify_paths"] = json::Value(classify_paths);
  survey.object()["classifier_speedup_steps"] =
      json::Value(static_cast<std::int64_t>(classifier_speedup_steps));
  survey.object()["errors"] = json::Value(static_cast<std::int64_t>(errors));
  survey.object()["canonical_classes"] =
      json::Value(static_cast<std::int64_t>(canonical_classes));
  top["survey"] = std::move(survey);

  json::Value classes = json::Value::make_object();
  for (const auto& [name, count] : class_counts) {
    json::Value entry = json::Value::make_object();
    entry.object()["count"] = json::Value(static_cast<std::int64_t>(count));
    const auto exemplar = class_exemplars.find(name);
    entry.object()["exemplar"] = json::Value(
        exemplar == class_exemplars.end() ? std::string() : exemplar->second);
    classes.object()[name] = std::move(entry);
  }
  top["classes"] = std::move(classes);

  json::Value rows = json::Value::make_array();
  for (const auto& o : outcomes) {
    rows.array().push_back(outcome_to_json_value(o));
  }
  top["problems"] = std::move(rows);
  return root;
}

json::Value outcome_to_json_value(const ProblemOutcome& o) {
  json::Value row = json::Value::make_object();
  auto& fields = row.object();
  fields["name"] = json::Value(o.name);
  fields["key"] = json::Value(o.key);
  fields["canonical_key"] = json::Value(o.canonical_key);
  fields["labels"] = json::Value(static_cast<std::int64_t>(o.labels));
  fields["node_configs"] =
      json::Value(static_cast<std::int64_t>(o.node_configs));
  fields["edge_configs"] =
      json::Value(static_cast<std::int64_t>(o.edge_configs));
  fields["cycle"] = json::Value(o.cycle_class);
  fields["path"] = json::Value(o.path_class);
  fields["class"] = json::Value(o.landscape_class);
  fields["zero_round_step"] =
      json::Value(static_cast<std::int64_t>(o.zero_round_step));
  fields["steps_applied"] =
      json::Value(static_cast<std::int64_t>(o.steps_applied));
  fields["fixed_point"] = json::Value(o.fixed_point);
  fields["budget_exhausted"] = json::Value(o.budget_exhausted);
  fields["detected_unsolvable"] = json::Value(o.detected_unsolvable);
  fields["preflight_dead_labels"] =
      json::Value(static_cast<std::int64_t>(o.preflight_dead_labels));
  fields["check"] = json::Value(o.check);
  fields["note"] = json::Value(o.note);
  fields["error"] = json::Value(o.error);
  fields["error_budget"] =
      json::Value(static_cast<std::int64_t>(o.error_budget));
  return row;
}

ProblemOutcome outcome_from_json_value(const json::Value& row) {
  if (!row.is_object()) {
    throw std::runtime_error("survey row is not a JSON object");
  }
  const auto require_string = [&row](const char* key) -> const std::string& {
    const auto* v = row.find(key);
    if (v == nullptr || !v->is_string()) {
      throw std::runtime_error(std::string("survey row is missing string "
                                           "field \"") +
                               key + "\"");
    }
    return v->as_string();
  };
  const auto read_int = [&row](const char* key, auto& out) {
    const auto* v = row.find(key);
    if (v == nullptr || !v->is_number()) {
      throw std::runtime_error(std::string("survey row is missing numeric "
                                           "field \"") +
                               key + "\"");
    }
    out = static_cast<std::remove_reference_t<decltype(out)>>(v->as_int());
  };
  const auto read_bool = [&row](const char* key, bool& out) {
    const auto* v = row.find(key);
    if (v == nullptr || !v->is_bool()) {
      throw std::runtime_error(std::string("survey row is missing boolean "
                                           "field \"") +
                               key + "\"");
    }
    out = v->as_bool();
  };
  ProblemOutcome o;
  o.name = require_string("name");
  o.key = require_string("key");
  o.canonical_key = require_string("canonical_key");
  read_int("labels", o.labels);
  read_int("node_configs", o.node_configs);
  read_int("edge_configs", o.edge_configs);
  o.cycle_class = require_string("cycle");
  o.path_class = require_string("path");
  o.landscape_class = require_string("class");
  read_int("zero_round_step", o.zero_round_step);
  read_int("steps_applied", o.steps_applied);
  read_bool("fixed_point", o.fixed_point);
  read_bool("budget_exhausted", o.budget_exhausted);
  read_bool("detected_unsolvable", o.detected_unsolvable);
  read_int("preflight_dead_labels", o.preflight_dead_labels);
  o.check = require_string("check");
  o.note = require_string("note");
  o.error = require_string("error");
  read_int("error_budget", o.error_budget);
  return o;
}

std::string SurveyReport::to_json() const {
  return json::dump(to_json_value());
}

}  // namespace lcl::batch
