#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "batch/cache.hpp"
#include "core/lcl.hpp"
#include "obs/json.hpp"
#include "obs/run_context.hpp"
#include "re/engine.hpp"

namespace lcl::batch {

/// One problem of a survey family, with the name the report refers to it by.
struct FamilyMember {
  std::string name;
  NodeEdgeCheckableLcl problem;
};

/// A problem family to sweep: exhaustive enumerations, generator corpora
/// (assembled by the caller - e.g. `tools/lcl_batch` drives the fuzz
/// generator), or a directory of spec-JSON files.
struct Family {
  std::string description;
  std::vector<FamilyMember> members;
};

/// Exhaustive enumeration of the no-input LCL problems with `labels` output
/// labels and maximum degree `max_degree`: every non-empty subset of the
/// degree-`max_degree` node configurations crossed with every non-empty
/// subset of the edge configurations. Degrees below `max_degree` (path/tree
/// endpoints and internal low-degree nodes) are unconstrained - all
/// configurations allowed - so the family is the "interior-constrained"
/// slice of the landscape; this is the family the Delta=2 exhaustive tables
/// are computed over. Enumeration order (and member naming) is canonical:
/// node subsets in mask order, edge subsets innermost.
struct ExhaustiveFamilyOptions {
  int max_degree = 2;
  std::size_t labels = 2;
  /// Stop after this many members (0 = no cap). The prefix is deterministic.
  std::size_t max_problems = 0;
};
Family exhaustive_family(const ExhaustiveFamilyOptions& options);

/// Loads every `*.json` problem spec under `dir` (sorted by filename; both
/// bare specs and fuzz-case wrappers are accepted). Throws
/// `std::runtime_error` naming the file on I/O or validation failure.
Family spec_dir_family(const std::string& dir);

/// Knobs of one survey run. Everything that influences a *verdict* is part
/// of the cache key derivation; `jobs` and `cache` only influence how fast
/// the same report is produced.
struct SurveyOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = run inline (no pool).
  std::size_t jobs = 1;
  /// Speedup-synthesis settings (step budget, enumeration limits, degree
  /// set - leave `degrees` empty for the forest setting, `{2}` for cycles).
  SpeedupEngine::Options engine;
  /// Classify on cycles / paths (only applies to members without inputs and
  /// with max degree >= 2; others record "n/a").
  bool classify_cycles = true;
  bool classify_paths = true;
  int classifier_speedup_steps = 2;
  /// When > 0: cross-check solvability on the path with this many nodes via
  /// the brute-force reference (inputs all-0). A `StepBudgetExceeded` from
  /// an expensive member fails only that member's report row.
  std::size_t check_nodes = 0;
  std::uint64_t check_budget = 250'000;
  /// Shared result cache; nullptr = compute everything.
  Cache* cache = nullptr;
  /// Optional progress sink: rows done/total, errors, cache hit ratio and
  /// the pool's per-worker busy fractions are reported here as the sweep
  /// runs (the caller owns it and typically hands it to an obs::Exporter
  /// / ResourceSampler). Never influences a verdict or the report bytes.
  obs::RunContext* run = nullptr;
};

/// Everything the survey learned about one member. `key` is the canonical
/// sort key (constraint signature + name), so report order is independent
/// of the thread count.
struct ProblemOutcome {
  std::string name;
  std::string key;
  std::uint64_t signature = 0;
  /// Hex of `lint::canonical_signature` - equal for permutation-equivalent
  /// members (that is how `SurveyReport::canonical_classes` counts). When
  /// the orbit search exhausts its budget the key falls back to the raw
  /// constraint signature plus "/incomplete" (grouping only exact
  /// duplicates - a truncated search is not permutation-invariant).
  /// Computed directly per member, so the column is identical for
  /// cold/warm caches and any `jobs` value.
  std::string canonical_key;
  std::size_t labels = 0;
  std::size_t node_configs = 0;
  std::size_t edge_configs = 0;
  /// `to_string(CycleComplexity)` verdicts; "n/a" when inapplicable.
  std::string cycle_class = "n/a";
  std::string path_class = "n/a";
  /// Speedup-synthesis certificate: step at which `f^k(pi)` became 0-round
  /// solvable (the synthesized algorithm's radius), or -1.
  int zero_round_step = -1;
  int steps_applied = 0;
  bool fixed_point = false;
  bool budget_exhausted = false;
  bool detected_unsolvable = false;
  std::size_t preflight_dead_labels = 0;
  std::string note;  // engine blow-up / unsolvability message
  /// Brute-force cross-check verdict ("solvable" / "unsolvable" / "n/a").
  std::string check = "n/a";
  /// Task-local failure: the task's exception message; empty = clean. A
  /// `StepBudgetExceeded` additionally records its budget.
  std::string error;
  std::uint64_t error_budget = 0;
  /// The headline landscape class this member is counted under.
  std::string landscape_class;
};

/// The deterministic landscape report: member outcomes sorted by canonical
/// key, complexity-class counts, and one exemplar per class (the first
/// member in key order). Contains no timings, thread counts, or cache
/// statistics, so its JSON rendering is byte-identical for any `jobs`
/// value and for cold vs. warm caches. The JSON document carries
/// `"schema": "lclscape.survey.v3"`; v2 = v1 plus the schema marker and
/// the optional CLI-attached "telemetry" block (`lcl_batch` adds that one
/// outside this struct precisely to keep the library rendering
/// deterministic); v3 = v2 plus the per-row `canonical_key` column and the
/// `canonical_classes` count.
struct SurveyReport {
  std::string family;
  std::size_t problems = 0;
  /// Echo of the verdict-relevant options.
  int engine_max_steps = 0;
  std::vector<int> engine_degrees;
  std::size_t check_nodes = 0;
  std::uint64_t check_budget = 0;
  /// Classifier echo (verdict-relevant too: `lcl_batch --classify=off`
  /// records "n/a" columns and the landscape class falls through to the
  /// engine verdicts). The shard merge refuses to join reports whose
  /// echoes disagree.
  bool classify_cycles = true;
  bool classify_paths = true;
  int classifier_speedup_steps = 0;
  std::vector<ProblemOutcome> outcomes;
  std::map<std::string, std::size_t> class_counts;
  std::map<std::string, std::string> class_exemplars;
  /// Number of members whose task failed (error rows).
  std::size_t errors = 0;
  /// Distinct `canonical_key` values among the outcomes - the number of
  /// label-permutation equivalence classes in the family, and hence the
  /// number of engine runs a `--cache-key=canonical` sweep pays for
  /// (permutation-equivalent members resolve as confirmed canonical-tier
  /// hits).
  std::size_t canonical_classes = 0;

  obs::json::Value to_json_value() const;
  std::string to_json() const;
};

/// Sweeps the family through lint -> classify -> speedup-synthesis on
/// `options.jobs` workers, sharing `options.cache` across tasks. Per-member
/// failures (budget blow-ups, pathological specs) are recorded in that
/// member's row; they never abort the survey or the pool.
SurveyReport run_survey(const Family& family, const SurveyOptions& options);

/// One report row as JSON - exactly the rendering `SurveyReport::to_json`
/// uses - and its lossless inverse. The round-trip is what lets the shard
/// merge (`batch::merge_shard_reports`) reassemble a byte-identical
/// single-pool report from independently produced shard reports.
/// `outcome_from_json_value` throws `std::runtime_error` on a row missing
/// required fields.
obs::json::Value outcome_to_json_value(const ProblemOutcome& outcome);
ProblemOutcome outcome_from_json_value(const obs::json::Value& row);

}  // namespace lcl::batch
