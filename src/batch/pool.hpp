#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace lcl::batch {

/// Fixed-size worker-thread pool behind an MPMC task queue - the execution
/// substrate of the landscape-survey runtime. Tasks are arbitrary callables;
/// `submit` returns a `std::future` that carries the task's value *or* the
/// exception it threw, so a failing task never takes down a worker (let
/// alone the pool) - the caller decides, per task, what a failure means.
///
/// Cancellation is cooperative: `request_cancel()` drops every task still
/// queued (their futures report `std::future_errc::broken_promise`) and
/// raises a flag that long-running tasks are expected to poll via
/// `cancel_requested()`; already-running tasks are never interrupted.
///
/// Observability: each executed task runs under a `batch/task` span, and the
/// pool keeps the `batch.queue_depth` / `batch.active_workers` gauges and
/// the `batch.tasks` / `batch.tasks_dropped` counters current (obs is
/// runtime-gated as everywhere else; an idle switch costs one atomic load).
///
/// Destruction waits for all submitted-and-not-cancelled tasks to finish.
class Pool {
 public:
  struct Options {
    /// Worker count; 0 = `std::thread::hardware_concurrency()` (min 1).
    std::size_t threads = 0;
  };

  Pool();  // hardware-concurrency workers
  explicit Pool(Options options);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Enqueues `fn` and returns the future for its result. Throws
  /// `std::runtime_error` if called during/after destruction.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only and std::function requires copyable
    // callables, hence the shared_ptr hop.
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Blocks until the queue is empty and every worker is idle. Tasks
  /// submitted while waiting extend the wait.
  void wait_idle();

  /// Drops all queued tasks (their futures break) and raises the
  /// cooperative-cancellation flag; running tasks keep running.
  void request_cancel();
  bool cancel_requested() const noexcept {
    return cancel_.load(std::memory_order_acquire);
  }

  std::size_t thread_count() const noexcept { return workers_.size(); }
  std::uint64_t tasks_completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t tasks_dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t queue_depth() const;

  /// Per-worker utilization since construction. busy_us counts time spent
  /// inside tasks; busy_us / pool wall time is the worker's busy fraction,
  /// and the fractions summed give the pool's effective parallelism -
  /// the honest denominator for speedup claims on oversubscribed boxes.
  struct WorkerStats {
    std::uint64_t busy_us = 0;
    std::uint64_t tasks = 0;
  };
  std::vector<WorkerStats> worker_stats() const;
  /// Microseconds since the pool was constructed.
  std::uint64_t wall_us() const;
  /// busy fraction per worker in [0,1] over the pool's lifetime so far.
  std::vector<double> busy_fractions() const;

 private:
  void enqueue(std::function<void()> run);
  void worker_loop(std::size_t worker_index);

  struct PerWorker {
    std::atomic<std::uint64_t> busy_us{0};
    std::atomic<std::uint64_t> tasks{0};
  };

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;  // tasks currently executing (guarded by mutex_)
  bool stopping_ = false;   // destructor has begun (guarded by mutex_)
  std::atomic<bool> cancel_{false};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  /// Sized to the worker count before any worker starts; workers index it
  /// without synchronization.
  std::unique_ptr<PerWorker[]> per_worker_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lcl::batch
