#include "batch/pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace lcl::batch {

Pool::Pool() : Pool(Options{}) {}

Pool::Pool(Options options) {
  std::size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

Pool::~Pool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Drain-then-stop: everything still queued (and not cancelled) runs.
    idle_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void Pool::enqueue(std::function<void()> run) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("batch::Pool: submit after shutdown began");
    }
    queue_.push_back(std::move(run));
    LCL_OBS_GAUGE_SET("batch.queue_depth", queue_.size());
  }
  work_available_.notify_one();
}

void Pool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

void Pool::request_cancel() {
  cancel_.store(true, std::memory_order_release);
  std::deque<std::function<void()>> abandoned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    abandoned.swap(queue_);
    LCL_OBS_GAUGE_SET("batch.queue_depth", 0);
  }
  // Destroying an unrun packaged_task breaks its promise: every dropped
  // task's future reports broken_promise rather than hanging. Destruction
  // happens outside the lock - task destructors can be arbitrary code.
  dropped_.fetch_add(abandoned.size(), std::memory_order_relaxed);
  LCL_OBS_COUNTER_ADD("batch.tasks_dropped", abandoned.size());
  abandoned.clear();
  idle_.notify_all();
}

std::size_t Pool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      LCL_OBS_GAUGE_SET("batch.queue_depth", queue_.size());
      LCL_OBS_GAUGE_SET("batch.active_workers", active_);
    }
    {
      // The packaged_task inside captures any exception into its future;
      // nothing propagates into the worker loop.
      LCL_OBS_SPAN(task_span, "batch/task", "batch");
      task();
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    LCL_OBS_COUNTER_ADD("batch.tasks", 1);
    bool idle_now = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      LCL_OBS_GAUGE_SET("batch.active_workers", active_);
      idle_now = queue_.empty() && active_ == 0;
    }
    if (idle_now) idle_.notify_all();
  }
}

}  // namespace lcl::batch
