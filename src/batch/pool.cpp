#include "batch/pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace lcl::batch {

Pool::Pool() : Pool(Options{}) {}

Pool::Pool(Options options) : start_(std::chrono::steady_clock::now()) {
  std::size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  per_worker_ = std::make_unique<PerWorker[]>(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i]() { worker_loop(i); });
  }
}

Pool::~Pool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Drain-then-stop: everything still queued (and not cancelled) runs.
    idle_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void Pool::enqueue(std::function<void()> run) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("batch::Pool: submit after shutdown began");
    }
    queue_.push_back(std::move(run));
    LCL_OBS_GAUGE_SET("batch.queue_depth", queue_.size());
  }
  work_available_.notify_one();
}

void Pool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

void Pool::request_cancel() {
  cancel_.store(true, std::memory_order_release);
  std::deque<std::function<void()>> abandoned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    abandoned.swap(queue_);
    LCL_OBS_GAUGE_SET("batch.queue_depth", 0);
  }
  // Destroying an unrun packaged_task breaks its promise: every dropped
  // task's future reports broken_promise rather than hanging. Destruction
  // happens outside the lock - task destructors can be arbitrary code.
  dropped_.fetch_add(abandoned.size(), std::memory_order_relaxed);
  LCL_OBS_COUNTER_ADD("batch.tasks_dropped", abandoned.size());
  abandoned.clear();
  idle_.notify_all();
}

std::size_t Pool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::vector<Pool::WorkerStats> Pool::worker_stats() const {
  std::vector<WorkerStats> stats(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    stats[i].busy_us = per_worker_[i].busy_us.load(std::memory_order_relaxed);
    stats[i].tasks = per_worker_[i].tasks.load(std::memory_order_relaxed);
  }
  return stats;
}

std::uint64_t Pool::wall_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

std::vector<double> Pool::busy_fractions() const {
  const std::uint64_t wall = std::max<std::uint64_t>(1, wall_us());
  std::vector<double> fractions(workers_.size(), 0.0);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    fractions[i] =
        static_cast<double>(
            per_worker_[i].busy_us.load(std::memory_order_relaxed)) /
        static_cast<double>(wall);
  }
  return fractions;
}

void Pool::worker_loop(std::size_t worker_index) {
  PerWorker& mine = per_worker_[worker_index];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      LCL_OBS_GAUGE_SET("batch.queue_depth", queue_.size());
      LCL_OBS_GAUGE_SET("batch.active_workers", active_);
    }
    const auto task_start = std::chrono::steady_clock::now();
    {
      // The packaged_task inside captures any exception into its future;
      // nothing propagates into the worker loop.
      LCL_OBS_SPAN(task_span, "batch/task", "batch");
      task();
    }
    const auto task_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - task_start)
            .count();
    mine.busy_us.fetch_add(static_cast<std::uint64_t>(task_us),
                           std::memory_order_relaxed);
    mine.tasks.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    LCL_OBS_COUNTER_ADD("batch.tasks", 1);
    LCL_OBS_HISTOGRAM_RECORD("batch.task_us", task_us);
    bool idle_now = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      LCL_OBS_GAUGE_SET("batch.active_workers", active_);
      idle_now = queue_.empty() && active_ == 0;
    }
    if (idle_now) idle_.notify_all();
  }
}

}  // namespace lcl::batch
