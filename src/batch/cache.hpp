#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/lcl.hpp"
#include "lint/canonical.hpp"
#include "obs/json.hpp"

namespace lcl::batch {

/// Order-independent structural hash of a problem's constraint system -
/// the content address of the result cache. Hashes exactly what
/// `same_constraints` compares (alphabet sizes, max degree, node/edge
/// configuration sets, `g` sets, all label-index by label-index) and
/// nothing it ignores (problem and label *names*), so
/// `same_constraints(a, b)` implies equal signatures. The converse does not
/// hold - a 64-bit hash can collide - which is why every cache hit is
/// confirmed exactly before being served.
std::uint64_t constraint_signature(const NodeEdgeCheckableLcl& problem);

/// Counters describing one cache's life so far (monotone; `snapshot`-style
/// copy, safe to read while the cache is in use).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Lookups/inserts that met a same-signature entry whose constraints did
  /// NOT match exactly - the collisions the confirmation step absorbed.
  std::uint64_t collisions = 0;
  /// Entries replayed from the on-disk tier at open.
  std::uint64_t disk_loaded = 0;
  /// Trailing/torn lines skipped while replaying (a killed writer leaves at
  /// most one).
  std::uint64_t disk_skipped = 0;
  /// Canonical-tier lookups served through a nontrivial relabeling
  /// (`find_canonical` only; exact-tier hits count under `hits`).
  std::uint64_t canonical_hits = 0;
  /// Canonical-signature matches whose permuted constraints did NOT match
  /// exactly - collisions the canonical confirmation step absorbed.
  std::uint64_t canonical_collisions = 0;
};

/// Content-addressed result cache for landscape surveys: maps
/// `(kind, problem constraints)` to a JSON value, where `kind` names what
/// was computed ("step:...", "engine:...", "cycle:...", ...). Problems are
/// addressed by `constraint_signature`, and a hit is only served after the
/// stored problem is confirmed via `same_constraints` - a signature
/// collision therefore costs one extra comparison, never a wrong answer.
///
/// Two tiers:
///  - in-memory LRU (bounded by `Options::capacity`; eviction drops the
///    entry from the lookup index);
///  - optional append-only JSONL file (`Options::disk_path`) in the
///    fuzz/lint spec-JSON dialect: one self-contained record per line,
///    `{"kind":.., "sig":.., "problem": <spec>, "value": ..}`. Every insert
///    is appended and flushed, so a killed survey loses at most a torn
///    trailing line; reopening with `load_existing` replays the file (the
///    `--resume` path). Signatures are recomputed from the stored problem
///    on load, so the file survives signature-function changes.
///
/// All operations are thread-safe; one cache is shared across pool workers.
class Cache {
 public:
  using SignatureFn = std::function<std::uint64_t(const NodeEdgeCheckableLcl&)>;

  struct Options {
    /// In-memory entries kept; least-recently-used beyond that are evicted.
    std::size_t capacity = 1 << 16;
    /// JSONL on-disk tier; empty = in-memory only.
    std::string disk_path;
    /// Replay an existing disk file at open (true = resume/warm start);
    /// false truncates it (cold start).
    bool load_existing = true;
    /// Override the content hash - tests inject deliberately weak
    /// signatures to exercise the collision path. Default:
    /// `constraint_signature`.
    SignatureFn signature;
    /// Opt-in second key tier (`lcl_batch --cache-key=canonical`): entries
    /// are additionally indexed by `lint::canonical_signature`, and
    /// `find_canonical` can serve a stored verdict for any
    /// permutation-equivalent problem, returning the label permutation as
    /// evidence. Costs one orbit search per insert/lookup; every canonical
    /// hit is confirmed exactly (permute + `same_constraints`) before being
    /// served, mirroring the raw tier's collision safety.
    bool canonical_tier = false;
    /// When non-empty, a fresh disk tier starts with a provenance meta line
    /// `{"meta":"lclscape.cachetier.v1","git_sha":...}` recording the
    /// producing engine version. Resuming a tier written by a different
    /// engine silently mixes verdict generations; the CLI's `--resume`
    /// compares `loaded_git_sha()` against the running binary and warns (or
    /// errors under `--resume=strict`). Old readers skip the meta line as an
    /// unrecognized record; tiers without one load with no provenance.
    std::string meta_git_sha;
  };

  /// A `find_canonical` hit: the stored value plus the evidence needed to
  /// replay it for the query problem.
  struct CanonicalHit {
    obs::json::Value value;
    /// Stored-entry output label -> query output label (total permutation;
    /// identity for exact-tier hits). Verdicts that mention labels replay
    /// through this map.
    std::vector<Label> old_to_new;
    /// True when served through the canonical tier (the stored problem is a
    /// permuted copy, not an exact match).
    bool permuted = false;
  };

  /// Opens the cache (and disk tier, when configured). Throws
  /// `std::runtime_error` if the disk file cannot be opened for appending.
  Cache();  // in-memory only, default capacity
  explicit Cache(Options options);
  ~Cache();

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Confirmed lookup: returns the stored value only when an entry of this
  /// `kind` holds a problem with exactly the same constraints.
  std::optional<obs::json::Value> find(std::string_view kind,
                                       const NodeEdgeCheckableLcl& problem);

  /// Two-tier confirmed lookup: the exact tier first (identity evidence);
  /// on miss, when `Options::canonical_tier` is on, any stored
  /// permutation-equivalent problem of this `kind` (confirmed by permuting
  /// its constraints through the evidence map and comparing exactly).
  /// Callers that already computed the query's canonical form pass it via
  /// `form` to skip the second orbit search; `form` must be complete - an
  /// incomplete form is ignored and only the exact tier is probed (an
  /// exhausted branch-and-bound is no longer permutation-invariant).
  /// With the tier off this is `find` with identity evidence.
  std::optional<CanonicalHit> find_canonical(
      std::string_view kind, const NodeEdgeCheckableLcl& problem,
      const lint::CanonicalForm* form = nullptr);

  /// Inserts (and appends to disk). A duplicate of an existing confirmed
  /// entry is a no-op, so re-running a survey over a warm cache does not
  /// grow the file. `form`, when provided, is the problem's canonical form
  /// (saves the orbit search when the canonical tier is on; ignored
  /// otherwise). `index_canonical = false` keeps the entry out of the
  /// canonical index even when the tier is on - for kinds whose payloads
  /// are NOT label-invariant (the survey's "step:" records embed a derived
  /// spec); such entries are never probed canonically, so skipping the
  /// orbit search at insert saves its cost.
  void insert(std::string_view kind, const NodeEdgeCheckableLcl& problem,
              const obs::json::Value& value,
              const lint::CanonicalForm* form = nullptr,
              bool index_canonical = true);

  CacheStats stats() const;
  std::size_t size() const;

  /// The git SHA recorded in the resumed disk tier's provenance meta line;
  /// `std::nullopt` when there is no disk tier, the tier was fresh, or it
  /// predates the meta line.
  std::optional<std::string> loaded_git_sha() const;

 private:
  struct Entry {
    std::string kind;
    std::uint64_t signature = 0;
    NodeEdgeCheckableLcl problem;  // kept built for exact confirmation
    obs::json::Value value;
    /// False for kinds whose payloads are not label-invariant (persisted to
    /// disk as "canon" so replay skips their orbit search too).
    bool canonical_eligible = true;
    /// Canonical-tier key material, filled only when the tier is on, the
    /// entry is eligible, and its canonical form completed within budget:
    /// the permutation-invariant signature and the entry's own
    /// label -> canonical-position map (composed with the query's inverse
    /// map to produce stored -> query evidence).
    bool has_canonical = false;
    std::uint64_t canonical_sig = 0;
    std::vector<Label> canonical_old_to_new;
  };
  struct IndexKey {
    std::string kind;
    std::uint64_t signature = 0;
    bool operator==(const IndexKey&) const = default;
  };
  struct IndexKeyHash {
    std::size_t operator()(const IndexKey& k) const noexcept;
  };

  void load_disk_locked();
  void append_disk_locked(const Entry& entry);
  /// True when an entry of this kind/signature holds exactly these
  /// constraints already. Bumps `collisions` per same-signature mismatch.
  bool contains_confirmed_locked(const Entry& entry);
  /// Unconditional insert into the in-memory tier, evicting beyond
  /// capacity.
  void insert_memory_locked(Entry entry);
  /// Fills the entry's canonical key fields when the tier is on (reusing
  /// `form` when the caller supplied one).
  void fill_canonical_fields(Entry& entry, const lint::CanonicalForm* form);
  /// Exact-tier probe without touching hit/miss counters; used by both
  /// `find` and `find_canonical`.
  std::optional<obs::json::Value> find_exact_locked(
      const std::string& kind, const NodeEdgeCheckableLcl& problem,
      std::uint64_t sig);

  mutable std::mutex mutex_;
  Options options_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<IndexKey, std::vector<std::list<Entry>::iterator>,
                     IndexKeyHash>
      index_;
  /// Canonical tier: (kind, canonical signature) -> entries; populated only
  /// when `Options::canonical_tier` is on.
  std::unordered_map<IndexKey, std::vector<std::list<Entry>::iterator>,
                     IndexKeyHash>
      canonical_index_;
  std::unique_ptr<std::ofstream> disk_;
  /// True when the resumed file ends mid-line (a torn append): the next
  /// append starts with a newline so it lands on its own line instead of
  /// concatenating onto the torn one.
  bool disk_needs_newline_ = false;
  /// True when `load_disk_locked` saw any line at all (even torn) - a
  /// non-empty resumed file never gets a second meta line appended.
  bool disk_had_content_ = false;
  std::optional<std::string> loaded_git_sha_;
  CacheStats stats_;
};

}  // namespace lcl::batch
