#include "batch/shard.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "lint/canonical.hpp"

namespace lcl::batch {

namespace json = lcl::obs::json;

namespace {

constexpr const char* kManifestSchema = "lclscape.shards.v1";
constexpr const char* kSurveySchema = "lclscape.survey.v3";

const json::Value& require_member(const json::Value& object,
                                  const char* context, const char* key) {
  const auto* v = object.find(key);
  if (v == nullptr) {
    throw std::runtime_error(std::string(context) + " is missing \"" + key +
                             "\"");
  }
  return *v;
}

std::size_t require_size(const json::Value& object, const char* context,
                         const char* key) {
  const auto& v = require_member(object, context, key);
  if (!v.is_number() || v.as_int() < 0) {
    throw std::runtime_error(std::string(context) + " field \"" + key +
                             "\" is not a non-negative integer");
  }
  return static_cast<std::size_t>(v.as_int());
}

const std::string& require_string(const json::Value& object,
                                  const char* context, const char* key) {
  const auto& v = require_member(object, context, key);
  if (!v.is_string()) {
    throw std::runtime_error(std::string(context) + " field \"" + key +
                             "\" is not a string");
  }
  return v.as_string();
}

}  // namespace

std::uint64_t shard_key(const NodeEdgeCheckableLcl& problem) {
  // Same key the survey's canonical_key column is derived from: the
  // permutation-invariant signature when the orbit search completes, the
  // raw constraint signature otherwise. Keys - and therefore shard
  // assignments - never depend on jobs, enumeration order, or label names.
  const lint::CanonicalForm form = lint::canonical_form(problem);
  if (form.complete) return lint::spec_signature(form.spec);
  return constraint_signature(problem);
}

std::size_t shard_index(std::uint64_t key, std::size_t shard_count) {
  if (shard_count == 0) {
    throw std::invalid_argument("shard_index: shard_count must be >= 1");
  }
  // splitmix64 finalizer: a fixed bijection, so near-identical signatures
  // still spread uniformly over the shards.
  std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<std::size_t>(z % shard_count);
}

ShardPlan plan_shard(const Family& family, ShardRef shard,
                     const std::string& cache_tier,
                     const std::string& git_sha) {
  if (shard.count == 0) {
    throw std::invalid_argument("plan_shard: shard count must be >= 1");
  }
  if (shard.index >= shard.count) {
    std::ostringstream msg;
    msg << "plan_shard: shard index " << shard.index
        << " out of range for count " << shard.count;
    throw std::invalid_argument(msg.str());
  }
  ShardPlan plan;
  plan.members.description = family.description;
  plan.manifest.family = family.description;
  plan.manifest.shard_index = shard.index;
  plan.manifest.shard_count = shard.count;
  plan.manifest.members_total = family.members.size();
  plan.manifest.cache_tier = cache_tier;
  plan.manifest.git_sha = git_sha;
  for (const auto& member : family.members) {
    if (shard_index(shard_key(member.problem), shard.count) != shard.index) {
      continue;
    }
    plan.members.members.push_back(member);
    plan.manifest.members.push_back(member.name);
  }
  return plan;
}

json::Value ShardManifest::to_json_value() const {
  json::Value root = json::Value::make_object();
  auto& top = root.object();
  top["schema"] = json::Value(std::string(kManifestSchema));
  top["family"] = json::Value(family);
  json::Value shard = json::Value::make_object();
  shard.object()["index"] =
      json::Value(static_cast<std::int64_t>(shard_index));
  shard.object()["count"] =
      json::Value(static_cast<std::int64_t>(shard_count));
  top["shard"] = std::move(shard);
  top["members_total"] =
      json::Value(static_cast<std::int64_t>(members_total));
  json::Value names = json::Value::make_array();
  for (const auto& name : members) {
    names.array().push_back(json::Value(name));
  }
  top["members"] = std::move(names);
  top["cache_tier"] = json::Value(cache_tier);
  top["git_sha"] = json::Value(git_sha);
  return root;
}

std::string ShardManifest::to_json() const {
  return json::dump(to_json_value()) + "\n";
}

ShardManifest ShardManifest::from_json_value(const json::Value& value) {
  if (!value.is_object()) {
    throw std::runtime_error("shard manifest is not a JSON object");
  }
  const std::string& schema = require_string(value, "shard manifest",
                                             "schema");
  if (schema != kManifestSchema) {
    throw std::runtime_error("shard manifest has schema \"" + schema +
                             "\", expected \"" + kManifestSchema + "\"");
  }
  ShardManifest manifest;
  manifest.family = require_string(value, "shard manifest", "family");
  const auto& shard = require_member(value, "shard manifest", "shard");
  if (!shard.is_object()) {
    throw std::runtime_error("shard manifest \"shard\" is not an object");
  }
  manifest.shard_index = require_size(shard, "shard manifest shard", "index");
  manifest.shard_count = require_size(shard, "shard manifest shard", "count");
  if (manifest.shard_count == 0 ||
      manifest.shard_index >= manifest.shard_count) {
    throw std::runtime_error("shard manifest has inconsistent shard "
                             "index/count");
  }
  manifest.members_total =
      require_size(value, "shard manifest", "members_total");
  const auto& names = require_member(value, "shard manifest", "members");
  if (!names.is_array()) {
    throw std::runtime_error("shard manifest \"members\" is not an array");
  }
  for (const auto& name : names.as_array()) {
    if (!name.is_string()) {
      throw std::runtime_error("shard manifest \"members\" entry is not a "
                               "string");
    }
    manifest.members.push_back(name.as_string());
  }
  manifest.cache_tier = require_string(value, "shard manifest", "cache_tier");
  manifest.git_sha = require_string(value, "shard manifest", "git_sha");
  return manifest;
}

MergeResult merge_shard_reports(const std::vector<json::Value>& docs) {
  if (docs.empty()) {
    throw std::runtime_error("merge: no shard reports given");
  }

  struct ShardDoc {
    ShardManifest manifest;
    std::vector<ProblemOutcome> outcomes;
  };
  std::vector<ShardDoc> shards;
  shards.reserve(docs.size());

  SurveyReport merged;
  bool first = true;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    const std::string context = "shard report #" + std::to_string(i);
    const auto& doc = docs[i];
    if (!doc.is_object()) {
      throw std::runtime_error(context + " is not a JSON object");
    }
    const std::string& schema = require_string(doc, context.c_str(),
                                               "schema");
    if (schema != kSurveySchema) {
      throw std::runtime_error(context + " has schema \"" + schema +
                               "\", expected \"" + kSurveySchema + "\"");
    }
    const auto& survey = require_member(doc, context.c_str(), "survey");
    if (!survey.is_object()) {
      throw std::runtime_error(context + " \"survey\" is not an object");
    }
    ShardDoc shard;
    shard.manifest = ShardManifest::from_json_value(
        require_member(doc, context.c_str(), "shard"));

    // Verdict-relevant option echoes must agree across the shard set: a
    // report produced with a different engine budget or classifier setting
    // is not a shard of the same survey.
    SurveyReport echo;
    echo.family = require_string(survey, context.c_str(), "family");
    echo.engine_max_steps = static_cast<int>(
        require_size(survey, context.c_str(), "engine_max_steps"));
    const auto& degrees =
        require_member(survey, context.c_str(), "engine_degrees");
    if (!degrees.is_array()) {
      throw std::runtime_error(context + " \"engine_degrees\" is not an "
                               "array");
    }
    for (const auto& d : degrees.as_array()) {
      if (!d.is_number()) {
        throw std::runtime_error(context + " \"engine_degrees\" entry is "
                                 "not a number");
      }
      echo.engine_degrees.push_back(static_cast<int>(d.as_int()));
    }
    echo.check_nodes = require_size(survey, context.c_str(), "check_nodes");
    echo.check_budget = require_size(survey, context.c_str(), "check_budget");
    const auto read_echo_bool = [&survey, &context](const char* key) {
      const auto& v = require_member(survey, context.c_str(), key);
      if (!v.is_bool()) {
        throw std::runtime_error(context + " field \"" + key +
                                 "\" is not a boolean");
      }
      return v.as_bool();
    };
    echo.classify_cycles = read_echo_bool("classify_cycles");
    echo.classify_paths = read_echo_bool("classify_paths");
    echo.classifier_speedup_steps = static_cast<int>(
        require_size(survey, context.c_str(), "classifier_speedup_steps"));

    if (first) {
      merged = std::move(echo);
      first = false;
    } else if (echo.family != merged.family) {
      throw MergeConflictError("merge conflict: " + context +
                               " surveys family \"" + echo.family +
                               "\" but shard report #0 surveys \"" +
                               merged.family + "\"");
    } else if (echo.engine_max_steps != merged.engine_max_steps ||
               echo.engine_degrees != merged.engine_degrees ||
               echo.check_nodes != merged.check_nodes ||
               echo.check_budget != merged.check_budget ||
               echo.classify_cycles != merged.classify_cycles ||
               echo.classify_paths != merged.classify_paths ||
               echo.classifier_speedup_steps !=
                   merged.classifier_speedup_steps) {
      throw MergeConflictError(
          "merge conflict: " + context +
          " was produced with different verdict-relevant options "
          "(engine/check/classify echoes disagree with shard report #0)");
    }

    const auto& rows = require_member(doc, context.c_str(), "problems");
    if (!rows.is_array()) {
      throw std::runtime_error(context + " \"problems\" is not an array");
    }
    for (const auto& row : rows.as_array()) {
      shard.outcomes.push_back(outcome_from_json_value(row));
    }
    shards.push_back(std::move(shard));
  }

  // The shard set must be exactly {0..count-1}, one report each, all
  // agreeing on the family size.
  const std::size_t count = shards.front().manifest.shard_count;
  const std::size_t members_total = shards.front().manifest.members_total;
  if (shards.size() != count) {
    std::ostringstream msg;
    msg << "merge conflict: manifests declare " << count << " shards but "
        << shards.size() << " reports were given";
    throw MergeConflictError(msg.str());
  }
  std::set<std::size_t> seen_indices;
  for (const auto& shard : shards) {
    if (shard.manifest.shard_count != count) {
      throw MergeConflictError("merge conflict: shard manifests disagree on "
                               "the shard count");
    }
    if (shard.manifest.members_total != members_total) {
      throw MergeConflictError("merge conflict: shard manifests disagree on "
                               "members_total");
    }
    if (shard.manifest.family != merged.family) {
      throw MergeConflictError("merge conflict: shard manifest for shard " +
                               std::to_string(shard.manifest.shard_index) +
                               " names a different family than its report");
    }
    if (!seen_indices.insert(shard.manifest.shard_index).second) {
      throw MergeConflictError(
          "merge conflict: duplicate shard index " +
          std::to_string(shard.manifest.shard_index) + " of " +
          std::to_string(count));
    }
    // A shard report must cover exactly the members its manifest claims -
    // anything else is a truncated or over-full shard run.
    std::set<std::string> manifest_names(shard.manifest.members.begin(),
                                         shard.manifest.members.end());
    std::set<std::string> row_names;
    for (const auto& outcome : shard.outcomes) {
      row_names.insert(outcome.name);
    }
    if (manifest_names != row_names) {
      std::ostringstream msg;
      msg << "merge conflict: shard " << shard.manifest.shard_index << "/"
          << count << " report covers " << row_names.size()
          << " members but its manifest lists " << manifest_names.size();
      for (const auto& name : manifest_names) {
        if (row_names.count(name) == 0) {
          msg << "; missing row for \"" << name << "\"";
          break;
        }
      }
      for (const auto& name : row_names) {
        if (manifest_names.count(name) == 0) {
          msg << "; unexpected row for \"" << name << "\"";
          break;
        }
      }
      throw MergeConflictError(msg.str());
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (seen_indices.count(i) == 0) {
      throw MergeConflictError("merge conflict: missing shard " +
                               std::to_string(i) + " of " +
                               std::to_string(count));
    }
  }

  // Join rows on the canonical sort key. Byte-identical duplicates between
  // shards collapse; any field disagreement on a shared key is a verdict
  // conflict and refuses the merge.
  std::map<std::string, ProblemOutcome> by_key;
  MergeResult result;
  for (const auto& shard : shards) {
    for (const auto& outcome : shard.outcomes) {
      auto [it, inserted] = by_key.emplace(outcome.key, outcome);
      if (inserted) continue;
      const std::string existing = json::dump(outcome_to_json_value(it->second));
      const std::string incoming = json::dump(outcome_to_json_value(outcome));
      if (existing == incoming) {
        ++result.duplicates;
        continue;
      }
      throw MergeConflictError(
          "merge conflict: shards disagree on \"" + outcome.key +
          "\": class \"" + it->second.landscape_class + "\" vs \"" +
          outcome.landscape_class + "\" (row fields differ)");
    }
  }
  if (by_key.size() != members_total) {
    std::ostringstream msg;
    msg << "merge conflict: shard reports cover " << by_key.size()
        << " distinct members but the manifests declare " << members_total;
    throw MergeConflictError(msg.str());
  }

  // Rebuild the aggregate columns exactly like run_survey does, then the
  // rendered report is byte-identical to a single-pool run.
  merged.problems = members_total;
  merged.outcomes.reserve(by_key.size());
  for (auto& [key, outcome] : by_key) {
    merged.outcomes.push_back(std::move(outcome));
  }
  for (const auto& outcome : merged.outcomes) {
    ++merged.class_counts[outcome.landscape_class];
    merged.class_exemplars.emplace(outcome.landscape_class, outcome.name);
    if (!outcome.error.empty()) ++merged.errors;
  }
  {
    std::vector<std::string> keys;
    keys.reserve(merged.outcomes.size());
    for (const auto& outcome : merged.outcomes) {
      if (!outcome.canonical_key.empty()) keys.push_back(outcome.canonical_key);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    merged.canonical_classes = keys.size();
  }

  result.report = std::move(merged);
  result.manifests.reserve(shards.size());
  for (auto& shard : shards) {
    result.manifests.push_back(std::move(shard.manifest));
  }
  std::sort(result.manifests.begin(), result.manifests.end(),
            [](const ShardManifest& a, const ShardManifest& b) {
              return a.shard_index < b.shard_index;
            });
  return result;
}

}  // namespace lcl::batch
