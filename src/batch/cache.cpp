#include "batch/cache.hpp"

#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "lint/canonical.hpp"
#include "lint/spec.hpp"
#include "lint/spec_io.hpp"
#include "obs/obs.hpp"
#include "re/kernel.hpp"
#include "util/label_mask.hpp"

namespace lcl::batch {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of `v`.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t constraint_signature(const NodeEdgeCheckableLcl& problem) {
  std::uint64_t h = kFnvOffset;
  mix(h, problem.input_alphabet().size());
  mix(h, problem.output_alphabet().size());
  mix(h, static_cast<std::uint64_t>(problem.max_degree()));
  for (int d = 1; d <= problem.max_degree(); ++d) {
    mix(h, 0xD0 + static_cast<std::uint64_t>(d));  // section marker
    for (const auto& config : problem.node_configs(d)) {
      for (const auto label : config.labels()) mix(h, label);
      mix(h, 0xC0FFEE);  // configuration separator
    }
  }
  mix(h, 0xE0);
  for (const auto& config : problem.edge_configs()) {
    for (const auto label : config.labels()) mix(h, label);
    mix(h, 0xC0FFEE);
  }
  mix(h, 0x60);
  // `g` sets fold in as dense mask words when the output alphabet fits the
  // widest `LabelMaskW` tier (the common case, and the only case operator
  // iterates under the default limits produce); equal sets produce equal
  // words, so `same_constraints(a, b)` still implies equal signatures.
  // Alphabets up to 64 labels mix exactly one word - byte-identical to the
  // signatures this cache produced before the multi-word tiers existed, so
  // on-disk caches stay valid. Label-by-label fallback beyond 512 labels.
  const std::size_t n = problem.output_alphabet().size();
  const std::size_t g_words =
      n <= LabelMask::kMaxUniverse ? 1 : re_kernel::mask_tier_words(n);
  for (Label in = 0; in < problem.input_alphabet().size(); ++in) {
    if (g_words != 0) {
      const LabelSet& outs = problem.allowed_outputs(in);
      for (std::size_t w = 0; w < g_words && w < outs.word_count(); ++w) {
        mix(h, outs.word(w));
      }
    } else {
      for (const auto out : problem.allowed_outputs(in).to_vector()) {
        mix(h, out);
      }
    }
    mix(h, 0xC0FFEE);
  }
  return h;
}

std::size_t Cache::IndexKeyHash::operator()(const IndexKey& k) const noexcept {
  return std::hash<std::string>{}(k.kind) ^
         std::hash<std::uint64_t>{}(k.signature);
}

Cache::Cache() : Cache(Options{}) {}

Cache::Cache(Options options) : options_(std::move(options)) {
  if (!options_.signature) options_.signature = &constraint_signature;
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.disk_path.empty()) return;
  if (options_.load_existing) load_disk_locked();
  const auto mode = options_.load_existing
                        ? std::ios::out | std::ios::app
                        : std::ios::out | std::ios::trunc;
  disk_ = std::make_unique<std::ofstream>(options_.disk_path, mode);
  if (!disk_->is_open()) {
    throw std::runtime_error("batch::Cache: cannot open '" +
                             options_.disk_path + "' for appending");
  }
  // A fresh tier opens with its provenance line; a resumed tier keeps
  // whatever provenance (or lack of it) it already has.
  if (!options_.meta_git_sha.empty() && !disk_had_content_) {
    obs::json::Value meta = obs::json::Value::make_object();
    meta.object()["meta"] =
        obs::json::Value(std::string("lclscape.cachetier.v1"));
    meta.object()["git_sha"] = obs::json::Value(options_.meta_git_sha);
    *disk_ << obs::json::dump(meta) << '\n';
    disk_->flush();
  }
}

Cache::~Cache() = default;

void Cache::load_disk_locked() {
  std::ifstream in(options_.disk_path);
  if (!in.is_open()) return;  // nothing to resume from yet
  std::string line;
  while (std::getline(in, line)) {
    // A file killed mid-append ends without a newline; the next append
    // must not glue a fresh record onto that torn tail.
    disk_needs_newline_ = in.eof() && !line.empty();
    if (!line.empty()) disk_had_content_ = true;
    if (line.empty()) continue;
    std::string error;
    const auto record = obs::json::parse(line, &error);
    // A process killed mid-append leaves one torn trailing line; skip
    // anything unparseable (or shaped wrong) rather than failing the run
    // the cache exists to accelerate.
    if (record == nullptr || !record->is_object()) {
      ++stats_.disk_skipped;
      continue;
    }
    // The provenance meta line (first line of tiers written since it was
    // introduced). Not an entry and not "skipped" - old tiers simply lack
    // it.
    if (const auto* meta = record->find("meta");
        meta != nullptr && meta->is_string()) {
      if (meta->as_string() == "lclscape.cachetier.v1") {
        if (const auto* sha = record->find("git_sha");
            sha != nullptr && sha->is_string()) {
          loaded_git_sha_ = sha->as_string();
        }
      }
      continue;
    }
    const auto* kind = record->find("kind");
    const auto* problem_value = record->find("problem");
    const auto* value = record->find("value");
    if (kind == nullptr || !kind->is_string() || problem_value == nullptr ||
        value == nullptr) {
      ++stats_.disk_skipped;
      continue;
    }
    Entry entry;
    entry.kind = kind->as_string();
    try {
      entry.problem =
          lint::build_spec(lint::spec_from_json_value(*problem_value));
    } catch (const std::exception&) {
      ++stats_.disk_skipped;
      continue;
    }
    // Recomputed, not trusted from the file: the stored "sig" field is
    // informational, so the tier survives signature-function changes (and
    // deliberate test overrides).
    entry.signature = options_.signature(entry.problem);
    entry.value = *value;
    if (const auto* canon = record->find("canon");
        canon != nullptr && canon->is_bool()) {
      entry.canonical_eligible = canon->as_bool();
    }
    if (contains_confirmed_locked(entry)) continue;
    fill_canonical_fields(entry, nullptr);
    insert_memory_locked(std::move(entry));
    ++stats_.disk_loaded;
  }
}

void Cache::append_disk_locked(const Entry& entry) {
  if (disk_ == nullptr) return;
  if (disk_needs_newline_) {
    *disk_ << '\n';
    disk_needs_newline_ = false;
  }
  obs::json::Value record = obs::json::Value::make_object();
  record.object()["kind"] = obs::json::Value(entry.kind);
  record.object()["sig"] = obs::json::Value(std::to_string(entry.signature));
  record.object()["problem"] =
      lint::spec_to_json_value(lint::spec_from_problem(entry.problem));
  record.object()["value"] = entry.value;
  if (!entry.canonical_eligible) {
    record.object()["canon"] = obs::json::Value(false);
  }
  *disk_ << obs::json::dump(record) << '\n';
  // Flush per record: a killed survey loses at most the line being written.
  disk_->flush();
}

bool Cache::contains_confirmed_locked(const Entry& entry) {
  const auto bucket = index_.find(IndexKey{entry.kind, entry.signature});
  if (bucket == index_.end()) return false;
  for (const auto& it : bucket->second) {
    if (same_constraints(it->problem, entry.problem)) return true;
    ++stats_.collisions;
  }
  return false;
}

void Cache::fill_canonical_fields(Entry& entry,
                                  const lint::CanonicalForm* form) {
  if (!options_.canonical_tier || !entry.canonical_eligible) return;
  lint::CanonicalForm computed;
  if (form == nullptr) {
    computed = lint::canonical_form(lint::spec_from_problem(entry.problem));
    form = &computed;
  }
  // An exhausted branch-and-bound is deterministic for this spec but no
  // longer permutation-invariant; keep such entries out of the tier (they
  // still serve exact hits).
  if (!form->complete) return;
  entry.has_canonical = true;
  entry.canonical_sig = lint::spec_signature(form->spec);
  entry.canonical_old_to_new = form->old_to_new;
}

void Cache::insert_memory_locked(Entry entry) {
  const IndexKey key{entry.kind, entry.signature};
  const bool has_canonical = entry.has_canonical;
  const IndexKey canonical_key{entry.kind, entry.canonical_sig};
  lru_.push_front(std::move(entry));
  index_[key].push_back(lru_.begin());
  if (has_canonical) canonical_index_[canonical_key].push_back(lru_.begin());
  while (lru_.size() > options_.capacity) {
    const auto victim = std::prev(lru_.end());
    auto& victim_bucket = index_[IndexKey{victim->kind, victim->signature}];
    std::erase(victim_bucket, victim);
    if (victim_bucket.empty()) {
      index_.erase(IndexKey{victim->kind, victim->signature});
    }
    if (victim->has_canonical) {
      const IndexKey victim_key{victim->kind, victim->canonical_sig};
      auto& bucket = canonical_index_[victim_key];
      std::erase(bucket, victim);
      if (bucket.empty()) canonical_index_.erase(victim_key);
    }
    lru_.pop_back();
    ++stats_.evictions;
    LCL_OBS_COUNTER_ADD("cache.evictions", 1);
  }
}

std::optional<obs::json::Value> Cache::find_exact_locked(
    const std::string& kind, const NodeEdgeCheckableLcl& problem,
    std::uint64_t sig) {
  const auto bucket = index_.find(IndexKey{kind, sig});
  if (bucket == index_.end()) return std::nullopt;
  for (const auto& it : bucket->second) {
    // Collision-safe exact confirmation: the signature narrows the
    // candidates, `same_constraints` decides.
    if (same_constraints(it->problem, problem)) {
      lru_.splice(lru_.begin(), lru_, it);  // touch for LRU
      ++stats_.hits;
      LCL_OBS_COUNTER_ADD("cache.hits", 1);
      return it->value;
    }
    ++stats_.collisions;
    LCL_OBS_COUNTER_ADD("cache.collisions", 1);
  }
  return std::nullopt;
}

std::optional<obs::json::Value> Cache::find(
    std::string_view kind, const NodeEdgeCheckableLcl& problem) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto exact = find_exact_locked(std::string(kind), problem,
                                 options_.signature(problem));
  if (exact.has_value()) return exact;
  ++stats_.misses;
  LCL_OBS_COUNTER_ADD("cache.misses", 1);
  return std::nullopt;
}

std::optional<Cache::CanonicalHit> Cache::find_canonical(
    std::string_view kind, const NodeEdgeCheckableLcl& problem,
    const lint::CanonicalForm* form) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string kind_str(kind);
  const std::size_t k = problem.output_alphabet().size();
  auto exact = find_exact_locked(kind_str, problem,
                                 options_.signature(problem));
  if (exact.has_value()) {
    CanonicalHit hit;
    hit.value = std::move(*exact);
    hit.old_to_new.resize(k);
    std::iota(hit.old_to_new.begin(), hit.old_to_new.end(), Label{0});
    return hit;
  }
  if (options_.canonical_tier) {
    lint::CanonicalForm computed;
    if (form == nullptr) {
      computed = lint::canonical_form(lint::spec_from_problem(problem));
      form = &computed;
    }
    if (form->complete) {
      const std::uint64_t canonical_sig = lint::spec_signature(form->spec);
      const auto bucket =
          canonical_index_.find(IndexKey{kind_str, canonical_sig});
      if (bucket != canonical_index_.end()) {
        for (const auto& it : bucket->second) {
          if (it->canonical_old_to_new.size() != k) {
            ++stats_.canonical_collisions;
            LCL_OBS_COUNTER_ADD("cache.canonical_collisions", 1);
            continue;
          }
          // Stored -> query evidence: through the shared canonical form,
          // p = query_new_to_old o stored_old_to_new.
          std::vector<Label> old_to_new(k);
          for (std::size_t e = 0; e < k; ++e) {
            old_to_new[e] = form->new_to_old[it->canonical_old_to_new[e]];
          }
          // Confirmed exactly, mirroring the raw tier: relabel the stored
          // constraints through the evidence map and compare. A canonical
          // signature collision therefore costs one rebuild, never a wrong
          // answer.
          const auto permuted = lint::build_spec(lint::permute_spec(
              lint::spec_from_problem(it->problem), old_to_new));
          if (same_constraints(permuted, problem)) {
            lru_.splice(lru_.begin(), lru_, it);  // touch for LRU
            ++stats_.canonical_hits;
            LCL_OBS_COUNTER_ADD("cache.canonical_hits", 1);
            CanonicalHit hit;
            hit.value = it->value;
            hit.old_to_new = std::move(old_to_new);
            hit.permuted = true;
            return hit;
          }
          ++stats_.canonical_collisions;
          LCL_OBS_COUNTER_ADD("cache.canonical_collisions", 1);
        }
      }
    }
  }
  ++stats_.misses;
  LCL_OBS_COUNTER_ADD("cache.misses", 1);
  return std::nullopt;
}

void Cache::insert(std::string_view kind, const NodeEdgeCheckableLcl& problem,
                   const obs::json::Value& value,
                   const lint::CanonicalForm* form, bool index_canonical) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.kind = std::string(kind);
  entry.signature = options_.signature(problem);
  entry.problem = problem;
  entry.value = value;
  entry.canonical_eligible = index_canonical;
  if (contains_confirmed_locked(entry)) return;  // duplicate: keep the file flat
  fill_canonical_fields(entry, form);
  ++stats_.insertions;
  LCL_OBS_COUNTER_ADD("cache.insertions", 1);
  // Disk first: the append must happen even if the entry is immediately
  // evicted from a tiny in-memory tier.
  append_disk_locked(entry);
  insert_memory_locked(std::move(entry));
}

CacheStats Cache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t Cache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::optional<std::string> Cache::loaded_git_sha() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return loaded_git_sha_;
}

}  // namespace lcl::batch
