#pragma once
#include <algorithm>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "graph/labeling.hpp"

namespace lcl {

/// Thrown when a VOLUME algorithm exceeds its declared probe budget.
class ProbeBudgetExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A single query of the VOLUME model (Definition 2.9): the algorithm is
/// asked to produce the output labels of one node's half-edges. It starts
/// knowing that node's tuple `(id, deg, in)` (Definition 2.8) and may
/// adaptively probe: "reveal the neighbor behind port p of the j-th known
/// node". Each probe reveals one more tuple and counts toward the budget.
///
/// The handle exposes only tuple data - never `NodeId`s of the underlying
/// graph - so an algorithm cannot accidentally bypass the probe discipline.
class VolumeQuery {
 public:
  /// `budget` = maximum number of probes; `advertised_n` is what the
  /// algorithm is told about the graph size.
  VolumeQuery(const Graph& graph, NodeId start,
              const HalfEdgeLabeling& input, const IdAssignment& ids,
              std::uint64_t budget, std::size_t advertised_n,
              bool allow_far_probes = false);

  /// Number of known nodes (the queried node is index 0).
  std::size_t known_count() const noexcept { return known_.size(); }
  std::size_t advertised_n() const noexcept { return advertised_n_; }

  /// Lowers the advertised size to `min(advertised_n, n0)`. Used by the
  /// Theorem 2.11 freezer: the wrapped algorithm then behaves exactly as it
  /// would on an n0-node graph.
  void clamp_advertised(std::size_t n0) {
    advertised_n_ = std::min(advertised_n_, n0);
  }
  /// Probes actually performed. After a `ProbeBudgetExceeded` this equals
  /// the budget: the rejected probe revealed nothing and is not counted.
  std::uint64_t probes_used() const noexcept { return probes_; }
  std::uint64_t budget() const noexcept { return budget_; }

  /// Tuple data of the j-th known node.
  std::uint64_t id(std::size_t j) const;
  int degree(std::size_t j) const;
  Label input(std::size_t j, int port) const;

  /// Adaptive probe: reveals the neighbor behind port `port` of known node
  /// `j` and returns its index in the known list (a node revealed twice
  /// gets a fresh index each time - the algorithm can identify duplicates
  /// by ID, exactly as in Definition 2.9). Throws `ProbeBudgetExceeded`
  /// when the budget is exhausted, `std::out_of_range` for bad arguments.
  std::size_t probe(std::size_t j, int port);

  /// LCA far probe (Section 2.2): reveals the node with identifier
  /// `target_id`, which must exist. Counts as one probe. Only available
  /// when the query was created with far probes enabled (the LCA model);
  /// throws `std::logic_error` otherwise.
  std::size_t far_probe(std::uint64_t target_id);

 private:
  void check_known(std::size_t j) const;
  std::size_t reveal(NodeId v);

  const Graph* graph_;
  const HalfEdgeLabeling* input_;
  const IdAssignment* ids_;
  std::uint64_t budget_;
  std::size_t advertised_n_;
  bool allow_far_probes_;
  std::uint64_t probes_ = 0;
  std::vector<NodeId> known_;
};

/// A VOLUME model algorithm: answers one node-query within a probe budget
/// that may depend on (the advertised) n.
class VolumeAlgorithm {
 public:
  virtual ~VolumeAlgorithm() = default;

  /// Probe budget T(n).
  virtual std::uint64_t probe_budget(std::size_t advertised_n) const = 0;

  /// Output labels for the queried node's ports (exactly `query.degree(0)`
  /// labels).
  virtual std::vector<Label> outputs(VolumeQuery& query) const = 0;
};

/// Result of running a VOLUME algorithm on every node of a graph.
struct VolumeRunResult {
  HalfEdgeLabeling output;
  /// Maximum probes used by any single query - the empirical probe
  /// complexity, the quantity on the Figure 1 (bottom right) axis.
  std::uint64_t max_probes = 0;
  std::uint64_t total_probes = 0;
};

/// Runs `algorithm` once per (non-isolated) node and assembles the output
/// labeling. `advertised_n` defaults to the true size; `lca_mode` enables
/// far probes.
VolumeRunResult run_volume_algorithm(const VolumeAlgorithm& algorithm,
                                     const Graph& graph,
                                     const HalfEdgeLabeling& input,
                                     const IdAssignment& ids,
                                     std::size_t advertised_n = 0,
                                     bool lca_mode = false);

}  // namespace lcl
