#pragma once

#include <cstdint>

#include "volume/model.hpp"

namespace lcl {

/// O(1)-probe witness: outputs the constant label 0 on every half-edge
/// without probing at all (the `problems::trivial` encoding).
class VolumeConstant final : public VolumeAlgorithm {
 public:
  std::uint64_t probe_budget(std::size_t advertised_n) const override;
  std::vector<Label> outputs(VolumeQuery& query) const override;
};

/// O(Delta) = O(1)-probe witness: probes each neighbor once and orients
/// every edge toward the larger identifier (the `problems::any_orientation`
/// encoding). Order-invariant in the Definition 2.10 sense.
class VolumeOrientByIds final : public VolumeAlgorithm {
 public:
  std::uint64_t probe_budget(std::size_t advertised_n) const override;
  std::vector<Label> outputs(VolumeQuery& query) const override;

  static constexpr Label kOut = 0;
  static constexpr Label kIn = 1;
};

/// The same orientation with a wastefully growing probe budget (~ log log
/// n): order-invariant, correct, omega(1) - the input for the Theorem 2.11
/// freezing demonstration in the VOLUME model.
class WastefulVolumeOrient final : public VolumeAlgorithm {
 public:
  std::uint64_t probe_budget(std::size_t advertised_n) const override;
  std::vector<Label> outputs(VolumeQuery& query) const override;
};

/// Theta(log* n)-probe witness: Cole-Vishkin 3-coloring of consistently
/// oriented paths/cycles in the VOLUME model. To answer a query the
/// algorithm probes a window of ~ log* chain neighbors (3 backward,
/// shrink_rounds + 3 forward) and simulates the LOCAL Cole-Vishkin
/// computation inside the window. Probe complexity Theta(log* id_range);
/// NOT order-invariant (it reads identifier bits) - exactly the
/// "sub-log*-volume algorithms must be order-invariant" dichotomy of
/// Theorem 4.1 is about making such algorithms order-invariant.
///
/// Expects the `chain_orientation_input` labeling (kCvSuccessor marks each
/// node's successor half-edge).
class VolumeColeVishkin final : public VolumeAlgorithm {
 public:
  explicit VolumeColeVishkin(std::uint64_t id_range);

  std::uint64_t probe_budget(std::size_t advertised_n) const override;
  std::vector<Label> outputs(VolumeQuery& query) const override;

  int shrink_rounds() const noexcept { return shrink_rounds_; }

 private:
  std::uint64_t id_range_;
  int shrink_rounds_;
};

/// Theta(n)-probe witness: proper 2-coloring of a path by walking backward
/// to the path's start and coloring by distance parity. The probe
/// complexity is the distance to the chain start - linear in n - matching
/// 2-coloring's global complexity. Expects `chain_orientation_input` on a
/// path (not a cycle).
class VolumeTwoColoring final : public VolumeAlgorithm {
 public:
  std::uint64_t probe_budget(std::size_t advertised_n) const override;
  std::vector<Label> outputs(VolumeQuery& query) const override;
};

}  // namespace lcl
