#include "volume/order_invariance.hpp"

#include <algorithm>

namespace lcl {

bool check_volume_order_invariance(const VolumeAlgorithm& algorithm,
                                   const Graph& graph,
                                   const HalfEdgeLabeling& input,
                                   const IdAssignment& ids, int trials,
                                   SplitRng& rng) {
  const auto reference = run_volume_algorithm(algorithm, graph, input, ids);
  for (int t = 0; t < trials; ++t) {
    const IdAssignment remapped = order_preserving_remap(ids, 4, rng);
    const auto other = run_volume_algorithm(algorithm, graph, input, remapped);
    if (other.output != reference.output ||
        other.max_probes != reference.max_probes ||
        other.total_probes != reference.total_probes) {
      return false;
    }
  }
  return true;
}

FrozenVolumeAlgorithm::FrozenVolumeAlgorithm(const VolumeAlgorithm& inner,
                                             std::size_t n0)
    : inner_(inner), n0_(n0) {}

std::uint64_t FrozenVolumeAlgorithm::probe_budget(
    std::size_t advertised_n) const {
  return inner_.probe_budget(std::min(advertised_n, n0_));
}

std::vector<Label> FrozenVolumeAlgorithm::outputs(VolumeQuery& query) const {
  // The inner algorithm reads the graph size only through
  // `query.advertised_n()`; clamping it to n0 is exactly the "run A with
  // input parameter min(n, n0)" of Theorem 2.11's proof.
  query.clamp_advertised(n0_);
  return inner_.outputs(query);
}

}  // namespace lcl
