#include "volume/model.hpp"

#include <string>

#include "obs/obs.hpp"

namespace lcl {

VolumeQuery::VolumeQuery(const Graph& graph, NodeId start,
                         const HalfEdgeLabeling& input,
                         const IdAssignment& ids, std::uint64_t budget,
                         std::size_t advertised_n, bool allow_far_probes)
    : graph_(&graph),
      input_(&input),
      ids_(&ids),
      budget_(budget),
      advertised_n_(advertised_n),
      allow_far_probes_(allow_far_probes) {
  known_.push_back(start);
}

void VolumeQuery::check_known(std::size_t j) const {
  if (j >= known_.size()) {
    throw std::out_of_range("VolumeQuery: unknown node index " +
                            std::to_string(j));
  }
}

std::uint64_t VolumeQuery::id(std::size_t j) const {
  check_known(j);
  return (*ids_)[known_[j]];
}

int VolumeQuery::degree(std::size_t j) const {
  check_known(j);
  return graph_->degree(known_[j]);
}

Label VolumeQuery::input(std::size_t j, int port) const {
  check_known(j);
  return (*input_)[graph_->half_edge(known_[j], port)];
}

std::size_t VolumeQuery::reveal(NodeId v) {
  if (probes_ >= budget_) {
    // Record the partial probe count before unwinding: the metrics stay
    // consistent (`volume.probes` counts exactly the successful probes, the
    // exhaustion histogram the per-query totals at failure) even when the
    // caller catches the exception and abandons the query.
    LCL_OBS_COUNTER_ADD("volume.budget_exhausted", 1);
    LCL_OBS_HISTOGRAM_RECORD("volume.probes_at_exhaustion", probes_);
    LCL_OBS_EVENT1("volume/budget_exhausted", "volume", "probes",
                   static_cast<std::int64_t>(probes_));
    throw ProbeBudgetExceeded(
        "VolumeQuery: probe budget of " + std::to_string(budget_) +
        " exhausted");
  }
  ++probes_;
  LCL_OBS_COUNTER_ADD("volume.probes", 1);
  known_.push_back(v);
  return known_.size() - 1;
}

std::size_t VolumeQuery::probe(std::size_t j, int port) {
  check_known(j);
  return reveal(graph_->neighbor(known_[j], port));
}

std::size_t VolumeQuery::far_probe(std::uint64_t target_id) {
  if (!allow_far_probes_) {
    throw std::logic_error(
        "VolumeQuery: far probes are an LCA-model feature; this query runs "
        "in the plain VOLUME model");
  }
  LCL_OBS_COUNTER_ADD("volume.far_probes", 1);
  for (NodeId v = 0; v < graph_->node_count(); ++v) {
    if ((*ids_)[v] == target_id) return reveal(v);
  }
  throw std::out_of_range("VolumeQuery::far_probe: no node with id " +
                          std::to_string(target_id));
}

VolumeRunResult run_volume_algorithm(const VolumeAlgorithm& algorithm,
                                     const Graph& graph,
                                     const HalfEdgeLabeling& input,
                                     const IdAssignment& ids,
                                     std::size_t advertised_n,
                                     bool lca_mode) {
  if (input.size() != graph.half_edge_count()) {
    throw std::invalid_argument("run_volume_algorithm: input size mismatch");
  }
  if (ids.size() != graph.node_count()) {
    throw std::invalid_argument("run_volume_algorithm: ids size mismatch");
  }
  if (advertised_n == 0) advertised_n = graph.node_count();
  const std::uint64_t budget = algorithm.probe_budget(advertised_n);

  LCL_OBS_SPAN(span, "volume/run", "volume");
  LCL_OBS_SPAN_ARG(span, "nodes", graph.node_count());
  LCL_OBS_SPAN_ARG(span, "budget", budget);

  VolumeRunResult result;
  result.output.assign(graph.half_edge_count(), 0);
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    const int degree = graph.degree(v);
    if (degree == 0) continue;
    VolumeQuery query(graph, v, input, ids, budget, advertised_n, lca_mode);
    const auto labels = algorithm.outputs(query);
    if (labels.size() != static_cast<std::size_t>(degree)) {
      throw std::logic_error(
          "run_volume_algorithm: wrong label count at node " +
          std::to_string(v));
    }
    for (int p = 0; p < degree; ++p) {
      result.output[graph.half_edge(v, p)] =
          labels[static_cast<std::size_t>(p)];
    }
    LCL_OBS_COUNTER_ADD("volume.queries", 1);
    LCL_OBS_HISTOGRAM_RECORD("volume.probes_per_query", query.probes_used());
    result.max_probes = std::max(result.max_probes, query.probes_used());
    result.total_probes += query.probes_used();
  }
  LCL_OBS_SPAN_ARG(span, "total_probes", result.total_probes);
  return result;
}

}  // namespace lcl
