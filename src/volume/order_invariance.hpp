#pragma once

#include "util/rng.hpp"
#include "volume/model.hpp"

namespace lcl {

/// Property test for Definition 2.10 (order-invariant VOLUME algorithm):
/// runs `algorithm` under `trials` random order-preserving remappings of the
/// identifiers and reports whether every run produced the same output
/// labeling with the same probe counts. A false return is a counterexample
/// to order-invariance.
bool check_volume_order_invariance(const VolumeAlgorithm& algorithm,
                                   const Graph& graph,
                                   const HalfEdgeLabeling& input,
                                   const IdAssignment& ids, int trials,
                                   SplitRng& rng);

/// Theorem 2.11 for the VOLUME model: freezing an order-invariant algorithm
/// at a fixed n0 (always advertising min(n, n0)) turns probe complexity
/// f(n) = o(n) into O(1) while preserving correctness - provided the inner
/// algorithm is genuinely order-invariant and n0 satisfies the theorem's
/// counting condition Delta^(r+1) * (T(n0)+1) <= n0 / Delta.
class FrozenVolumeAlgorithm final : public VolumeAlgorithm {
 public:
  FrozenVolumeAlgorithm(const VolumeAlgorithm& inner, std::size_t n0);

  std::uint64_t probe_budget(std::size_t advertised_n) const override;
  std::vector<Label> outputs(VolumeQuery& query) const override;

 private:
  const VolumeAlgorithm& inner_;
  std::size_t n0_;
};

}  // namespace lcl
