#include "volume/algorithms.hpp"

#include <map>
#include <optional>
#include <stdexcept>

#include "local/cole_vishkin.hpp"
#include "util/math.hpp"

namespace lcl {

namespace {

/// Successor port of known node `j` per the chain orientation labeling, or
/// -1 if it has none (right endpoint of a path).
int successor_port_of(const VolumeQuery& q, std::size_t j) {
  int port = -1;
  for (int p = 0; p < q.degree(j); ++p) {
    if (q.input(j, p) == kCvSuccessor) {
      if (port != -1) {
        throw std::invalid_argument(
            "volume chain algorithm: node has two successor half-edges");
      }
      port = p;
    }
  }
  return port;
}

/// Predecessor port of known node `j`, or -1 (left endpoint).
int predecessor_port_of(const VolumeQuery& q, std::size_t j) {
  if (q.degree(j) > 2) {
    throw std::invalid_argument(
        "volume chain algorithm: degree exceeds 2");
  }
  const int succ = successor_port_of(q, j);
  for (int p = 0; p < q.degree(j); ++p) {
    if (p != succ) return p;
  }
  return -1;
}

}  // namespace

std::uint64_t VolumeConstant::probe_budget(std::size_t) const { return 0; }

std::vector<Label> VolumeConstant::outputs(VolumeQuery& query) const {
  return std::vector<Label>(static_cast<std::size_t>(query.degree(0)), 0);
}

std::uint64_t VolumeOrientByIds::probe_budget(std::size_t) const {
  // One probe per port of the queried node; LCLs live on constant-degree
  // graphs, so this is O(1).
  return 64;
}

std::vector<Label> VolumeOrientByIds::outputs(VolumeQuery& query) const {
  const int degree = query.degree(0);
  std::vector<Label> out(static_cast<std::size_t>(degree));
  for (int p = 0; p < degree; ++p) {
    const std::size_t nb = query.probe(0, p);
    out[static_cast<std::size_t>(p)] =
        (query.id(0) < query.id(nb)) ? kOut : kIn;
  }
  return out;
}

std::uint64_t WastefulVolumeOrient::probe_budget(
    std::size_t advertised_n) const {
  const std::uint64_t loglog =
      advertised_n >= 4
          ? static_cast<std::uint64_t>(floor_log2(static_cast<std::uint64_t>(
                floor_log2(static_cast<std::uint64_t>(advertised_n)))))
          : 0;
  return 64 + loglog;
}

std::vector<Label> WastefulVolumeOrient::outputs(VolumeQuery& query) const {
  // Burn some budget-dependent probes to make the waste observable, then
  // decide exactly like VolumeOrientByIds.
  const int degree = query.degree(0);
  std::vector<Label> out(static_cast<std::size_t>(degree));
  for (int p = 0; p < degree; ++p) {
    const std::size_t nb = query.probe(0, p);
    out[static_cast<std::size_t>(p)] =
        (query.id(0) < query.id(nb)) ? VolumeOrientByIds::kOut
                                     : VolumeOrientByIds::kIn;
  }
  const std::uint64_t extra =
      probe_budget(query.advertised_n()) - 64;
  for (std::uint64_t i = 0; i < extra && degree > 0; ++i) {
    query.probe(0, 0);  // redundant re-probes of the first neighbor
  }
  return out;
}

VolumeColeVishkin::VolumeColeVishkin(std::uint64_t id_range)
    : id_range_(id_range),
      shrink_rounds_(ColeVishkin(id_range).shrink_rounds()) {}

std::uint64_t VolumeColeVishkin::probe_budget(std::size_t) const {
  return static_cast<std::uint64_t>(shrink_rounds_) + 8;
}

std::vector<Label> VolumeColeVishkin::outputs(VolumeQuery& query) const {
  if (query.id(0) >= id_range_) {
    throw std::invalid_argument("VolumeColeVishkin: id outside range");
  }
  const int t = shrink_rounds_;

  // Collect the chain window: positions -3 .. t+3 around the queried node
  // (position 0). Walking stops early at true path endpoints.
  std::map<int, std::size_t> window;  // position -> known index
  window[0] = 0;
  {
    std::size_t cur = 0;
    for (int pos = 1; pos <= t + 3; ++pos) {
      const int sp = successor_port_of(query, cur);
      if (sp == -1) break;
      cur = query.probe(cur, sp);
      window[pos] = cur;
    }
    cur = 0;
    for (int pos = -1; pos >= -3; --pos) {
      const int pp = predecessor_port_of(query, cur);
      if (pp == -1) break;
      cur = query.probe(cur, pp);
      window[pos] = cur;
    }
  }

  // Simulate the LOCAL Cole-Vishkin computation inside the window. Window
  // boundary effects cannot reach position 0: after the shrink stage the
  // colors at positions [-3, 3] are exact, and each of the three reduction
  // rounds consults only direct neighbors, so the final color at 0 depends
  // on exact values only (positions outside [-3+r, 3-r] may hold garbage in
  // round r, but that garbage never propagates to 0).
  std::map<int, std::uint64_t> colors;
  for (const auto& [pos, idx] : window) colors[pos] = query.id(idx);
  for (int round = 1; round <= t; ++round) {
    std::map<int, std::uint64_t> next;
    for (const auto& [pos, c] : colors) {
      const auto succ = colors.find(pos + 1);
      if (succ == colors.end()) {
        if (window.count(pos + 1) == 0 &&
            successor_port_of(query, window.at(pos)) == -1) {
          next[pos] = c & 1;  // true right endpoint
        }
        // Otherwise the successor is merely outside the simulated window;
        // this position's color is no longer computable (and no longer
        // needed).
        continue;
      }
      const std::uint64_t diff = c ^ succ->second;
      std::uint64_t i = 0;
      while (((diff >> i) & 1) == 0) ++i;
      next[pos] = 2 * i + ((c >> i) & 1);
    }
    colors = std::move(next);
  }

  // 6 -> 3 reduction, three rounds, exactly as the LOCAL algorithm.
  for (int r = 0; r < 3; ++r) {
    const std::uint64_t target = 5 - static_cast<std::uint64_t>(r);
    std::map<int, std::uint64_t> next;
    for (const auto& [pos, c] : colors) {
      if (c != target) {
        next[pos] = c;
        continue;
      }
      std::uint64_t chosen = target;
      for (std::uint64_t cand = 0; cand < 3; ++cand) {
        bool used = false;
        const auto left = colors.find(pos - 1);
        const auto right = colors.find(pos + 1);
        if (left != colors.end() && left->second == cand) used = true;
        if (right != colors.end() && right->second == cand) used = true;
        if (!used) {
          chosen = cand;
          break;
        }
      }
      next[pos] = chosen;
    }
    colors = std::move(next);
  }

  const auto own = colors.find(0);
  if (own == colors.end()) {
    throw std::logic_error("VolumeColeVishkin: window analysis bug");
  }
  return std::vector<Label>(static_cast<std::size_t>(query.degree(0)),
                            static_cast<Label>(own->second));
}

std::uint64_t VolumeTwoColoring::probe_budget(
    std::size_t advertised_n) const {
  return advertised_n + 1;
}

std::vector<Label> VolumeTwoColoring::outputs(VolumeQuery& query) const {
  // Walk to the chain start and color by distance parity.
  std::size_t cur = 0;
  std::uint64_t distance = 0;
  while (true) {
    const int pp = predecessor_port_of(query, cur);
    if (pp == -1) break;
    cur = query.probe(cur, pp);
    ++distance;
  }
  return std::vector<Label>(static_cast<std::size_t>(query.degree(0)),
                            static_cast<Label>(distance % 2));
}

}  // namespace lcl
