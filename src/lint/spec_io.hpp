#pragma once

#include <string>
#include <string_view>

#include "lint/spec.hpp"
#include "obs/json.hpp"

namespace lcl::lint {

/// JSON (de)serialization of `ProblemSpec`. The schema is the `"problem"`
/// object of the fuzz corpus format (fuzz/case_io.hpp), so corpus files and
/// spec files share one dialect:
///
/// ```json
/// {
///   "name": "mis", "max_degree": 3,
///   "inputs": ["-"], "outputs": ["a", "b"],
///   "node_configs": [[0], [0, 1]],
///   "edge_configs": [[0, 1]],
///   "g": [[0, 1]]
/// }
/// ```
///
/// Parsing is deliberately *permissive* about label values: out-of-range or
/// negative indices, duplicate names, and arity mistakes all parse into the
/// spec so the analyzer can diagnose them (L001/L040). Only shape errors -
/// a config that is not an array of numbers, a missing field - are rejected.

/// Parses a spec from a JSON value; throws `std::runtime_error` naming the
/// first malformed field.
ProblemSpec spec_from_json_value(const obs::json::Value& value);

/// Parses a spec from JSON text. Accepts either a bare problem object or a
/// fuzz-case wrapper (any object with a `"problem"` member - the member is
/// parsed, everything else ignored). `wrapped`, when non-null, reports
/// which form was seen.
ProblemSpec spec_from_json(std::string_view text, bool* wrapped = nullptr);

obs::json::Value spec_to_json_value(const ProblemSpec& spec);
std::string spec_to_json(const ProblemSpec& spec);

/// File wrappers; throw `std::runtime_error` on I/O failure.
ProblemSpec load_spec(const std::string& path, bool* wrapped = nullptr);
void save_spec(const std::string& path, const ProblemSpec& spec);

}  // namespace lcl::lint
