#pragma once

#include <string>
#include <vector>

namespace lcl::lint {

/// Severity of a lint finding. Orders from least to most severe so callers
/// can take the max over a report.
enum class Severity { kInfo, kWarning, kError };

const char* to_string(Severity severity);

/// Stable diagnostic codes. The numeric families are part of the tool's
/// contract (tests, CI greps, and corpus notes reference them):
///
///   L001  alphabet / arity consistency (spec level): undeclared labels,
///         duplicate alphabet names, configuration size vs Delta, malformed
///         `g` table. Always an error - later passes are skipped.
///   L010  dead output label: the support fixpoint removed it because it
///         appears in no (surviving) node configuration, has no (surviving)
///         edge partner, or is permitted by no input label.
///   L011  vacuous configuration: mentions a dead label, so it can never be
///         realized by a correct solution.
///   L012  starved input label: every output it permitted is dead; any
///         instance carrying that input label is unsolvable.
///   L013  unpopulated degree: no node configuration for some degree in
///         [1, Delta]; instances containing such a node are unsolvable.
///   L020  trivially unsolvable: the pruned constraint set is empty, so no
///         graph with at least one edge admits a correct solution.
///   L030  0-round trivial: one label's uniform assignment satisfies every
///         constraint (a witness for Theorem 3.10's `A_det` at step 0).
///   L040  duplicate configuration / duplicate `g` entry in the spec.
///   L041  non-canonical configuration: labels not sorted ascending (the
///         multiset semantics make order irrelevant; canonical form sorts).
///
/// The L05x family is the semantic tier over label-permutation
/// canonicalization (`lint/canonical.hpp`):
///
///   L050  non-canonical label order: the spec is not the canonical
///         representative of its permutation class (`--fix` applies the
///         canonicalizing permutation).
///   L051  permutation duplicate: the spec's constraint system equals
///         another spec's in the same batch up to an output-label
///         permutation (cross-file analysis; the message names the other
///         file).
///   L052  label symmetry: the constraint system is closed under a
///         nontrivial output-label automorphism (reported with a generating
///         permutation - a certificate, not a defect).
struct Code {
  static constexpr const char* kAlphabetArity = "L001";
  static constexpr const char* kDeadLabel = "L010";
  static constexpr const char* kVacuousConfig = "L011";
  static constexpr const char* kStarvedInput = "L012";
  static constexpr const char* kUnpopulatedDegree = "L013";
  static constexpr const char* kUnsolvable = "L020";
  static constexpr const char* kZeroRoundTrivial = "L030";
  static constexpr const char* kDuplicateConfig = "L040";
  static constexpr const char* kNonCanonicalConfig = "L041";
  static constexpr const char* kNonCanonicalLabels = "L050";
  static constexpr const char* kPermutationDuplicate = "L051";
  static constexpr const char* kLabelSymmetry = "L052";
};

/// One lint finding: stable code, severity, human-readable message, and a
/// machine-locatable position inside the spec. `object` names what the
/// finding is about ("node_config", "edge_config", "output_label",
/// "input_label", "g", "problem"); `index` is the position in the
/// corresponding spec list (or the label index), -1 when not applicable.
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kInfo;
  std::string message;
  std::string object;
  int index = -1;

  /// `L010 warning [output_label 2]: ...` - one line, no trailing newline.
  std::string to_string() const;
};

/// Max severity over `diagnostics` (kInfo when empty).
Severity max_severity(const std::vector<Diagnostic>& diagnostics);

/// CLI / pre-flight exit-code convention: 0 = clean or info only,
/// 1 = warnings, 2 = errors.
int exit_code(const std::vector<Diagnostic>& diagnostics);

}  // namespace lcl::lint
