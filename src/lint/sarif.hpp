#pragma once

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "obs/json.hpp"

namespace lcl::lint {

/// Static metadata for one diagnostic code, as published in the SARIF
/// `tool.driver.rules` array. `level` is the *default* severity; individual
/// results carry the severity the analyzer actually assigned.
struct SarifRule {
  const char* id;          // stable code, e.g. "L050"
  const char* name;        // PascalCase rule name
  const char* short_text;  // one-line description
  Severity level;
};

/// The full rule table (every L0xx/L05x code), in rule-index order.
const std::vector<SarifRule>& sarif_rules();

/// One analyzed artifact: the file path as given on the command line plus
/// everything the analyzer (and the cross-file L051 pass) reported for it.
struct SarifArtifact {
  std::string file;
  std::vector<Diagnostic> diagnostics;
};

/// Renders a SARIF 2.1.0 log: one run, `lcl_lint` as the driver with the
/// complete rule table, one result per diagnostic with severities mapped to
/// SARIF levels (info -> "note", warning -> "warning", error -> "error")
/// and the artifact URI as the location.
obs::json::Value sarif_log(const std::vector<SarifArtifact>& artifacts);
std::string sarif_json(const std::vector<SarifArtifact>& artifacts);

}  // namespace lcl::lint
