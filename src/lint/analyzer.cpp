#include "lint/analyzer.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "lint/canonical.hpp"
#include "lint/spec_io.hpp"
#include "obs/obs.hpp"

namespace lcl::lint {

namespace {

/// Renders one raw configuration with label names where the index is valid
/// and `#<raw>` where it is not (undeclared labels must still print).
std::string render_config(const std::vector<std::int64_t>& config,
                          const std::vector<std::string>& outputs) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < config.size(); ++i) {
    if (i > 0) os << ", ";
    const auto raw = config[i];
    if (raw >= 0 && static_cast<std::size_t>(raw) < outputs.size()) {
      os << outputs[static_cast<std::size_t>(raw)];
    } else {
      os << '#' << raw;
    }
  }
  os << '}';
  return os.str();
}

void add(std::vector<Diagnostic>& diags, const char* code, Severity severity,
         std::string message, std::string object = {}, int index = -1) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.object = std::move(object);
  d.index = index;
  diags.push_back(std::move(d));
}

void check_alphabet(const std::vector<std::string>& names, const char* which,
                    std::vector<Diagnostic>& diags, bool& valid) {
  if (names.empty()) {
    add(diags, Code::kAlphabetArity, Severity::kError,
        std::string(which) + " alphabet is empty", "problem");
    valid = false;
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (names[i] == names[j]) {
        add(diags, Code::kAlphabetArity, Severity::kError,
            std::string("duplicate ") + which + " label name '" + names[i] +
                "' (indices " + std::to_string(j) + " and " +
                std::to_string(i) + ")",
            std::string(which) + "_label", static_cast<int>(i));
        valid = false;
      }
    }
  }
}

/// L001: structural consistency of alphabets, arities, and label indices.
/// Returns false when any error makes the semantic passes meaningless.
bool structural_pass(const ProblemSpec& spec,
                     std::vector<Diagnostic>& diags) {
  bool valid = true;
  if (spec.max_degree < 1) {
    add(diags, Code::kAlphabetArity, Severity::kError,
        "max_degree must be >= 1, got " + std::to_string(spec.max_degree),
        "problem");
    valid = false;
  }
  check_alphabet(spec.outputs, "output", diags, valid);
  check_alphabet(spec.inputs, "input", diags, valid);

  const auto check_entries = [&](const std::vector<std::int64_t>& config,
                                 const char* object, int index) {
    for (const auto raw : config) {
      if (raw < 0 || static_cast<std::size_t>(raw) >= spec.outputs.size()) {
        add(diags, Code::kAlphabetArity, Severity::kError,
            std::string("undeclared output label #") + std::to_string(raw) +
                " in " + object + " " + render_config(config, spec.outputs),
            object, index);
        valid = false;
      }
    }
  };
  for (std::size_t i = 0; i < spec.node_configs.size(); ++i) {
    const auto& config = spec.node_configs[i];
    if (config.empty() ||
        (spec.max_degree >= 1 &&
         config.size() > static_cast<std::size_t>(spec.max_degree))) {
      add(diags, Code::kAlphabetArity, Severity::kError,
          "node configuration " + render_config(config, spec.outputs) +
              " has arity " + std::to_string(config.size()) +
              ", outside [1, max_degree = " +
              std::to_string(spec.max_degree) + "]",
          "node_config", static_cast<int>(i));
      valid = false;
    }
    check_entries(config, "node_config", static_cast<int>(i));
  }
  for (std::size_t i = 0; i < spec.edge_configs.size(); ++i) {
    const auto& config = spec.edge_configs[i];
    if (config.size() != 2) {
      add(diags, Code::kAlphabetArity, Severity::kError,
          "edge configuration " + render_config(config, spec.outputs) +
              " has arity " + std::to_string(config.size()) +
              "; edges have exactly 2 half-edges",
          "edge_config", static_cast<int>(i));
      valid = false;
    }
    check_entries(config, "edge_config", static_cast<int>(i));
  }
  if (spec.g.size() != spec.inputs.size()) {
    add(diags, Code::kAlphabetArity, Severity::kError,
        "g has " + std::to_string(spec.g.size()) +
            " rows but there are " + std::to_string(spec.inputs.size()) +
            " input labels",
        "g");
    valid = false;
  } else {
    for (std::size_t i = 0; i < spec.g.size(); ++i) {
      check_entries(spec.g[i], "g", static_cast<int>(i));
    }
  }
  return valid;
}

/// L040/L041: duplicate and non-canonical (unsorted) entries. Purely
/// syntactic, so it runs even on structurally invalid specs.
void canonicalization_pass(const ProblemSpec& spec,
                           std::vector<Diagnostic>& diags) {
  const auto check_list = [&](const std::vector<std::vector<std::int64_t>>&
                                  list,
                              const char* object, const char* what) {
    std::vector<std::vector<std::int64_t>> seen;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (!std::is_sorted(list[i].begin(), list[i].end())) {
        add(diags, Code::kNonCanonicalConfig, Severity::kInfo,
            std::string(what) + " " + render_config(list[i], spec.outputs) +
                " is not in canonical (sorted) order",
            object, static_cast<int>(i));
      }
      auto sorted = list[i];
      std::sort(sorted.begin(), sorted.end());
      if (std::find(seen.begin(), seen.end(), sorted) != seen.end()) {
        add(diags, Code::kDuplicateConfig, Severity::kWarning,
            std::string("duplicate ") + what + " " +
                render_config(sorted, spec.outputs),
            object, static_cast<int>(i));
      }
      seen.push_back(std::move(sorted));
    }
  };
  check_list(spec.node_configs, "node_config", "node configuration");
  check_list(spec.edge_configs, "edge_config", "edge configuration");
  for (std::size_t i = 0; i < spec.g.size(); ++i) {
    auto sorted = spec.g[i];
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      add(diags, Code::kDuplicateConfig, Severity::kWarning,
          "duplicate entries in the g row of input label '" +
              (i < spec.inputs.size() ? spec.inputs[i]
                                      : "#" + std::to_string(i)) +
              "'",
          "g", static_cast<int>(i));
    }
  }
}

/// L010-L013, L020, L030 over the canonical spec; fills the pruned spec and
/// the label mappings in `report`.
void semantic_passes(const ProblemSpec& canonical, const LintOptions& options,
                     LintReport& report) {
  const std::size_t k = canonical.outputs.size();
  const auto& name_of = [&canonical](std::size_t l) {
    return canonical.outputs[l];
  };

  std::vector<char> live(k, 1);
  std::vector<char> node_alive(canonical.node_configs.size(), 1);
  std::vector<char> edge_alive(canonical.edge_configs.size(), 1);
  auto g_rows = canonical.g;

  if (options.support_fixpoint) {
    // The support fixpoint (the automata-theoretic-lens pruning): a label
    // needs a surviving node configuration, a surviving edge partner, and an
    // input permitting it; configurations need all their labels alive.
    // Each sweep computes supports in parallel, then deletes, so a cascade
    // (killing a configuration starves another label) takes extra sweeps.
    while (true) {
      std::vector<char> in_node(k, 0);
      std::vector<char> in_edge(k, 0);
      std::vector<char> in_g(k, 0);
      for (std::size_t i = 0; i < canonical.node_configs.size(); ++i) {
        if (!node_alive[i]) continue;
        for (const auto raw : canonical.node_configs[i]) {
          in_node[static_cast<std::size_t>(raw)] = 1;
        }
      }
      for (std::size_t i = 0; i < canonical.edge_configs.size(); ++i) {
        if (!edge_alive[i]) continue;
        for (const auto raw : canonical.edge_configs[i]) {
          in_edge[static_cast<std::size_t>(raw)] = 1;
        }
      }
      for (const auto& row : g_rows) {
        for (const auto raw : row) in_g[static_cast<std::size_t>(raw)] = 1;
      }

      std::vector<char> died(k, 0);
      bool any_death = false;
      for (std::size_t l = 0; l < k; ++l) {
        if (!live[l] || (in_node[l] && in_edge[l] && in_g[l])) continue;
        std::vector<const char*> reasons;
        if (!in_node[l]) reasons.push_back("no node configuration uses it");
        if (!in_edge[l]) reasons.push_back("no edge configuration uses it");
        if (!in_g[l]) reasons.push_back("no input label permits it");
        std::string message = "dead output label '" + name_of(l) + "': ";
        for (std::size_t r = 0; r < reasons.size(); ++r) {
          if (r > 0) message += "; ";
          message += reasons[r];
        }
        message += " - it cannot occur in any correct solution";
        add(report.diagnostics, Code::kDeadLabel, Severity::kWarning,
            std::move(message), "output_label", static_cast<int>(l));
        live[l] = 0;
        died[l] = 1;
        any_death = true;
        ++report.dead_labels;
      }
      if (!any_death) break;
      ++report.fixpoint_iterations;

      const auto kill_configs = [&](const std::vector<std::vector<
                                        std::int64_t>>& list,
                                    std::vector<char>& alive,
                                    const char* object, const char* what) {
        for (std::size_t i = 0; i < list.size(); ++i) {
          if (!alive[i]) continue;
          const bool vacuous = std::any_of(
              list[i].begin(), list[i].end(), [&died](std::int64_t raw) {
                return died[static_cast<std::size_t>(raw)] != 0;
              });
          if (!vacuous) continue;
          alive[i] = 0;
          add(report.diagnostics, Code::kVacuousConfig, Severity::kWarning,
              std::string("vacuous ") + what + " " +
                  render_config(list[i], canonical.outputs) +
                  ": mentions a dead label",
              object, static_cast<int>(i));
        }
      };
      kill_configs(canonical.node_configs, node_alive, "node_config",
                   "node configuration");
      kill_configs(canonical.edge_configs, edge_alive, "edge_config",
                   "edge configuration");
      for (auto& row : g_rows) {
        row.erase(std::remove_if(row.begin(), row.end(),
                                 [&died](std::int64_t raw) {
                                   return died[static_cast<std::size_t>(
                                              raw)] != 0;
                                 }),
                  row.end());
      }
    }

    for (std::size_t i = 0; i < g_rows.size(); ++i) {
      if (!g_rows[i].empty()) continue;
      const bool starved = !canonical.g[i].empty();
      add(report.diagnostics, Code::kStarvedInput, Severity::kWarning,
          "input label '" + canonical.inputs[i] +
              (starved ? "' permits only dead output labels"
                       : "' permits no output label") +
              " - any instance carrying it is unsolvable",
          "input_label", static_cast<int>(i));
    }
    for (int d = 1; d <= canonical.max_degree; ++d) {
      bool populated = false;
      for (std::size_t i = 0; i < canonical.node_configs.size(); ++i) {
        if (node_alive[i] &&
            canonical.node_configs[i].size() ==
                static_cast<std::size_t>(d)) {
          populated = true;
          break;
        }
      }
      if (!populated) {
        add(report.diagnostics, Code::kUnpopulatedDegree, Severity::kInfo,
            "no node configuration of degree " + std::to_string(d) +
                " survives - instances containing a degree-" +
                std::to_string(d) + " node are unsolvable",
            "problem", d);
      }
    }
  }

  // Assemble the pruned, canonical spec and the label mappings.
  report.old_to_new.assign(k, LintReport::kDropped);
  for (std::size_t l = 0; l < k; ++l) {
    if (!live[l]) continue;
    report.old_to_new[l] = static_cast<Label>(report.new_to_old.size());
    report.new_to_old.push_back(static_cast<Label>(l));
  }
  ProblemSpec pruned;
  pruned.name = canonical.name;
  pruned.max_degree = canonical.max_degree;
  pruned.inputs = canonical.inputs;
  for (const auto l : report.new_to_old) pruned.outputs.push_back(name_of(l));
  const auto remap = [&report](const std::vector<std::int64_t>& config) {
    std::vector<std::int64_t> mapped;
    mapped.reserve(config.size());
    for (const auto raw : config) {
      mapped.push_back(static_cast<std::int64_t>(
          report.old_to_new[static_cast<std::size_t>(raw)]));
    }
    return mapped;
  };
  for (std::size_t i = 0; i < canonical.node_configs.size(); ++i) {
    if (node_alive[i]) {
      pruned.node_configs.push_back(remap(canonical.node_configs[i]));
    }
  }
  for (std::size_t i = 0; i < canonical.edge_configs.size(); ++i) {
    if (edge_alive[i]) {
      pruned.edge_configs.push_back(remap(canonical.edge_configs[i]));
    }
  }
  for (const auto& row : g_rows) pruned.g.push_back(remap(row));
  report.canonical = std::move(pruned);

  // L020: nothing survives => no correct solution on any graph with an
  // edge (every half-edge needs a label with full support).
  if (options.support_fixpoint &&
      (report.new_to_old.empty() || report.canonical.node_configs.empty() ||
       report.canonical.edge_configs.empty())) {
    std::string what =
        report.new_to_old.empty()        ? "no output label"
        : report.canonical.node_configs.empty() ? "no node configuration"
                                          : "no edge configuration";
    add(report.diagnostics, Code::kUnsolvable, Severity::kError,
        "trivially unsolvable: " + what +
            " survives pruning; no graph with at least one edge admits a "
            "correct solution",
        "problem");
    report.trivially_unsolvable = true;
    return;
  }

  // L030: a single label solving everything uniformly. Sufficient (never
  // necessary) for 0-round solvability: the constant map satisfies the
  // Theorem 3.10 `A_det` conditions outright.
  if (!options.zero_round) return;
  for (const auto l : report.new_to_old) {
    const auto raw = static_cast<std::int64_t>(l);
    bool edge_ok = false;
    for (std::size_t i = 0; i < canonical.edge_configs.size(); ++i) {
      if (edge_alive[i] &&
          canonical.edge_configs[i] ==
              std::vector<std::int64_t>{raw, raw}) {
        edge_ok = true;
        break;
      }
    }
    if (!edge_ok) continue;
    bool node_ok = true;
    for (int d = 1; d <= canonical.max_degree && node_ok; ++d) {
      const std::vector<std::int64_t> uniform(static_cast<std::size_t>(d),
                                              raw);
      bool found = false;
      for (std::size_t i = 0; i < canonical.node_configs.size(); ++i) {
        if (node_alive[i] && canonical.node_configs[i] == uniform) {
          found = true;
          break;
        }
      }
      node_ok = found;
    }
    if (!node_ok) continue;
    bool g_ok = true;
    for (const auto& row : g_rows) {
      g_ok = g_ok && std::find(row.begin(), row.end(), raw) != row.end();
    }
    if (!g_ok) continue;
    add(report.diagnostics, Code::kZeroRoundTrivial, Severity::kInfo,
        "0-round trivial: assigning '" + name_of(l) +
            "' on every half-edge satisfies all constraints",
        "output_label", static_cast<int>(l));
    report.zero_round_label = raw;
    break;
  }
}

/// L050/L052 over the pruned spec: compute the canonical label order, fold
/// the permutation into `report.canonical` and the evidence maps, and
/// report non-canonical order (L050) and nontrivial automorphisms (L052).
void canonical_pass(LintReport& report) {
  const CanonicalForm form = canonical_form(report.canonical);
  report.automorphism_order = form.automorphism_order;
  report.automorphism_order_saturated = form.automorphism_order_saturated;
  report.canonical_complete = form.complete;

  bool identity = true;
  for (std::size_t l = 0; l < form.old_to_new.size(); ++l) {
    identity = identity && form.old_to_new[l] == static_cast<Label>(l);
  }
  if (!identity) {
    std::string order;
    for (const auto& name : form.spec.outputs) {
      if (!order.empty()) order += ", ";
      order += name;
    }
    add(report.diagnostics, Code::kNonCanonicalLabels, Severity::kInfo,
        "labels are not in canonical order; the canonical order is [" +
            order + "] (--fix applies the permutation)",
        "problem");
  }
  if (form.complete && form.automorphism_order > 1 &&
      !form.automorphism_generator.empty()) {
    // Render the generator as the name mapping of its non-fixed points
    // (names are attached to the *pruned* spec's labels).
    std::string generator;
    for (std::size_t l = 0; l < form.automorphism_generator.size(); ++l) {
      const auto image = static_cast<std::size_t>(
          form.automorphism_generator[l]);
      if (image == l) continue;
      if (!generator.empty()) generator += ", ";
      generator += report.canonical.outputs[l] + "->" +
                   report.canonical.outputs[image];
    }
    add(report.diagnostics, Code::kLabelSymmetry, Severity::kInfo,
        "constraint system is closed under the nontrivial label "
        "automorphism {" +
            generator + "}; automorphism group order " +
            (form.automorphism_order_saturated
                 ? ">= " + std::to_string(form.automorphism_order)
                 : std::to_string(form.automorphism_order)),
        "problem");
  }

  // Compose the permutation into the analyzer's evidence discipline:
  // original -> pruned -> canonical.
  for (auto& mapped : report.old_to_new) {
    if (mapped != LintReport::kDropped) mapped = form.old_to_new[mapped];
  }
  std::vector<Label> new_to_old(report.new_to_old.size());
  for (std::size_t n = 0; n < new_to_old.size(); ++n) {
    new_to_old[n] = report.new_to_old[form.new_to_old[n]];
  }
  report.new_to_old = std::move(new_to_old);
  report.canonical = form.spec;
}

}  // namespace

std::string LintReport::to_text() const {
  std::ostringstream os;
  for (const auto& d : diagnostics) os << d.to_string() << '\n';
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;
  for (const auto& d : diagnostics) {
    switch (d.severity) {
      case Severity::kError:
        ++errors;
        break;
      case Severity::kWarning:
        ++warnings;
        break;
      case Severity::kInfo:
        ++infos;
        break;
    }
  }
  if (diagnostics.empty()) {
    os << "clean\n";
  } else {
    os << errors << " error(s), " << warnings << " warning(s), " << infos
       << " info(s)\n";
  }
  return os.str();
}

obs::json::Value LintReport::to_json_value() const {
  namespace json = obs::json;
  json::Value root = json::Value::make_object();
  root.object()["tool"] = json::Value(std::string("lcl_lint"));
  root.object()["version"] = json::Value(std::int64_t{1});

  json::Value diags = json::Value::make_array();
  std::int64_t errors = 0;
  std::int64_t warnings = 0;
  std::int64_t infos = 0;
  for (const auto& d : diagnostics) {
    json::Value obj = json::Value::make_object();
    obj.object()["code"] = json::Value(d.code);
    obj.object()["severity"] = json::Value(std::string(to_string(d.severity)));
    obj.object()["message"] = json::Value(d.message);
    if (!d.object.empty()) obj.object()["object"] = json::Value(d.object);
    if (d.index >= 0) {
      obj.object()["index"] = json::Value(static_cast<std::int64_t>(d.index));
    }
    diags.array().push_back(std::move(obj));
    switch (d.severity) {
      case Severity::kError:
        ++errors;
        break;
      case Severity::kWarning:
        ++warnings;
        break;
      case Severity::kInfo:
        ++infos;
        break;
    }
  }
  root.object()["diagnostics"] = std::move(diags);

  json::Value summary = json::Value::make_object();
  summary.object()["errors"] = json::Value(errors);
  summary.object()["warnings"] = json::Value(warnings);
  summary.object()["infos"] = json::Value(infos);
  summary.object()["exit_code"] =
      json::Value(static_cast<std::int64_t>(status()));
  root.object()["summary"] = std::move(summary);

  root.object()["structurally_valid"] = json::Value(structurally_valid);
  root.object()["trivially_unsolvable"] = json::Value(trivially_unsolvable);
  root.object()["zero_round_trivial"] = json::Value(zero_round_label >= 0);
  root.object()["dead_labels"] =
      json::Value(static_cast<std::int64_t>(dead_labels));
  root.object()["fixpoint_iterations"] =
      json::Value(static_cast<std::int64_t>(fixpoint_iterations));
  if (automorphism_order > 0) {
    // Rendered as a string: the order saturates at UINT64_MAX, past the
    // JSON dialect's signed-integer range.
    root.object()["automorphism_order"] =
        json::Value((automorphism_order_saturated ? ">=" : "") +
                    std::to_string(automorphism_order));
  }
  if (structurally_valid) {
    root.object()["canonical"] = spec_to_json_value(canonical);
  }
  return root;
}

std::string LintReport::to_json() const {
  return obs::json::dump(to_json_value());
}

LintReport lint_spec(const ProblemSpec& spec, const LintOptions& options) {
  LCL_OBS_SPAN(span, "lint/run", "lint");
  LCL_OBS_COUNTER_ADD("lint.runs", 1);
  LintReport report;
  report.structurally_valid = structural_pass(spec, report.diagnostics);
  canonicalization_pass(spec, report.diagnostics);
  if (report.structurally_valid) {
    semantic_passes(canonicalize(spec), options, report);
    if (options.canonical_labels && !report.trivially_unsolvable) {
      canonical_pass(report);
    }
  } else {
    report.canonical = canonicalize(spec);
  }
  LCL_OBS_COUNTER_ADD("lint.diagnostics", report.diagnostics.size());
  LCL_OBS_COUNTER_ADD("lint.dead_labels", report.dead_labels);
  LCL_OBS_SPAN_ARG(span, "diagnostics", report.diagnostics.size());
  return report;
}

LintReport lint_problem(const NodeEdgeCheckableLcl& problem,
                        const LintOptions& options) {
  return lint_spec(spec_from_problem(problem), options);
}

PrunedProblem prune_problem(const NodeEdgeCheckableLcl& problem,
                            const LintOptions& options) {
  PrunedProblem out;
  out.report = lint_problem(problem, options);
  if (out.report.structurally_valid && !out.report.trivially_unsolvable) {
    out.problem = build_spec(out.report.canonical);
    out.changed = out.report.dead_labels > 0;
  }
  return out;
}

}  // namespace lcl::lint
