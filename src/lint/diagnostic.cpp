#include "lint/diagnostic.hpp"

#include <algorithm>
#include <sstream>

namespace lcl::lint {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << code << ' ' << lint::to_string(severity);
  if (!object.empty()) {
    os << " [" << object;
    if (index >= 0) os << ' ' << index;
    os << ']';
  }
  os << ": " << message;
  return os.str();
}

Severity max_severity(const std::vector<Diagnostic>& diagnostics) {
  Severity max = Severity::kInfo;
  for (const auto& d : diagnostics) max = std::max(max, d.severity);
  return max;
}

int exit_code(const std::vector<Diagnostic>& diagnostics) {
  switch (max_severity(diagnostics)) {
    case Severity::kError:
      return 2;
    case Severity::kWarning:
      return 1;
    case Severity::kInfo:
      return 0;
  }
  return 2;
}

}  // namespace lcl::lint
