#include "lint/spec_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lcl::lint {

namespace json = lcl::obs::json;

namespace {

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("problem spec: malformed JSON: " + what);
}

const json::Value& require(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) malformed(std::string("missing field '") + key + "'");
  return *v;
}

std::vector<std::string> parse_names(const json::Value& arr,
                                     const char* context) {
  if (!arr.is_array()) malformed(std::string(context) + ": expected array");
  std::vector<std::string> names;
  names.reserve(arr.as_array().size());
  for (const auto& v : arr.as_array()) {
    if (!v.is_string()) malformed(std::string(context) + ": expected strings");
    names.push_back(v.as_string());
  }
  return names;
}

std::vector<std::vector<std::int64_t>> parse_lists(const json::Value& arr,
                                                   const char* context) {
  if (!arr.is_array()) malformed(std::string(context) + ": expected array");
  std::vector<std::vector<std::int64_t>> lists;
  lists.reserve(arr.as_array().size());
  for (const auto& inner : arr.as_array()) {
    if (!inner.is_array()) {
      malformed(std::string(context) + ": expected array of arrays");
    }
    std::vector<std::int64_t> raw;
    raw.reserve(inner.as_array().size());
    for (const auto& v : inner.as_array()) {
      if (!v.is_number()) {
        malformed(std::string(context) + ": expected numbers");
      }
      raw.push_back(v.as_int());
    }
    lists.push_back(std::move(raw));
  }
  return lists;
}

json::Value raw_lists_to_value(
    const std::vector<std::vector<std::int64_t>>& lists) {
  json::Value arr = json::Value::make_array();
  for (const auto& list : lists) {
    json::Value inner = json::Value::make_array();
    for (const auto raw : list) inner.array().push_back(json::Value(raw));
    arr.array().push_back(std::move(inner));
  }
  return arr;
}

}  // namespace

ProblemSpec spec_from_json_value(const json::Value& value) {
  if (!value.is_object()) malformed("problem must be an object");
  ProblemSpec spec;
  const auto& name = require(value, "name");
  const auto& max_degree = require(value, "max_degree");
  if (!name.is_string() || !max_degree.is_number()) {
    malformed("'name' / 'max_degree' types");
  }
  spec.name = name.as_string();
  spec.max_degree = static_cast<int>(max_degree.as_int());
  spec.inputs = parse_names(require(value, "inputs"), "inputs");
  spec.outputs = parse_names(require(value, "outputs"), "outputs");
  spec.node_configs =
      parse_lists(require(value, "node_configs"), "node_configs");
  spec.edge_configs =
      parse_lists(require(value, "edge_configs"), "edge_configs");
  spec.g = parse_lists(require(value, "g"), "g");
  return spec;
}

ProblemSpec spec_from_json(std::string_view text, bool* wrapped) {
  std::string error;
  const auto root = json::parse(text, &error);
  if (root == nullptr) malformed(error);
  if (!root->is_object()) malformed("top level must be an object");
  const json::Value* problem = root->find("problem");
  if (wrapped != nullptr) *wrapped = problem != nullptr;
  return spec_from_json_value(problem != nullptr ? *problem : *root);
}

json::Value spec_to_json_value(const ProblemSpec& spec) {
  json::Value obj = json::Value::make_object();
  obj.object()["name"] = json::Value(spec.name);
  obj.object()["max_degree"] =
      json::Value(static_cast<std::int64_t>(spec.max_degree));
  json::Value inputs = json::Value::make_array();
  for (const auto& n : spec.inputs) inputs.array().push_back(json::Value(n));
  obj.object()["inputs"] = std::move(inputs);
  json::Value outputs = json::Value::make_array();
  for (const auto& n : spec.outputs) outputs.array().push_back(json::Value(n));
  obj.object()["outputs"] = std::move(outputs);
  obj.object()["node_configs"] = raw_lists_to_value(spec.node_configs);
  obj.object()["edge_configs"] = raw_lists_to_value(spec.edge_configs);
  obj.object()["g"] = raw_lists_to_value(spec.g);
  return obj;
}

std::string spec_to_json(const ProblemSpec& spec) {
  return json::dump(spec_to_json_value(spec));
}

ProblemSpec load_spec(const std::string& path, bool* wrapped) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("problem spec: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  try {
    return spec_from_json(buffer.str(), wrapped);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " (file: " + path + ")");
  }
}

void save_spec(const std::string& path, const ProblemSpec& spec) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("problem spec: cannot open '" + path +
                             "' for writing");
  }
  file << spec_to_json(spec) << '\n';
  if (!file.good()) {
    throw std::runtime_error("problem spec: write to '" + path + "' failed");
  }
}

}  // namespace lcl::lint
