#include "lint/sarif.hpp"

#include <cstddef>

namespace lcl::lint {

namespace json = lcl::obs::json;

const std::vector<SarifRule>& sarif_rules() {
  static const std::vector<SarifRule> kRules = {
      {Code::kAlphabetArity, "AlphabetArity",
       "Alphabet/arity consistency: undeclared labels, duplicate alphabet "
       "names, configuration arity outside [1, max_degree], malformed g "
       "table.",
       Severity::kError},
      {Code::kDeadLabel, "DeadLabel",
       "Dead output label: removed by the support fixpoint; it cannot occur "
       "in any correct solution.",
       Severity::kWarning},
      {Code::kVacuousConfig, "VacuousConfig",
       "Vacuous configuration: mentions a dead label, so it can never be "
       "realized by a correct solution.",
       Severity::kWarning},
      {Code::kStarvedInput, "StarvedInput",
       "Starved input label: every output it permitted is dead; any "
       "instance carrying it is unsolvable.",
       Severity::kWarning},
      {Code::kUnpopulatedDegree, "UnpopulatedDegree",
       "Unpopulated degree: no node configuration for some degree in "
       "[1, max_degree]; instances containing such a node are unsolvable.",
       Severity::kInfo},
      {Code::kUnsolvable, "TriviallyUnsolvable",
       "Trivially unsolvable: the pruned constraint set is empty; no graph "
       "with at least one edge admits a correct solution.",
       Severity::kError},
      {Code::kZeroRoundTrivial, "ZeroRoundTrivial",
       "0-round trivial: one label's uniform assignment satisfies every "
       "constraint.",
       Severity::kInfo},
      {Code::kDuplicateConfig, "DuplicateConfig",
       "Duplicate configuration or duplicate g entry in the spec.",
       Severity::kWarning},
      {Code::kNonCanonicalConfig, "NonCanonicalConfig",
       "Non-canonical configuration: labels not sorted ascending.",
       Severity::kInfo},
      {Code::kNonCanonicalLabels, "NonCanonicalLabels",
       "Non-canonical label order: the spec is not the canonical "
       "representative of its label-permutation class (--fix applies the "
       "permutation).",
       Severity::kInfo},
      {Code::kPermutationDuplicate, "PermutationDuplicate",
       "Permutation duplicate: the constraint system equals another spec in "
       "the batch up to an output-label permutation.",
       Severity::kWarning},
      {Code::kLabelSymmetry, "LabelSymmetry",
       "Label symmetry: the constraint system is closed under a nontrivial "
       "output-label automorphism (reported with a generating permutation).",
       Severity::kInfo},
  };
  return kRules;
}

namespace {

const char* sarif_level(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "none";
}

json::Value text_object(const std::string& text) {
  json::Value value = json::Value::make_object();
  value.object()["text"] = json::Value(text);
  return value;
}

}  // namespace

json::Value sarif_log(const std::vector<SarifArtifact>& artifacts) {
  const auto& rules = sarif_rules();

  json::Value driver = json::Value::make_object();
  driver.object()["name"] = json::Value(std::string("lcl_lint"));
  driver.object()["informationUri"] =
      json::Value(std::string("https://github.com/lclscape/lclscape"));
  driver.object()["version"] = json::Value(std::string("1.0.0"));
  json::Value rule_array = json::Value::make_array();
  for (const auto& rule : rules) {
    json::Value entry = json::Value::make_object();
    entry.object()["id"] = json::Value(std::string(rule.id));
    entry.object()["name"] = json::Value(std::string(rule.name));
    entry.object()["shortDescription"] =
        text_object(std::string(rule.short_text));
    json::Value config = json::Value::make_object();
    config.object()["level"] =
        json::Value(std::string(sarif_level(rule.level)));
    entry.object()["defaultConfiguration"] = std::move(config);
    rule_array.array().push_back(std::move(entry));
  }
  driver.object()["rules"] = std::move(rule_array);

  json::Value tool = json::Value::make_object();
  tool.object()["driver"] = std::move(driver);

  json::Value results = json::Value::make_array();
  for (const auto& artifact : artifacts) {
    for (const auto& diagnostic : artifact.diagnostics) {
      json::Value result = json::Value::make_object();
      result.object()["ruleId"] = json::Value(diagnostic.code);
      for (std::size_t i = 0; i < rules.size(); ++i) {
        if (diagnostic.code == rules[i].id) {
          result.object()["ruleIndex"] =
              json::Value(static_cast<std::int64_t>(i));
          break;
        }
      }
      result.object()["level"] =
          json::Value(std::string(sarif_level(diagnostic.severity)));
      result.object()["message"] = text_object(diagnostic.message);

      json::Value artifact_location = json::Value::make_object();
      artifact_location.object()["uri"] = json::Value(artifact.file);
      json::Value physical = json::Value::make_object();
      physical.object()["artifactLocation"] = std::move(artifact_location);
      json::Value location = json::Value::make_object();
      location.object()["physicalLocation"] = std::move(physical);
      json::Value locations = json::Value::make_array();
      locations.array().push_back(std::move(location));
      result.object()["locations"] = std::move(locations);
      results.array().push_back(std::move(result));
    }
  }

  json::Value run = json::Value::make_object();
  run.object()["tool"] = std::move(tool);
  run.object()["results"] = std::move(results);
  json::Value runs = json::Value::make_array();
  runs.array().push_back(std::move(run));

  json::Value root = json::Value::make_object();
  root.object()["$schema"] = json::Value(
      std::string("https://json.schemastore.org/sarif-2.1.0.json"));
  root.object()["version"] = json::Value(std::string("2.1.0"));
  root.object()["runs"] = std::move(runs);
  return root;
}

std::string sarif_json(const std::vector<SarifArtifact>& artifacts) {
  return json::dump(sarif_log(artifacts));
}

}  // namespace lcl::lint
