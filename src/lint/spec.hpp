#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/lcl.hpp"

namespace lcl::lint {

/// A raw, *unvalidated* problem description - what a spec file says before
/// anyone has checked it. Unlike `NodeEdgeCheckableLcl` (whose builder
/// rejects malformed input eagerly and whose `std::set` storage silently
/// canonicalizes), a `ProblemSpec` can hold every mistake the analyzer
/// exists to diagnose: out-of-range label indices, duplicate or unsorted
/// configurations, mismatched `g` tables. Label references are signed so a
/// spec file saying `-1` survives parsing and reaches the L001 pass.
struct ProblemSpec {
  std::string name;
  int max_degree = 0;
  std::vector<std::string> inputs;   // input alphabet, by index
  std::vector<std::string> outputs;  // output alphabet, by index
  std::vector<std::vector<std::int64_t>> node_configs;
  std::vector<std::vector<std::int64_t>> edge_configs;
  /// One row per input label: the outputs `g` permits for it.
  std::vector<std::vector<std::int64_t>> g;
};

/// Lossless conversion from a built problem. The result is already
/// canonical (the builder sorted and deduplicated everything), so the
/// spec-level passes are vacuously clean on it.
ProblemSpec spec_from_problem(const NodeEdgeCheckableLcl& problem);

/// Builds the problem a spec describes. The spec must be structurally valid
/// (no L001 findings); otherwise the underlying builder throws. Empty `g`
/// rows are permitted (the analyzer reports them as L012, but the pruned
/// problem of a partially starved spec must still build).
NodeEdgeCheckableLcl build_spec(const ProblemSpec& spec);

/// Canonical form: every configuration sorted ascending, configuration
/// lists sorted and deduplicated (node configurations ordered by size then
/// lexicographically), `g` rows sorted and deduplicated. Does not touch
/// alphabets or remove anything else - pruning is the analyzer's job.
ProblemSpec canonicalize(const ProblemSpec& spec);

/// Structural equality of two specs, field by field.
bool operator==(const ProblemSpec& a, const ProblemSpec& b);

}  // namespace lcl::lint
