#include "lint/spec.hpp"

#include <algorithm>
#include <stdexcept>

namespace lcl::lint {

namespace {

std::vector<std::int64_t> to_raw(const std::vector<Label>& labels) {
  return std::vector<std::int64_t>(labels.begin(), labels.end());
}

/// Node configurations order by size first: degree-1 configs before
/// degree-2, matching the per-degree layout of the built problem.
bool config_less(const std::vector<std::int64_t>& a,
                 const std::vector<std::int64_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return a < b;
}

}  // namespace

ProblemSpec spec_from_problem(const NodeEdgeCheckableLcl& problem) {
  ProblemSpec spec;
  spec.name = problem.name();
  spec.max_degree = problem.max_degree();
  for (Label l = 0; l < problem.input_alphabet().size(); ++l) {
    spec.inputs.push_back(problem.input_alphabet().name(l));
  }
  for (Label l = 0; l < problem.output_alphabet().size(); ++l) {
    spec.outputs.push_back(problem.output_alphabet().name(l));
  }
  for (int d = 1; d <= problem.max_degree(); ++d) {
    for (const auto& config : problem.node_configs(d)) {
      spec.node_configs.push_back(to_raw(config.labels()));
    }
  }
  for (const auto& config : problem.edge_configs()) {
    spec.edge_configs.push_back(to_raw(config.labels()));
  }
  for (Label in = 0; in < problem.input_alphabet().size(); ++in) {
    std::vector<std::int64_t> row;
    for (const auto out : problem.allowed_outputs(in).to_vector()) {
      row.push_back(static_cast<std::int64_t>(out));
    }
    spec.g.push_back(std::move(row));
  }
  return spec;
}

NodeEdgeCheckableLcl build_spec(const ProblemSpec& spec) {
  Alphabet input;
  for (const auto& name : spec.inputs) input.add(name);
  Alphabet output;
  for (const auto& name : spec.outputs) output.add(name);
  NodeEdgeCheckableLcl::Builder builder(spec.name, std::move(input),
                                        std::move(output), spec.max_degree);
  builder.allow_unsatisfiable_inputs();
  for (const auto& config : spec.node_configs) {
    builder.allow_node(std::vector<Label>(config.begin(), config.end()));
  }
  for (const auto& config : spec.edge_configs) {
    if (config.size() != 2) {
      throw std::invalid_argument(
          "build_spec: edge configuration must have exactly 2 labels");
    }
    builder.allow_edge(static_cast<Label>(config[0]),
                       static_cast<Label>(config[1]));
  }
  for (std::size_t in = 0; in < spec.g.size(); ++in) {
    for (const auto out : spec.g[in]) {
      builder.allow_output_for_input(static_cast<Label>(in),
                                     static_cast<Label>(out));
    }
  }
  return builder.build();
}

ProblemSpec canonicalize(const ProblemSpec& spec) {
  ProblemSpec out = spec;
  const auto canon_list = [](std::vector<std::vector<std::int64_t>>& list) {
    for (auto& config : list) std::sort(config.begin(), config.end());
    std::sort(list.begin(), list.end(), config_less);
    list.erase(std::unique(list.begin(), list.end()), list.end());
  };
  canon_list(out.node_configs);
  canon_list(out.edge_configs);
  for (auto& row : out.g) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  return out;
}

bool operator==(const ProblemSpec& a, const ProblemSpec& b) {
  return a.name == b.name && a.max_degree == b.max_degree &&
         a.inputs == b.inputs && a.outputs == b.outputs &&
         a.node_configs == b.node_configs &&
         a.edge_configs == b.edge_configs && a.g == b.g;
}

}  // namespace lcl::lint
