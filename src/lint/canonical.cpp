#include "lint/canonical.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace lcl::lint {

namespace {

using Cfg = std::vector<std::int64_t>;
using CfgList = std::vector<Cfg>;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of `v`.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

/// The order `canonicalize` keeps configuration lists in: size first, then
/// lexicographic.
bool config_less(const Cfg& a, const Cfg& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return a < b;
}

/// The label-indexed part of a spec - exactly what an output-label
/// permutation acts on. Alphabet sizes and `max_degree` are
/// permutation-invariant, so they stay outside.
struct Structure {
  CfgList node_configs;
  CfgList edge_configs;
  CfgList g;  // one sorted row per input label, index-stable
};

Structure structure_of(const ProblemSpec& spec) {
  return Structure{spec.node_configs, spec.edge_configs, spec.g};
}

/// Applies `old_to_new` and restores canonical order: every configuration
/// re-sorted, the node/edge lists re-sorted (a bijection preserves
/// distinctness, so no dedup is needed); `g` rows keep their input index.
Structure relabel(const Structure& s, const std::vector<Label>& old_to_new) {
  const auto map_list = [&old_to_new](const CfgList& list, bool resort) {
    CfgList out;
    out.reserve(list.size());
    for (const auto& cfg : list) {
      Cfg mapped;
      mapped.reserve(cfg.size());
      for (const auto raw : cfg) {
        mapped.push_back(static_cast<std::int64_t>(
            old_to_new[static_cast<std::size_t>(raw)]));
      }
      std::sort(mapped.begin(), mapped.end());
      out.push_back(std::move(mapped));
    }
    if (resort) std::sort(out.begin(), out.end(), config_less);
    return out;
  };
  Structure out;
  out.node_configs = map_list(s.node_configs, true);
  out.edge_configs = map_list(s.edge_configs, true);
  out.g = map_list(s.g, false);
  return out;
}

int compare_lists(const CfgList& a, const CfgList& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (config_less(a[i], b[i])) return -1;
    if (config_less(b[i], a[i])) return 1;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

/// Total order over relabeled structures - the "lexicographically least
/// relabeling" the branch-and-bound minimizes. Any deterministic total
/// order works; this one reads node constraints first, so canonical specs
/// front-load their smallest configurations.
int compare_structures(const Structure& a, const Structure& b) {
  if (const int c = compare_lists(a.node_configs, b.node_configs)) return c;
  if (const int c = compare_lists(a.edge_configs, b.edge_configs)) return c;
  return compare_lists(a.g, b.g);
}

bool equal_structures(const Structure& a, const Structure& b) {
  return compare_structures(a, b) == 0;
}

/// Iterated invariant refinement (1-dimensional Weisfeiler-Leman over the
/// constraint hypergraph): round 0 hashes each label's unary invariants -
/// degree participation (configuration size and own multiplicity), edge
/// partnership count, self-loop flag, and per-input `g` membership (input
/// labels are never permuted, so row indices are stable); later rounds fold
/// in the sorted colors of co-occurring labels and edge partners until the
/// partition stops growing. Colors are pure functions of
/// permutation-invariant data, so permuted copies of a spec color
/// corresponding labels identically.
std::vector<std::uint64_t> refine_colors(const Structure& s, std::size_t k) {
  std::vector<std::uint64_t> color(k, kFnvOffset);
  for (std::size_t l = 0; l < k; ++l) {
    std::uint64_t h = kFnvOffset;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> participation;
    for (const auto& cfg : s.node_configs) {
      const auto mult = static_cast<std::uint64_t>(
          std::count(cfg.begin(), cfg.end(),
                     static_cast<std::int64_t>(l)));
      if (mult > 0) participation.emplace_back(cfg.size(), mult);
    }
    std::sort(participation.begin(), participation.end());
    for (const auto& [size, mult] : participation) {
      mix(h, size);
      mix(h, mult);
    }
    mix(h, 0xC0FFEE);
    std::uint64_t partners = 0;
    bool self_loop = false;
    for (const auto& cfg : s.edge_configs) {
      const auto raw = static_cast<std::int64_t>(l);
      if (cfg.size() == 2 && (cfg[0] == raw || cfg[1] == raw)) {
        ++partners;
        if (cfg[0] == raw && cfg[1] == raw) self_loop = true;
      }
    }
    mix(h, partners);
    mix(h, self_loop ? 1 : 0);
    for (std::size_t row = 0; row < s.g.size(); ++row) {
      const bool member =
          std::binary_search(s.g[row].begin(), s.g[row].end(),
                             static_cast<std::int64_t>(l));
      mix(h, row);
      mix(h, member ? 1 : 0);
    }
    color[l] = h;
  }

  const auto distinct = [](const std::vector<std::uint64_t>& colors) {
    std::vector<std::uint64_t> sorted = colors;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    return sorted.size();
  };
  std::size_t classes = distinct(color);
  for (std::size_t round = 0; round < k && classes < k; ++round) {
    std::vector<std::uint64_t> next(k);
    for (std::size_t l = 0; l < k; ++l) {
      std::uint64_t h = kFnvOffset;
      mix(h, color[l]);
      // Node co-occurrence: one signature per occurrence of `l`, each the
      // hash of (size, sorted colors of all entries); sorted so the
      // multiset is order-independent.
      std::vector<std::uint64_t> signatures;
      for (const auto& cfg : s.node_configs) {
        const auto mult = static_cast<std::uint64_t>(
            std::count(cfg.begin(), cfg.end(),
                       static_cast<std::int64_t>(l)));
        if (mult == 0) continue;
        std::uint64_t sig = kFnvOffset;
        mix(sig, cfg.size());
        mix(sig, mult);
        std::vector<std::uint64_t> entry_colors;
        entry_colors.reserve(cfg.size());
        for (const auto raw : cfg) {
          entry_colors.push_back(color[static_cast<std::size_t>(raw)]);
        }
        std::sort(entry_colors.begin(), entry_colors.end());
        for (const auto c : entry_colors) mix(sig, c);
        signatures.push_back(sig);
      }
      std::sort(signatures.begin(), signatures.end());
      for (const auto sig : signatures) mix(h, sig);
      mix(h, 0xC0FFEE);
      // Edge partners: the multiset of partner colors.
      std::vector<std::uint64_t> partner_colors;
      for (const auto& cfg : s.edge_configs) {
        const auto raw = static_cast<std::int64_t>(l);
        if (cfg.size() != 2) continue;
        if (cfg[0] == raw) {
          partner_colors.push_back(color[static_cast<std::size_t>(cfg[1])]);
        }
        if (cfg[1] == raw && cfg[0] != raw) {
          partner_colors.push_back(color[static_cast<std::size_t>(cfg[0])]);
        }
      }
      std::sort(partner_colors.begin(), partner_colors.end());
      for (const auto c : partner_colors) mix(h, c);
      next[l] = h;
    }
    const std::size_t next_classes = distinct(next);
    if (next_classes <= classes) break;  // stable (or hash-degenerate)
    color = std::move(next);
    classes = next_classes;
  }
  return color;
}

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b,
                             bool& saturated) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    saturated = true;
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

void validate_references(const ProblemSpec& spec) {
  const auto n = static_cast<std::int64_t>(spec.outputs.size());
  const auto check = [n](const CfgList& list) {
    for (const auto& cfg : list) {
      for (const auto raw : cfg) {
        if (raw < 0 || raw >= n) {
          throw std::invalid_argument(
              "canonical_form: spec references undeclared output label #" +
              std::to_string(raw) + " (run the structural lint pass first)");
        }
      }
    }
  };
  check(spec.node_configs);
  check(spec.edge_configs);
  check(spec.g);
}

}  // namespace

ProblemSpec permute_spec(const ProblemSpec& spec,
                         const std::vector<Label>& old_to_new) {
  const std::size_t k = spec.outputs.size();
  if (old_to_new.size() != k) {
    throw std::invalid_argument(
        "permute_spec: permutation size does not match the output alphabet");
  }
  ProblemSpec out = spec;
  out.outputs.assign(k, std::string());
  for (std::size_t l = 0; l < k; ++l) {
    const auto target = static_cast<std::size_t>(old_to_new[l]);
    if (target >= k || !out.outputs[target].empty()) {
      throw std::invalid_argument(
          "permute_spec: old_to_new is not a permutation");
    }
    out.outputs[target] = spec.outputs[l];
  }
  const auto map_list = [&old_to_new](CfgList& list) {
    for (auto& cfg : list) {
      for (auto& raw : cfg) {
        raw = static_cast<std::int64_t>(
            old_to_new[static_cast<std::size_t>(raw)]);
      }
    }
  };
  map_list(out.node_configs);
  map_list(out.edge_configs);
  map_list(out.g);
  return canonicalize(out);
}

bool same_structure(const ProblemSpec& a, const ProblemSpec& b) {
  if (a.max_degree != b.max_degree || a.inputs.size() != b.inputs.size() ||
      a.outputs.size() != b.outputs.size()) {
    return false;
  }
  const ProblemSpec ca = canonicalize(a);
  const ProblemSpec cb = canonicalize(b);
  return ca.node_configs == cb.node_configs &&
         ca.edge_configs == cb.edge_configs && ca.g == cb.g;
}

CanonicalForm canonical_form(const ProblemSpec& spec,
                             const CanonicalOptions& options) {
  validate_references(spec);
  const ProblemSpec canon = canonicalize(spec);
  const std::size_t k = canon.outputs.size();

  CanonicalForm out;
  out.old_to_new.resize(k);
  std::iota(out.old_to_new.begin(), out.old_to_new.end(), Label{0});
  out.new_to_old = out.old_to_new;
  if (k <= 1) {
    out.spec = canon;
    return out;
  }

  const Structure orig = structure_of(canon);
  const auto color = refine_colors(orig, k);

  // Orbit classes: labels grouped by color, classes ordered by color value
  // (deterministic and permutation-invariant - a hash collision can only
  // merge classes, which the branch-and-bound then separates), members by
  // original index.
  struct OrbitClass {
    std::uint64_t color = 0;
    std::vector<Label> members;
    bool symmetric = false;
  };
  std::vector<OrbitClass> classes;
  {
    std::vector<std::size_t> order(k);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&color](std::size_t a, std::size_t b) {
                if (color[a] != color[b]) return color[a] < color[b];
                return a < b;
              });
    for (const auto l : order) {
      if (classes.empty() || classes.back().color != color[l]) {
        classes.push_back(OrbitClass{color[l], {}, false});
      }
      classes.back().members.push_back(static_cast<Label>(l));
    }
  }

  // Fully interchangeable classes: when every adjacent transposition of a
  // class is an automorphism of the whole structure, the transpositions
  // generate the symmetric group on the class, so any within-class order
  // yields the same relabeled structure. Fix the order (label name, so the
  // canonical form of a permuted copy is byte-identical, names included),
  // keep the class out of the search, and multiply |Aut| by |C|!. This is
  // what keeps specs with hundreds of interchangeable dead labels out of a
  // factorial search.
  for (auto& cls : classes) {
    if (cls.members.size() < 2) {
      cls.symmetric = true;  // vacuously; contributes 1! = 1
      continue;
    }
    bool symmetric = true;
    for (std::size_t i = 1; i < cls.members.size() && symmetric; ++i) {
      std::vector<Label> tau(k);
      std::iota(tau.begin(), tau.end(), Label{0});
      std::swap(tau[cls.members[i - 1]], tau[cls.members[i]]);
      symmetric = equal_structures(relabel(orig, tau), orig);
    }
    cls.symmetric = symmetric;
  }

  // Assign canonical positions class block by class block. Symmetric
  // classes are fixed; the residual ("hard") classes are broken by
  // branch-and-bound over their joint within-class orderings, minimizing
  // the relabeled structure.
  std::vector<Label> assignment(k, 0);
  std::vector<std::pair<std::vector<Label>, std::size_t>> hard;  // members, base
  std::uint64_t symmetric_order = 1;
  bool saturated = false;
  std::vector<Label> symmetric_generator;
  const auto name_less = [&canon](Label a, Label b) {
    const auto& na = canon.outputs[a];
    const auto& nb = canon.outputs[b];
    if (na != nb) return na < nb;
    return a < b;
  };
  {
    std::size_t base = 0;
    for (auto& cls : classes) {
      if (cls.symmetric) {
        // Within-class order is structurally arbitrary; ordering by name
        // makes it permutation-invariant (names ride with their labels).
        std::sort(cls.members.begin(), cls.members.end(), name_less);
        for (std::size_t i = 0; i < cls.members.size(); ++i) {
          assignment[cls.members[i]] = static_cast<Label>(base + i);
        }
        for (std::uint64_t m = 2; m <= cls.members.size(); ++m) {
          symmetric_order = saturating_mul(symmetric_order, m, saturated);
        }
        if (cls.members.size() >= 2 && symmetric_generator.empty()) {
          symmetric_generator.resize(k);
          std::iota(symmetric_generator.begin(), symmetric_generator.end(),
                    Label{0});
          std::swap(symmetric_generator[cls.members[0]],
                    symmetric_generator[cls.members[1]]);
        }
      } else {
        hard.emplace_back(cls.members, base);
      }
      base += cls.members.size();
    }
  }

  std::uint64_t leaves = 0;
  bool exhausted = false;
  bool have_best = false;
  Structure best;
  std::vector<Label> best_perm;
  std::vector<std::string> best_names;
  std::uint64_t best_count = 0;
  std::vector<Label> second_perm;

  // Canonical-position name sequence induced by a permutation. Among
  // structure-equal minima (|Aut| > 1 within hard classes) the
  // lexicographically least name sequence wins, so the canonical form of a
  // permuted copy is byte-identical, names included.
  const auto names_under = [&canon, k](const std::vector<Label>& perm) {
    std::vector<std::string> names(k);
    for (std::size_t l = 0; l < k; ++l) names[perm[l]] = canon.outputs[l];
    return names;
  };

  const auto visit_leaf = [&]() {
    ++leaves;
    Structure candidate = relabel(orig, assignment);
    if (!have_best || compare_structures(candidate, best) < 0) {
      have_best = true;
      best = std::move(candidate);
      best_perm = assignment;
      best_names = names_under(assignment);
      best_count = 1;
      second_perm.clear();
    } else if (equal_structures(candidate, best)) {
      ++best_count;
      auto names = names_under(assignment);
      if (names < best_names) {
        // Distinct leaves carry distinct assignments, so the displaced
        // best is a valid witness of a nontrivial automorphism.
        if (second_perm.empty()) second_perm = best_perm;
        best_perm = assignment;
        best_names = std::move(names);
      } else if (second_perm.empty()) {
        second_perm = assignment;
      }
    }
  };

  const auto search = [&](auto&& self, std::size_t i) -> void {
    if (exhausted && have_best) return;
    if (i == hard.size()) {
      visit_leaf();
      if (leaves >= options.max_leaves) exhausted = true;
      return;
    }
    auto members = hard[i].first;  // sorted ascending: next_permutation
    const std::size_t base = hard[i].second;
    do {
      for (std::size_t j = 0; j < members.size(); ++j) {
        assignment[members[j]] = static_cast<Label>(base + j);
      }
      self(self, i + 1);
    } while (!(exhausted && have_best) &&
             std::next_permutation(members.begin(), members.end()));
  };
  search(search, 0);

  out.complete = !exhausted;
  out.old_to_new = best_perm;
  out.new_to_old.assign(k, 0);
  for (std::size_t l = 0; l < k; ++l) {
    out.new_to_old[best_perm[l]] = static_cast<Label>(l);
  }
  out.spec = permute_spec(canon, out.old_to_new);
  out.automorphism_order =
      saturating_mul(symmetric_order, best_count, saturated);
  out.automorphism_order_saturated = saturated;
  if (!symmetric_generator.empty()) {
    out.automorphism_generator = std::move(symmetric_generator);
  } else if (!second_perm.empty()) {
    // q = p2^-1 o p1 fixes the structure: relabeling by the two
    // min-achieving permutations yields the same canonical structure.
    std::vector<Label> inverse_second(k, 0);
    for (std::size_t l = 0; l < k; ++l) {
      inverse_second[second_perm[l]] = static_cast<Label>(l);
    }
    out.automorphism_generator.resize(k);
    for (std::size_t l = 0; l < k; ++l) {
      out.automorphism_generator[l] = inverse_second[best_perm[l]];
    }
  }
  return out;
}

CanonicalForm canonical_form(const NodeEdgeCheckableLcl& problem,
                             const CanonicalOptions& options) {
  return canonical_form(spec_from_problem(problem), options);
}

std::uint64_t spec_signature(const ProblemSpec& spec) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(spec.max_degree));
  mix(h, spec.inputs.size());
  mix(h, spec.outputs.size());
  const auto mix_list = [&h](const CfgList& list, std::uint64_t marker) {
    mix(h, marker);
    for (const auto& cfg : list) {
      for (const auto raw : cfg) mix(h, static_cast<std::uint64_t>(raw));
      mix(h, 0xC0FFEE);
    }
  };
  mix_list(spec.node_configs, 0xD0);
  mix_list(spec.edge_configs, 0xE0);
  mix_list(spec.g, 0x60);
  return h;
}

std::uint64_t canonical_signature(const ProblemSpec& spec,
                                  const CanonicalOptions& options) {
  return spec_signature(canonical_form(spec, options).spec);
}

std::uint64_t canonical_signature(const NodeEdgeCheckableLcl& problem,
                                  const CanonicalOptions& options) {
  return canonical_signature(spec_from_problem(problem), options);
}

}  // namespace lcl::lint
