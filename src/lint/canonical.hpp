#pragma once

#include <cstdint>
#include <vector>

#include "core/lcl.hpp"
#include "lint/spec.hpp"

namespace lcl::lint {

/// Budgets for the canonicalization search. The invariant refinement is
/// polynomial; only the residual-orbit branch-and-bound can blow up, and
/// `max_leaves` bounds the candidate assignments it examines.
struct CanonicalOptions {
  /// Maximum complete label assignments the tie-break search may visit.
  /// Exhausting it leaves `CanonicalForm::complete == false`: the returned
  /// form is still deterministic for *this* spec, but no longer guaranteed
  /// to coincide with the form of a permuted copy.
  std::uint64_t max_leaves = 250'000;
};

/// The canonical representative of a spec under output-label permutation
/// (inputs are never permuted - `g` rows keep their index semantics),
/// together with the evidence that produced it. Follows the analyzer's
/// `old_to_new`/`new_to_old` discipline: both maps are total permutations
/// of the output alphabet (canonicalization never drops labels).
struct CanonicalForm {
  /// The representative: `permute_spec(canonicalize(input), old_to_new)`.
  /// Label *names* ride along with their labels, so two specs that are
  /// permuted copies of each other (names included) canonicalize to equal
  /// specs; name-blind comparison goes through `same_structure`.
  ProblemSpec spec;
  std::vector<Label> old_to_new;
  std::vector<Label> new_to_old;
  /// |Aut| - the number of output-label permutations fixing the constraint
  /// system. Saturates at UINT64_MAX (`automorphism_order_saturated`) when
  /// an interchangeable class alone pushes the product past 64 bits.
  std::uint64_t automorphism_order = 1;
  bool automorphism_order_saturated = false;
  /// A generating witness when the group is nontrivial: one non-identity
  /// automorphism as an old->old permutation. Empty iff the group is
  /// trivial (or the search was cut short before finding one).
  std::vector<Label> automorphism_generator;
  /// False when `max_leaves` was exhausted (see `CanonicalOptions`).
  bool complete = true;
};

/// Computes the canonical form of a *structurally valid* spec (no L001
/// findings - out-of-range label references would make the permutation
/// semantics meaningless; the analyzer guards this). Algorithm: iterated
/// invariant refinement (degree participation, edge partnerships,
/// self-loops, per-input `g` membership, then neighborhood colors to a
/// fixpoint) partitions the labels into orbits; fully interchangeable
/// classes are detected by transposition tests and ordered by label name;
/// the residual orbits are broken by branch-and-bound for the
/// lexicographically least relabeled constraint system (name-sequence
/// tie-break among structure-equal minima, so the form is deterministic
/// even when |Aut| > 1).
CanonicalForm canonical_form(const ProblemSpec& spec,
                             const CanonicalOptions& options = {});
CanonicalForm canonical_form(const NodeEdgeCheckableLcl& problem,
                             const CanonicalOptions& options = {});

/// Applies an output-label permutation (old index -> new index, total) to a
/// spec and re-canonicalizes the configuration lists, so the result is
/// sorted/deduplicated exactly like `canonicalize` output. Label names
/// follow their labels.
ProblemSpec permute_spec(const ProblemSpec& spec,
                         const std::vector<Label>& old_to_new);

/// Name-blind structural equality: same `max_degree`, same alphabet sizes,
/// and identical node/edge/g index lists. Two specs are
/// permutation-equivalent iff their (complete) canonical forms are
/// `same_structure` - this is the L051 comparison.
bool same_structure(const ProblemSpec& a, const ProblemSpec& b);

/// Order-sensitive FNV-1a digest of a spec's constraint system as written
/// (alphabet sizes, max degree, node/edge/g index lists; names excluded).
/// NOT permutation-invariant on its own - it becomes so when applied to a
/// canonical form, which is exactly how `canonical_signature` is defined.
/// Exposed so callers holding a `CanonicalForm` can key it without paying
/// the orbit search twice.
std::uint64_t spec_signature(const ProblemSpec& spec);

/// Permutation-invariant content hash: `spec_signature` of the canonical
/// form's spec. Equal for any two permutation-equivalent specs/problems;
/// collisions are possible, so consumers (the cache's canonical key tier,
/// the L051 pass) confirm candidates exactly via `same_structure` before
/// acting.
std::uint64_t canonical_signature(const ProblemSpec& spec,
                                  const CanonicalOptions& options = {});
std::uint64_t canonical_signature(const NodeEdgeCheckableLcl& problem,
                                  const CanonicalOptions& options = {});

}  // namespace lcl::lint
