#pragma once

#include <string>
#include <vector>

#include "core/lcl.hpp"
#include "lint/diagnostic.hpp"
#include "lint/spec.hpp"
#include "obs/json.hpp"

namespace lcl::lint {

/// Pass selection. Both passes are cheap (polynomial in the spec size);
/// the switches exist for callers that only need one verdict.
struct LintOptions {
  /// L010-L013, L020: the label-support fixpoint and pruning.
  bool support_fixpoint = true;
  /// L030: the uniform-label 0-round triviality check.
  bool zero_round = true;
  /// L050/L052: label-permutation canonicalization of the pruned spec
  /// (`lint/canonical.hpp`). Off by default - the engine/classifier
  /// pre-flights do not pay the orbit search; `lcl_lint` turns it on. When
  /// on, the canonicalizing permutation is folded into `canonical` and the
  /// `old_to_new`/`new_to_old` maps, so `--fix` applies it.
  bool canonical_labels = false;
};

/// Everything the analyzer learned about one spec.
struct LintReport {
  /// Marks a dead output label in `old_to_new`.
  static constexpr Label kDropped = static_cast<Label>(-1);

  std::vector<Diagnostic> diagnostics;

  /// False when L001 found structural errors; the semantic passes were
  /// skipped and `canonical` is only syntactically normalized.
  bool structurally_valid = false;

  /// The canonicalized and (when structurally valid) pruned spec - what
  /// `lcl_lint --fix` writes. Dead labels, vacuous configurations, and
  /// duplicate entries are gone; everything surviving is sorted.
  ProblemSpec canonical;

  /// Output-label mapping original -> pruned (`kDropped` for dead labels)
  /// and back. Identity-sized to the original/pruned alphabets; empty when
  /// the spec was structurally invalid.
  std::vector<Label> old_to_new;
  std::vector<Label> new_to_old;

  /// Number of support-fixpoint sweeps that removed something (0 = the spec
  /// was already fully supported; >= 2 = a cascade: deleting one label's
  /// configurations starved another).
  int fixpoint_iterations = 0;
  std::size_t dead_labels = 0;

  /// L020: the pruned constraint set is empty - no graph with at least one
  /// edge admits a correct solution.
  bool trivially_unsolvable = false;

  /// L030: original index of a label whose uniform assignment satisfies
  /// every constraint, or -1. Implies 0-round solvability (Theorem 3.10's
  /// `A_det` exists); the converse need not hold.
  std::int64_t zero_round_label = -1;

  /// L050/L052 evidence, filled only when `LintOptions::canonical_labels`
  /// ran (structurally valid, not L020-unsolvable): the automorphism-group
  /// order of the pruned constraint system (0 = pass did not run; saturates
  /// at UINT64_MAX). The canonicalizing permutation itself lives in
  /// `canonical` / `old_to_new` / `new_to_old`.
  std::uint64_t automorphism_order = 0;
  bool automorphism_order_saturated = false;
  /// True when the canonicalization search finished within budget, making
  /// `canonical` the permutation-invariant representative of its class.
  /// False when the pass did not run *or* exhausted `max_leaves` - in that
  /// case `canonical` is deterministic for this spec but two permuted
  /// copies may not coincide, so cross-file L051 comparison must skip it.
  bool canonical_complete = false;

  Severity severity() const { return max_severity(diagnostics); }
  /// 0 = clean or info only, 1 = warnings, 2 = errors.
  int status() const { return lint::exit_code(diagnostics); }
  bool clean() const { return severity() == Severity::kInfo; }

  /// One line per diagnostic plus a summary line; empty-diagnostics reports
  /// render as "clean".
  std::string to_text() const;
  /// Machine output: diagnostics, summary counts, verdicts, and (when
  /// structurally valid) the canonical spec.
  obs::json::Value to_json_value() const;
  std::string to_json() const;
};

/// Runs the pass pipeline over a raw spec:
///   1. L001 alphabet/arity consistency (+ L040/L041 canonicalization
///      findings). Errors here skip the semantic passes.
///   2. L010 support fixpoint: iteratively delete node/edge configurations
///      containing unsupported labels and labels left without support,
///      reporting dead labels (L010), vacuous configurations (L011),
///      starved inputs (L012), unpopulated degrees (L013).
///   3. L020 trivial unsolvability of the pruned constraint set.
///   4. L030 uniform-label 0-round triviality.
///   5. (opt-in) L050/L052 label-permutation canonicalization of the pruned
///      spec; the permutation composes into the label maps.
LintReport lint_spec(const ProblemSpec& spec, const LintOptions& options = {});

/// Lints an already-built problem (structural passes are vacuously clean;
/// this is the form the engine, classifiers, and fuzzer pre-flights use).
LintReport lint_problem(const NodeEdgeCheckableLcl& problem,
                        const LintOptions& options = {});

/// A built problem plus the lint evidence that produced it. `problem` is
/// only valid when the report is structurally valid and not L020-unsolvable
/// (callers must check `report.trivially_unsolvable` first).
struct PrunedProblem {
  NodeEdgeCheckableLcl problem;
  /// True when pruning removed at least one label or configuration (the
  /// built problem differs from the input).
  bool changed = false;
  LintReport report;
};

/// Pre-flight helper: lint, prune, and rebuild. Dead-label removal before
/// round elimination cuts the `2^k - 1` power-set base of `R`; solutions of
/// the pruned problem map back through `report.new_to_old`.
PrunedProblem prune_problem(const NodeEdgeCheckableLcl& problem,
                            const LintOptions& options = {});

}  // namespace lcl::lint
