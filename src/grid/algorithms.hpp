#pragma once

#include "core/lcl.hpp"
#include "grid/torus.hpp"
#include "local/sync_engine.hpp"

namespace lcl {

/// The "echo the orientation" LCL on oriented d-dimensional grids: every
/// half-edge must output its own input label. A (deterministic) 0-round
/// problem - the canonical O(1) entry of the Figure 1 (top right) panel.
NodeEdgeCheckableLcl orientation_copy_problem(int dimensions);

/// 0-round algorithm solving `orientation_copy_problem`.
class OrientationEcho final : public SynchronousAlgorithm {
 public:
  NodeState init(NodeContext& ctx) const override;
  NodeState step(NodeContext& ctx, const NodeState& self,
                 const std::vector<const NodeState*>& neighbors,
                 int round) const override;
  bool halted(const NodeContext& ctx, const NodeState& state) const override;
  std::vector<Label> finalize(const NodeContext& ctx,
                              const NodeState& state) const override;
};

/// Theta(log* n) proper coloring of oriented d-dimensional tori in the
/// PROD-LOCAL model (Definition 5.2): run Cole-Vishkin independently along
/// every dimension line - the k-th PROD-LOCAL identifier provides the
/// distinct colors along a dimension-k line, and the orientation labels
/// provide the successor direction - yielding a 3-coloring per dimension,
/// hence a proper 3^d product coloring; a greedy stage then reduces the
/// palette to 2d+1 = Delta+1.
///
/// Expects `OrientedTorus::orientation_input()` as the input labeling and
/// the PROD-LOCAL id tuples as `NodeContext::aux` (pass
/// `ProdLocalIds::all_tuples` to `run_synchronous`).
class GridColoring final : public SynchronousAlgorithm {
 public:
  /// `per_dim_id_range`: strict upper bound on every per-dimension
  /// identifier (use `prod_id_range`).
  GridColoring(int dimensions, std::uint64_t per_dim_id_range);

  NodeState init(NodeContext& ctx) const override;
  NodeState step(NodeContext& ctx, const NodeState& self,
                 const std::vector<const NodeState*>& neighbors,
                 int round) const override;
  bool halted(const NodeContext& ctx, const NodeState& state) const override;
  std::vector<Label> finalize(const NodeContext& ctx,
                              const NodeState& state) const override;

  int colors() const noexcept { return 2 * dimensions_ + 1; }
  int total_rounds() const noexcept;
  int cole_vishkin_rounds() const noexcept { return shrink_rounds_ + 3; }

 private:
  int product_palette() const noexcept;

  int dimensions_;
  std::uint64_t per_dim_id_range_;
  int shrink_rounds_;
};

}  // namespace lcl
