#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/labeling.hpp"
#include "util/rng.hpp"

namespace lcl {

/// An oriented d-dimensional toroidal grid (Section 5): nodes are the
/// points of `Z_{e_0} x .. x Z_{e_{d-1}}`; each node has one forward and
/// one backward edge per dimension, and every half-edge carries an input
/// label identifying its dimension and direction (`0+`, `0-`, `1+`, ...).
/// This is exactly the "edges labeled with [d], consistently oriented"
/// structure of Definition 5.2's model; the torus wraps around (the paper's
/// toroidal assumption).
///
/// Ports carry no fixed meaning; algorithms locate their dimension-k
/// forward/backward ports through the orientation input labels, exactly as
/// the paper's model conveys the orientation. Every extent must be >= 3
/// (smaller extents create parallel edges or self-loops, which simple
/// graphs exclude).
class OrientedTorus {
 public:
  explicit OrientedTorus(std::vector<std::size_t> extents);

  const Graph& graph() const noexcept { return graph_; }
  int dimensions() const noexcept { return static_cast<int>(extents_.size()); }
  std::size_t extent(int dim) const;
  std::size_t node_count() const noexcept { return graph_.node_count(); }

  NodeId node_at(const std::vector<std::size_t>& coords) const;
  std::vector<std::size_t> coords_of(NodeId v) const;

  /// Input labeling with the orientation labels: half-edge (v, port 2k)
  /// gets `forward_label(k)`, (v, port 2k+1) gets `backward_label(k)`.
  HalfEdgeLabeling orientation_input() const;

  /// Input label marking the tail side of a dimension-k edge.
  static Label forward_label(int dim) { return static_cast<Label>(2 * dim); }
  /// Input label marking the head side of a dimension-k edge.
  static Label backward_label(int dim) {
    return static_cast<Label>(2 * dim + 1);
  }
  /// Size of the orientation input alphabet: 2 per dimension.
  std::size_t orientation_alphabet_size() const {
    return 2 * static_cast<std::size_t>(dimensions());
  }

 private:
  std::vector<std::size_t> extents_;
  std::vector<std::size_t> strides_;
  Graph graph_;
};

/// The PROD-LOCAL identifier assignment (Definition 5.2): node u receives d
/// identifiers, one per dimension, such that two nodes share their k-th
/// identifier iff they share their k-th coordinate.
struct ProdLocalIds {
  /// per_coordinate[k][c] = the k-th identifier of every node whose k-th
  /// coordinate is c.
  std::vector<std::vector<std::uint64_t>> per_coordinate;

  /// The d-tuple for one node, in the `NodeContext::aux` format.
  std::vector<std::uint64_t> tuple_for(const OrientedTorus& torus,
                                       NodeId v) const;
  /// Tuples for all nodes (indexable by NodeId).
  std::vector<std::vector<std::uint64_t>> all_tuples(
      const OrientedTorus& torus) const;
};

/// Random distinct per-dimension identifiers from a polynomial range.
ProdLocalIds random_prod_ids(const OrientedTorus& torus, SplitRng& rng);

/// Proposition 5.3's packing: globally unique identifiers
/// `I = sum_k id_k * range^k` derived from PROD-LOCAL identifiers, letting
/// ordinary LOCAL algorithms run in the PROD-LOCAL model.
IdAssignment combined_ids(const OrientedTorus& torus,
                          const ProdLocalIds& prod);

/// The smallest power of two strictly above every per-dimension identifier
/// (the per-dimension id range used by grid Cole-Vishkin).
std::uint64_t prod_id_range(const ProdLocalIds& prod);

}  // namespace lcl
