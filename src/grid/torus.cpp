#include "grid/torus.hpp"

#include <set>
#include <stdexcept>

#include "util/math.hpp"

namespace lcl {

OrientedTorus::OrientedTorus(std::vector<std::size_t> extents)
    : extents_(std::move(extents)) {
  if (extents_.empty()) {
    throw std::invalid_argument("OrientedTorus: need >= 1 dimension");
  }
  std::size_t total = 1;
  strides_.resize(extents_.size());
  for (std::size_t k = 0; k < extents_.size(); ++k) {
    if (extents_[k] < 3) {
      throw std::invalid_argument(
          "OrientedTorus: every extent must be >= 3 (smaller tori are not "
          "simple graphs)");
    }
    strides_[k] = total;
    total *= extents_[k];
  }

  Graph::Builder builder(total);
  // Edges are inserted per dimension in node-id order, each as
  // (tail, forward neighbor). Port numbers at a node consequently depend on
  // insertion order, NOT on a fixed (2k, 2k+1) scheme; algorithms locate
  // their dimension-k ports through the orientation input labels - which is
  // also how the paper's model conveys the orientation.
  for (std::size_t k = 0; k < extents_.size(); ++k) {
    for (NodeId v = 0; v < total; ++v) {
      const auto coords = [&] {
        std::vector<std::size_t> c(extents_.size());
        std::size_t rest = v;
        for (std::size_t j = 0; j < extents_.size(); ++j) {
          c[j] = rest % extents_[j];
          rest /= extents_[j];
        }
        return c;
      }();
      auto forward = coords;
      forward[k] = (forward[k] + 1) % extents_[k];
      std::size_t w = 0;
      for (std::size_t j = 0; j < extents_.size(); ++j) {
        w += forward[j] * strides_[j];
      }
      builder.add_edge(v, static_cast<NodeId>(w));
    }
  }
  graph_ = builder.build();
}

std::size_t OrientedTorus::extent(int dim) const {
  if (dim < 0 || dim >= dimensions()) {
    throw std::out_of_range("OrientedTorus: bad dimension");
  }
  return extents_[static_cast<std::size_t>(dim)];
}

NodeId OrientedTorus::node_at(const std::vector<std::size_t>& coords) const {
  if (coords.size() != extents_.size()) {
    throw std::invalid_argument("OrientedTorus::node_at: wrong arity");
  }
  std::size_t v = 0;
  for (std::size_t k = 0; k < extents_.size(); ++k) {
    if (coords[k] >= extents_[k]) {
      throw std::out_of_range("OrientedTorus::node_at: coordinate too large");
    }
    v += coords[k] * strides_[k];
  }
  return static_cast<NodeId>(v);
}

std::vector<std::size_t> OrientedTorus::coords_of(NodeId v) const {
  if (v >= graph_.node_count()) {
    throw std::out_of_range("OrientedTorus::coords_of: bad node");
  }
  std::vector<std::size_t> coords(extents_.size());
  std::size_t rest = v;
  for (std::size_t k = 0; k < extents_.size(); ++k) {
    coords[k] = rest % extents_[k];
    rest /= extents_[k];
  }
  return coords;
}

HalfEdgeLabeling OrientedTorus::orientation_input() const {
  HalfEdgeLabeling input(graph_.half_edge_count(), 0);
  for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
    const auto [tail, head] = graph_.endpoints(e);
    // Edges were inserted as (v, forward-neighbor), so `tail` is the tail.
    // Determine the dimension from the coordinate difference.
    const auto ct = coords_of(tail);
    const auto ch = coords_of(head);
    int dim = -1;
    for (std::size_t k = 0; k < extents_.size(); ++k) {
      if (ct[k] != ch[k]) {
        dim = static_cast<int>(k);
        break;
      }
    }
    input[graph_.half_edge_of(tail, e)] = forward_label(dim);
    input[graph_.half_edge_of(head, e)] = backward_label(dim);
  }
  return input;
}

std::vector<std::uint64_t> ProdLocalIds::tuple_for(const OrientedTorus& torus,
                                                   NodeId v) const {
  const auto coords = torus.coords_of(v);
  std::vector<std::uint64_t> tuple(coords.size());
  for (std::size_t k = 0; k < coords.size(); ++k) {
    tuple[k] = per_coordinate[k][coords[k]];
  }
  return tuple;
}

std::vector<std::vector<std::uint64_t>> ProdLocalIds::all_tuples(
    const OrientedTorus& torus) const {
  std::vector<std::vector<std::uint64_t>> tuples(torus.node_count());
  for (NodeId v = 0; v < torus.node_count(); ++v) {
    tuples[v] = tuple_for(torus, v);
  }
  return tuples;
}

ProdLocalIds random_prod_ids(const OrientedTorus& torus, SplitRng& rng) {
  ProdLocalIds prod;
  prod.per_coordinate.resize(static_cast<std::size_t>(torus.dimensions()));
  const std::uint64_t range =
      std::max<std::uint64_t>(torus.node_count() * torus.node_count(), 64);
  for (int k = 0; k < torus.dimensions(); ++k) {
    auto& ids = prod.per_coordinate[static_cast<std::size_t>(k)];
    std::set<std::uint64_t> used;
    for (std::size_t c = 0; c < torus.extent(k); ++c) {
      std::uint64_t id = 1 + rng.next_below(range);
      while (used.count(id) != 0) id = 1 + rng.next_below(range);
      used.insert(id);
      ids.push_back(id);
    }
  }
  return prod;
}

IdAssignment combined_ids(const OrientedTorus& torus,
                          const ProdLocalIds& prod) {
  const std::uint64_t range = prod_id_range(prod);
  IdAssignment ids(torus.node_count());
  for (NodeId v = 0; v < torus.node_count(); ++v) {
    const auto tuple = prod.tuple_for(torus, v);
    std::uint64_t packed = 0;
    for (std::size_t k = tuple.size(); k-- > 0;) {
      packed = packed * range + tuple[k];
    }
    ids[v] = packed;
  }
  return ids;
}

std::uint64_t prod_id_range(const ProdLocalIds& prod) {
  std::uint64_t max_id = 0;
  for (const auto& dim : prod.per_coordinate) {
    for (const auto id : dim) max_id = std::max(max_id, id);
  }
  return std::uint64_t{1} << (floor_log2(std::max<std::uint64_t>(max_id, 1)) +
                              1);
}

}  // namespace lcl
