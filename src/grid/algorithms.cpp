#include "grid/algorithms.hpp"

#include <stdexcept>
#include <string>

#include "local/cole_vishkin.hpp"

namespace lcl {

NodeEdgeCheckableLcl orientation_copy_problem(int dimensions) {
  if (dimensions < 1) {
    throw std::invalid_argument("orientation_copy_problem: dimensions >= 1");
  }
  std::vector<std::string> names;
  for (int k = 0; k < dimensions; ++k) {
    names.push_back(std::to_string(k) + "+");
    names.push_back(std::to_string(k) + "-");
  }
  NodeEdgeCheckableLcl::Builder b("orientation-copy", Alphabet(names),
                                  Alphabet(names), 2 * dimensions);
  std::vector<Label> full_config;
  for (int k = 0; k < dimensions; ++k) {
    full_config.push_back(OrientedTorus::forward_label(k));
    full_config.push_back(OrientedTorus::backward_label(k));
    b.allow_edge(OrientedTorus::forward_label(k),
                 OrientedTorus::backward_label(k));
  }
  b.allow_node(full_config);
  for (Label l = 0; l < static_cast<Label>(2 * dimensions); ++l) {
    b.allow_output_for_input(l, l);
  }
  return b.build();
}

NodeState OrientationEcho::init(NodeContext& ctx) const {
  (void)ctx;
  return {0};
}

NodeState OrientationEcho::step(NodeContext& ctx, const NodeState& self,
                                const std::vector<const NodeState*>&,
                                int) const {
  (void)ctx;
  return self;
}

bool OrientationEcho::halted(const NodeContext&, const NodeState&) const {
  return true;  // 0 rounds
}

std::vector<Label> OrientationEcho::finalize(const NodeContext& ctx,
                                             const NodeState&) const {
  return ctx.inputs;
}

namespace {

/// Port of `ctx` whose input label equals `label`; throws if absent or
/// duplicated (a torus node has exactly one port per orientation label).
int port_with_input(const NodeContext& ctx, Label label) {
  int found = -1;
  for (int p = 0; p < ctx.degree; ++p) {
    if (ctx.inputs[static_cast<std::size_t>(p)] == label) {
      if (found != -1) {
        throw std::invalid_argument(
            "GridColoring: duplicate orientation label at a node");
      }
      found = p;
    }
  }
  if (found == -1) {
    throw std::invalid_argument(
        "GridColoring: missing orientation label at a node (is the input "
        "OrientedTorus::orientation_input()?)");
  }
  return found;
}

}  // namespace

GridColoring::GridColoring(int dimensions, std::uint64_t per_dim_id_range)
    : dimensions_(dimensions),
      per_dim_id_range_(per_dim_id_range),
      shrink_rounds_(ColeVishkin(per_dim_id_range).shrink_rounds()) {
  if (dimensions < 1) {
    throw std::invalid_argument("GridColoring: dimensions >= 1");
  }
}

int GridColoring::product_palette() const noexcept {
  int palette = 1;
  for (int k = 0; k < dimensions_; ++k) palette *= 3;
  return palette;
}

int GridColoring::total_rounds() const noexcept {
  const int greedy = product_palette() - colors();
  return cole_vishkin_rounds() + (greedy > 0 ? greedy : 0);
}

NodeState GridColoring::init(NodeContext& ctx) const {
  const auto d = static_cast<std::size_t>(dimensions_);
  if (ctx.aux.size() != d) {
    throw std::invalid_argument(
        "GridColoring: NodeContext::aux must hold the d PROD-LOCAL "
        "identifiers (pass ProdLocalIds::all_tuples to run_synchronous)");
  }
  NodeState state(d + 2, 0);
  for (std::size_t k = 0; k < d; ++k) {
    if (ctx.aux[k] >= per_dim_id_range_) {
      throw std::invalid_argument(
          "GridColoring: PROD-LOCAL identifier outside declared range");
    }
    state[k] = ctx.aux[k];
  }
  return state;
}

NodeState GridColoring::step(NodeContext& ctx, const NodeState& self,
                             const std::vector<const NodeState*>& neighbors,
                             int round) const {
  const auto d = static_cast<std::size_t>(dimensions_);
  NodeState next = self;
  next[d] = static_cast<std::uint64_t>(round);

  if (round <= shrink_rounds_) {
    // Cole-Vishkin shrink step, independently per dimension (no endpoints
    // on a torus).
    for (std::size_t k = 0; k < d; ++k) {
      const int sp =
          port_with_input(ctx, OrientedTorus::forward_label(static_cast<int>(k)));
      const std::uint64_t own = self[k];
      const std::uint64_t succ =
          (*neighbors[static_cast<std::size_t>(sp)])[k];
      if (succ == own) {
        throw std::logic_error("GridColoring: equal colors along a line");
      }
      const std::uint64_t diff = own ^ succ;
      std::uint64_t i = 0;
      while (((diff >> i) & 1) == 0) ++i;
      next[k] = 2 * i + ((own >> i) & 1);
    }
    return next;
  }

  if (round <= cole_vishkin_rounds()) {
    // 6 -> 3 reduction per dimension; this round removes color `target`.
    const std::uint64_t target =
        5 - static_cast<std::uint64_t>(round - shrink_rounds_ - 1);
    for (std::size_t k = 0; k < d; ++k) {
      if (self[k] != target) continue;
      const int fp =
          port_with_input(ctx, OrientedTorus::forward_label(static_cast<int>(k)));
      const int bp = port_with_input(
          ctx, OrientedTorus::backward_label(static_cast<int>(k)));
      for (std::uint64_t c = 0; c < 3; ++c) {
        if ((*neighbors[static_cast<std::size_t>(fp)])[k] != c &&
            (*neighbors[static_cast<std::size_t>(bp)])[k] != c) {
          next[k] = c;
          break;
        }
      }
    }
    if (round == cole_vishkin_rounds()) {
      // Per-dimension palettes are now {0,1,2}: form the product color.
      std::uint64_t product = 0;
      for (std::size_t k = d; k-- > 0;) product = product * 3 + next[k];
      next[d + 1] = product;
    }
    return next;
  }

  // Greedy reduction of the 3^d product palette down to 2d+1.
  const int j = round - cole_vishkin_rounds() - 1;  // 0-based greedy round
  const std::uint64_t target =
      static_cast<std::uint64_t>(product_palette() - 1 - j);
  if (self[d + 1] == target) {
    for (std::uint64_t c = 0; c < static_cast<std::uint64_t>(colors()); ++c) {
      bool used = false;
      for (const NodeState* nb : neighbors) {
        if ((*nb)[d + 1] == c) used = true;
      }
      if (!used) {
        next[d + 1] = c;
        break;
      }
    }
  }
  return next;
}

bool GridColoring::halted(const NodeContext& ctx,
                          const NodeState& state) const {
  (void)ctx;
  return state[static_cast<std::size_t>(dimensions_)] >=
         static_cast<std::uint64_t>(total_rounds());
}

std::vector<Label> GridColoring::finalize(const NodeContext& ctx,
                                          const NodeState& state) const {
  return std::vector<Label>(
      static_cast<std::size_t>(ctx.degree),
      static_cast<Label>(state[static_cast<std::size_t>(dimensions_) + 1]));
}

}  // namespace lcl
