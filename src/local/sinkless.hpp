#pragma once

#include "local/sync_engine.hpp"

namespace lcl {

/// Deterministic sinkless orientation on trees with maximum degree `Delta`
/// (the problem of `problems::sinkless_orientation`): every node of degree
/// exactly Delta must get an outgoing edge.
///
/// Algorithm: a BFS wave computes each node's distance to the nearest node
/// of degree < Delta; each full-degree node then orients the edge toward a
/// neighbor strictly closer to such a node (no two nodes ever claim the
/// same edge in opposite directions, since claimed edges always point
/// "downhill"), and every unclaimed edge is oriented toward its
/// smaller-ID endpoint.
///
/// Round complexity: the wave needs max_v dist(v) rounds, and a ball of
/// radius r all of whose nodes have degree Delta contains
/// Delta*(Delta-1)^(r-1) nodes, so dist <= log_{Delta-1} n + O(1): a
/// Theta(log n) deterministic algorithm - the Figure 1 (top left) witness
/// for the "Theta(log n) deterministic / Theta(log log n) randomized"
/// class. On complete Delta-regular trees the measured rounds follow
/// log n closely.
class SinklessOrientationTree final : public SynchronousAlgorithm {
 public:
  explicit SinklessOrientationTree(int max_degree);

  NodeState init(NodeContext& ctx) const override;
  NodeState step(NodeContext& ctx, const NodeState& self,
                 const std::vector<const NodeState*>& neighbors,
                 int round) const override;
  bool halted(const NodeContext& ctx, const NodeState& state) const override;
  std::vector<Label> finalize(const NodeContext& ctx,
                              const NodeState& state) const override;

  static constexpr Label kOut = 0;
  static constexpr Label kIn = 1;

 private:
  int max_degree_;
};

}  // namespace lcl
