#pragma once

#include <cstdint>
#include <vector>

#include "local/sync_engine.hpp"

namespace lcl {

/// The deterministic palette schedule of Linial's coloring algorithm.
///
/// Starting from a palette of `id_range` colors (colors = identifiers), each
/// iteration maps a palette of size `m` to one of size `q^2` using a
/// polynomial cover-free family over GF(q): a color `c < m` is read as the
/// base-`q` digit vector of `c`, i.e. a polynomial `p_c` of degree `< d`
/// with `q^d >= m`; a node picks an evaluation point `x` where its
/// polynomial differs from all neighbors' polynomials (possible whenever
/// `q >= Delta*(d-1) + 1`) and adopts the new color `(x, p_c(x))`.
/// Iterating until the palette stops shrinking takes Theta(log* id_range)
/// steps and ends with an O(Delta^2 log^2 Delta) palette - this is the
/// Theta(log* n) stage the paper's class (B) problems live in.
struct LinialSchedule {
  struct Step {
    std::uint64_t palette;  // palette size before this step
    std::uint64_t q;        // field size used in this step
    int digits;             // polynomial degree bound d
  };
  std::vector<Step> steps;
  std::uint64_t final_palette = 0;  // palette size after the last step

  /// Computes the schedule for a given starting palette and max degree.
  static LinialSchedule compute(std::uint64_t id_range, int max_degree);
};

/// Linial's (Delta+1)-coloring: the schedule above, followed by one
/// color-removal round per color to shrink the O(Delta^2 log^2 Delta)
/// palette greedily down to Delta+1. Total round count:
/// Theta(log* id_range) + O(Delta^2 log^2 Delta), i.e. Theta(log* n) for
/// constant Delta. The output labeling writes each node's final color on
/// all its half-edges (the `problems::coloring` encoding).
///
/// Requires all identifiers to be < `id_range`.
class LinialColoring final : public SynchronousAlgorithm {
 public:
  LinialColoring(int max_degree, std::uint64_t id_range);

  NodeState init(NodeContext& ctx) const override;
  NodeState step(NodeContext& ctx, const NodeState& self,
                 const std::vector<const NodeState*>& neighbors,
                 int round) const override;
  bool halted(const NodeContext& ctx, const NodeState& state) const override;
  std::vector<Label> finalize(const NodeContext& ctx,
                              const NodeState& state) const override;

  /// Number of colors in the final proper coloring (= max_degree + 1).
  int colors() const noexcept { return max_degree_ + 1; }
  /// Total rounds the algorithm needs (its halting schedule).
  int total_rounds() const noexcept;
  /// Rounds taken by the log*-stage alone (the palette schedule).
  int schedule_rounds() const noexcept {
    return static_cast<int>(schedule_.steps.size());
  }

  /// Reads the per-node colors out of the final half-edge labeling.
  static std::vector<Label> node_colors(const Graph& graph,
                                        const HalfEdgeLabeling& output);

 private:
  int max_degree_;
  std::uint64_t id_range_;
  LinialSchedule schedule_;
};

}  // namespace lcl
