#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "local/view.hpp"
#include "util/rng.hpp"

namespace lcl {

/// Marker base class for algorithms that promise order-invariance
/// (Definition 2.7): their output may depend only on the *relative order*
/// of the identifiers in the view, never on their values. The promise is
/// checked empirically by `check_order_invariance`, not enforced by the
/// type system.
class OrderInvariantBallAlgorithm : public BallAlgorithm {};

/// Theorem 2.11 for the LOCAL model: an order-invariant algorithm with
/// radius f(n) = o(log n) can be frozen at a fixed n0 - always executing
/// `inner` with advertised size min(n, n0) - yielding a correct O(1)-round
/// order-invariant algorithm. (Correctness needs `inner` to be genuinely
/// order-invariant and n0 large enough for the Delta^(r+1)*(T(n0)+1) <=
/// n0/Delta counting argument; the wrapper checks neither - tests do.)
class FrozenOrderInvariantAlgorithm final
    : public OrderInvariantBallAlgorithm {
 public:
  FrozenOrderInvariantAlgorithm(const OrderInvariantBallAlgorithm& inner,
                                std::size_t n0);

  int radius(std::size_t advertised_n) const override;
  std::vector<Label> outputs(const LocalView& view) const override;

 private:
  const OrderInvariantBallAlgorithm& inner_;
  std::size_t n0_;
};

/// Property test for Definition 2.7: runs `algorithm` on `graph` under
/// `trials` random order-preserving remappings of `ids` and reports whether
/// every run produced the same output labeling. A false return gives a
/// counterexample to order-invariance; true means no violation was found.
bool check_order_invariance(const BallAlgorithm& algorithm,
                            const Graph& graph, const HalfEdgeLabeling& input,
                            const IdAssignment& ids, int trials,
                            SplitRng& rng);

/// A 1-round order-invariant algorithm producing the
/// `problems::any_orientation` encoding: each edge is oriented toward its
/// larger-ID endpoint. Used as the canonical O(1)-class witness.
class OrientByIdOrder final : public OrderInvariantBallAlgorithm {
 public:
  int radius(std::size_t advertised_n) const override;
  std::vector<Label> outputs(const LocalView& view) const override;

  static constexpr Label kOut = 0;
  static constexpr Label kIn = 1;
};

/// The same orientation algorithm padded to a wastefully large radius
/// (about log2(log2(n))): still order-invariant and correct, but with
/// super-constant round complexity o(log n) - precisely the kind of
/// algorithm Theorem 2.11's freezing collapses to O(1).
class WastefulOrientByIdOrder final : public OrderInvariantBallAlgorithm {
 public:
  int radius(std::size_t advertised_n) const override;
  std::vector<Label> outputs(const LocalView& view) const override;
};

}  // namespace lcl
