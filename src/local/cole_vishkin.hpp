#pragma once

#include <cstdint>

#include "local/sync_engine.hpp"

namespace lcl {

/// Builds the input labeling that orients a path or cycle produced by
/// `make_path` / `make_cycle`: the half-edge of node `i` on the edge toward
/// node `i+1 (mod n)` is labeled `kSuccessor`, all other half-edges
/// `kPlain`. Cole-Vishkin needs such a consistent orientation; on oriented
/// grids (Section 5) the dimension labels provide it for free.
inline constexpr Label kCvPlain = 0;
inline constexpr Label kCvSuccessor = 1;

HalfEdgeLabeling chain_orientation_input(const Graph& graph, bool is_cycle);

/// Cole-Vishkin 3-coloring of consistently oriented paths/cycles
/// (max degree 2): the classic "compare with successor, keep (index, bit)
/// of the lowest differing bit" color reduction, reaching 6 colors in
/// Theta(log* id_range) rounds, then 3 greedy rounds down to 3 colors.
/// This is the textbook member of the paper's class (B).
class ColeVishkin final : public SynchronousAlgorithm {
 public:
  explicit ColeVishkin(std::uint64_t id_range);

  NodeState init(NodeContext& ctx) const override;
  NodeState step(NodeContext& ctx, const NodeState& self,
                 const std::vector<const NodeState*>& neighbors,
                 int round) const override;
  bool halted(const NodeContext& ctx, const NodeState& state) const override;
  std::vector<Label> finalize(const NodeContext& ctx,
                              const NodeState& state) const override;

  /// Rounds of the bit-shrinking stage (Theta(log* id_range)).
  int shrink_rounds() const noexcept { return shrink_rounds_; }
  /// Total rounds including the 6 -> 3 reduction.
  int total_rounds() const noexcept { return shrink_rounds_ + 3; }

 private:
  std::uint64_t id_range_;
  int shrink_rounds_;
};

}  // namespace lcl
