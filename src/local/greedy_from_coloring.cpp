#include "local/greedy_from_coloring.hpp"

#include <stdexcept>

namespace lcl {

namespace {
// Shared head of the state layout (must match LinialColoring's layout so the
// coloring stage can be delegated verbatim).
constexpr std::size_t kColor = 0;
constexpr std::size_t kRoundsDone = 1;

// MIS-specific fields.
constexpr std::size_t kMisStatus = 2;  // 0 undecided, 1 in MIS, 2 dominated
constexpr std::size_t kPointer = 3;    // pointer port + 1; 0 = none

// Matching-specific fields.
constexpr std::size_t kMatched = 2;       // 0/1
constexpr std::size_t kMatchedPort = 3;   // port + 1
constexpr std::size_t kMatchedRound = 4;  // round at which we got matched
constexpr std::size_t kProposal = 5;      // proposed port + 1; 0 = none
}  // namespace

MisByColoring::MisByColoring(int max_degree, std::uint64_t id_range)
    : max_degree_(max_degree), coloring_(max_degree, id_range) {}

int MisByColoring::total_rounds() const noexcept {
  // Coloring, then one join round per color class, then the pointer round.
  return coloring_.total_rounds() + (max_degree_ + 1) + 1;
}

NodeState MisByColoring::init(NodeContext& ctx) const {
  NodeState state = coloring_.init(ctx);
  state.resize(4, 0);
  return state;
}

NodeState MisByColoring::step(NodeContext& ctx, const NodeState& self,
                              const std::vector<const NodeState*>& neighbors,
                              int round) const {
  const int coloring_rounds = coloring_.total_rounds();
  if (round <= coloring_rounds) {
    // LinialColoring only touches fields 0 and 1 and copies the rest.
    return coloring_.step(ctx, self, neighbors, round);
  }
  NodeState next = self;
  next[kRoundsDone] = static_cast<std::uint64_t>(round);

  const int sweep = round - coloring_rounds;  // 1-based sweep index
  if (sweep <= max_degree_ + 1) {
    // Color class sweep: class (sweep-1) decides now.
    const std::uint64_t my_class = static_cast<std::uint64_t>(sweep - 1);
    if (self[kMisStatus] == 0 && self[kColor] == my_class) {
      bool dominated = false;
      for (const NodeState* nb : neighbors) {
        if ((*nb)[kMisStatus] == 1) dominated = true;
      }
      next[kMisStatus] = dominated ? 2 : 1;
    }
    return next;
  }

  // Pointer round: dominated nodes record the smallest port leading into
  // the MIS.
  if (self[kMisStatus] == 2) {
    for (std::size_t p = 0; p < neighbors.size(); ++p) {
      if ((*neighbors[p])[kMisStatus] == 1) {
        next[kPointer] = static_cast<std::uint64_t>(p) + 1;
        break;
      }
    }
    if (next[kPointer] == 0) {
      throw std::logic_error(
          "MisByColoring: dominated node has no MIS neighbor (bug)");
    }
  }
  return next;
}

bool MisByColoring::halted(const NodeContext& ctx,
                           const NodeState& state) const {
  (void)ctx;
  return state[kRoundsDone] >= static_cast<std::uint64_t>(total_rounds());
}

std::vector<Label> MisByColoring::finalize(const NodeContext& ctx,
                                           const NodeState& state) const {
  std::vector<Label> out(static_cast<std::size_t>(ctx.degree), kO);
  if (state[kMisStatus] == 1) {
    for (auto& l : out) l = kI;
  } else {
    out[static_cast<std::size_t>(state[kPointer] - 1)] = kP;
  }
  return out;
}

MatchingByColoring::MatchingByColoring(int max_degree, std::uint64_t id_range)
    : max_degree_(max_degree), coloring_(max_degree, id_range) {}

int MatchingByColoring::total_rounds() const noexcept {
  // Coloring, then 3 rounds (propose / accept / confirm) per schedule step
  // (c, p) with c in [0, max_degree] and p in [0, max_degree).
  return coloring_.total_rounds() + 3 * (max_degree_ + 1) * max_degree_;
}

NodeState MatchingByColoring::init(NodeContext& ctx) const {
  NodeState state = coloring_.init(ctx);
  state.resize(6, 0);
  return state;
}

NodeState MatchingByColoring::step(
    NodeContext& ctx, const NodeState& self,
    const std::vector<const NodeState*>& neighbors, int round) const {
  const int coloring_rounds = coloring_.total_rounds();
  if (round <= coloring_rounds) {
    return coloring_.step(ctx, self, neighbors, round);
  }
  NodeState next = self;
  next[kRoundsDone] = static_cast<std::uint64_t>(round);

  const int offset = round - coloring_rounds - 1;  // 0-based in this stage
  const int stage = offset / 3;                    // schedule step (c, p)
  const int phase = offset % 3;                    // 0 propose, 1 accept, 2 confirm
  const std::uint64_t color = static_cast<std::uint64_t>(stage / max_degree_);
  const int port = stage % max_degree_;

  if (phase == 0) {
    next[kProposal] = 0;
    if (self[kMatched] == 0 && self[kColor] == color && port < ctx.degree) {
      next[kProposal] = static_cast<std::uint64_t>(port) + 1;
    }
    return next;
  }

  if (phase == 1) {
    // Accept: unmatched non-proposers take the smallest incoming proposal.
    if (self[kMatched] == 1 || self[kProposal] != 0) return next;
    for (std::size_t p = 0; p < neighbors.size(); ++p) {
      const NodeState& nb = *neighbors[p];
      const std::uint64_t expected =
          static_cast<std::uint64_t>(ctx.twin_ports[p]) + 1;
      if (nb[kMatched] == 0 && nb[kProposal] == expected) {
        next[kMatched] = 1;
        next[kMatchedPort] = static_cast<std::uint64_t>(p) + 1;
        next[kMatchedRound] = static_cast<std::uint64_t>(round);
        break;
      }
    }
    return next;
  }

  // Confirm: a proposer learns whether its target accepted it this stage.
  next[kProposal] = 0;
  if (self[kMatched] == 0 && self[kProposal] != 0) {
    const std::size_t p = static_cast<std::size_t>(self[kProposal] - 1);
    const NodeState& nb = *neighbors[p];
    if (nb[kMatched] == 1 &&
        nb[kMatchedRound] == static_cast<std::uint64_t>(round - 1) &&
        nb[kMatchedPort] ==
            static_cast<std::uint64_t>(ctx.twin_ports[p]) + 1) {
      next[kMatched] = 1;
      next[kMatchedPort] = self[kProposal];
      next[kMatchedRound] = static_cast<std::uint64_t>(round);
    }
  }
  return next;
}

bool MatchingByColoring::halted(const NodeContext& ctx,
                                const NodeState& state) const {
  (void)ctx;
  return state[kRoundsDone] >= static_cast<std::uint64_t>(total_rounds());
}

std::vector<Label> MatchingByColoring::finalize(const NodeContext& ctx,
                                                const NodeState& state) const {
  if (state[kMatched] == 0) {
    return std::vector<Label>(static_cast<std::size_t>(ctx.degree), kU);
  }
  std::vector<Label> out(static_cast<std::size_t>(ctx.degree), kY);
  out[static_cast<std::size_t>(state[kMatchedPort] - 1)] = kM;
  return out;
}

}  // namespace lcl
