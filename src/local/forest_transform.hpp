#pragma once

#include "core/lcl.hpp"
#include "local/view.hpp"

namespace lcl {

/// The Lemma 3.3 transformer: turns an algorithm `A` that solves a
/// node-edge-checkable problem on *trees* in T(n) rounds into an algorithm
/// `A'` solving the same problem on *forests* in O(T(n^2)) rounds.
///
/// Following the lemma's proof, each node u collects its (2*T(n^2)+2)-hop
/// neighborhood and distinguishes two cases about its connected component
/// C_u:
///  - some node v in C_u sees all of C_u within T(n^2)+1 hops: then every
///    node of C_u can see the whole component, and all of them map it, in
///    the same deterministic fashion, to some fixed correct solution (we
///    use the canonical backtracking solver with nodes ordered by ID);
///  - otherwise, u simply runs A pretending the graph has n^2 nodes; its
///    (T(n^2)+1)-hop neighborhood is then isomorphic to a neighborhood in
///    some n^2-node tree, so A's guarantees apply.
class ForestTransformedAlgorithm final : public BallAlgorithm {
 public:
  /// `tree_algorithm` must solve `problem` on trees; `problem` is needed for
  /// the canonical small-component solutions. Both references must outlive
  /// this object.
  ForestTransformedAlgorithm(const BallAlgorithm& tree_algorithm,
                             const NodeEdgeCheckableLcl& problem);

  int radius(std::size_t advertised_n) const override;
  std::vector<Label> outputs(const LocalView& view) const override;

 private:
  const BallAlgorithm& tree_algorithm_;
  const NodeEdgeCheckableLcl& problem_;
};

}  // namespace lcl
