#pragma once

#include "local/sync_engine.hpp"

namespace lcl {

/// Proper 2-coloring by global BFS: every node initially roots a wave at
/// itself; waves carry (root id, distance) and nodes adopt the wave with
/// the smallest root id (shortest distance as tie-break). Once the waves
/// stabilize - after Theta(diameter) = Theta(n) rounds on paths - the color
/// is the distance parity. This is the Figure 1 witness for the global
/// class: 2-coloring is Theta(n) on paths/cycles because the parity of the
/// whole path matters.
///
/// Nodes cannot locally detect global termination, so the algorithm never
/// halts voluntarily; the engine's quiescence detection ends the run, and
/// the reported round count ~ eccentricity of the minimum-id node.
///
/// Correct on bipartite graphs whose BFS layers from the minimum-id node
/// 2-color them (always true on trees, paths and even cycles).
class BfsTwoColoring final : public SynchronousAlgorithm {
 public:
  BfsTwoColoring() = default;

  NodeState init(NodeContext& ctx) const override;
  NodeState step(NodeContext& ctx, const NodeState& self,
                 const std::vector<const NodeState*>& neighbors,
                 int round) const override;
  bool halted(const NodeContext& ctx, const NodeState& state) const override;
  std::vector<Label> finalize(const NodeContext& ctx,
                              const NodeState& state) const override;
};

/// Computes each node's eccentricity-bounded "distance to the minimum-id
/// node" the same way `BfsTwoColoring` does - exposed for tests.
struct BfsWaveState {
  std::uint64_t root_id;
  std::uint64_t distance;
};

}  // namespace lcl
