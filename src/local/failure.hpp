#pragma once

#include <cstdint>

#include "core/checker.hpp"
#include "local/sync_engine.hpp"

namespace lcl {

/// Empirical rendering of Definition 2.4: run a randomized algorithm many
/// times and estimate, per node and per edge, how often its output is
/// incorrect there; report the maximum - the measured local failure
/// probability. This is the quantity Theorem 3.4's pipeline consumes (a
/// T-round randomized algorithm with local failure probability p) and whose
/// growth along the round-elimination sequence the theorem bounds by
/// S * p^(1/(3*Delta+3)).
struct LocalFailureEstimate {
  /// max over nodes/edges of the empirical failure frequency.
  double local_failure = 0.0;
  /// Fraction of trials in which the global output was incorrect anywhere.
  double global_failure = 0.0;
  int trials = 0;
};

/// Runs `algorithm` `trials` times with independent seeds and aggregates
/// per-node/per-edge failure frequencies via `check_solution`.
LocalFailureEstimate estimate_local_failure(
    const SynchronousAlgorithm& algorithm, const NodeEdgeCheckableLcl& problem,
    const Graph& graph, const HalfEdgeLabeling& input, const IdAssignment& ids,
    int trials, std::uint64_t seed_base = 1,
    int max_rounds = 1'000'000);

/// The randomized (Delta+1)-coloring of `RandomGreedyColoring`, truncated
/// after `round_cap` rounds: still-undecided nodes commit to their current
/// proposal (or color 0). Sweeping the cap trades rounds against local
/// failure probability - the empirical face of the "T(n) rounds, failure
/// p" premise of Theorem 3.4.
class CappedRandomColoring final : public SynchronousAlgorithm {
 public:
  CappedRandomColoring(int max_degree, int round_cap);

  NodeState init(NodeContext& ctx) const override;
  NodeState step(NodeContext& ctx, const NodeState& self,
                 const std::vector<const NodeState*>& neighbors,
                 int round) const override;
  bool halted(const NodeContext& ctx, const NodeState& state) const override;
  std::vector<Label> finalize(const NodeContext& ctx,
                              const NodeState& state) const override;

 private:
  int max_degree_;
  int round_cap_;
};

}  // namespace lcl
