#pragma once

#include "local/sync_engine.hpp"

namespace lcl {

/// Input labeling that roots a tree at `root`: the half-edge of each
/// non-root node on its edge toward the root is labeled `kParentEdge`, all
/// other half-edges `kChildEdge`. The orientation a rooted tree provides is
/// exactly what [BBOSST21] (the rooted-trees classification discussed in
/// Section 1.1) assumes as given.
inline constexpr Label kChildEdge = 0;
inline constexpr Label kParentEdge = 1;

HalfEdgeLabeling root_tree_input(const Graph& tree, NodeId root);

/// Cole-Vishkin on rooted trees with *unbounded* degree: every node
/// compares its color with its parent only, so the classic bit-shrinking
/// works regardless of Delta, reaching 6 colors in Theta(log* id_range)
/// rounds; a shift-down round (adopt the parent's color, so all siblings
/// become monochromatic) followed by three recolor rounds brings the
/// palette to 3. A proper 3-coloring of any rooted tree in Theta(log* n)
/// rounds - impossible without the orientation (unrooted trees need
/// Delta+1 colors for greedy arguments).
class RootedTreeColoring final : public SynchronousAlgorithm {
 public:
  explicit RootedTreeColoring(std::uint64_t id_range);

  NodeState init(NodeContext& ctx) const override;
  NodeState step(NodeContext& ctx, const NodeState& self,
                 const std::vector<const NodeState*>& neighbors,
                 int round) const override;
  bool halted(const NodeContext& ctx, const NodeState& state) const override;
  std::vector<Label> finalize(const NodeContext& ctx,
                              const NodeState& state) const override;

  int shrink_rounds() const noexcept { return shrink_rounds_; }
  /// shrink + 3 x (shift-down + recolor).
  int total_rounds() const noexcept { return shrink_rounds_ + 6; }

 private:
  std::uint64_t id_range_;
  int shrink_rounds_;
};

}  // namespace lcl
