#pragma once

#include "local/sync_engine.hpp"

namespace lcl {

/// The classic randomized (Delta+1)-coloring by random color trials:
/// in each phase an undecided node proposes a uniformly random color not
/// used by decided neighbors; it keeps the color if no undecided neighbor
/// proposed the same one. Each node succeeds with constant probability per
/// phase, so the algorithm finishes in O(log n) rounds with probability
/// 1 - 1/poly(n). A witness for the "randomness does not beat log* for
/// coloring, but look how simple it is" narrative; also the starting point
/// (randomized algorithm with small local failure probability) of the
/// round-elimination pipeline of Section 3.
class RandomGreedyColoring final : public SynchronousAlgorithm {
 public:
  explicit RandomGreedyColoring(int max_degree);

  NodeState init(NodeContext& ctx) const override;
  NodeState step(NodeContext& ctx, const NodeState& self,
                 const std::vector<const NodeState*>& neighbors,
                 int round) const override;
  bool halted(const NodeContext& ctx, const NodeState& state) const override;
  std::vector<Label> finalize(const NodeContext& ctx,
                              const NodeState& state) const override;

  int colors() const noexcept { return max_degree_ + 1; }

 private:
  int max_degree_;
};

}  // namespace lcl
