#include "local/order_invariant.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace lcl {

FrozenOrderInvariantAlgorithm::FrozenOrderInvariantAlgorithm(
    const OrderInvariantBallAlgorithm& inner, std::size_t n0)
    : inner_(inner), n0_(n0) {}

int FrozenOrderInvariantAlgorithm::radius(std::size_t advertised_n) const {
  return inner_.radius(std::min(advertised_n, n0_));
}

std::vector<Label> FrozenOrderInvariantAlgorithm::outputs(
    const LocalView& view) const {
  const std::size_t frozen = std::min(view.advertised_n(), n0_);
  return inner_.outputs(view.with_advertised(frozen));
}

bool check_order_invariance(const BallAlgorithm& algorithm,
                            const Graph& graph, const HalfEdgeLabeling& input,
                            const IdAssignment& ids, int trials,
                            SplitRng& rng) {
  const HalfEdgeLabeling reference =
      run_ball_algorithm(algorithm, graph, input, ids);
  for (int t = 0; t < trials; ++t) {
    const IdAssignment remapped = order_preserving_remap(ids, 4, rng);
    const HalfEdgeLabeling other =
        run_ball_algorithm(algorithm, graph, input, remapped);
    if (other != reference) return false;
  }
  return true;
}

int OrientByIdOrder::radius(std::size_t advertised_n) const {
  (void)advertised_n;
  return 1;
}

std::vector<Label> OrientByIdOrder::outputs(const LocalView& view) const {
  const NodeId v = view.center();
  const std::uint64_t my_id = view.id(v);
  std::vector<Label> out(static_cast<std::size_t>(view.degree(v)));
  for (int p = 0; p < view.degree(v); ++p) {
    const NodeId w = view.neighbor(v, p);
    out[static_cast<std::size_t>(p)] =
        (my_id < view.id(w)) ? kOut : kIn;
  }
  return out;
}

int WastefulOrientByIdOrder::radius(std::size_t advertised_n) const {
  // ~ log2(log2(n)), but at least 1: a strictly o(log n), omega(1) radius.
  const int loglog =
      advertised_n >= 4
          ? floor_log2(static_cast<std::uint64_t>(
                floor_log2(static_cast<std::uint64_t>(advertised_n))))
          : 0;
  return std::max(1, loglog);
}

std::vector<Label> WastefulOrientByIdOrder::outputs(
    const LocalView& view) const {
  // Same decision as OrientByIdOrder; the extra radius is never used.
  const NodeId v = view.center();
  const std::uint64_t my_id = view.id(v);
  std::vector<Label> out(static_cast<std::size_t>(view.degree(v)));
  for (int p = 0; p < view.degree(v); ++p) {
    out[static_cast<std::size_t>(p)] =
        (my_id < view.id(view.neighbor(v, p))) ? OrientByIdOrder::kOut
                                               : OrientByIdOrder::kIn;
  }
  return out;
}

}  // namespace lcl
