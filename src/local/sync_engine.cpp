#include "local/sync_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace lcl {

SyncResult run_synchronous(const SynchronousAlgorithm& algorithm,
                           const Graph& graph, const HalfEdgeLabeling& input,
                           const IdAssignment& ids, std::uint64_t seed,
                           std::size_t advertised_n, int max_rounds,
                           const std::vector<std::vector<std::uint64_t>>*
                               aux) {
  if (input.size() != graph.half_edge_count()) {
    throw std::invalid_argument("run_synchronous: input size mismatch");
  }
  if (ids.size() != graph.node_count()) {
    throw std::invalid_argument("run_synchronous: id assignment mismatch");
  }
  if (advertised_n == 0) advertised_n = graph.node_count();

  LCL_OBS_SPAN(run_span, "local/run_synchronous", "local");
  LCL_OBS_COUNTER_ADD("local.runs", 1);

  const std::size_t n = graph.node_count();
  const SplitRng root(seed);

  std::vector<NodeContext> contexts(n);
  for (NodeId v = 0; v < n; ++v) {
    auto& ctx = contexts[v];
    ctx.node = v;
    ctx.id = ids[v];
    ctx.degree = graph.degree(v);
    ctx.n = advertised_n;
    ctx.inputs.resize(static_cast<std::size_t>(ctx.degree));
    ctx.twin_ports.resize(static_cast<std::size_t>(ctx.degree));
    for (int p = 0; p < ctx.degree; ++p) {
      ctx.inputs[static_cast<std::size_t>(p)] = input[graph.half_edge(v, p)];
      const EdgeId e = graph.edge_at(v, p);
      ctx.twin_ports[static_cast<std::size_t>(p)] =
          graph.port_of(graph.neighbor(v, p), e);
    }
    if (aux != nullptr) {
      if (aux->size() != n) {
        throw std::invalid_argument("run_synchronous: aux size mismatch");
      }
      ctx.aux = (*aux)[v];
    }
    // Forking by the *identifier* makes the random stream a function of the
    // node's identity, matching the model's per-node private randomness.
    ctx.rng = root.fork(ids[v]);
  }

  std::vector<NodeState> current(n), next(n);
  std::vector<char> halted(n, 0);
  SyncResult result;
  for (NodeId v = 0; v < n; ++v) {
    current[v] = algorithm.init(contexts[v]);
    halted[v] = algorithm.halted(contexts[v], current[v]) ? 1 : 0;
    result.max_message_words =
        std::max(result.max_message_words, current[v].size());
  }
  std::vector<const NodeState*> neighbor_states;
  for (int round = 1;; ++round) {
    bool all_halted = true;
    for (NodeId v = 0; v < n; ++v) {
      if (!halted[v]) {
        all_halted = false;
        break;
      }
    }
    if (all_halted) break;
    if (round > max_rounds) {
      throw std::runtime_error(
          "run_synchronous: round cap exceeded (algorithm did not halt)");
    }

    LCL_OBS_SPAN(round_span, "local/round", "local");
    LCL_OBS_SPAN_ARG(round_span, "round", round);
    if (LCL_OBS_ENABLED()) {
      std::size_t active = 0;
      for (NodeId v = 0; v < n; ++v) active += halted[v] ? 0 : 1;
      LCL_OBS_GAUGE_SET("local.active_nodes", active);
      LCL_OBS_GAUGE_SET("local.halted_nodes", n - active);
    }
    bool any_change = false;
    std::size_t round_max_words = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (halted[v]) {
        next[v] = current[v];
        continue;
      }
      neighbor_states.clear();
      for (int p = 0; p < contexts[v].degree; ++p) {
        neighbor_states.push_back(&current[graph.neighbor(v, p)]);
      }
      next[v] =
          algorithm.step(contexts[v], current[v], neighbor_states, round);
      if (next[v] != current[v]) any_change = true;
      round_max_words = std::max(round_max_words, next[v].size());
      LCL_OBS_HISTOGRAM_RECORD("local.message_words", next[v].size());
    }
    result.max_message_words =
        std::max(result.max_message_words, round_max_words);
    LCL_OBS_SPAN_ARG(round_span, "max_message_words", round_max_words);
    LCL_OBS_COUNTER_ADD("local.rounds", 1);
    current.swap(next);
    result.rounds = round;
    for (NodeId v = 0; v < n; ++v) {
      if (!halted[v] && algorithm.halted(contexts[v], current[v])) {
        halted[v] = 1;
      }
    }
    if (!any_change) {
      bool all = true;
      for (NodeId v = 0; v < n; ++v) {
        if (!halted[v]) {
          all = false;
          break;
        }
      }
      if (!all) {
        result.quiesced = true;
        break;
      }
    }
  }

  result.output.assign(graph.half_edge_count(), 0);
  for (NodeId v = 0; v < n; ++v) {
    if (contexts[v].degree == 0) continue;
    const auto labels = algorithm.finalize(contexts[v], current[v]);
    if (labels.size() != static_cast<std::size_t>(contexts[v].degree)) {
      throw std::logic_error(
          "run_synchronous: finalize returned wrong label count at node " +
          std::to_string(v));
    }
    for (int p = 0; p < contexts[v].degree; ++p) {
      result.output[graph.half_edge(v, p)] =
          labels[static_cast<std::size_t>(p)];
    }
  }
  return result;
}

}  // namespace lcl
