#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "graph/labeling.hpp"

namespace lcl {

/// The information a node sees in a `T`-round LOCAL algorithm
/// (Definition 2.1): all nodes within distance `T`, all edges with an
/// endpoint within distance `T-1`, and all half-edges (with inputs) whose
/// node endpoint is within distance `T` - plus IDs, per-node random seeds
/// and the advertised number of nodes `n`.
///
/// The view enforces the visibility rules at the API level: querying
/// anything outside the ball throws `std::logic_error`, so an algorithm that
/// oversteps its declared radius fails loudly in tests rather than silently
/// reading global state.
class LocalView {
 public:
  /// Builds the view of `center` at distance `radius` in `graph`.
  /// `seeds` may be null for deterministic algorithms.
  LocalView(const Graph& graph, NodeId center, int radius,
            const HalfEdgeLabeling& input, const IdAssignment& ids,
            const std::vector<std::uint64_t>* seeds,
            std::size_t advertised_n);

  NodeId center() const noexcept { return center_; }
  int radius() const noexcept { return radius_; }
  /// The number of nodes the algorithm is told the graph has. Lemma 3.3
  /// deliberately advertises n^2 on forests, so this may differ from the
  /// true size.
  std::size_t advertised_n() const noexcept { return advertised_n_; }

  /// True iff `v` is within the ball.
  bool contains(NodeId v) const;
  /// Distance from the center (throws if outside the ball).
  int distance(NodeId v) const;
  /// All ball nodes in BFS order (center first).
  const std::vector<NodeId>& nodes() const noexcept { return nodes_; }

  /// Degree of `v`; visible for all ball nodes (their half-edges are part
  /// of the view).
  int degree(NodeId v) const;
  /// ID of `v`; visible for all ball nodes.
  std::uint64_t id(NodeId v) const;
  /// Random seed of `v` (requires seeds to have been supplied).
  std::uint64_t seed(NodeId v) const;
  /// Input label on half-edge (v, port); visible for all ball nodes.
  Label input(NodeId v, int port) const;
  /// Neighbor across port `port` of `v`. Only nodes at distance <= radius-1
  /// know their full edge set, so this throws for boundary nodes.
  NodeId neighbor(NodeId v, int port) const;

  /// Port number that the edge at `(v, port)` has at the *other* endpoint.
  /// Requires distance(v) <= radius-1 (the edge must be visible); the other
  /// endpoint may be a boundary node - its half-edge, including the port
  /// number, is part of the view per Definition 2.1.
  int twin_port(NodeId v, int port) const;

  /// A copy of this view that advertises a different node count. Lemma 3.3
  /// executes the tree algorithm "with input parameter n^2" on forests;
  /// footnote 7 of the paper explicitly allows running an algorithm with a
  /// number-of-nodes parameter that is not the true size.
  LocalView with_advertised(std::size_t advertised_n) const;

  /// A re-rooted, shrunken view: the `new_radius`-ball of `new_center`,
  /// which must be fully contained in this view
  /// (distance(new_center) + new_radius <= radius). This is how a T-round
  /// algorithm simulates a (T-1)-round algorithm at a neighbor, the core
  /// operation of the Lemma 3.9 lifting.
  LocalView restricted(NodeId new_center, int new_radius) const;

 private:
  const Graph* graph_;
  NodeId center_;
  int radius_;
  const HalfEdgeLabeling* input_;
  const IdAssignment* ids_;
  const std::vector<std::uint64_t>* seeds_;
  std::size_t advertised_n_;
  std::vector<NodeId> nodes_;
  std::vector<int> dist_;  // indexed by NodeId; -1 outside the ball
};

/// A LOCAL algorithm in the Definition 2.1 sense: a function from the
/// radius-`T` view of a node to the output labels of that node's half-edges
/// (one label per port).
class BallAlgorithm {
 public:
  virtual ~BallAlgorithm() = default;

  /// The radius the algorithm requires on graphs that advertise `n` nodes.
  virtual int radius(std::size_t advertised_n) const = 0;

  /// Output labels for the center's ports (must return exactly
  /// `view.degree(view.center())` labels).
  virtual std::vector<Label> outputs(const LocalView& view) const = 0;
};

/// Runs `algorithm` at every node of `graph` and assembles the global output
/// labeling. `advertised_n` defaults to the true node count; `seeds` may be
/// null for deterministic algorithms. Throws `std::logic_error` if the
/// algorithm returns the wrong number of labels for some node.
HalfEdgeLabeling run_ball_algorithm(const BallAlgorithm& algorithm,
                                    const Graph& graph,
                                    const HalfEdgeLabeling& input,
                                    const IdAssignment& ids,
                                    const std::vector<std::uint64_t>* seeds =
                                        nullptr,
                                    std::size_t advertised_n = 0);

}  // namespace lcl
