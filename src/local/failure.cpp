#include "local/failure.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace lcl {

LocalFailureEstimate estimate_local_failure(
    const SynchronousAlgorithm& algorithm, const NodeEdgeCheckableLcl& problem,
    const Graph& graph, const HalfEdgeLabeling& input, const IdAssignment& ids,
    int trials, std::uint64_t seed_base, int max_rounds) {
  if (trials < 1) {
    throw std::invalid_argument("estimate_local_failure: trials >= 1");
  }
  std::vector<int> node_failures(graph.node_count(), 0);
  std::vector<int> edge_failures(graph.edge_count(), 0);
  int global_failures = 0;

  for (int t = 0; t < trials; ++t) {
    const auto result = run_synchronous(algorithm, graph, input, ids,
                                        seed_base + static_cast<std::uint64_t>(t),
                                        0, max_rounds);
    const auto check = check_solution(problem, graph, input, result.output);
    if (!check.ok()) ++global_failures;
    // A node/edge may appear in several violations of one run; count each
    // entity at most once per trial.
    std::vector<char> node_seen(graph.node_count(), 0);
    std::vector<char> edge_seen(graph.edge_count(), 0);
    for (const auto& v : check.violations) {
      if (v.kind == Violation::Kind::kNode) {
        if (!node_seen[v.id]) {
          node_seen[v.id] = 1;
          ++node_failures[v.id];
        }
      } else if (!edge_seen[v.id]) {
        edge_seen[v.id] = 1;
        ++edge_failures[v.id];
      }
    }
  }

  LocalFailureEstimate estimate;
  estimate.trials = trials;
  int worst = 0;
  for (const int c : node_failures) worst = std::max(worst, c);
  for (const int c : edge_failures) worst = std::max(worst, c);
  estimate.local_failure = static_cast<double>(worst) / trials;
  estimate.global_failure = static_cast<double>(global_failures) / trials;
  return estimate;
}

namespace {
constexpr std::size_t kDecided = 0;
constexpr std::size_t kColor = 1;
constexpr std::size_t kProposal = 2;
constexpr std::size_t kRound = 3;
}  // namespace

CappedRandomColoring::CappedRandomColoring(int max_degree, int round_cap)
    : max_degree_(max_degree), round_cap_(round_cap) {
  if (max_degree < 1 || round_cap < 0) {
    throw std::invalid_argument("CappedRandomColoring: bad arguments");
  }
}

NodeState CappedRandomColoring::init(NodeContext& ctx) const {
  if (ctx.degree == 0) return {1, 0, 0, 0};
  return {0, 0, 0, 0};
}

NodeState CappedRandomColoring::step(
    NodeContext& ctx, const NodeState& self,
    const std::vector<const NodeState*>& neighbors, int round) const {
  NodeState next = self;
  next[kRound] = static_cast<std::uint64_t>(round);
  if (self[kDecided] == 1) return next;

  if (round >= round_cap_) {
    // Out of budget: commit to whatever is on the table.
    next[kDecided] = 1;
    next[kColor] = self[kProposal] == 0 ? 0 : self[kProposal] - 1;
    next[kProposal] = 0;
    return next;
  }

  if (round % 2 == 1) {
    std::vector<char> blocked(static_cast<std::size_t>(max_degree_) + 1, 0);
    for (const NodeState* nb : neighbors) {
      if ((*nb)[kDecided] == 1) blocked[(*nb)[kColor]] = 1;
    }
    std::vector<std::uint64_t> free;
    for (std::uint64_t c = 0; c <= static_cast<std::uint64_t>(max_degree_);
         ++c) {
      if (!blocked[c]) free.push_back(c);
    }
    next[kProposal] = free[ctx.rng.next_below(free.size())] + 1;
    return next;
  }

  const std::uint64_t proposal = self[kProposal];
  if (proposal == 0) return next;
  bool conflict = false;
  for (const NodeState* nb : neighbors) {
    if ((*nb)[kDecided] == 1 && (*nb)[kColor] + 1 == proposal) conflict = true;
    if ((*nb)[kDecided] == 0 && (*nb)[kProposal] == proposal) conflict = true;
  }
  next[kProposal] = 0;
  if (!conflict) {
    next[kDecided] = 1;
    next[kColor] = proposal - 1;
  } else {
    next[kProposal] = proposal;  // remember it in case the cap hits next
  }
  return next;
}

bool CappedRandomColoring::halted(const NodeContext&,
                                  const NodeState& state) const {
  return state[kDecided] == 1;
}

std::vector<Label> CappedRandomColoring::finalize(
    const NodeContext& ctx, const NodeState& state) const {
  return std::vector<Label>(static_cast<std::size_t>(ctx.degree),
                            static_cast<Label>(state[kColor]));
}

}  // namespace lcl
