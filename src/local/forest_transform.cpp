#include "local/forest_transform.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <stdexcept>

#include "core/brute_force.hpp"

namespace lcl {

namespace {

/// The center's connected component as far as the view shows it.
struct ExploredComponent {
  /// True iff every component node lies strictly inside the view (distance
  /// < radius), so all its edges and ports are fully visible and the
  /// exploration provably found the *whole* component.
  bool complete = true;
  std::vector<NodeId> nodes;
};

ExploredComponent explore_component(const LocalView& view) {
  ExploredComponent result;
  std::map<NodeId, bool> seen;
  std::queue<NodeId> frontier;
  frontier.push(view.center());
  seen[view.center()] = true;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    result.nodes.push_back(v);
    if (view.distance(v) >= view.radius()) {
      // Boundary node: its edge set is invisible, so containment cannot be
      // certified.
      result.complete = false;
      continue;
    }
    for (int p = 0; p < view.degree(v); ++p) {
      const NodeId w = view.neighbor(v, p);
      if (!seen[w]) {
        seen[w] = true;
        frontier.push(w);
      }
    }
  }
  return result;
}

/// Eccentricity of `v` within the (complete) component.
int component_eccentricity(const LocalView& view,
                           const ExploredComponent& component, NodeId v) {
  std::map<NodeId, int> dist;
  std::queue<NodeId> frontier;
  dist[v] = 0;
  frontier.push(v);
  int ecc = 0;
  while (!frontier.empty()) {
    const NodeId x = frontier.front();
    frontier.pop();
    ecc = std::max(ecc, dist[x]);
    for (int p = 0; p < view.degree(x); ++p) {
      const NodeId w = view.neighbor(x, p);
      if (dist.count(w) == 0) {
        dist[w] = dist[x] + 1;
        frontier.push(w);
      }
    }
  }
  (void)component;
  return ecc;
}

}  // namespace

ForestTransformedAlgorithm::ForestTransformedAlgorithm(
    const BallAlgorithm& tree_algorithm, const NodeEdgeCheckableLcl& problem)
    : tree_algorithm_(tree_algorithm), problem_(problem) {}

int ForestTransformedAlgorithm::radius(std::size_t advertised_n) const {
  // Lemma 3.3 collects the (2T+2)-hop neighborhood; we use 2T+3 so that a
  // component passing the small-component test (some node sees all of it
  // within T+1 hops, hence pairwise distances <= 2T+2) lies strictly inside
  // the view, with every port and edge fully visible.
  const std::size_t n_squared = advertised_n * advertised_n;
  return 2 * tree_algorithm_.radius(n_squared) + 3;
}

std::vector<Label> ForestTransformedAlgorithm::outputs(
    const LocalView& view) const {
  const std::size_t n = view.advertised_n();
  const std::size_t n_squared = n * n;
  const int t = tree_algorithm_.radius(n_squared);

  const auto component = explore_component(view);
  bool small_component = false;
  if (component.complete) {
    for (const NodeId v : component.nodes) {
      if (component_eccentricity(view, component, v) <= t + 1) {
        small_component = true;
        break;
      }
    }
  }

  if (!small_component) {
    // Large component: every node's (t+1)-hop neighborhood also occurs in
    // some n^2-node tree, so running the tree algorithm with advertised
    // size n^2 is sound (Lemma 3.3).
    return tree_algorithm_.outputs(
        view.restricted(view.center(), t).with_advertised(n_squared));
  }

  // Small component: build a canonical copy - nodes renumbered by ID rank,
  // edges inserted in (ID rank, original port) order of the lower-ranked
  // endpoint - and solve it with the deterministic backtracking solver.
  // Every node of the component sees the same component and performs
  // exactly this construction, so all of them read their outputs off the
  // *same* solution (the "arbitrary but fixed deterministic fashion" of the
  // lemma's proof).
  std::vector<NodeId> ordered = component.nodes;
  std::sort(ordered.begin(), ordered.end(),
            [&](NodeId a, NodeId b) { return view.id(a) < view.id(b); });
  std::map<NodeId, NodeId> rank;
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    rank[ordered[i]] = static_cast<NodeId>(i);
  }

  Graph::Builder builder(ordered.size());
  for (const NodeId v : ordered) {
    const NodeId rv = rank.at(v);
    for (int p = 0; p < view.degree(v); ++p) {
      const NodeId rw = rank.at(view.neighbor(v, p));
      if (rv < rw) builder.add_edge(rv, rw);
    }
  }
  const Graph local_graph = builder.build();

  // Match (local node, original port) to rebuilt half-edges; the neighbor
  // identifies the edge since simple graphs have no parallel edges.
  HalfEdgeLabeling local_input(local_graph.half_edge_count(), 0);
  std::map<std::pair<NodeId, int>, HalfEdgeId> half_edge_of;
  for (const NodeId v : ordered) {
    const NodeId rv = rank.at(v);
    for (int p = 0; p < view.degree(v); ++p) {
      const NodeId rw = rank.at(view.neighbor(v, p));
      for (int lp = 0; lp < local_graph.degree(rv); ++lp) {
        if (local_graph.neighbor(rv, lp) == rw) {
          const HalfEdgeId h = local_graph.half_edge(rv, lp);
          half_edge_of[{rv, p}] = h;
          local_input[h] = view.input(v, p);
          break;
        }
      }
    }
  }

  const auto solution = brute_force_solve(problem_, local_graph, local_input);
  if (!solution) {
    throw std::runtime_error(
        "ForestTransformedAlgorithm: component admits no correct solution "
        "(contradicts the existence of the tree algorithm)");
  }

  const NodeId rc = rank.at(view.center());
  const int degree = view.degree(view.center());
  std::vector<Label> out(static_cast<std::size_t>(degree));
  for (int p = 0; p < degree; ++p) {
    out[static_cast<std::size_t>(p)] = (*solution)[half_edge_of.at({rc, p})];
  }
  return out;
}

}  // namespace lcl
