#include "local/cole_vishkin.hpp"

#include <stdexcept>

#include "util/math.hpp"

namespace lcl {

namespace {

constexpr std::size_t kColor = 0;
constexpr std::size_t kRoundsDone = 1;

/// Successor port of a node, or -1 (path end). Throws if several half-edges
/// claim to be the successor - that is a malformed orientation.
int successor_port(const NodeContext& ctx) {
  int port = -1;
  for (int p = 0; p < ctx.degree; ++p) {
    if (ctx.inputs[static_cast<std::size_t>(p)] == kCvSuccessor) {
      if (port != -1) {
        throw std::invalid_argument(
            "ColeVishkin: node has two successor half-edges");
      }
      port = p;
    }
  }
  return port;
}

}  // namespace

HalfEdgeLabeling chain_orientation_input(const Graph& graph, bool is_cycle) {
  if (graph.max_degree() > 2) {
    throw std::invalid_argument(
        "chain_orientation_input: graph is not a path/cycle");
  }
  const std::size_t n = graph.node_count();
  HalfEdgeLabeling input(graph.half_edge_count(), kCvPlain);
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const auto [a, b] = graph.endpoints(e);
    // Generator convention: consecutive indices (mod n for the wrap edge).
    NodeId from, to;
    if ((a + 1) % n == b) {
      from = a;
      to = b;
    } else if ((b + 1) % n == a) {
      from = b;
      to = a;
    } else {
      throw std::invalid_argument(
          "chain_orientation_input: edge does not follow the make_path/"
          "make_cycle index convention");
    }
    (void)to;
    (void)is_cycle;
    input[graph.half_edge_of(from, e)] = kCvSuccessor;
  }
  return input;
}

ColeVishkin::ColeVishkin(std::uint64_t id_range) : id_range_(id_range) {
  if (id_range < 1) {
    throw std::invalid_argument("ColeVishkin: id_range must be positive");
  }
  // Palette sizes: m_0 = id_range, m_{k+1} = 2 * ceil(log2(m_k)); stop once
  // the palette is within {0..5} or no longer shrinks.
  int rounds = 0;
  std::uint64_t m = id_range;
  while (m > 6) {
    const std::uint64_t next = 2 * static_cast<std::uint64_t>(ceil_log2(m));
    ++rounds;
    if (next >= m) break;  // fixed point (only for tiny m; m=6 case below)
    m = next;
  }
  shrink_rounds_ = rounds;
}

NodeState ColeVishkin::init(NodeContext& ctx) const {
  if (ctx.degree > 2) {
    throw std::invalid_argument("ColeVishkin: node degree exceeds 2");
  }
  if (ctx.id >= id_range_) {
    throw std::invalid_argument("ColeVishkin: id outside declared range");
  }
  successor_port(ctx);  // validates the orientation
  return {ctx.id, 0};
}

NodeState ColeVishkin::step(NodeContext& ctx, const NodeState& self,
                            const std::vector<const NodeState*>& neighbors,
                            int round) const {
  NodeState next = self;
  next[kRoundsDone] = static_cast<std::uint64_t>(round);
  const std::uint64_t color = self[kColor];

  if (round <= shrink_rounds_) {
    const int succ = successor_port(ctx);
    if (succ == -1) {
      // Path end: project onto bit 0; the predecessor's choice can never
      // collide with {0,1} unless bit 0 already differed (see paper notes in
      // DESIGN.md).
      next[kColor] = color & 1;
      return next;
    }
    const std::uint64_t succ_color =
        (*neighbors[static_cast<std::size_t>(succ)])[kColor];
    if (succ_color == color) {
      throw std::logic_error("ColeVishkin: adjacent equal colors");
    }
    const std::uint64_t diff = color ^ succ_color;
    std::uint64_t i = 0;
    while (((diff >> i) & 1) == 0) ++i;
    next[kColor] = 2 * i + ((color >> i) & 1);
    return next;
  }

  // 6 -> 3 reduction: rounds shrink_rounds_+1.. shrink_rounds_+3 remove
  // colors 5, 4, 3 in that order.
  const std::uint64_t target =
      5 - static_cast<std::uint64_t>(round - shrink_rounds_ - 1);
  if (color == target) {
    for (std::uint64_t c = 0; c < 3; ++c) {
      bool used = false;
      for (const NodeState* nb : neighbors) {
        if ((*nb)[kColor] == c) used = true;
      }
      if (!used) {
        next[kColor] = c;
        break;
      }
    }
  }
  return next;
}

bool ColeVishkin::halted(const NodeContext& ctx,
                         const NodeState& state) const {
  (void)ctx;
  return state[kRoundsDone] >= static_cast<std::uint64_t>(total_rounds());
}

std::vector<Label> ColeVishkin::finalize(const NodeContext& ctx,
                                         const NodeState& state) const {
  return std::vector<Label>(static_cast<std::size_t>(ctx.degree),
                            static_cast<Label>(state[kColor]));
}

}  // namespace lcl
