#include "local/linial.hpp"

#include <stdexcept>

#include "util/math.hpp"

namespace lcl {

namespace {

/// Minimal d >= 1 with q^d >= m.
int digits_needed(std::uint64_t m, std::uint64_t q) {
  int d = 1;
  std::uint64_t power = q;
  while (power < m) {
    // q >= 2 and m <= 2^63 keep this loop and product bounded.
    if (power > (std::uint64_t{1} << 62) / q) return d + 1;
    power *= q;
    ++d;
  }
  return d;
}

/// Evaluates the polynomial whose coefficients are the base-q digits of
/// `color` (d coefficients) at point x, over GF(q).
std::uint64_t eval_poly(std::uint64_t color, std::uint64_t q, int d,
                        std::uint64_t x) {
  std::uint64_t value = 0;
  std::uint64_t x_power = 1;
  for (int j = 0; j < d; ++j) {
    const std::uint64_t coeff = color % q;
    color /= q;
    value = (value + coeff * x_power) % q;
    x_power = (x_power * x) % q;
  }
  return value;
}

constexpr std::size_t kColor = 0;
constexpr std::size_t kRoundsDone = 1;

}  // namespace

LinialSchedule LinialSchedule::compute(std::uint64_t id_range,
                                       int max_degree) {
  if (id_range == 0) {
    throw std::invalid_argument("LinialSchedule: id_range must be positive");
  }
  if (max_degree < 1) {
    throw std::invalid_argument("LinialSchedule: max_degree must be >= 1");
  }
  LinialSchedule schedule;
  std::uint64_t m = id_range;
  while (true) {
    // Smallest prime q admitting a valid cover-free family for palette m:
    // with d = digits_needed(m, q), every pair of distinct degree-<d
    // polynomials agrees on < d points, so q >= max_degree*(d-1) + 1
    // guarantees an evaluation point avoiding all neighbors.
    std::uint64_t q = 2;
    while (true) {
      q = next_prime(q);
      const int d = digits_needed(m, q);
      if (q >= static_cast<std::uint64_t>(max_degree) *
                       static_cast<std::uint64_t>(d - 1) +
                   1) {
        break;
      }
      ++q;
    }
    if (q * q >= m) {
      schedule.final_palette = m;
      return schedule;
    }
    schedule.steps.push_back({m, q, digits_needed(m, q)});
    m = q * q;
  }
}

LinialColoring::LinialColoring(int max_degree, std::uint64_t id_range)
    : max_degree_(max_degree),
      id_range_(id_range),
      schedule_(LinialSchedule::compute(id_range, max_degree)) {}

int LinialColoring::total_rounds() const noexcept {
  const std::uint64_t palette = schedule_.final_palette;
  const std::uint64_t target = static_cast<std::uint64_t>(max_degree_) + 1;
  const int reduction_rounds =
      palette > target ? static_cast<int>(palette - target) : 0;
  return static_cast<int>(schedule_.steps.size()) + reduction_rounds;
}

NodeState LinialColoring::init(NodeContext& ctx) const {
  if (ctx.id >= id_range_) {
    throw std::invalid_argument(
        "LinialColoring: node identifier " + std::to_string(ctx.id) +
        " not below the declared id_range " + std::to_string(id_range_));
  }
  return {ctx.id, 0};
}

NodeState LinialColoring::step(NodeContext& ctx, const NodeState& self,
                               const std::vector<const NodeState*>& neighbors,
                               int round) const {
  (void)ctx;
  NodeState next = self;
  next[kRoundsDone] = static_cast<std::uint64_t>(round);
  const std::size_t schedule_len = schedule_.steps.size();
  const std::uint64_t color = self[kColor];

  if (static_cast<std::size_t>(round) <= schedule_len) {
    // Palette-reduction stage: polynomial cover-free family step.
    const auto& s = schedule_.steps[static_cast<std::size_t>(round - 1)];
    for (std::uint64_t x = 0; x < s.q; ++x) {
      const std::uint64_t own = eval_poly(color, s.q, s.digits, x);
      bool ok = true;
      for (const NodeState* nb : neighbors) {
        const std::uint64_t nb_color = (*nb)[kColor];
        if (nb_color == color) continue;  // cannot happen on proper input
        if (eval_poly(nb_color, s.q, s.digits, x) == own) {
          ok = false;
          break;
        }
      }
      if (ok) {
        next[kColor] = x * s.q + own;
        return next;
      }
    }
    throw std::logic_error(
        "LinialColoring: no valid evaluation point found (schedule bug)");
  }

  // Greedy color-removal stage: in round schedule_len + j (j >= 1), the
  // color class final_palette - j recolors into [0, max_degree].
  const std::uint64_t j =
      static_cast<std::uint64_t>(round) - schedule_len;
  const std::uint64_t target = schedule_.final_palette - j;
  if (color == target) {
    for (std::uint64_t c = 0;
         c <= static_cast<std::uint64_t>(max_degree_); ++c) {
      bool used = false;
      for (const NodeState* nb : neighbors) {
        if ((*nb)[kColor] == c) {
          used = true;
          break;
        }
      }
      if (!used) {
        next[kColor] = c;
        return next;
      }
    }
    throw std::logic_error(
        "LinialColoring: no free color in greedy reduction (degree bug)");
  }
  return next;
}

bool LinialColoring::halted(const NodeContext& ctx,
                            const NodeState& state) const {
  (void)ctx;
  return state[kRoundsDone] >=
         static_cast<std::uint64_t>(total_rounds());
}

std::vector<Label> LinialColoring::finalize(const NodeContext& ctx,
                                            const NodeState& state) const {
  return std::vector<Label>(static_cast<std::size_t>(ctx.degree),
                            static_cast<Label>(state[kColor]));
}

std::vector<Label> LinialColoring::node_colors(
    const Graph& graph, const HalfEdgeLabeling& output) {
  std::vector<Label> colors(graph.node_count(), 0);
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (graph.degree(v) > 0) colors[v] = output[graph.half_edge(v, 0)];
  }
  return colors;
}

}  // namespace lcl
