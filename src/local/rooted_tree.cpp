#include "local/rooted_tree.hpp"

#include <queue>
#include <stdexcept>

#include "util/math.hpp"

namespace lcl {

namespace {
constexpr std::size_t kColor = 0;
constexpr std::size_t kRoundsDone = 1;

/// Port toward the parent, or -1 at the root. Throws on two parent edges.
int parent_port(const NodeContext& ctx) {
  int port = -1;
  for (int p = 0; p < ctx.degree; ++p) {
    if (ctx.inputs[static_cast<std::size_t>(p)] == kParentEdge) {
      if (port != -1) {
        throw std::invalid_argument(
            "RootedTreeColoring: node has two parent edges");
      }
      port = p;
    }
  }
  return port;
}
}  // namespace

HalfEdgeLabeling root_tree_input(const Graph& tree, NodeId root) {
  if (!tree.is_tree()) {
    throw std::invalid_argument("root_tree_input: graph is not a tree");
  }
  HalfEdgeLabeling input(tree.half_edge_count(), kChildEdge);
  // BFS from the root; each discovered node marks its half-edge back.
  std::vector<char> seen(tree.node_count(), 0);
  std::queue<NodeId> frontier;
  seen[root] = 1;
  frontier.push(root);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (int p = 0; p < tree.degree(v); ++p) {
      const NodeId w = tree.neighbor(v, p);
      if (seen[w]) continue;
      seen[w] = 1;
      input[tree.half_edge_of(w, tree.edge_at(v, p))] = kParentEdge;
      frontier.push(w);
    }
  }
  return input;
}

RootedTreeColoring::RootedTreeColoring(std::uint64_t id_range)
    : id_range_(id_range), shrink_rounds_(0) {
  if (id_range < 1) {
    throw std::invalid_argument("RootedTreeColoring: id_range >= 1");
  }
  int rounds = 0;
  std::uint64_t m = id_range;
  while (m > 6) {
    const std::uint64_t next = 2 * static_cast<std::uint64_t>(ceil_log2(m));
    ++rounds;
    if (next >= m) break;
    m = next;
  }
  shrink_rounds_ = rounds;
}

NodeState RootedTreeColoring::init(NodeContext& ctx) const {
  if (ctx.id >= id_range_) {
    throw std::invalid_argument("RootedTreeColoring: id outside range");
  }
  parent_port(ctx);  // validates the orientation
  return {ctx.id, 0};
}

NodeState RootedTreeColoring::step(
    NodeContext& ctx, const NodeState& self,
    const std::vector<const NodeState*>& neighbors, int round) const {
  NodeState next = self;
  next[kRoundsDone] = static_cast<std::uint64_t>(round);
  const std::uint64_t color = self[kColor];
  const int pp = parent_port(ctx);

  if (round <= shrink_rounds_) {
    // Bit-shrinking against the parent only (degree-independent).
    if (pp == -1) {
      next[kColor] = color & 1;
      return next;
    }
    const std::uint64_t parent_color =
        (*neighbors[static_cast<std::size_t>(pp)])[kColor];
    const std::uint64_t diff = color ^ parent_color;
    std::uint64_t i = 0;
    while (((diff >> i) & 1) == 0) ++i;
    next[kColor] = 2 * i + ((color >> i) & 1);
    return next;
  }

  // Three (shift-down, recolor) pairs removing colors 5, 4, 3. Shift-down
  // makes all siblings monochromatic, so a recoloring node faces at most
  // two constraints (parent color, common child color) and {0,1,2} always
  // offers a free color.
  const int offset = round - shrink_rounds_ - 1;  // 0-based in this stage
  const bool shift = (offset % 2 == 0);
  const std::uint64_t target = 5 - static_cast<std::uint64_t>(offset / 2);

  if (shift) {
    if (pp == -1) {
      // Root: any *small* color different from its current one - picking
      // from {0,1,2} guarantees shift-downs never re-introduce a high color
      // that an earlier recolor round already eliminated.
      next[kColor] = color == 0 ? 1 : 0;
    } else {
      next[kColor] = (*neighbors[static_cast<std::size_t>(pp)])[kColor];
    }
    return next;
  }

  if (color == target) {
    std::uint64_t parent_color = 6, child_color = 6;  // 6 = "none"
    for (int p = 0; p < ctx.degree; ++p) {
      const std::uint64_t c = (*neighbors[static_cast<std::size_t>(p)])[kColor];
      if (p == pp) {
        parent_color = c;
      } else {
        child_color = c;  // all children share one color after shift-down
      }
    }
    for (std::uint64_t c = 0; c < 3; ++c) {
      if (c != parent_color && c != child_color) {
        next[kColor] = c;
        break;
      }
    }
  }
  return next;
}

bool RootedTreeColoring::halted(const NodeContext&,
                                const NodeState& state) const {
  return state[kRoundsDone] >= static_cast<std::uint64_t>(total_rounds());
}

std::vector<Label> RootedTreeColoring::finalize(
    const NodeContext& ctx, const NodeState& state) const {
  return std::vector<Label>(static_cast<std::size_t>(ctx.degree),
                            static_cast<Label>(state[kColor]));
}

}  // namespace lcl
