#include "local/view.hpp"

#include <queue>
#include <stdexcept>

#include "obs/obs.hpp"

namespace lcl {

LocalView::LocalView(const Graph& graph, NodeId center, int radius,
                     const HalfEdgeLabeling& input, const IdAssignment& ids,
                     const std::vector<std::uint64_t>* seeds,
                     std::size_t advertised_n)
    : graph_(&graph),
      center_(center),
      radius_(radius),
      input_(&input),
      ids_(&ids),
      seeds_(seeds),
      advertised_n_(advertised_n) {
  if (radius < 0) {
    throw std::invalid_argument("LocalView: negative radius");
  }
  if (input.size() != graph.half_edge_count()) {
    throw std::invalid_argument("LocalView: input labeling size mismatch");
  }
  if (ids.size() != graph.node_count()) {
    throw std::invalid_argument("LocalView: id assignment size mismatch");
  }
  dist_.assign(graph.node_count(), -1);
  std::queue<NodeId> frontier;
  dist_[center] = 0;
  frontier.push(center);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    nodes_.push_back(v);
    if (dist_[v] == radius) continue;
    for (int p = 0; p < graph.degree(v); ++p) {
      const NodeId w = graph.neighbor(v, p);
      if (dist_[w] == -1) {
        dist_[w] = dist_[v] + 1;
        frontier.push(w);
      }
    }
  }
}

bool LocalView::contains(NodeId v) const {
  return v < dist_.size() && dist_[v] != -1;
}

int LocalView::distance(NodeId v) const {
  if (!contains(v)) {
    throw std::logic_error(
        "LocalView: node " + std::to_string(v) +
        " is outside the view (radius " + std::to_string(radius_) + ")");
  }
  return dist_[v];
}

int LocalView::degree(NodeId v) const {
  distance(v);  // visibility check
  return graph_->degree(v);
}

std::uint64_t LocalView::id(NodeId v) const {
  distance(v);
  return (*ids_)[v];
}

std::uint64_t LocalView::seed(NodeId v) const {
  distance(v);
  if (seeds_ == nullptr) {
    throw std::logic_error(
        "LocalView: random seeds requested but none were supplied "
        "(deterministic execution)");
  }
  return (*seeds_)[v];
}

Label LocalView::input(NodeId v, int port) const {
  distance(v);
  return (*input_)[graph_->half_edge(v, port)];
}

NodeId LocalView::neighbor(NodeId v, int port) const {
  if (distance(v) >= radius_) {
    throw std::logic_error(
        "LocalView: node " + std::to_string(v) +
        " is on the view boundary; its edges are not visible "
        "(Definition 2.1: edges need an endpoint within T-1)");
  }
  return graph_->neighbor(v, port);
}

int LocalView::twin_port(NodeId v, int port) const {
  const NodeId w = neighbor(v, port);  // validates edge visibility
  return graph_->port_of(w, graph_->edge_at(v, port));
}

LocalView LocalView::with_advertised(std::size_t advertised_n) const {
  LocalView copy = *this;
  copy.advertised_n_ = advertised_n;
  return copy;
}

LocalView LocalView::restricted(NodeId new_center, int new_radius) const {
  if (distance(new_center) + new_radius > radius_) {
    throw std::logic_error(
        "LocalView::restricted: requested sub-view exceeds the parent view");
  }
  return LocalView(*graph_, new_center, new_radius, *input_, *ids_, seeds_,
                   advertised_n_);
}

HalfEdgeLabeling run_ball_algorithm(const BallAlgorithm& algorithm,
                                    const Graph& graph,
                                    const HalfEdgeLabeling& input,
                                    const IdAssignment& ids,
                                    const std::vector<std::uint64_t>* seeds,
                                    std::size_t advertised_n) {
  if (advertised_n == 0) advertised_n = graph.node_count();
  const int radius = algorithm.radius(advertised_n);
  LCL_OBS_SPAN(span, "local/run_ball_algorithm", "local");
  LCL_OBS_SPAN_ARG(span, "radius", radius);
  LCL_OBS_SPAN_ARG(span, "nodes", graph.node_count());
  LCL_OBS_COUNTER_ADD("local.ball_queries", graph.node_count());
  HalfEdgeLabeling output(graph.half_edge_count(), 0);
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (graph.degree(v) == 0) continue;
    const LocalView view(graph, v, radius, input, ids, seeds, advertised_n);
    const auto labels = algorithm.outputs(view);
    if (labels.size() != static_cast<std::size_t>(graph.degree(v))) {
      throw std::logic_error(
          "run_ball_algorithm: algorithm returned " +
          std::to_string(labels.size()) + " labels at node " +
          std::to_string(v) + " of degree " +
          std::to_string(graph.degree(v)));
    }
    for (int p = 0; p < graph.degree(v); ++p) {
      output[graph.half_edge(v, p)] = labels[static_cast<std::size_t>(p)];
    }
  }
  return output;
}

}  // namespace lcl
