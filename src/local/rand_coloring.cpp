#include "local/rand_coloring.hpp"

#include <stdexcept>
#include <vector>

namespace lcl {

namespace {
// State layout.
constexpr std::size_t kDecided = 0;   // 0 = undecided, 1 = decided
constexpr std::size_t kColor = 1;     // final color when decided
constexpr std::size_t kProposal = 2;  // proposal + 1; 0 = no proposal
}  // namespace

RandomGreedyColoring::RandomGreedyColoring(int max_degree)
    : max_degree_(max_degree) {
  if (max_degree < 1) {
    throw std::invalid_argument(
        "RandomGreedyColoring: max_degree must be >= 1");
  }
}

NodeState RandomGreedyColoring::init(NodeContext& ctx) const {
  if (ctx.degree > max_degree_) {
    throw std::invalid_argument(
        "RandomGreedyColoring: node degree exceeds declared max_degree");
  }
  if (ctx.degree == 0) return {1, 0, 0};  // isolated: decide instantly
  return {0, 0, 0};
}

NodeState RandomGreedyColoring::step(
    NodeContext& ctx, const NodeState& self,
    const std::vector<const NodeState*>& neighbors, int round) const {
  NodeState next = self;
  if (self[kDecided] == 1) return next;

  if (round % 2 == 1) {
    // Proposal phase: pick a uniform color from the palette minus decided
    // neighbor colors.
    std::vector<char> blocked(static_cast<std::size_t>(max_degree_) + 1, 0);
    for (const NodeState* nb : neighbors) {
      if ((*nb)[kDecided] == 1) blocked[(*nb)[kColor]] = 1;
    }
    std::vector<std::uint64_t> free;
    for (std::uint64_t c = 0; c <= static_cast<std::uint64_t>(max_degree_);
         ++c) {
      if (!blocked[c]) free.push_back(c);
    }
    // At most `degree` neighbors are decided, so at least one color is free.
    const std::uint64_t pick = free[ctx.rng.next_below(free.size())];
    next[kProposal] = pick + 1;
    return next;
  }

  // Resolution phase: keep the proposal unless an undecided neighbor
  // proposed the same color or a neighbor decided on it in the meantime.
  const std::uint64_t proposal = self[kProposal];
  if (proposal == 0) return next;
  bool conflict = false;
  for (const NodeState* nb : neighbors) {
    if ((*nb)[kDecided] == 1 && (*nb)[kColor] + 1 == proposal) {
      conflict = true;
    }
    if ((*nb)[kDecided] == 0 && (*nb)[kProposal] == proposal) {
      conflict = true;
    }
  }
  next[kProposal] = 0;
  if (!conflict) {
    next[kDecided] = 1;
    next[kColor] = proposal - 1;
  }
  return next;
}

bool RandomGreedyColoring::halted(const NodeContext& ctx,
                                  const NodeState& state) const {
  (void)ctx;
  return state[kDecided] == 1;
}

std::vector<Label> RandomGreedyColoring::finalize(
    const NodeContext& ctx, const NodeState& state) const {
  return std::vector<Label>(static_cast<std::size_t>(ctx.degree),
                            static_cast<Label>(state[kColor]));
}

}  // namespace lcl
