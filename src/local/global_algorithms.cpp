#include "local/global_algorithms.hpp"

namespace lcl {

namespace {
constexpr std::size_t kRootId = 0;
constexpr std::size_t kDistance = 1;
}  // namespace

NodeState BfsTwoColoring::init(NodeContext& ctx) const {
  return {ctx.id, 0};
}

NodeState BfsTwoColoring::step(NodeContext& ctx, const NodeState& self,
                               const std::vector<const NodeState*>& neighbors,
                               int round) const {
  (void)ctx;
  (void)round;
  NodeState next = self;
  for (const NodeState* nb : neighbors) {
    const std::uint64_t candidate_root = (*nb)[kRootId];
    const std::uint64_t candidate_dist = (*nb)[kDistance] + 1;
    if (candidate_root < next[kRootId] ||
        (candidate_root == next[kRootId] &&
         candidate_dist < next[kDistance])) {
      next[kRootId] = candidate_root;
      next[kDistance] = candidate_dist;
    }
  }
  return next;
}

bool BfsTwoColoring::halted(const NodeContext& ctx,
                            const NodeState& state) const {
  (void)ctx;
  (void)state;
  return false;  // global problem: rely on engine quiescence
}

std::vector<Label> BfsTwoColoring::finalize(const NodeContext& ctx,
                                            const NodeState& state) const {
  const Label color = static_cast<Label>(state[kDistance] % 2);
  return std::vector<Label>(static_cast<std::size_t>(ctx.degree), color);
}

}  // namespace lcl
