#include "local/sinkless.hpp"

#include <stdexcept>

namespace lcl {

namespace {
constexpr std::size_t kDist = 0;        // distance to nearest non-full node
constexpr std::size_t kClaim = 1;       // claimed out-port + 1 (0 = none)
constexpr std::size_t kOrientMask = 2;  // bit p = 1 iff port p is OUT
constexpr std::size_t kId = 3;          // own identifier (for tie-breaks)
constexpr std::uint64_t kInfinity = std::uint64_t{1} << 62;
}  // namespace

SinklessOrientationTree::SinklessOrientationTree(int max_degree)
    : max_degree_(max_degree) {
  if (max_degree < 2) {
    throw std::invalid_argument(
        "SinklessOrientationTree: max_degree must be >= 2");
  }
  if (max_degree > 63) {
    throw std::invalid_argument(
        "SinklessOrientationTree: orientation mask supports degree <= 63");
  }
}

NodeState SinklessOrientationTree::init(NodeContext& ctx) const {
  if (ctx.degree > max_degree_) {
    throw std::invalid_argument(
        "SinklessOrientationTree: node degree exceeds declared max_degree");
  }
  const std::uint64_t dist = ctx.degree < max_degree_ ? 0 : kInfinity;
  return {dist, 0, 0, ctx.id};
}

NodeState SinklessOrientationTree::step(
    NodeContext& ctx, const NodeState& self,
    const std::vector<const NodeState*>& neighbors, int round) const {
  (void)round;
  NodeState next = self;

  // Wave: distance to the nearest node of degree < Delta.
  std::uint64_t best = self[kDist];
  for (const NodeState* nb : neighbors) {
    best = std::min(best, (*nb)[kDist] + 1);
  }
  next[kDist] = best;

  // Full-degree nodes claim an edge toward a strictly closer neighbor.
  next[kClaim] = 0;
  if (ctx.degree == max_degree_ && best != kInfinity && best > 0) {
    for (std::size_t p = 0; p < neighbors.size(); ++p) {
      if ((*neighbors[p])[kDist] + 1 == best) {
        next[kClaim] = static_cast<std::uint64_t>(p) + 1;
        break;
      }
    }
  }

  // Per-port orientation from current knowledge; quiescence settles it.
  std::uint64_t mask = 0;
  for (std::size_t p = 0; p < neighbors.size(); ++p) {
    const NodeState& nb = *neighbors[p];
    const std::uint64_t twin_claim =
        static_cast<std::uint64_t>(ctx.twin_ports[p]) + 1;
    bool out;
    if (next[kClaim] == p + 1) {
      out = true;  // I claimed this edge.
    } else if (nb[kClaim] == twin_claim) {
      out = false;  // The neighbor claimed it.
    } else {
      // Unclaimed: orient away from the smaller-ID endpoint; both sides
      // evaluate the same comparison (ids travel in the states), so the
      // edge gets exactly one direction.
      out = ctx.id < nb[kId];
    }
    if (out) mask |= std::uint64_t{1} << p;
  }
  next[kOrientMask] = mask;
  return next;
}

bool SinklessOrientationTree::halted(const NodeContext&,
                                     const NodeState&) const {
  return false;  // wave algorithm: the engine stops at quiescence
}

std::vector<Label> SinklessOrientationTree::finalize(
    const NodeContext& ctx, const NodeState& state) const {
  std::vector<Label> out(static_cast<std::size_t>(ctx.degree), kIn);
  for (int p = 0; p < ctx.degree; ++p) {
    if ((state[kOrientMask] >> p) & 1) {
      out[static_cast<std::size_t>(p)] = kOut;
    }
  }
  return out;
}

}  // namespace lcl
