#pragma once

#include <cstdint>

#include "local/linial.hpp"
#include "local/sync_engine.hpp"

namespace lcl {

/// Maximal independent set in Theta(log* n) rounds: run Linial's
/// (Delta+1)-coloring, then sweep the color classes 0..Delta - class c joins
/// the MIS in sweep round c unless a neighbor already joined - and finally
/// record a pointer to a dominating MIS neighbor. Produces the
/// `problems::mis` output encoding (I / P / O).
class MisByColoring final : public SynchronousAlgorithm {
 public:
  MisByColoring(int max_degree, std::uint64_t id_range);

  NodeState init(NodeContext& ctx) const override;
  NodeState step(NodeContext& ctx, const NodeState& self,
                 const std::vector<const NodeState*>& neighbors,
                 int round) const override;
  bool halted(const NodeContext& ctx, const NodeState& state) const override;
  std::vector<Label> finalize(const NodeContext& ctx,
                              const NodeState& state) const override;

  int total_rounds() const noexcept;

  /// Output labels (match `problems::mis(max_degree)`).
  static constexpr Label kI = 0;
  static constexpr Label kP = 1;
  static constexpr Label kO = 2;

 private:
  int max_degree_;
  LinialColoring coloring_;
};

/// Maximal matching in Theta(log* n) rounds: run Linial's coloring, then a
/// deterministic proposal schedule - step (c, p) lets unmatched nodes of
/// color c propose along port p; proposals are accepted (smallest port
/// first) and confirmed in the two subsequent rounds. After the full
/// schedule no edge has two unmatched endpoints. Produces the
/// `problems::maximal_matching` encoding (M / Y / U).
class MatchingByColoring final : public SynchronousAlgorithm {
 public:
  MatchingByColoring(int max_degree, std::uint64_t id_range);

  NodeState init(NodeContext& ctx) const override;
  NodeState step(NodeContext& ctx, const NodeState& self,
                 const std::vector<const NodeState*>& neighbors,
                 int round) const override;
  bool halted(const NodeContext& ctx, const NodeState& state) const override;
  std::vector<Label> finalize(const NodeContext& ctx,
                              const NodeState& state) const override;

  int total_rounds() const noexcept;

  /// Output labels (match `problems::maximal_matching(max_degree)`).
  static constexpr Label kM = 0;
  static constexpr Label kY = 1;
  static constexpr Label kU = 2;

 private:
  int max_degree_;
  LinialColoring coloring_;
};

}  // namespace lcl
