#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/labeling.hpp"
#include "util/rng.hpp"

namespace lcl {

/// Per-node algorithm state in the synchronous engine: a small vector of
/// words, interpreted by the algorithm.
using NodeState = std::vector<std::uint64_t>;

/// Static per-node information available to a synchronous algorithm.
struct NodeContext {
  NodeId node = 0;          // simulator-internal index (not visible "ID")
  std::uint64_t id = 0;     // the LOCAL model identifier
  int degree = 0;
  std::size_t n = 0;        // advertised number of nodes
  std::vector<Label> inputs;  // input labels by port
  /// For each of this node's ports, the port number the shared edge has at
  /// the *other* endpoint. One round of communication establishes this in a
  /// real message-passing system, so exposing it statically is sound; the
  /// matching protocol uses it to address proposals.
  std::vector<int> twin_ports;
  /// Model-specific per-node data, e.g. the d-tuple of PROD-LOCAL
  /// identifiers of Definition 5.2 (one per grid dimension). Empty unless
  /// the caller supplies aux data to `run_synchronous`.
  std::vector<std::uint64_t> aux;
  SplitRng rng{0};          // private random stream (Definition 2.1)
};

/// A LOCAL algorithm expressed as a synchronous message-passing state
/// machine. This is the "operational" counterpart of `BallAlgorithm`:
/// instead of a function of the whole radius-T ball, the algorithm runs in
/// rounds, each round reading the *previous-round* states of its neighbors.
/// After T rounds a node's state is a function of its radius-T ball, so the
/// two formulations describe the same model; this one additionally lets the
/// engine *measure* how many rounds an adaptive algorithm actually takes,
/// which is how the Figure 1 benches produce locality-vs-n series.
class SynchronousAlgorithm {
 public:
  virtual ~SynchronousAlgorithm() = default;

  /// Initial state of a node (round 0, before any communication).
  virtual NodeState init(NodeContext& ctx) const = 0;

  /// One round: compute the new state from the own state and the neighbor
  /// states (indexed by port; entries are never null). `round` starts at 1.
  virtual NodeState step(NodeContext& ctx, const NodeState& self,
                         const std::vector<const NodeState*>& neighbors,
                         int round) const = 0;

  /// True when the node has locally, irrevocably finished: its state will
  /// no longer change and it no longer needs to be stepped. The engine
  /// stops when all nodes halt.
  virtual bool halted(const NodeContext& ctx, const NodeState& state)
      const = 0;

  /// Output labels for the node's ports, read off the final state.
  virtual std::vector<Label> finalize(const NodeContext& ctx,
                                      const NodeState& state) const = 0;
};

/// Result of a synchronous execution.
struct SyncResult {
  HalfEdgeLabeling output;
  /// Rounds executed until all nodes halted (or quiescence).
  int rounds = 0;
  /// Largest per-round message size observed, in 64-bit words (node states
  /// are broadcast to neighbors each round, so the state size *is* the
  /// message size). A value of O(log n / 64) words means the algorithm also
  /// fits the CONGEST model - relevant because [10] (discussed in Section
  /// 1.1) shows LCL complexities on trees coincide in LOCAL and CONGEST.
  std::size_t max_message_words = 0;
  /// True if the run ended because no state changed during a round while
  /// some nodes had not halted. Algorithms for global problems (e.g. BFS
  /// 2-coloring) cannot detect termination locally; quiescence is the
  /// engine-level stand-in, and the round count still upper-bounds the
  /// locality the algorithm used.
  bool quiesced = false;
};

/// Runs `algorithm` on `graph` until every node halts, quiescence, or
/// `max_rounds` (throws `std::runtime_error` when the cap is hit - an
/// algorithm bug, not a legitimate outcome).
SyncResult run_synchronous(const SynchronousAlgorithm& algorithm,
                           const Graph& graph, const HalfEdgeLabeling& input,
                           const IdAssignment& ids, std::uint64_t seed,
                           std::size_t advertised_n = 0,
                           int max_rounds = 1'000'000,
                           const std::vector<std::vector<std::uint64_t>>*
                               aux = nullptr);

}  // namespace lcl
