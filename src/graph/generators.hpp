#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace lcl {

/// Graph family generators used throughout the experiments. All generators
/// are deterministic given their arguments (and RNG seed where applicable).

/// The path `0 - 1 - ... - n-1`. Requires n >= 1.
Graph make_path(std::size_t n);

/// The cycle on n nodes. Requires n >= 3.
Graph make_cycle(std::size_t n);

/// A star: center 0 with `leaves` leaves. Max degree = leaves.
Graph make_star(std::size_t leaves);

/// Complete rooted tree in which the root has `max_degree` children and
/// every other internal node has `max_degree - 1` children (so every
/// internal node has degree exactly `max_degree`), with `depth` levels below
/// the root. `depth == 0` yields a single node.
Graph make_regular_tree(int max_degree, int depth);

/// A uniformly random tree with maximum degree `max_degree`: nodes arrive
/// one by one and attach to a uniformly random earlier node that still has
/// residual degree. Requires max_degree >= 2.
Graph make_random_tree(std::size_t n, int max_degree, SplitRng& rng);

/// A random forest: `n` nodes split into `components` trees, each generated
/// as in `make_random_tree`.
Graph make_random_forest(std::size_t n, std::size_t components,
                         int max_degree, SplitRng& rng);

/// A caterpillar: a spine path of `spine` nodes, each carrying `legs` leaf
/// children. Max degree = legs + 2.
Graph make_caterpillar(std::size_t spine, int legs);

/// The [BHKLOS18]-style shortcut graph used for Figure 1 (bottom-left):
/// a spine path `0 .. n-1` plus a balanced binary tree whose leaves are the
/// spine nodes (internal tree nodes are extra nodes). The t-hop ball of a
/// spine node in the full graph contains the Theta(2^t)-hop ball of that
/// node *in the spine*, so problems on the spine that need to see k spine
/// nodes need only radius O(log k) here - but still volume Theta(k).
/// Max degree 3 (spine nodes: 2 spine edges + at most 1 tree parent;
/// internal tree nodes: at most 1 parent + 2 children). Spine nodes are ids
/// `0 .. n-1`.
Graph make_shortcut_path(std::size_t n);

/// A "high-girth-like" graph: a cycle of length `n` (girth n). Placeholder
/// family for the paper's high-girth remark; on constant-degree graphs a
/// long cycle is the canonical high-girth witness at Delta = 2.
Graph make_high_girth_cycle(std::size_t n);

}  // namespace lcl
