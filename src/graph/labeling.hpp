#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace lcl {

/// A half-edge labeling `f : H(G) -> Sigma` (Section 2), stored densely by
/// `HalfEdgeId`. Used for both input labelings (`f_in`) and output labelings
/// (`f_out`).
using HalfEdgeLabeling = std::vector<Label>;

/// An assignment of globally unique identifiers to nodes (Definition 2.1:
/// positive integers from a polynomial range), stored densely by `NodeId`.
using IdAssignment = std::vector<std::uint64_t>;

/// Labels every half-edge with the single label `label`.
HalfEdgeLabeling uniform_labeling(const Graph& g, Label label);

/// Labels every half-edge with an independent uniform label from
/// `{0, .., alphabet_size-1}`.
HalfEdgeLabeling random_labeling(const Graph& g, std::size_t alphabet_size,
                                 SplitRng& rng);

/// IDs `1, 2, .., n` in node order (the LCA model's ID regime).
IdAssignment sequential_ids(const Graph& g);

/// Distinct random IDs from `[1, n^range_exponent]` (polynomial range,
/// Definition 2.1). `range_exponent` must be >= 1; collisions are resolved
/// by rejection, so the range must comfortably exceed n.
IdAssignment random_distinct_ids(const Graph& g, int range_exponent,
                                 SplitRng& rng);

/// A uniformly random permutation of `1 .. n` as the ID assignment.
IdAssignment shuffled_sequential_ids(const Graph& g, SplitRng& rng);

/// Remaps `ids` through a random strictly-increasing function into a larger
/// range, preserving relative order. Used by order-invariance property
/// tests (Definitions 2.7 and 2.10: an order-invariant algorithm must be
/// blind to such remappings).
IdAssignment order_preserving_remap(const IdAssignment& ids,
                                    int range_exponent, SplitRng& rng);

}  // namespace lcl
