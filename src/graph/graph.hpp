#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lcl {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

/// Identifier of a half-edge `(v, e)` (Section 2 of the paper). Encoded as
/// `2*e + side` where `side` is 0 for the first stored endpoint of `e` and 1
/// for the second, so `HalfEdgeId` values are dense in
/// `[0, 2*edge_count())` and can index plain vectors.
using HalfEdgeId = std::uint32_t;

/// An undirected bounded-degree graph with half-edges and per-node ports.
///
/// Every node `v` numbers its incident edges with ports `0 .. deg(v)-1`
/// (the paper uses 1-based ports; we use 0-based indices). The port order is
/// the order in which edges were added, which the model treats as arbitrary
/// but fixed - exactly the "port numbering" assumption of Definition 2.1.
///
/// The structure is immutable once built (use `Builder`). Node identifiers
/// (the LOCAL model's IDs), input labels and output labels are *not* stored
/// here; they are separate dense vectors indexed by `NodeId`/`HalfEdgeId`,
/// so one structure can be reused across many labelings and ID assignments.
class Graph {
 public:
  class Builder;

  /// Default-constructs an empty graph (0 nodes). Useful as a placeholder
  /// member to move a built graph into.
  Graph() = default;

  std::size_t node_count() const noexcept { return incident_.size(); }
  std::size_t edge_count() const noexcept { return endpoints_.size(); }
  std::size_t half_edge_count() const noexcept {
    return 2 * endpoints_.size();
  }

  int degree(NodeId v) const;
  int max_degree() const noexcept { return max_degree_; }

  /// Edge connected to port `port` of `v`.
  EdgeId edge_at(NodeId v, int port) const;
  /// Neighbor across port `port` of `v`.
  NodeId neighbor(NodeId v, int port) const;
  /// Half-edge `(v, edge_at(v, port))`.
  HalfEdgeId half_edge(NodeId v, int port) const;

  /// The two endpoints of `e` (in storage order).
  std::pair<NodeId, NodeId> endpoints(EdgeId e) const;

  /// Half-edge `(v, e)`; throws `std::invalid_argument` if `v` is not an
  /// endpoint of `e`.
  HalfEdgeId half_edge_of(NodeId v, EdgeId e) const;

  /// Port at which `e` attaches to `v`; throws if not incident.
  int port_of(NodeId v, EdgeId e) const;

  static EdgeId edge_of(HalfEdgeId h) noexcept { return h / 2; }
  NodeId node_of(HalfEdgeId h) const;
  /// The opposite half-edge of the same edge.
  static HalfEdgeId twin(HalfEdgeId h) noexcept { return h ^ 1; }

  /// Nodes at distance <= radius from `center`, in BFS order (center first).
  std::vector<NodeId> ball(NodeId center, int radius) const;

  /// Distance from `center` to every node (-1 where unreachable).
  std::vector<int> distances_from(NodeId center) const;

  /// True iff the graph has no cycle (it may be disconnected).
  bool is_forest() const;
  /// True iff connected and acyclic.
  bool is_tree() const;
  /// Number of connected components.
  std::size_t component_count() const;

 private:
  void check_node(NodeId v) const;
  void check_edge(EdgeId e) const;

  std::vector<std::vector<EdgeId>> incident_;  // per node, by port
  std::vector<std::pair<NodeId, NodeId>> endpoints_;
  int max_degree_ = 0;
};

/// Builder for `Graph`. Nodes are added implicitly by `add_edge`; isolated
/// nodes can be forced with `ensure_node`.
class Graph::Builder {
 public:
  Builder() = default;
  /// Pre-declares nodes `0 .. n-1`.
  explicit Builder(std::size_t node_count);

  /// Ensures node `v` exists (possibly isolated).
  Builder& ensure_node(NodeId v);

  /// Adds the undirected edge `{u, v}`. Self-loops and parallel edges are
  /// rejected (`std::invalid_argument`); LCLs are defined on simple graphs.
  Builder& add_edge(NodeId u, NodeId v);

  /// Finalizes the structure.
  Graph build();

 private:
  Graph graph_;
  bool built_ = false;
};

}  // namespace lcl
