#include "graph/graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace lcl {

void Graph::check_node(NodeId v) const {
  if (v >= incident_.size()) {
    throw std::out_of_range("Graph: node " + std::to_string(v) +
                            " out of range (n = " +
                            std::to_string(incident_.size()) + ")");
  }
}

void Graph::check_edge(EdgeId e) const {
  if (e >= endpoints_.size()) {
    throw std::out_of_range("Graph: edge " + std::to_string(e) +
                            " out of range (m = " +
                            std::to_string(endpoints_.size()) + ")");
  }
}

int Graph::degree(NodeId v) const {
  check_node(v);
  return static_cast<int>(incident_[v].size());
}

EdgeId Graph::edge_at(NodeId v, int port) const {
  check_node(v);
  if (port < 0 || static_cast<std::size_t>(port) >= incident_[v].size()) {
    throw std::out_of_range("Graph::edge_at: port " + std::to_string(port) +
                            " out of range at node " + std::to_string(v));
  }
  return incident_[v][static_cast<std::size_t>(port)];
}

NodeId Graph::neighbor(NodeId v, int port) const {
  const EdgeId e = edge_at(v, port);
  const auto [a, b] = endpoints_[e];
  return a == v ? b : a;
}

HalfEdgeId Graph::half_edge(NodeId v, int port) const {
  return half_edge_of(v, edge_at(v, port));
}

std::pair<NodeId, NodeId> Graph::endpoints(EdgeId e) const {
  check_edge(e);
  return endpoints_[e];
}

HalfEdgeId Graph::half_edge_of(NodeId v, EdgeId e) const {
  check_edge(e);
  const auto [a, b] = endpoints_[e];
  if (v == a) return 2 * e;
  if (v == b) return 2 * e + 1;
  throw std::invalid_argument("Graph::half_edge_of: node " +
                              std::to_string(v) + " not on edge " +
                              std::to_string(e));
}

int Graph::port_of(NodeId v, EdgeId e) const {
  check_node(v);
  const auto& inc = incident_[v];
  for (std::size_t p = 0; p < inc.size(); ++p) {
    if (inc[p] == e) return static_cast<int>(p);
  }
  throw std::invalid_argument("Graph::port_of: edge " + std::to_string(e) +
                              " not incident to node " + std::to_string(v));
}

NodeId Graph::node_of(HalfEdgeId h) const {
  const EdgeId e = edge_of(h);
  check_edge(e);
  return (h & 1) == 0 ? endpoints_[e].first : endpoints_[e].second;
}

std::vector<NodeId> Graph::ball(NodeId center, int radius) const {
  check_node(center);
  std::vector<NodeId> result;
  std::vector<int> dist(node_count(), -1);
  std::queue<NodeId> frontier;
  dist[center] = 0;
  frontier.push(center);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    result.push_back(v);
    if (dist[v] == radius) continue;
    for (std::size_t p = 0; p < incident_[v].size(); ++p) {
      const NodeId w = neighbor(v, static_cast<int>(p));
      if (dist[w] == -1) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    }
  }
  return result;
}

std::vector<int> Graph::distances_from(NodeId center) const {
  check_node(center);
  std::vector<int> dist(node_count(), -1);
  std::queue<NodeId> frontier;
  dist[center] = 0;
  frontier.push(center);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (std::size_t p = 0; p < incident_[v].size(); ++p) {
      const NodeId w = neighbor(v, static_cast<int>(p));
      if (dist[w] == -1) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    }
  }
  return dist;
}

bool Graph::is_forest() const {
  return edge_count() + component_count() == node_count();
}

bool Graph::is_tree() const {
  return component_count() == 1 && edge_count() + 1 == node_count();
}

std::size_t Graph::component_count() const {
  std::vector<char> seen(node_count(), 0);
  std::size_t components = 0;
  for (NodeId start = 0; start < node_count(); ++start) {
    if (seen[start]) continue;
    ++components;
    std::queue<NodeId> frontier;
    frontier.push(start);
    seen[start] = 1;
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (std::size_t p = 0; p < incident_[v].size(); ++p) {
        const NodeId w = neighbor(v, static_cast<int>(p));
        if (!seen[w]) {
          seen[w] = 1;
          frontier.push(w);
        }
      }
    }
  }
  return components;
}

Graph::Builder::Builder(std::size_t node_count) {
  graph_.incident_.resize(node_count);
}

Graph::Builder& Graph::Builder::ensure_node(NodeId v) {
  if (v >= graph_.incident_.size()) graph_.incident_.resize(v + 1);
  return *this;
}

Graph::Builder& Graph::Builder::add_edge(NodeId u, NodeId v) {
  if (u == v) {
    throw std::invalid_argument("Graph::Builder: self-loop at node " +
                                std::to_string(u));
  }
  ensure_node(u);
  ensure_node(v);
  for (EdgeId e : graph_.incident_[u]) {
    const auto [a, b] = graph_.endpoints_[e];
    if ((a == u && b == v) || (a == v && b == u)) {
      throw std::invalid_argument("Graph::Builder: parallel edge {" +
                                  std::to_string(u) + "," +
                                  std::to_string(v) + "}");
    }
  }
  const EdgeId e = static_cast<EdgeId>(graph_.endpoints_.size());
  graph_.endpoints_.emplace_back(u, v);
  graph_.incident_[u].push_back(e);
  graph_.incident_[v].push_back(e);
  return *this;
}

Graph Graph::Builder::build() {
  if (built_) throw std::logic_error("Graph::Builder::build called twice");
  built_ = true;
  graph_.max_degree_ = 0;
  for (const auto& inc : graph_.incident_) {
    graph_.max_degree_ =
        std::max(graph_.max_degree_, static_cast<int>(inc.size()));
  }
  return std::move(graph_);
}

}  // namespace lcl
