#include "graph/labeling.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace lcl {

HalfEdgeLabeling uniform_labeling(const Graph& g, Label label) {
  return HalfEdgeLabeling(g.half_edge_count(), label);
}

HalfEdgeLabeling random_labeling(const Graph& g, std::size_t alphabet_size,
                                 SplitRng& rng) {
  if (alphabet_size == 0) {
    throw std::invalid_argument("random_labeling: empty alphabet");
  }
  HalfEdgeLabeling out(g.half_edge_count());
  for (auto& l : out) {
    l = static_cast<Label>(rng.next_below(alphabet_size));
  }
  return out;
}

IdAssignment sequential_ids(const Graph& g) {
  IdAssignment ids(g.node_count());
  for (std::size_t v = 0; v < ids.size(); ++v) ids[v] = v + 1;
  return ids;
}

IdAssignment random_distinct_ids(const Graph& g, int range_exponent,
                                 SplitRng& rng) {
  if (range_exponent < 1) {
    throw std::invalid_argument(
        "random_distinct_ids: range_exponent must be >= 1");
  }
  const std::size_t n = g.node_count();
  std::uint64_t range = 1;
  for (int i = 0; i < range_exponent; ++i) {
    if (range > (std::uint64_t{1} << 62) / (n + 1)) {
      range = std::uint64_t{1} << 62;
      break;
    }
    range *= (n + 1);
  }
  // Guarantee the range exceeds n so distinct draws exist.
  range = std::max<std::uint64_t>(range, 2 * n + 1);
  std::set<std::uint64_t> used;
  IdAssignment ids(n);
  for (std::size_t v = 0; v < n; ++v) {
    std::uint64_t id = 1 + rng.next_below(range);
    while (used.count(id) != 0) id = 1 + rng.next_below(range);
    used.insert(id);
    ids[v] = id;
  }
  return ids;
}

IdAssignment shuffled_sequential_ids(const Graph& g, SplitRng& rng) {
  IdAssignment ids = sequential_ids(g);
  for (std::size_t i = ids.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(ids[i - 1], ids[j]);
  }
  return ids;
}

IdAssignment order_preserving_remap(const IdAssignment& ids,
                                    int range_exponent, SplitRng& rng) {
  if (ids.empty()) return {};
  // Sort the distinct old IDs, draw an increasing sequence of new IDs of the
  // same length, and map position-wise.
  std::vector<std::uint64_t> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  const std::size_t n = ids.size();
  std::uint64_t range = 1;
  for (int i = 0; i < range_exponent; ++i) {
    if (range > (std::uint64_t{1} << 62) / (n + 1)) {
      range = std::uint64_t{1} << 62;
      break;
    }
    range *= (n + 1);
  }
  range = std::max<std::uint64_t>(range, 2 * sorted.size() + 1);

  std::set<std::uint64_t> draws;
  while (draws.size() < sorted.size()) {
    draws.insert(1 + rng.next_below(range));
  }
  std::map<std::uint64_t, std::uint64_t> remap;
  auto it = draws.begin();
  for (auto old_id : sorted) remap[old_id] = *it++;

  IdAssignment out(n);
  for (std::size_t v = 0; v < n; ++v) out[v] = remap.at(ids[v]);
  return out;
}

}  // namespace lcl
