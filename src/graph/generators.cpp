#include "graph/generators.hpp"

#include <stdexcept>
#include <vector>

namespace lcl {

Graph make_path(std::size_t n) {
  if (n < 1) throw std::invalid_argument("make_path: n must be >= 1");
  Graph::Builder b(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  return b.build();
}

Graph make_cycle(std::size_t n) {
  if (n < 3) throw std::invalid_argument("make_cycle: n must be >= 3");
  Graph::Builder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  return b.build();
}

Graph make_star(std::size_t leaves) {
  if (leaves < 1) throw std::invalid_argument("make_star: need >= 1 leaf");
  Graph::Builder b(leaves + 1);
  for (std::size_t i = 1; i <= leaves; ++i) {
    b.add_edge(0, static_cast<NodeId>(i));
  }
  return b.build();
}

Graph make_regular_tree(int max_degree, int depth) {
  if (max_degree < 2) {
    throw std::invalid_argument("make_regular_tree: max_degree must be >= 2");
  }
  if (depth < 0) {
    throw std::invalid_argument("make_regular_tree: depth must be >= 0");
  }
  Graph::Builder b;
  b.ensure_node(0);
  NodeId next = 1;
  std::vector<NodeId> frontier{0};
  for (int level = 0; level < depth; ++level) {
    std::vector<NodeId> next_frontier;
    for (NodeId parent : frontier) {
      const int children = (parent == 0) ? max_degree : max_degree - 1;
      for (int c = 0; c < children; ++c) {
        b.add_edge(parent, next);
        next_frontier.push_back(next);
        ++next;
      }
    }
    frontier = std::move(next_frontier);
  }
  return b.build();
}

Graph make_random_tree(std::size_t n, int max_degree, SplitRng& rng) {
  if (n < 1) throw std::invalid_argument("make_random_tree: n must be >= 1");
  if (max_degree < 2) {
    throw std::invalid_argument("make_random_tree: max_degree must be >= 2");
  }
  Graph::Builder b(n);
  std::vector<int> residual(n, 0);
  // Nodes that can still accept a child.
  std::vector<NodeId> open;
  residual[0] = max_degree;
  open.push_back(0);
  for (NodeId v = 1; v < n; ++v) {
    const std::size_t pick = rng.next_below(open.size());
    const NodeId parent = open[pick];
    b.add_edge(parent, v);
    if (--residual[parent] == 0) {
      open[pick] = open.back();
      open.pop_back();
    }
    residual[v] = max_degree - 1;
    if (residual[v] > 0) open.push_back(v);
  }
  return b.build();
}

Graph make_random_forest(std::size_t n, std::size_t components,
                         int max_degree, SplitRng& rng) {
  if (components < 1 || components > n) {
    throw std::invalid_argument(
        "make_random_forest: need 1 <= components <= n");
  }
  Graph::Builder b(n);
  // Split n into `components` parts as evenly as possible, then grow each
  // part as a random tree over its contiguous id range.
  const std::size_t base = n / components;
  const std::size_t extra = n % components;
  NodeId start = 0;
  for (std::size_t c = 0; c < components; ++c) {
    const std::size_t size = base + (c < extra ? 1 : 0);
    std::vector<int> residual(size, 0);
    std::vector<NodeId> open;
    residual[0] = max_degree;
    open.push_back(start);
    for (std::size_t i = 1; i < size; ++i) {
      const NodeId v = start + static_cast<NodeId>(i);
      const std::size_t pick = rng.next_below(open.size());
      const NodeId parent = open[pick];
      b.add_edge(parent, v);
      if (--residual[parent - start] == 0) {
        open[pick] = open.back();
        open.pop_back();
      }
      residual[i] = max_degree - 1;
      if (residual[i] > 0) open.push_back(v);
    }
    start += static_cast<NodeId>(size);
  }
  return b.build();
}

Graph make_caterpillar(std::size_t spine, int legs) {
  if (spine < 1) {
    throw std::invalid_argument("make_caterpillar: spine must be >= 1");
  }
  if (legs < 0) {
    throw std::invalid_argument("make_caterpillar: legs must be >= 0");
  }
  Graph::Builder b(spine);
  for (std::size_t i = 0; i + 1 < spine; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  NodeId next = static_cast<NodeId>(spine);
  for (std::size_t i = 0; i < spine; ++i) {
    for (int l = 0; l < legs; ++l) {
      b.add_edge(static_cast<NodeId>(i), next++);
    }
  }
  return b.build();
}

Graph make_shortcut_path(std::size_t n) {
  if (n < 2) {
    throw std::invalid_argument("make_shortcut_path: n must be >= 2");
  }
  Graph::Builder b(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  // Build a balanced binary tree bottom-up: level 0 = spine nodes; each
  // higher level pairs up the nodes of the level below under fresh parents.
  std::vector<NodeId> level(n);
  for (std::size_t i = 0; i < n; ++i) level[i] = static_cast<NodeId>(i);
  NodeId next = static_cast<NodeId>(n);
  while (level.size() > 1) {
    std::vector<NodeId> parents;
    for (std::size_t i = 0; i < level.size(); i += 2) {
      if (i + 1 < level.size()) {
        const NodeId parent = next++;
        b.add_edge(parent, level[i]);
        b.add_edge(parent, level[i + 1]);
        parents.push_back(parent);
      } else {
        // Odd node out: promote it unchanged.
        parents.push_back(level[i]);
      }
    }
    level = std::move(parents);
  }
  return b.build();
}

Graph make_high_girth_cycle(std::size_t n) { return make_cycle(n); }

}  // namespace lcl
