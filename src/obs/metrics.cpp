#include "obs/metrics.hpp"

#include <bit>
#include <sstream>

namespace lcl::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

/// Lock-free monotone max/min update.
template <typename Compare>
void update_extreme(std::atomic<std::int64_t>& slot, std::int64_t v,
                    Compare better) {
  std::int64_t seen = slot.load(std::memory_order_relaxed);
  while (better(v, seen) &&
         !slot.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::set(std::int64_t v) noexcept {
  value_.store(v, std::memory_order_relaxed);
  // Every setter - including the first - folds into the sentinel extremes
  // via the monotone CAS. The old exchange-then-store first-set fast path
  // raced: a second setter could finish its CAS against the sentinel and
  // then be overwritten by the first setter's plain store, losing an
  // extreme. Release pairs with the acquire in `ever_set()` so a reader
  // that observes `set_` also observes this setter's extremes.
  update_extreme(max_, v, [](std::int64_t a, std::int64_t b) { return a > b; });
  update_extreme(min_, v, [](std::int64_t a, std::int64_t b) { return a < b; });
  set_.store(true, std::memory_order_release);
}

void Gauge::reset() noexcept {
  value_.store(0, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  set_.store(false, std::memory_order_relaxed);
}

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t Histogram::bucket_floor(std::size_t bucket) noexcept {
  return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

std::uint64_t Histogram::bucket_ceil(std::size_t bucket) noexcept {
  if (bucket == 0) return 0;
  if (bucket >= kBucketCount - 1) return UINT64_MAX;
  return (std::uint64_t{1} << bucket) - 1;
}

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const noexcept {
  const auto m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

std::uint64_t Histogram::bucket_count(std::size_t bucket) const {
  return buckets_[bucket].load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const auto c = count();
  return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::size_t MetricsRegistry::instrument_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    if (!g->ever_set()) continue;
    snap.gauges.emplace(name,
                        Snapshot::GaugeValue{g->value(), g->min(), g->max()});
  }
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramValue v;
    v.count = h->count();
    v.sum = h->sum();
    v.min = h->min();
    v.max = h->max();
    for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
      const auto c = h->bucket_count(b);
      if (c != 0) v.buckets.emplace_back(b, c);
    }
    snap.histograms.emplace(name, std::move(v));
  }
  return snap;
}

std::string MetricsRegistry::to_json() const {
  const Snapshot snap = snapshot();
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "" : ",") << '"' << name << "\":" << value;
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : snap.gauges) {
    out << (first ? "" : ",") << '"' << name << "\":{\"value\":" << g.value
        << ",\"min\":" << g.min << ",\"max\":" << g.max << '}';
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out << (first ? "" : ",") << '"' << name << "\":{\"count\":" << h.count
        << ",\"sum\":" << h.sum << ",\"min\":" << h.min
        << ",\"max\":" << h.max << ",\"buckets\":[";
    bool first_bucket = true;
    for (const auto& [bucket, count] : h.buckets) {
      out << (first_bucket ? "" : ",") << "[" << bucket << "," << count
          << "]";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << "}}";
  return out.str();
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace lcl::obs
