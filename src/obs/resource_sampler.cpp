#include "obs/resource_sampler.hpp"

#include <cstdio>
#include <cstring>

#include <sys/resource.h>

#include "obs/obs.hpp"
#include "obs/run_context.hpp"

namespace lcl::obs {

bool read_resource_usage(ResourceUsage* out) {
  ResourceUsage usage;

  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return false;
  char line[256];
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
      usage.rss_kb = kb;
    } else if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
      usage.peak_rss_kb = kb;
    }
  }
  std::fclose(status);

  rusage self{};
  if (::getrusage(RUSAGE_SELF, &self) == 0) {
    const auto to_ms = [](const timeval& tv) {
      return static_cast<std::uint64_t>(tv.tv_sec) * 1000 +
             static_cast<std::uint64_t>(tv.tv_usec) / 1000;
    };
    usage.cpu_ms = to_ms(self.ru_utime) + to_ms(self.ru_stime);
  }

  *out = usage;
  return true;
}

ResourceSampler::~ResourceSampler() { stop(); }

#if LCL_OBS

bool ResourceSampler::start() {
  if (running()) return true;
  error_.clear();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { sample_loop(); });
  return true;
}

void ResourceSampler::stop() {
  if (!running() && !thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final samples so short runs record at least one data point of each
  // kind and the gauges reflect the end state.
  sample_resources();
  sample_progress();
  running_.store(false, std::memory_order_release);
}

void ResourceSampler::sample_loop() {
  using clock = std::chrono::steady_clock;
  auto next_resource = clock::now() + options_.resource_interval;
  auto next_progress = clock::now() + options_.progress_interval;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto deadline = std::min(next_resource, next_progress);
    if (cv_.wait_until(lock, deadline, [this] { return stop_requested_; })) {
      return;
    }
    const auto now = clock::now();
    if (now >= next_resource) {
      lock.unlock();
      sample_resources();
      lock.lock();
      next_resource = now + options_.resource_interval;
    }
    if (now >= next_progress) {
      lock.unlock();
      sample_progress();
      lock.lock();
      next_progress = now + options_.progress_interval;
    }
  }
}

void ResourceSampler::sample_resources() {
  ResourceUsage usage;
  if (!read_resource_usage(&usage)) return;
  std::int64_t queue_depth = -1;
  if (options_.queue_depth) queue_depth = options_.queue_depth();

  if (metrics_enabled()) {
    auto& reg = registry();
    reg.gauge("process.rss_kb")
        .set(static_cast<std::int64_t>(usage.rss_kb));
    reg.gauge("process.peak_rss_kb")
        .set(static_cast<std::int64_t>(usage.peak_rss_kb));
    reg.gauge("process.cpu_ms")
        .set(static_cast<std::int64_t>(usage.cpu_ms));
    if (queue_depth >= 0) {
      reg.gauge("process.queue_depth").set(queue_depth);
    }
    reg.histogram("process.rss_sample_kb").record(usage.rss_kb);
  }

  if (TraceSession* session = TraceSession::current(); session != nullptr) {
    TraceArg args[4];
    std::size_t count = 0;
    args[count++] =
        TraceArg{"rss_kb", static_cast<std::int64_t>(usage.rss_kb)};
    args[count++] =
        TraceArg{"peak_rss_kb", static_cast<std::int64_t>(usage.peak_rss_kb)};
    args[count++] =
        TraceArg{"cpu_ms", static_cast<std::int64_t>(usage.cpu_ms)};
    if (queue_depth >= 0) {
      args[count++] = TraceArg{"queue_depth", queue_depth};
    }
    session->emit_resource(args, count);
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

void ResourceSampler::sample_progress() {
  RunContext* run = options_.run;
  if (run == nullptr) return;
  run->publish_gauges();

  if (TraceSession* session = TraceSession::current(); session != nullptr) {
    const TraceArg args[] = {
        {"rows_done", static_cast<std::int64_t>(run->rows_done())},
        {"rows_total", static_cast<std::int64_t>(run->rows_total())},
        {"errors", static_cast<std::int64_t>(run->errors())},
    };
    session->emit_progress(run->run_id(), run->phase(), args, 3);
  }
}

#else  // !LCL_OBS

bool ResourceSampler::start() {
  error_ = "telemetry compiled out (built with LCL_OBS=0)";
  return false;
}

void ResourceSampler::stop() {}

void ResourceSampler::sample_loop() {}
void ResourceSampler::sample_resources() {}
void ResourceSampler::sample_progress() {}

#endif  // LCL_OBS

}  // namespace lcl::obs
