#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace lcl::obs::json {

Value::Value(double d) : type_(Type::kNumber), number_(d) {
  const auto i = static_cast<std::int64_t>(d);
  if (std::floor(d) == d && static_cast<double>(i) == d) {
    int_ = i;
    has_int_ = true;
  }
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::unique_ptr<Value> run() {
    skip_whitespace();
    auto value = std::make_unique<Value>();
    if (!parse_value(*value)) return nullptr;
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing content after JSON document");
      return nullptr;
    }
    return value;
  }

 private:
  void fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect(char c) {
    if (consume(c)) return true;
    fail(std::string("expected '") + c + "'");
    return false;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        return parse_string_value(out);
      case 't':
        return parse_literal("true", Value(true), out);
      case 'f':
        return parse_literal("false", Value(false), out);
      case 'n':
        return parse_literal("null", Value(nullptr), out);
      default:
        return parse_number(out);
    }
  }

  bool parse_literal(std::string_view word, Value value, Value& out) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal");
      return false;
    }
    pos_ += word.size();
    out = std::move(value);
    return true;
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double d = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc() || end != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("invalid number");
      return false;
    }
    out = Value(d);
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("invalid \\u escape");
                return false;
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // produced by this library's own writers).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("invalid escape character");
            return false;
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_string_value(Value& out) {
    std::string s;
    if (!parse_string(s)) return false;
    out = Value(std::move(s));
    return true;
  }

  bool parse_array(Value& out) {
    if (!expect('[')) return false;
    out = Value::make_array();
    skip_whitespace();
    if (consume(']')) return true;
    while (true) {
      Value element;
      skip_whitespace();
      if (!parse_value(element)) return false;
      out.array().push_back(std::move(element));
      skip_whitespace();
      if (consume(']')) return true;
      if (!expect(',')) return false;
    }
  }

  bool parse_object(Value& out) {
    if (!expect('{')) return false;
    out = Value::make_object();
    skip_whitespace();
    if (consume('}')) return true;
    while (true) {
      skip_whitespace();
      std::string key;
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (!expect(':')) return false;
      skip_whitespace();
      Value element;
      if (!parse_value(element)) return false;
      out.object().emplace(std::move(key), std::move(element));
      skip_whitespace();
      if (consume('}')) return true;
      if (!expect(',')) return false;
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Value> parse(std::string_view text, std::string* error) {
  return Parser(text, error).run();
}

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string dump(const Value& value) {
  switch (value.type()) {
    case Value::Type::kNull:
      return "null";
    case Value::Type::kBool:
      return value.as_bool() ? "true" : "false";
    case Value::Type::kNumber: {
      if (static_cast<double>(value.as_int()) == value.as_double()) {
        return std::to_string(value.as_int());
      }
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", value.as_double());
      return buffer;
    }
    case Value::Type::kString:
      return quote(value.as_string());
    case Value::Type::kArray: {
      std::string out = "[";
      bool first = true;
      for (const auto& element : value.as_array()) {
        if (!first) out += ',';
        first = false;
        out += dump(element);
      }
      return out + "]";
    }
    case Value::Type::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, element] : value.as_object()) {
        if (!first) out += ',';
        first = false;
        out += quote(key);
        out += ':';
        out += dump(element);
      }
      return out + "}";
    }
  }
  return "null";
}

}  // namespace lcl::obs::json
