#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lcl::obs::json {

/// Minimal owned JSON value - just enough to validate and read back the
/// trace records and metric snapshots this library emits. Numbers are kept
/// both as double and (when exactly representable) as int64, because trace
/// timestamps are integral microseconds.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(std::nullptr_t) {}
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double d);
  explicit Value(std::int64_t i)
      : type_(Type::kNumber), number_(static_cast<double>(i)), int_(i),
        has_int_(true) {}
  explicit Value(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_object() const noexcept { return type_ == Type::kObject; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }

  bool as_bool() const { return bool_; }
  double as_double() const { return number_; }
  std::int64_t as_int() const {
    return has_int_ ? int_ : static_cast<std::int64_t>(number_);
  }
  const std::string& as_string() const { return string_; }
  const std::vector<Value>& as_array() const { return array_; }
  const std::map<std::string, Value>& as_object() const { return object_; }

  /// Object member or nullptr (also nullptr when not an object).
  const Value* find(std::string_view key) const;

  std::vector<Value>& array() { return array_; }
  std::map<std::string, Value>& object() { return object_; }

  static Value make_array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value make_object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t int_ = 0;
  bool has_int_ = false;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parses one JSON document. On failure returns nullptr and, when `error`
/// is non-null, describes what went wrong (with a byte offset).
std::unique_ptr<Value> parse(std::string_view text, std::string* error);

/// Serializes `s` as a quoted JSON string (escapes quotes, backslashes,
/// control characters).
std::string quote(std::string_view s);

/// Serializes a value back to compact JSON text.
std::string dump(const Value& value);

}  // namespace lcl::obs::json
