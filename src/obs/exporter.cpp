#include "obs/exporter.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "svc/http.hpp"

namespace lcl::obs {

bool telemetry_compiled_in() noexcept { return LCL_OBS != 0; }

Exporter::Exporter() = default;

Exporter::Exporter(Options options) : options_(std::move(options)) {}

Exporter::~Exporter() { stop(); }

bool Exporter::running() const noexcept {
  return server_ != nullptr && server_->running();
}

std::uint16_t Exporter::port() const noexcept {
  return server_ != nullptr ? server_->port() : 0;
}

std::uint64_t Exporter::scrapes() const noexcept {
  return server_ != nullptr ? server_->requests_served() : 0;
}

#if LCL_OBS

bool Exporter::start() {
  if (running()) return true;
  error_.clear();

  svc::HttpServer::Options http;
  http.bind_address = options_.bind_address;
  http.port = options_.port;
  // One request per connection: the documented curl/scrape-loop contract
  // (and what keeps a stuck scraper from pinning a connection thread).
  http.keep_alive = false;
  http.handler = [this](const svc::HttpRequest& request) {
    svc::HttpResponse response;
    if (request.method != "GET") {
      response.status = 405;
      response.body = "only GET is supported\n";
    } else if (request.path == "/metrics") {
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = prom::render(registry().snapshot(),
                                   options_.const_labels);
    } else if (request.path == "/healthz") {
      response.body = "ok\n";
    } else if (request.path == "/progress") {
      if (options_.progress_provider) {
        response.content_type = "application/json";
        response.body = options_.progress_provider();
      } else {
        response.status = 404;
        response.body = "no progress provider\n";
      }
    } else {
      response.status = 404;
      response.body = "routes: /metrics /healthz /progress\n";
    }
    return response;
  };

  server_ = std::make_unique<svc::HttpServer>(std::move(http));
  if (!server_->start()) {
    error_ = server_->error();
    server_.reset();
    return false;
  }
  return true;
}

void Exporter::stop() {
  if (server_ == nullptr) return;
  server_->stop();
  server_.reset();
}

#else  // !LCL_OBS

bool Exporter::start() {
  error_ = "telemetry compiled out (built with LCL_OBS=0)";
  return false;
}

void Exporter::stop() {}

#endif  // LCL_OBS

std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, std::string* status_line) {
  const svc::HttpClientResponse response =
      svc::http_request(host, port, "GET", path);
  if (status_line != nullptr) *status_line = response.status_line;
  return response.body;
}

}  // namespace lcl::obs
