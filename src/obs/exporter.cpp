#include "obs/exporter.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/obs.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace lcl::obs {

namespace {

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

#if LCL_OBS

/// Reads until the end of the request headers (CRLFCRLF), a size cap, or
/// EOF; enough of HTTP to extract the request line.
std::string read_request(int fd) {
  std::string request;
  char buffer[1024];
  while (request.size() < 16 * 1024) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    request.append(buffer, static_cast<std::size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos) break;
    if (request.find("\n\n") != std::string::npos) break;
  }
  return request;
}

std::string make_response(const std::string& status,
                          const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 " + status + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

#endif  // LCL_OBS

}  // namespace

bool telemetry_compiled_in() noexcept { return LCL_OBS != 0; }

Exporter::~Exporter() { stop(); }

#if LCL_OBS

bool Exporter::start() {
  if (running()) return true;
  error_.clear();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    error_ = "bad bind address '" + options_.bind_address + "'";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    error_ = std::string("getsockname: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  bound_port_ = ntohs(bound.sin_port);

  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void Exporter::stop() {
  if (!running() && !thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void Exporter::serve_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    // 100 ms poll so stop() latency is bounded without a wakeup pipe.
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

    const std::string request = read_request(client);
    std::string method;
    std::string path;
    const auto space = request.find(' ');
    if (space != std::string::npos) {
      method = request.substr(0, space);
      const auto end = request.find_first_of(" \r\n", space + 1);
      if (end != std::string::npos) {
        path = request.substr(space + 1, end - space - 1);
      }
    }

    std::string response;
    if (method != "GET") {
      response = make_response("405 Method Not Allowed", "text/plain",
                               "only GET is supported\n");
    } else if (path == "/metrics") {
      const std::string body = prom::render(registry().snapshot(),
                                            options_.const_labels);
      response = make_response(
          "200 OK", "text/plain; version=0.0.4; charset=utf-8", body);
    } else if (path == "/healthz") {
      response = make_response("200 OK", "text/plain", "ok\n");
    } else if (path == "/progress") {
      if (options_.progress_provider) {
        response = make_response("200 OK", "application/json",
                                 options_.progress_provider());
      } else {
        response = make_response("404 Not Found", "text/plain",
                                 "no progress provider\n");
      }
    } else {
      response = make_response("404 Not Found", "text/plain",
                               "routes: /metrics /healthz /progress\n");
    }
    // Bump before writing: once a client has read its response, scrapes()
    // already reflects it.
    scrapes_.fetch_add(1, std::memory_order_relaxed);
    write_all(client, response);
    ::close(client);
  }
}

#else  // !LCL_OBS

bool Exporter::start() {
  error_ = "telemetry compiled out (built with LCL_OBS=0)";
  return false;
}

void Exporter::stop() {}

void Exporter::serve_loop() {}

#endif  // LCL_OBS

std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, std::string* status_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("http_get: socket failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("http_get: bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("http_get: connect failed: " + reason);
  }

  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  write_all(fd, request);

  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  auto header_end = response.find("\r\n\r\n");
  std::size_t body_start = header_end == std::string::npos
                               ? std::string::npos
                               : header_end + 4;
  if (status_line != nullptr) {
    const auto eol = response.find("\r\n");
    *status_line =
        eol == std::string::npos ? response : response.substr(0, eol);
  }
  if (body_start == std::string::npos) {
    throw std::runtime_error("http_get: malformed response");
  }
  return response.substr(body_start);
}

}  // namespace lcl::obs
