#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace lcl::obs {

/// Per-run progress state with a correlation id. One RunContext spans one
/// logical run (a survey, a fuzz campaign, a bench repetition); the run_id
/// ties together the exporter's `/progress` JSON, the `run_id` label on
/// exported series, progress records in the trace log, and the telemetry
/// block in survey reports.
///
/// Row counts are relaxed atomics so pool workers can bump them from the
/// hot path; everything stringy (phase, providers, busy fractions) sits
/// behind a mutex and is only touched at run boundaries or by the sampler
/// thread. Functional in both LCL_OBS build modes - progress accounting is
/// program logic, not instrumentation.
class RunContext {
 public:
  /// `metric_prefix` namespaces the gauges `publish_gauges` writes
  /// ("survey" -> survey.rows_done / survey.rows_total / survey.errors).
  explicit RunContext(std::string run_id,
                      std::string metric_prefix = "survey");

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  const std::string& run_id() const noexcept { return run_id_; }
  const std::string& metric_prefix() const noexcept {
    return metric_prefix_;
  }

  void set_phase(std::string phase);
  std::string phase() const;

  void set_rows_total(std::uint64_t total) noexcept {
    rows_total_.store(total, std::memory_order_relaxed);
  }
  void add_rows_done(std::uint64_t n = 1) noexcept {
    rows_done_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_errors(std::uint64_t n = 1) noexcept {
    errors_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t rows_total() const noexcept {
    return rows_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t rows_done() const noexcept {
    return rows_done_.load(std::memory_order_relaxed);
  }
  std::uint64_t errors() const noexcept {
    return errors_.load(std::memory_order_relaxed);
  }

  /// Named unit counters for work that is not a row: engine speedup steps,
  /// fuzz oracle checks. Appears under "units" in the progress JSON.
  void bump(std::string_view key, std::uint64_t n = 1);

  /// Supplies (hits, misses) of the run's result cache for the progress
  /// hit-ratio; unset means no cache line in the JSON.
  void set_cache_stats_provider(
      std::function<std::pair<std::uint64_t, std::uint64_t>()> provider);

  /// Latest per-worker busy fractions in [0,1]; sticky - the last recorded
  /// vector is what `/progress` reports after the pool has drained.
  void record_busy_fractions(std::vector<double> fractions);
  std::vector<double> busy_fractions() const;

  double elapsed_seconds() const;
  double rows_per_second() const;
  /// Estimated seconds to completion from the mean row rate; -1 when
  /// unknown (no rows done yet or no total).
  double eta_seconds() const;

  /// The `/progress` document: run_id, phase, rows done/total, errors,
  /// elapsed_s, rows_per_s, eta_s, cache hit ratio, per-worker busy
  /// fractions, unit counters.
  json::Value progress_value() const;
  std::string progress_json() const;

  /// Pushes rows_done / rows_total / errors into `<prefix>.*` gauges (a
  /// no-op unless metrics are enabled), so `/metrics` carries survey
  /// progress without the scraper having to parse `/progress`.
  void publish_gauges();

  /// The process-wide current run, or nullptr. Not owned; installers must
  /// clear it before the context dies. Same pattern as
  /// `TraceSession::current`.
  static RunContext* current() noexcept;
  static RunContext* set_current(RunContext* run) noexcept;

 private:
  std::string run_id_;
  std::string metric_prefix_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> rows_total_{0};
  std::atomic<std::uint64_t> rows_done_{0};
  std::atomic<std::uint64_t> errors_{0};

  mutable std::mutex mutex_;
  std::string phase_;
  std::map<std::string, std::uint64_t> units_;
  std::function<std::pair<std::uint64_t, std::uint64_t>()> cache_stats_;
  std::vector<double> busy_fractions_;
};

/// A default run id: "run-<unix-seconds>-<pid>".
std::string default_run_id();

}  // namespace lcl::obs
