#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lcl::obs {

/// Monotone event count (probes issued, RE steps applied, labels trimmed).
/// `add` is a single relaxed atomic increment - safe to call from hot loops.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level plus the extremes seen since the last reset (active
/// node counts per round, current alphabet size along the RE sequence).
class Gauge {
 public:
  void set(std::int64_t v) noexcept;
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Largest / smallest value ever `set`; 0 if never set.
  std::int64_t max() const noexcept {
    return ever_set() ? max_.load(std::memory_order_relaxed) : 0;
  }
  std::int64_t min() const noexcept {
    return ever_set() ? min_.load(std::memory_order_relaxed) : 0;
  }
  bool ever_set() const noexcept {
    return set_.load(std::memory_order_acquire);
  }
  void reset() noexcept;

 private:
  // The extremes idle at +-infinity sentinels so concurrent first `set`s
  // fold in via the same monotone CAS as every later one - an
  // initialize-then-publish scheme would let two racing first-setters lose
  // one of the two values. `set_` only gates the getters' "never set -> 0"
  // presentation.
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{INT64_MIN};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<bool> set_{false};
};

/// Log-scale (base-2) histogram for long-tailed quantities: probes per
/// query, message words per round, configuration counts per RE step.
///
/// Bucket layout: bucket 0 holds the exact value 0; bucket `i >= 1` holds
/// values in `[2^(i-1), 2^i - 1]`. 64-bit values therefore need buckets
/// 0..64 inclusive.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 65;

  /// Bucket index for a value (0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...).
  static std::size_t bucket_index(std::uint64_t value) noexcept;
  /// Inclusive range [floor, ceil] of values a bucket covers.
  static std::uint64_t bucket_floor(std::size_t bucket) noexcept;
  static std::uint64_t bucket_ceil(std::size_t bucket) noexcept;

  void record(std::uint64_t value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Min/max recorded value; 0 if the histogram is empty.
  std::uint64_t min() const noexcept;
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket_count(std::size_t bucket) const;
  double mean() const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Name-addressed home of all instruments. Instruments are created on first
/// use and never removed, so references returned by `counter`/`gauge`/
/// `histogram` stay valid for the registry's lifetime (`reset()` zeroes
/// values but keeps registrations - the caching done by the `LCL_OBS_*`
/// macros depends on this).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Lookup without creation; nullptr when the instrument does not exist.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  std::size_t instrument_count() const;

  /// Zeroes every instrument; registrations (and references) survive.
  void reset();

  /// Point-in-time copy, ordered by name - what trace footers and bench
  /// reporters consume.
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    struct GaugeValue {
      std::int64_t value = 0;
      std::int64_t min = 0;
      std::int64_t max = 0;
    };
    std::map<std::string, GaugeValue> gauges;
    struct HistogramValue {
      std::uint64_t count = 0;
      std::uint64_t sum = 0;
      std::uint64_t min = 0;
      std::uint64_t max = 0;
      /// (bucket index, count) for non-empty buckets only.
      std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
    };
    std::map<std::string, HistogramValue> histograms;
  };
  Snapshot snapshot() const;

  /// Snapshot rendered as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry all instrumentation macros write to.
MetricsRegistry& registry();

/// Runtime kill switch for metrics. Off by default: a disabled check is one
/// relaxed atomic load, so instrumented hot paths stay cheap even in
/// LCL_OBS=1 builds.
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

}  // namespace lcl::obs
