#pragma once

/// lclscape observability: typed metrics (obs/metrics.hpp) + structured
/// tracing (obs/trace.hpp) behind a two-stage kill switch.
///
/// Stage 1 - compile time: build with LCL_OBS=0 (CMake `-DLCL_OBS=OFF`) and
/// every `LCL_OBS_*` macro below expands to nothing; instrumented hot paths
/// carry zero code. The obs library itself still builds, so non-macro uses
/// (bench harness trace plumbing, tools) keep compiling.
///
/// Stage 2 - run time (LCL_OBS=1 builds): metrics are gated on one relaxed
/// atomic bool (`set_metrics_enabled`), tracing on one pointer
/// (`TraceSession::set_current`); both default to off (the null sink), so
/// an instrumented binary that never opts in pays one predictable branch
/// per site.
///
/// Usage at a call site:
///
///   LCL_OBS_SPAN(span, "re/R", "re");            // RAII timer
///   LCL_OBS_SPAN_ARG(span, "labels", count);     // annotate it
///   LCL_OBS_COUNTER_ADD("re.steps", 1);
///   LCL_OBS_GAUGE_SET("local.active_nodes", active);
///   LCL_OBS_HISTOGRAM_RECORD("volume.probes_per_query", probes);
///   LCL_OBS_EVENT1("volume/budget_exhausted", "volume", "probes", n);
///
/// Counter/gauge/histogram names must be string literals: the macros cache
/// the registry lookup in a function-local static, so each site resolves
/// its instrument exactly once.

#include "obs/metrics.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"    // IWYU pragma: export

#ifndef LCL_OBS
#define LCL_OBS 1
#endif

#if LCL_OBS

/// True when metrics collection is on; use to guard computations performed
/// only to feed an instrument (e.g. counting active nodes for a gauge).
/// Constant-false in LCL_OBS=0 builds, so guarded blocks dead-code away.
#define LCL_OBS_ENABLED() (::lcl::obs::metrics_enabled())

#define LCL_OBS_SPAN(var, name, category) \
  ::lcl::obs::ScopedSpan var((name), (category))

#define LCL_OBS_SPAN_ARG(var, key, value) \
  (var).arg((key), static_cast<std::int64_t>(value))

#define LCL_OBS_COUNTER_ADD(name, delta)                               \
  do {                                                                 \
    if (::lcl::obs::metrics_enabled()) {                               \
      static ::lcl::obs::Counter& lcl_obs_cached_counter =             \
          ::lcl::obs::registry().counter(name);                        \
      lcl_obs_cached_counter.add(static_cast<std::uint64_t>(delta));   \
    }                                                                  \
  } while (0)

#define LCL_OBS_GAUGE_SET(name, value)                                 \
  do {                                                                 \
    if (::lcl::obs::metrics_enabled()) {                               \
      static ::lcl::obs::Gauge& lcl_obs_cached_gauge =                 \
          ::lcl::obs::registry().gauge(name);                          \
      lcl_obs_cached_gauge.set(static_cast<std::int64_t>(value));      \
    }                                                                  \
  } while (0)

#define LCL_OBS_HISTOGRAM_RECORD(name, value)                          \
  do {                                                                 \
    if (::lcl::obs::metrics_enabled()) {                               \
      static ::lcl::obs::Histogram& lcl_obs_cached_histogram =         \
          ::lcl::obs::registry().histogram(name);                      \
      lcl_obs_cached_histogram.record(                                 \
          static_cast<std::uint64_t>(value));                          \
    }                                                                  \
  } while (0)

/// Instant trace event with one integer argument.
#define LCL_OBS_EVENT1(name, category, key, value)                      \
  do {                                                                  \
    if (::lcl::obs::TraceSession* lcl_obs_session =                     \
            ::lcl::obs::TraceSession::current();                        \
        lcl_obs_session != nullptr) {                                   \
      const ::lcl::obs::TraceArg lcl_obs_event_arg{                     \
          (key), static_cast<std::int64_t>(value)};                     \
      lcl_obs_session->emit_instant((name), (category),                 \
                                    &lcl_obs_event_arg, 1);             \
    }                                                                   \
  } while (0)

#else  // !LCL_OBS

#define LCL_OBS_ENABLED() (false)
#define LCL_OBS_SPAN(var, name, category) \
  [[maybe_unused]] ::lcl::obs::NullSpan var
#define LCL_OBS_SPAN_ARG(var, key, value) ((void)0)
#define LCL_OBS_COUNTER_ADD(name, delta) ((void)0)
#define LCL_OBS_GAUGE_SET(name, value) ((void)0)
#define LCL_OBS_HISTOGRAM_RECORD(name, value) ((void)0)
#define LCL_OBS_EVENT1(name, category, key, value) ((void)0)

#endif  // LCL_OBS
