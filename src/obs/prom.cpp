#include "obs/prom.hpp"

#include <algorithm>
#include <sstream>

namespace lcl::obs::prom {

namespace {

bool is_name_char(char c, bool allow_colon) {
  if (c >= 'a' && c <= 'z') return true;
  if (c >= 'A' && c <= 'Z') return true;
  if (c >= '0' && c <= '9') return true;
  if (c == '_') return true;
  return allow_colon && c == ':';
}

std::string sanitize(std::string_view name, bool allow_colon) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    out.push_back(is_name_char(c, allow_colon) ? c : '_');
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Renders `{k="v",...}` from the const labels plus an optional extra
/// label (the histogram `le`); empty string when there are none.
std::string label_block(const std::vector<Label>& const_labels,
                        const Label* extra) {
  if (const_labels.empty() && extra == nullptr) return {};
  std::string out = "{";
  bool first = true;
  const auto append = [&out, &first](const Label& label) {
    if (!first) out.push_back(',');
    first = false;
    out += sanitize(label.key, /*allow_colon=*/false);
    out += "=\"";
    out += escape_label_value(label.value);
    out += "\"";
  };
  for (const auto& label : const_labels) append(label);
  if (extra != nullptr) append(*extra);
  out.push_back('}');
  return out;
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  return sanitize(name, /*allow_colon=*/true);
}

std::string sanitize_label_key(std::string_view key) {
  return sanitize(key, /*allow_colon=*/false);
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string render(const MetricsRegistry::Snapshot& snapshot,
                   const std::vector<Label>& const_labels,
                   std::string_view prefix) {
  std::ostringstream out;
  const std::string labels = label_block(const_labels, nullptr);

  for (const auto& [name, value] : snapshot.counters) {
    std::string metric = std::string(prefix) + sanitize_metric_name(name);
    if (!ends_with(metric, "_total")) metric += "_total";
    out << "# TYPE " << metric << " counter\n";
    out << metric << labels << " " << value << "\n";
  }

  for (const auto& [name, gauge] : snapshot.gauges) {
    const std::string metric =
        std::string(prefix) + sanitize_metric_name(name);
    out << "# TYPE " << metric << " gauge\n";
    out << metric << labels << " " << gauge.value << "\n";
  }

  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string metric =
        std::string(prefix) + sanitize_metric_name(name);
    out << "# TYPE " << metric << " histogram\n";
    // The snapshot stores non-empty buckets only; the exposition needs the
    // cumulative series over every bucket up to the highest occupied one
    // (empty intermediates included) so `le` edges are monotone.
    std::size_t highest = 0;
    for (const auto& [index, count] : hist.buckets) {
      highest = std::max(highest, index);
    }
    std::uint64_t cumulative = 0;
    auto it = hist.buckets.begin();
    if (hist.count > 0) {
      for (std::size_t bucket = 0; bucket <= highest; ++bucket) {
        if (it != hist.buckets.end() && it->first == bucket) {
          cumulative += it->second;
          ++it;
        }
        const Label le{"le", std::to_string(Histogram::bucket_ceil(bucket))};
        out << metric << "_bucket" << label_block(const_labels, &le) << " "
            << cumulative << "\n";
      }
    }
    const Label inf{"le", "+Inf"};
    out << metric << "_bucket" << label_block(const_labels, &inf) << " "
        << hist.count << "\n";
    out << metric << "_sum" << labels << " " << hist.sum << "\n";
    out << metric << "_count" << labels << " " << hist.count << "\n";
  }

  return out.str();
}

}  // namespace lcl::obs::prom
