#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace lcl::obs::prom {

/// One constant label attached to every series an exposition renders -
/// the `run_id` correlation label is the canonical use.
struct Label {
  std::string key;
  std::string value;
};

/// Maps an instrument name onto the Prometheus metric-name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every other character (the registry's `.`
/// separators, spaces, unicode) becomes `_`. A leading digit is prefixed
/// with `_` so the result is always valid on its own.
std::string sanitize_metric_name(std::string_view name);

/// Maps a label key onto `[a-zA-Z_][a-zA-Z0-9_]*` (no colons, unlike
/// metric names).
std::string sanitize_label_key(std::string_view key);

/// Escapes a label value for the text exposition: `\` -> `\\`,
/// `"` -> `\"`, newline -> `\n`.
std::string escape_label_value(std::string_view value);

/// Renders a registry snapshot in the Prometheus text exposition format
/// 0.0.4 - what `GET /metrics` serves. Deterministic: series are emitted
/// in snapshot (name) order, each with a `# TYPE` header.
///
///  - counters: `<prefix><name>_total` (the suffix is added unless the
///    sanitized name already ends in `_total`);
///  - gauges: last-set value;
///  - log2 histograms: cumulative `_bucket{le="..."}` series over the
///    bucket ceilings (0, 1, 3, 7, ... up to the highest non-empty
///    bucket), a final `le="+Inf"` bucket, and `_sum`/`_count`.
///
/// `const_labels` are attached to every series (after sanitization and
/// value escaping); `prefix` namespaces all metric names.
std::string render(const MetricsRegistry::Snapshot& snapshot,
                   const std::vector<Label>& const_labels = {},
                   std::string_view prefix = "lclscape_");

}  // namespace lcl::obs::prom
