#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace lcl::obs {

class RunContext;

/// Snapshot of this process's memory/CPU standing, read from
/// /proc/self/status and getrusage.
struct ResourceUsage {
  std::uint64_t rss_kb = 0;       // VmRSS
  std::uint64_t peak_rss_kb = 0;  // VmHWM
  std::uint64_t cpu_ms = 0;       // user + system CPU time
};

/// Reads the current usage; returns false (leaving `out` untouched) when
/// /proc is unavailable. Exposed for tests and one-shot reporting.
bool read_resource_usage(ResourceUsage* out);

/// Background sampling thread with two cadences:
///
///  - every `resource_interval`: RSS / peak RSS / CPU time / queue depth
///    into `process.*` gauges plus a `process.rss_sample_kb` histogram,
///    and a "resource" record into the current TraceSession;
///  - every `progress_interval`: `run->publish_gauges()` plus a
///    "progress" record (run_id, phase, rows done/total) into the
///    current TraceSession.
///
/// Default-on in lcl_batch / lcl_fuzz behind the LCL_OBS kill switch: in
/// LCL_OBS=0 builds `start()` fails fast (same contract as Exporter).
class ResourceSampler {
 public:
  struct Options {
    std::chrono::milliseconds resource_interval{1000};
    std::chrono::milliseconds progress_interval{5000};
    /// Optional run to publish progress for; may be null (resource
    /// sampling only).
    RunContext* run = nullptr;
    /// Supplies the pool queue depth for the `process.queue_depth`
    /// gauge; unset skips that gauge.
    std::function<std::int64_t()> queue_depth;
  };

  ResourceSampler() = default;
  explicit ResourceSampler(Options options) : options_(std::move(options)) {}
  ~ResourceSampler();

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  /// Spawns the sampling thread; false (with `error()` set) in LCL_OBS=0
  /// builds. Idempotent while running.
  bool start();
  /// Takes one final sample of each kind, then stops the thread.
  /// Idempotent; called by the destructor.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  std::uint64_t samples() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }
  const std::string& error() const noexcept { return error_; }

 private:
  void sample_loop();
  void sample_resources();
  void sample_progress();

  Options options_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> samples_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::string error_;
};

}  // namespace lcl::obs
