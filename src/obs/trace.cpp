#include "obs/trace.hpp"

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace lcl::obs {

namespace {

std::atomic<TraceSession*> g_current{nullptr};

/// Serializes the registry snapshot for the trace footer.
std::string metrics_footer_body() { return registry().to_json(); }

}  // namespace

TraceSession::TraceSession(const std::string& path, TraceFormat format)
    : path_(path), format_(format), start_(std::chrono::steady_clock::now()) {
  if (path_.empty()) {
    discard_ = true;
  } else {
    file_.open(path_, std::ios::out | std::ios::trunc);
    if (!file_.is_open()) {
      throw std::runtime_error("TraceSession: cannot open '" + path_ +
                               "' for writing");
    }
  }
  if (format_ == TraceFormat::kChromeJson) {
    if (!discard_) file_ << "[\n";
  } else {
    write_record(
        "{\"t\":\"meta\",\"version\":1,\"clock\":\"us\",\"producer\":"
        "\"lclscape\"}");
  }
}

TraceSession::~TraceSession() {
  close();
  if (TraceSession::current() == this) TraceSession::set_current(nullptr);
}

std::int64_t TraceSession::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

std::string TraceSession::format_args_object(const TraceArg* args,
                                             std::size_t arg_count) const {
  std::ostringstream out;
  out << '{';
  for (std::size_t i = 0; i < arg_count; ++i) {
    if (i != 0) out << ',';
    out << json::quote(args[i].key) << ':' << args[i].value;
  }
  out << '}';
  return out.str();
}

void TraceSession::write_record(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finalized_) return;  // a racing emitter lost to close()
  ++records_;
  if (discard_) return;
  if (format_ == TraceFormat::kChromeJson) {
    if (!first_chrome_record_) file_ << ",\n";
    first_chrome_record_ = false;
    file_ << line;
  } else {
    file_ << line << '\n';
  }
}

void TraceSession::emit_span(std::string_view name, std::string_view category,
                             std::int64_t ts_us, std::int64_t dur_us,
                             const TraceArg* args, std::size_t arg_count) {
  if (closed_.load(std::memory_order_acquire)) return;
  std::ostringstream out;
  if (format_ == TraceFormat::kChromeJson) {
    out << "{\"name\":" << json::quote(name)
        << ",\"cat\":" << json::quote(category)
        << ",\"ph\":\"X\",\"ts\":" << ts_us << ",\"dur\":" << dur_us
        << ",\"pid\":1,\"tid\":1,\"args\":"
        << format_args_object(args, arg_count) << '}';
  } else {
    out << "{\"t\":\"span\",\"name\":" << json::quote(name)
        << ",\"cat\":" << json::quote(category) << ",\"ts\":" << ts_us
        << ",\"dur\":" << dur_us
        << ",\"args\":" << format_args_object(args, arg_count) << '}';
  }
  write_record(out.str());
}

void TraceSession::emit_instant(std::string_view name,
                                std::string_view category,
                                const TraceArg* args, std::size_t arg_count) {
  if (closed_.load(std::memory_order_acquire)) return;
  const std::int64_t ts = now_us();
  std::ostringstream out;
  if (format_ == TraceFormat::kChromeJson) {
    out << "{\"name\":" << json::quote(name)
        << ",\"cat\":" << json::quote(category)
        << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts
        << ",\"pid\":1,\"tid\":1,\"args\":"
        << format_args_object(args, arg_count) << '}';
  } else {
    out << "{\"t\":\"event\",\"name\":" << json::quote(name)
        << ",\"cat\":" << json::quote(category) << ",\"ts\":" << ts
        << ",\"args\":" << format_args_object(args, arg_count) << '}';
  }
  write_record(out.str());
}

void TraceSession::emit_progress(std::string_view run_id,
                                 std::string_view phase,
                                 const TraceArg* args,
                                 std::size_t arg_count) {
  if (closed_.load(std::memory_order_acquire)) return;
  const std::int64_t ts = now_us();
  std::ostringstream out;
  if (format_ == TraceFormat::kChromeJson) {
    out << "{\"name\":" << json::quote("progress/" + std::string(phase))
        << ",\"cat\":\"obs\",\"ph\":\"i\",\"s\":\"p\",\"ts\":" << ts
        << ",\"pid\":1,\"tid\":1,\"args\":"
        << format_args_object(args, arg_count) << '}';
  } else {
    out << "{\"t\":\"progress\",\"run_id\":" << json::quote(run_id)
        << ",\"phase\":" << json::quote(phase) << ",\"ts\":" << ts
        << ",\"args\":" << format_args_object(args, arg_count) << '}';
  }
  write_record(out.str());
}

void TraceSession::emit_resource(const TraceArg* args,
                                 std::size_t arg_count) {
  if (closed_.load(std::memory_order_acquire)) return;
  const std::int64_t ts = now_us();
  std::ostringstream out;
  if (format_ == TraceFormat::kChromeJson) {
    out << "{\"name\":\"resource\",\"cat\":\"obs\",\"ph\":\"i\",\"s\":\"p\","
           "\"ts\":"
        << ts << ",\"pid\":1,\"tid\":1,\"args\":"
        << format_args_object(args, arg_count) << '}';
  } else {
    out << "{\"t\":\"resource\",\"ts\":" << ts
        << ",\"args\":" << format_args_object(args, arg_count) << '}';
  }
  write_record(out.str());
}

void TraceSession::close() {
  // Exactly one caller wins the exchange and finalizes; late emitters see
  // the flag and bail (and any emit already past that check is stopped by
  // `finalized_` under the lock below).
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  std::string footer;
  if (format_ == TraceFormat::kJsonl) {
    footer = "{\"t\":\"metrics\",\"registry\":" + metrics_footer_body() +
             ",\"ts\":" + std::to_string(now_us()) + "}";
  } else {
    // Chrome format has no natural footer record; attach the registry as a
    // metadata event so the data survives in the same file.
    footer =
        "{\"name\":\"lclscape_metrics\",\"cat\":\"obs\",\"ph\":\"i\",\"s\":"
        "\"g\",\"ts\":" +
        std::to_string(now_us()) +
        ",\"pid\":1,\"tid\":1,\"args\":{\"registry\":" +
        metrics_footer_body() + "}}";
  }
  // Footer, trailer, and the finalized flag flip atomically with respect to
  // write_record: nothing can interleave between the footer and the
  // trailer, and nothing can append after them.
  std::lock_guard<std::mutex> lock(mutex_);
  ++records_;
  finalized_ = true;
  if (discard_) return;
  if (format_ == TraceFormat::kChromeJson) {
    if (!first_chrome_record_) file_ << ",\n";
    first_chrome_record_ = false;
    file_ << footer << "\n]\n";
  } else {
    file_ << footer << '\n';
  }
  file_.close();
}

TraceSession* TraceSession::current() noexcept {
  return g_current.load(std::memory_order_acquire);
}

TraceSession* TraceSession::set_current(TraceSession* session) noexcept {
  return g_current.exchange(session, std::memory_order_acq_rel);
}

}  // namespace lcl::obs
