#include "obs/trace_reader.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/json.hpp"

namespace lcl::obs {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr && error->empty()) *error = message;
  return false;
}

bool read_string_field(const json::Value& record, const char* key,
                       std::string* out, std::string* error,
                       const std::string& where) {
  const json::Value* v = record.find(key);
  if (v == nullptr || !v->is_string()) {
    return fail(error, where + ": missing or non-string field '" + key + "'");
  }
  *out = v->as_string();
  return true;
}

bool read_int_field(const json::Value& record, const char* key,
                    std::int64_t* out, std::string* error,
                    const std::string& where) {
  const json::Value* v = record.find(key);
  if (v == nullptr || !v->is_number()) {
    return fail(error, where + ": missing or non-numeric field '" + key + "'");
  }
  *out = v->as_int();
  return true;
}

bool read_args(const json::Value& record, TraceRecord* out,
               std::string* error, const std::string& where) {
  const json::Value* args = record.find("args");
  if (args == nullptr) return true;  // args are optional on read
  if (!args->is_object()) {
    return fail(error, where + ": 'args' is not an object");
  }
  for (const auto& [key, value] : args->as_object()) {
    if (!value.is_number()) continue;  // non-numeric args are ignored
    out->args.emplace(key, value.as_int());
  }
  return true;
}

/// One JSONL record (detected by the "t" discriminator).
bool parse_jsonl_record(const json::Value& record, ParsedTrace* out,
                        std::string* error, const std::string& where) {
  const json::Value* t = record.find("t");
  if (t == nullptr || !t->is_string()) {
    return fail(error, where + ": missing record type field 't'");
  }
  const std::string& type = t->as_string();
  TraceRecord parsed;
  if (type == "meta") {
    parsed.kind = TraceRecord::Kind::kMeta;
    std::int64_t version = 0;
    if (!read_int_field(record, "version", &version, error, where)) {
      return false;
    }
  } else if (type == "span") {
    parsed.kind = TraceRecord::Kind::kSpan;
    if (!read_string_field(record, "name", &parsed.name, error, where) ||
        !read_string_field(record, "cat", &parsed.category, error, where) ||
        !read_int_field(record, "ts", &parsed.ts_us, error, where) ||
        !read_int_field(record, "dur", &parsed.dur_us, error, where) ||
        !read_args(record, &parsed, error, where)) {
      return false;
    }
    if (parsed.dur_us < 0) {
      return fail(error, where + ": negative span duration");
    }
  } else if (type == "event") {
    parsed.kind = TraceRecord::Kind::kEvent;
    if (!read_string_field(record, "name", &parsed.name, error, where) ||
        !read_string_field(record, "cat", &parsed.category, error, where) ||
        !read_int_field(record, "ts", &parsed.ts_us, error, where) ||
        !read_args(record, &parsed, error, where)) {
      return false;
    }
  } else if (type == "progress") {
    parsed.kind = TraceRecord::Kind::kProgress;
    if (!read_string_field(record, "run_id", &parsed.run_id, error, where) ||
        !read_string_field(record, "phase", &parsed.name, error, where) ||
        !read_int_field(record, "ts", &parsed.ts_us, error, where) ||
        !read_args(record, &parsed, error, where)) {
      return false;
    }
  } else if (type == "resource") {
    parsed.kind = TraceRecord::Kind::kResource;
    if (!read_int_field(record, "ts", &parsed.ts_us, error, where) ||
        !read_args(record, &parsed, error, where)) {
      return false;
    }
  } else if (type == "metrics") {
    parsed.kind = TraceRecord::Kind::kMetrics;
    const json::Value* reg = record.find("registry");
    if (reg == nullptr || !reg->is_object()) {
      return fail(error, where + ": 'metrics' record without registry");
    }
    parsed.registry_json = json::dump(*reg);
    out->has_metrics_footer = true;
  } else {
    return fail(error, where + ": unknown record type '" + type + "'");
  }
  out->records.push_back(std::move(parsed));
  return true;
}

/// One Chrome trace_event object.
bool parse_chrome_record(const json::Value& record, ParsedTrace* out,
                         std::string* error, const std::string& where) {
  std::string ph;
  if (!read_string_field(record, "ph", &ph, error, where)) return false;
  TraceRecord parsed;
  if (ph == "X") {
    parsed.kind = TraceRecord::Kind::kSpan;
    if (!read_string_field(record, "name", &parsed.name, error, where) ||
        !read_string_field(record, "cat", &parsed.category, error, where) ||
        !read_int_field(record, "ts", &parsed.ts_us, error, where) ||
        !read_int_field(record, "dur", &parsed.dur_us, error, where) ||
        !read_args(record, &parsed, error, where)) {
      return false;
    }
    if (parsed.dur_us < 0) {
      return fail(error, where + ": negative span duration");
    }
  } else if (ph == "i" || ph == "I") {
    if (!read_string_field(record, "name", &parsed.name, error, where) ||
        !read_string_field(record, "cat", &parsed.category, error, where) ||
        !read_int_field(record, "ts", &parsed.ts_us, error, where)) {
      return false;
    }
    // The registry footer travels as a global instant with an object arg.
    const json::Value* args = record.find("args");
    const json::Value* reg =
        args != nullptr ? args->find("registry") : nullptr;
    if (parsed.name == "lclscape_metrics" && reg != nullptr &&
        reg->is_object()) {
      parsed.kind = TraceRecord::Kind::kMetrics;
      parsed.registry_json = json::dump(*reg);
      out->has_metrics_footer = true;
    } else {
      parsed.kind = TraceRecord::Kind::kEvent;
      if (!read_args(record, &parsed, error, where)) return false;
    }
  } else {
    return fail(error, where + ": unsupported event phase '" + ph + "'");
  }
  out->records.push_back(std::move(parsed));
  return true;
}

}  // namespace

bool parse_trace(const std::string& text, ParsedTrace* out,
                 std::string* error) {
  out->records.clear();
  out->has_metrics_footer = false;

  const auto first_nonspace = text.find_first_not_of(" \t\r\n");
  if (first_nonspace == std::string::npos) {
    return fail(error, "empty trace");
  }

  if (text[first_nonspace] == '[') {
    // Chrome trace_event JSON array.
    std::string parse_error;
    const auto doc = json::parse(text, &parse_error);
    if (doc == nullptr) {
      return fail(error, "invalid Chrome trace JSON: " + parse_error);
    }
    if (!doc->is_array()) {
      return fail(error, "Chrome trace: top-level value is not an array");
    }
    std::size_t index = 0;
    for (const auto& record : doc->as_array()) {
      const std::string where = "event " + std::to_string(index);
      if (!record.is_object()) {
        return fail(error, where + ": not an object");
      }
      if (!parse_chrome_record(record, out, error, where)) return false;
      ++index;
    }
    return true;
  }

  // JSONL: one record per line.
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const std::string where = "line " + std::to_string(line_number);
    std::string parse_error;
    const auto record = json::parse(line, &parse_error);
    if (record == nullptr) {
      return fail(error, where + ": invalid JSON: " + parse_error);
    }
    if (!record->is_object()) {
      return fail(error, where + ": record is not an object");
    }
    if (!parse_jsonl_record(*record, out, error, where)) return false;
  }
  if (out->records.empty()) return fail(error, "empty trace");
  return true;
}

TraceSummary summarize(const ParsedTrace& trace) {
  TraceSummary summary;

  // Collect spans in start order; ties broken longest-first so a parent
  // starting at the same microsecond as its child sorts before it.
  std::vector<const TraceRecord*> spans;
  for (const auto& record : trace.records) {
    switch (record.kind) {
      case TraceRecord::Kind::kSpan:
        spans.push_back(&record);
        break;
      case TraceRecord::Kind::kEvent:
        summary.events.push_back(record);
        break;
      case TraceRecord::Kind::kMetrics:
        summary.registry_json = record.registry_json;
        break;
      case TraceRecord::Kind::kProgress:
        ++summary.progress_records;
        break;
      case TraceRecord::Kind::kResource:
        ++summary.resource_records;
        break;
      case TraceRecord::Kind::kMeta:
        break;
    }
  }
  std::sort(summary.events.begin(), summary.events.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.ts_us < b.ts_us;
            });
  std::sort(spans.begin(), spans.end(),
            [](const TraceRecord* a, const TraceRecord* b) {
              if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
              return a->dur_us > b->dur_us;
            });

  std::map<std::string, PhaseSummary> by_name;
  std::vector<std::int64_t> self_us(spans.size());

  // Single-threaded nesting: a stack of currently open spans. A span is a
  // child of the innermost span whose interval contains it.
  struct Open {
    std::int64_t end_us;
    std::size_t index;
  };
  std::vector<Open> stack;
  std::int64_t min_ts = 0, max_end = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceRecord& span = *spans[i];
    const std::int64_t end = span.ts_us + span.dur_us;
    if (i == 0) {
      min_ts = span.ts_us;
      max_end = end;
    } else {
      min_ts = std::min(min_ts, span.ts_us);
      max_end = std::max(max_end, end);
    }
    self_us[i] = span.dur_us;
    while (!stack.empty() && stack.back().end_us <= span.ts_us) {
      stack.pop_back();
    }
    if (stack.empty() || stack.back().end_us < end) {
      // Top level (or overlapping-but-not-contained, treated the same).
      stack.clear();
      summary.top_level_us += span.dur_us;
    } else {
      self_us[stack.back().index] -= span.dur_us;
    }
    stack.push_back(Open{end, i});
  }
  summary.wall_us = spans.empty() ? 0 : max_end - min_ts;

  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceRecord& span = *spans[i];
    PhaseSummary& phase = by_name[span.name];
    if (phase.count == 0) {
      phase.name = span.name;
      phase.category = span.category;
    }
    ++phase.count;
    phase.total_us += span.dur_us;
    phase.self_us += self_us[i];
    phase.max_us = std::max(phase.max_us, span.dur_us);
    for (const auto& [key, value] : span.args) {
      phase.args_total[key] += value;
    }
  }
  summary.phases.reserve(by_name.size());
  for (auto& [name, phase] : by_name) {
    summary.phases.push_back(std::move(phase));
  }
  std::sort(summary.phases.begin(), summary.phases.end(),
            [](const PhaseSummary& a, const PhaseSummary& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });
  return summary;
}

namespace {

std::string format_us(std::int64_t us) {
  char buffer[32];
  if (us >= 1'000'000) {
    std::snprintf(buffer, sizeof(buffer), "%.3f s",
                  static_cast<double>(us) / 1e6);
  } else if (us >= 1'000) {
    std::snprintf(buffer, sizeof(buffer), "%.3f ms",
                  static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%lld us",
                  static_cast<long long>(us));
  }
  return buffer;
}

}  // namespace

std::string format_summary(const TraceSummary& summary) {
  std::ostringstream out;
  const double coverage =
      summary.wall_us > 0
          ? 100.0 * static_cast<double>(summary.top_level_us) /
                static_cast<double>(summary.wall_us)
          : 0.0;
  out << "trace wall time: " << format_us(summary.wall_us)
      << "   top-level span coverage: ";
  char pct[16];
  std::snprintf(pct, sizeof(pct), "%.1f%%", coverage);
  out << pct << "\n\n";

  char line[256];
  std::snprintf(line, sizeof(line), "%-34s %8s %12s %12s %7s\n", "phase",
                "count", "total", "self", "%wall");
  out << line;
  for (const auto& phase : summary.phases) {
    const double share =
        summary.wall_us > 0 ? 100.0 * static_cast<double>(phase.total_us) /
                                  static_cast<double>(summary.wall_us)
                            : 0.0;
    std::snprintf(line, sizeof(line), "%-34s %8llu %12s %12s %6.1f%%",
                  phase.name.c_str(),
                  static_cast<unsigned long long>(phase.count),
                  format_us(phase.total_us).c_str(),
                  format_us(phase.self_us).c_str(), share);
    out << line;
    if (!phase.args_total.empty()) {
      out << "  ";
      bool first = true;
      for (const auto& [key, value] : phase.args_total) {
        out << (first ? "" : " ") << key << "=" << value;
        first = false;
      }
    }
    out << '\n';
  }

  if (!summary.events.empty()) {
    out << "\nevents:\n";
    for (const auto& event : summary.events) {
      out << "  " << event.ts_us << " us  " << event.name;
      for (const auto& [key, value] : event.args) {
        out << "  " << key << "=" << value;
      }
      out << '\n';
    }
  }

  if (summary.progress_records != 0 || summary.resource_records != 0) {
    out << "\ntelemetry records: " << summary.progress_records
        << " progress, " << summary.resource_records
        << " resource (see --progress)\n";
  }

  out << "\nmetrics footer: "
      << (summary.registry_json.empty() ? "absent" : "present") << '\n';
  return out.str();
}

ProgressSummary summarize_progress(const ParsedTrace& trace) {
  ProgressSummary summary;

  const auto arg_or = [](const TraceRecord& record, const char* key,
                         std::int64_t fallback) {
    const auto it = record.args.find(key);
    return it == record.args.end() ? fallback : it->second;
  };

  for (const auto& record : trace.records) {
    if (record.kind == TraceRecord::Kind::kResource) {
      ++summary.resource_records;
      summary.last_ts_us = std::max(summary.last_ts_us, record.ts_us);
      summary.peak_rss_kb = std::max(
          summary.peak_rss_kb,
          static_cast<std::uint64_t>(arg_or(record, "peak_rss_kb", 0)));
      continue;
    }
    if (record.kind != TraceRecord::Kind::kProgress) continue;

    ++summary.progress_records;
    summary.last_ts_us = std::max(summary.last_ts_us, record.ts_us);
    if (summary.run_id.empty()) summary.run_id = record.run_id;
    summary.rows_done = arg_or(record, "rows_done", summary.rows_done);
    summary.rows_total = arg_or(record, "rows_total", summary.rows_total);
    summary.errors = arg_or(record, "errors", summary.errors);

    // The phase name rides in `name`; records arrive in emit order, so a
    // phase is the run of records between first appearances.
    if (summary.phases.empty() ||
        summary.phases.back().phase != record.name) {
      ProgressPhase phase;
      phase.phase = record.name;
      phase.start_us = record.ts_us;
      summary.phases.push_back(std::move(phase));
    }
    ProgressPhase& phase = summary.phases.back();
    ++phase.samples;
    phase.rows_done = arg_or(record, "rows_done", phase.rows_done);
  }

  // Phase windows: each phase runs until the next one starts; the last one
  // until the final telemetry timestamp.
  for (std::size_t i = 0; i < summary.phases.size(); ++i) {
    const std::int64_t end = i + 1 < summary.phases.size()
                                 ? summary.phases[i + 1].start_us
                                 : summary.last_ts_us;
    summary.phases[i].wall_us = std::max<std::int64_t>(
        0, end - summary.phases[i].start_us);
  }

  if (summary.rows_done > 0 && summary.last_ts_us > 0) {
    summary.rows_per_second = static_cast<double>(summary.rows_done) /
                              (static_cast<double>(summary.last_ts_us) / 1e6);
  }
  return summary;
}

std::string format_progress(const ProgressSummary& summary) {
  std::ostringstream out;
  if (summary.progress_records == 0 && summary.resource_records == 0) {
    out << "no progress or resource records in this trace\n";
    return out.str();
  }

  if (!summary.run_id.empty()) out << "run_id: " << summary.run_id << '\n';
  out << "telemetry: " << summary.progress_records << " progress record(s), "
      << summary.resource_records << " resource record(s)\n";

  if (!summary.phases.empty()) {
    char line[256];
    std::snprintf(line, sizeof(line), "\n%-24s %12s %10s %12s\n", "phase",
                  "wall", "samples", "rows_done");
    out << line;
    for (const auto& phase : summary.phases) {
      std::snprintf(line, sizeof(line), "%-24s %12s %10llu %12lld\n",
                    phase.phase.c_str(), format_us(phase.wall_us).c_str(),
                    static_cast<unsigned long long>(phase.samples),
                    static_cast<long long>(phase.rows_done));
      out << line;
    }
  }

  out << "\nrows: " << summary.rows_done << "/" << summary.rows_total;
  if (summary.errors != 0) out << "  errors: " << summary.errors;
  out << '\n';
  if (summary.rows_per_second > 0.0) {
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.2f", summary.rows_per_second);
    out << "final rate: " << rate << " rows/s\n";
  }
  if (summary.peak_rss_kb != 0) {
    out << "peak RSS: " << summary.peak_rss_kb << " kB\n";
  }
  return out.str();
}

}  // namespace lcl::obs
