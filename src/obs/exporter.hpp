#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/prom.hpp"

namespace lcl::svc {
class HttpServer;
}  // namespace lcl::svc

namespace lcl::obs {

/// True when the obs library was built with LCL_OBS=1, i.e. the exporter
/// and resource sampler carry their real implementations. In LCL_OBS=0
/// builds the classes still exist (declarations are unconditional so
/// mixed-mode programs stay ODR-clean) but `start()` fails fast.
bool telemetry_compiled_in() noexcept;

/// Pull endpoint riding on the shared `svc::HttpServer` transport:
///
///   GET /metrics   Prometheus text exposition 0.0.4 of the global
///                  MetricsRegistry (instrument updates are relaxed
///                  atomics, so a scrape copies a consistent-enough
///                  snapshot without ever blocking writers);
///   GET /healthz   "ok" liveness probe;
///   GET /progress  the JSON from `progress_provider` (404 when unset).
///
/// One request per connection (`Connection: close`); good for curl and
/// scrape loops - the full keep-alive web server lives in `svc::Service`.
/// Scrapes never take the registry's name-map mutex while an instrument is
/// being *updated* - only concurrent registrations contend, and those are
/// one-time.
class Exporter {
 public:
  struct Options {
    /// Interface to bind; loopback by default so a survey box does not
    /// silently expose metrics to the network.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via `port()`).
    std::uint16_t port = 0;
    /// Labels attached to every exported series (e.g. {"run_id", ...}).
    std::vector<prom::Label> const_labels;
    /// Supplies the `/progress` JSON body; called per request.
    std::function<std::string()> progress_provider;
  };

  Exporter();
  explicit Exporter(Options options);
  ~Exporter();

  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  /// Binds, listens, and spawns the serving thread. Returns false (with
  /// `error()` set) if the address is unusable or the library was built
  /// with LCL_OBS=0. Idempotent while running.
  bool start();

  /// Stops the serving thread and closes the socket. Idempotent; called
  /// by the destructor.
  void stop();

  bool running() const noexcept;
  /// The bound port (resolves port 0 after a successful `start()`).
  std::uint16_t port() const noexcept;
  const std::string& error() const noexcept { return error_; }
  /// Requests served so far (any route).
  std::uint64_t scrapes() const noexcept;

 private:
  Options options_;
  std::unique_ptr<svc::HttpServer> server_;
  std::string error_;
};

/// Minimal blocking HTTP/1.1 GET for tests and CLI self-checks: returns
/// the response body, optionally the status line ("HTTP/1.1 200 OK").
/// A thin wrapper over `svc::http_request` (which carries the POST +
/// status/header-capture surface service tests use), so a truncated or
/// oversized response throws a descriptive error instead of being silently
/// cut short. Throws std::runtime_error on connect/transport failure.
/// Available in every build mode.
std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path,
                     std::string* status_line = nullptr);

}  // namespace lcl::obs
