#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace lcl::obs {

/// One named integer attached to a span or event (configuration counts,
/// probe totals, round numbers). Keys are expected to be string literals.
struct TraceArg {
  const char* key = nullptr;
  std::int64_t value = 0;
};

enum class TraceFormat {
  /// One self-contained JSON object per line; the native format
  /// `tools/trace_summary` reads. Record types: "meta" (header), "span",
  /// "event" (instant), "metrics" (footer with the registry snapshot).
  kJsonl,
  /// Chrome `trace_event` JSON array ("X" complete events, "i" instants);
  /// loadable in chrome://tracing and Perfetto.
  kChromeJson,
};

/// A tracing sink bound to an output file. At most one session is
/// *current* at a time; `ScopedSpan` and the `LCL_OBS_*` trace macros write
/// to the current session and cost a single pointer load when none is
/// installed (the "null sink" state).
///
/// Timestamps are steady-clock microseconds relative to session start.
/// Records are buffered and flushed on `close()`/destruction; `close()`
/// also appends a snapshot of the global `MetricsRegistry` so a trace file
/// is a self-contained observation of the run.
class TraceSession {
 public:
  /// Opens `path` for writing; throws `std::runtime_error` on failure.
  /// An empty path creates a discarding session (records are formatted
  /// into the void) - useful for overhead measurements.
  explicit TraceSession(const std::string& path,
                        TraceFormat format = TraceFormat::kJsonl);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Microseconds since the session started.
  std::int64_t now_us() const;

  /// A completed span (Chrome "X" event). `args` may be null when empty.
  void emit_span(std::string_view name, std::string_view category,
                 std::int64_t ts_us, std::int64_t dur_us,
                 const TraceArg* args, std::size_t arg_count);

  /// An instant event (Chrome "i" event).
  void emit_instant(std::string_view name, std::string_view category,
                    const TraceArg* args, std::size_t arg_count);

  /// A run-progress record: `{"t":"progress","ts":...,"run_id":...,
  /// "phase":...,"args":{...}}` in JSONL; an instant event named
  /// "progress" (run id and phase folded into cat/name slots are lossy,
  /// so Chrome gets them as a "progress/<phase>" instant) otherwise.
  void emit_progress(std::string_view run_id, std::string_view phase,
                     const TraceArg* args, std::size_t arg_count);

  /// A resource-usage record: `{"t":"resource","ts":...,"args":{rss_kb,
  /// peak_rss_kb,cpu_ms,queue_depth}}` in JSONL; a "resource" instant in
  /// Chrome format.
  void emit_resource(const TraceArg* args, std::size_t arg_count);

  /// Writes the metrics footer and the format trailer, then closes the
  /// file. Idempotent; called by the destructor if not called explicitly.
  void close();

  TraceFormat format() const noexcept { return format_; }
  const std::string& path() const noexcept { return path_; }
  std::uint64_t records_written() const noexcept { return records_; }

  /// The current session, or nullptr (the null sink). Not owned.
  static TraceSession* current() noexcept;
  /// Installs `session` as current; pass nullptr to detach. Returns the
  /// previous session.
  static TraceSession* set_current(TraceSession* session) noexcept;

 private:
  void write_record(const std::string& line);
  std::string format_args_object(const TraceArg* args,
                                 std::size_t arg_count) const;

  std::string path_;
  TraceFormat format_;
  std::ofstream file_;
  bool discard_ = false;
  /// Set once by the close() that wins; emitters read it unlocked as a
  /// cheap "stop producing" hint (atomic - emitters race with close()).
  std::atomic<bool> closed_{false};
  /// The authoritative gate: set under `mutex_` after the footer/trailer
  /// are written, checked by `write_record` under the same lock, so an
  /// emit that slipped past the `closed_` fast path can never write
  /// behind the trailer.
  bool finalized_ = false;
  bool first_chrome_record_ = true;
  std::uint64_t records_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
};

/// RAII span timer: measures construction-to-destruction and emits one
/// complete span into the current session. When no session is installed
/// the constructor is one pointer load and the destructor a branch.
class ScopedSpan {
 public:
  static constexpr std::size_t kMaxArgs = 4;

  ScopedSpan(const char* name, const char* category) noexcept
      : session_(TraceSession::current()), name_(name), category_(category) {
    if (session_ != nullptr) start_ = session_->now_us();
  }

  ~ScopedSpan() {
    if (session_ != nullptr) {
      session_->emit_span(name_, category_, start_,
                          session_->now_us() - start_, args_, arg_count_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a named integer to the span (up to kMaxArgs; extra args are
  /// dropped). `key` must outlive the span - pass a string literal.
  void arg(const char* key, std::int64_t value) noexcept {
    if (session_ != nullptr && arg_count_ < kMaxArgs) {
      args_[arg_count_++] = TraceArg{key, value};
    }
  }

  bool active() const noexcept { return session_ != nullptr; }

 private:
  TraceSession* session_;
  const char* name_;
  const char* category_;
  std::int64_t start_ = 0;
  TraceArg args_[kMaxArgs];
  std::size_t arg_count_ = 0;
};

/// No-op stand-in with ScopedSpan's interface; what `LCL_OBS_SPAN` expands
/// to in LCL_OBS=0 builds. Defined unconditionally so mixed-mode programs
/// (e.g. the disabled-mode test target) see identical declarations.
struct NullSpan {
  void arg(const char*, std::int64_t) noexcept {}
  bool active() const noexcept { return false; }
};

}  // namespace lcl::obs
