#include "obs/run_context.hpp"

#include <ctime>

#include <unistd.h>

#include "obs/metrics.hpp"

namespace lcl::obs {

namespace {

std::atomic<RunContext*> g_current_run{nullptr};

}  // namespace

RunContext::RunContext(std::string run_id, std::string metric_prefix)
    : run_id_(std::move(run_id)),
      metric_prefix_(std::move(metric_prefix)),
      start_(std::chrono::steady_clock::now()) {}

void RunContext::set_phase(std::string phase) {
  std::lock_guard<std::mutex> lock(mutex_);
  phase_ = std::move(phase);
}

std::string RunContext::phase() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return phase_;
}

void RunContext::bump(std::string_view key, std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  units_[std::string(key)] += n;
}

void RunContext::set_cache_stats_provider(
    std::function<std::pair<std::uint64_t, std::uint64_t>()> provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_stats_ = std::move(provider);
}

void RunContext::record_busy_fractions(std::vector<double> fractions) {
  if (metrics_enabled()) {
    // Per-worker busy-fraction gauges (ppm - gauges are integral). On an
    // oversubscribed box these are what expose "8 workers, 1.3 cores".
    auto& reg = registry();
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      reg.gauge(metric_prefix_ + ".worker" + std::to_string(i) +
                ".busy_ppm")
          .set(static_cast<std::int64_t>(fractions[i] * 1e6));
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  busy_fractions_ = std::move(fractions);
}

std::vector<double> RunContext::busy_fractions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return busy_fractions_;
}

double RunContext::elapsed_seconds() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double>(elapsed).count();
}

double RunContext::rows_per_second() const {
  const double elapsed = elapsed_seconds();
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(rows_done()) / elapsed;
}

double RunContext::eta_seconds() const {
  const std::uint64_t total = rows_total();
  const std::uint64_t done = rows_done();
  if (total == 0 || done == 0) return -1.0;
  if (done >= total) return 0.0;
  const double rate = rows_per_second();
  if (rate <= 0.0) return -1.0;
  return static_cast<double>(total - done) / rate;
}

json::Value RunContext::progress_value() const {
  json::Value out = json::Value::make_object();
  auto& object = out.object();
  object.emplace("run_id", json::Value(run_id_));
  object.emplace("rows_total",
                 json::Value(static_cast<std::int64_t>(rows_total())));
  object.emplace("rows_done",
                 json::Value(static_cast<std::int64_t>(rows_done())));
  object.emplace("errors",
                 json::Value(static_cast<std::int64_t>(errors())));
  object.emplace("elapsed_s", json::Value(elapsed_seconds()));
  object.emplace("rows_per_s", json::Value(rows_per_second()));
  object.emplace("eta_s", json::Value(eta_seconds()));

  std::lock_guard<std::mutex> lock(mutex_);
  object.emplace("phase", json::Value(phase_));
  if (cache_stats_) {
    const auto [hits, misses] = cache_stats_();
    json::Value cache = json::Value::make_object();
    cache.object().emplace("hits",
                           json::Value(static_cast<std::int64_t>(hits)));
    cache.object().emplace("misses",
                           json::Value(static_cast<std::int64_t>(misses)));
    const std::uint64_t lookups = hits + misses;
    cache.object().emplace(
        "hit_ratio",
        json::Value(lookups == 0
                        ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups)));
    object.emplace("cache", std::move(cache));
  }
  if (!busy_fractions_.empty()) {
    json::Value busy = json::Value::make_array();
    for (double fraction : busy_fractions_) {
      busy.array().emplace_back(fraction);
    }
    object.emplace("worker_busy", std::move(busy));
  }
  if (!units_.empty()) {
    json::Value units = json::Value::make_object();
    for (const auto& [key, count] : units_) {
      units.object().emplace(key,
                             json::Value(static_cast<std::int64_t>(count)));
    }
    object.emplace("units", std::move(units));
  }
  return out;
}

std::string RunContext::progress_json() const {
  return json::dump(progress_value());
}

void RunContext::publish_gauges() {
  if (!metrics_enabled()) return;
  auto& reg = registry();
  reg.gauge(metric_prefix_ + ".rows_total")
      .set(static_cast<std::int64_t>(rows_total()));
  reg.gauge(metric_prefix_ + ".rows_done")
      .set(static_cast<std::int64_t>(rows_done()));
  reg.gauge(metric_prefix_ + ".errors")
      .set(static_cast<std::int64_t>(errors()));
}

RunContext* RunContext::current() noexcept {
  return g_current_run.load(std::memory_order_acquire);
}

RunContext* RunContext::set_current(RunContext* run) noexcept {
  return g_current_run.exchange(run, std::memory_order_acq_rel);
}

std::string default_run_id() {
  return "run-" + std::to_string(static_cast<long long>(std::time(nullptr))) +
         "-" + std::to_string(static_cast<long long>(::getpid()));
}

}  // namespace lcl::obs
