#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lcl::obs {

/// A parsed trace record - the reader-side mirror of what `TraceSession`
/// writes, for both the JSONL and the Chrome `trace_event` formats.
struct TraceRecord {
  enum class Kind { kMeta, kSpan, kEvent, kMetrics };
  Kind kind = Kind::kSpan;
  std::string name;
  std::string category;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;  // spans only
  std::map<std::string, std::int64_t> args;
  /// Raw registry JSON for kMetrics records.
  std::string registry_json;
};

struct ParsedTrace {
  std::vector<TraceRecord> records;
  bool has_metrics_footer = false;
};

/// Parses a trace file's contents. Detects the format (a leading '[' means
/// Chrome JSON, otherwise JSONL). Returns false and sets `error` (with a
/// line number for JSONL input) on the first malformed record: unparseable
/// JSON, unknown record type, missing/mistyped required fields, negative
/// durations.
bool parse_trace(const std::string& text, ParsedTrace* out,
                 std::string* error);

/// Per-name aggregation of a trace's spans.
struct PhaseSummary {
  std::string name;
  std::string category;
  std::uint64_t count = 0;
  std::int64_t total_us = 0;  // sum of span durations
  std::int64_t self_us = 0;   // total minus time in nested spans
  std::int64_t max_us = 0;
  /// Sum of every integer span arg, keyed by arg name (configuration
  /// counts, label counts, probe totals ... whatever the span recorded).
  std::map<std::string, std::int64_t> args_total;
};

struct TraceSummary {
  std::vector<PhaseSummary> phases;  // sorted by total_us descending
  std::vector<TraceRecord> events;   // instant events in timestamp order
  /// Wall-clock window of the trace: [first span start, last span end].
  std::int64_t wall_us = 0;
  /// Total duration of *top-level* spans (spans not nested inside another
  /// span). coverage = top_level_us / wall_us measures how much of the
  /// run's wall time the instrumentation explains.
  std::int64_t top_level_us = 0;
  std::string registry_json;  // metrics footer, if present
};

/// Aggregates spans by name, computing self-times via the single-threaded
/// nesting structure (spans are nested iff their intervals are contained).
TraceSummary summarize(const ParsedTrace& trace);

/// Renders the summary as the human-readable table `tools/trace_summary`
/// prints: wall time, coverage, and a per-phase breakdown with self/total
/// times, counts and aggregated args.
std::string format_summary(const TraceSummary& summary);

}  // namespace lcl::obs
