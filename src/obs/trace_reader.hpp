#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lcl::obs {

/// A parsed trace record - the reader-side mirror of what `TraceSession`
/// writes, for both the JSONL and the Chrome `trace_event` formats.
struct TraceRecord {
  enum class Kind { kMeta, kSpan, kEvent, kMetrics, kProgress, kResource };
  Kind kind = Kind::kSpan;
  /// Span/event name; for kProgress the phase travels here.
  std::string name;
  std::string category;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;  // spans only
  std::map<std::string, std::int64_t> args;
  /// Raw registry JSON for kMetrics records.
  std::string registry_json;
  /// Correlation id on kProgress records.
  std::string run_id;
};

struct ParsedTrace {
  std::vector<TraceRecord> records;
  bool has_metrics_footer = false;
};

/// Parses a trace file's contents. Detects the format (a leading '[' means
/// Chrome JSON, otherwise JSONL). Returns false and sets `error` (with a
/// line number for JSONL input) on the first malformed record: unparseable
/// JSON, unknown record type, missing/mistyped required fields, negative
/// durations.
bool parse_trace(const std::string& text, ParsedTrace* out,
                 std::string* error);

/// Per-name aggregation of a trace's spans.
struct PhaseSummary {
  std::string name;
  std::string category;
  std::uint64_t count = 0;
  std::int64_t total_us = 0;  // sum of span durations
  std::int64_t self_us = 0;   // total minus time in nested spans
  std::int64_t max_us = 0;
  /// Sum of every integer span arg, keyed by arg name (configuration
  /// counts, label counts, probe totals ... whatever the span recorded).
  std::map<std::string, std::int64_t> args_total;
};

struct TraceSummary {
  std::vector<PhaseSummary> phases;  // sorted by total_us descending
  std::vector<TraceRecord> events;   // instant events in timestamp order
  /// Wall-clock window of the trace: [first span start, last span end].
  std::int64_t wall_us = 0;
  /// Total duration of *top-level* spans (spans not nested inside another
  /// span). coverage = top_level_us / wall_us measures how much of the
  /// run's wall time the instrumentation explains.
  std::int64_t top_level_us = 0;
  std::string registry_json;  // metrics footer, if present
  /// Periodic telemetry records seen alongside the spans (not broken down
  /// here - `summarize_progress` does that).
  std::uint64_t progress_records = 0;
  std::uint64_t resource_records = 0;
};

/// Aggregates spans by name, computing self-times via the single-threaded
/// nesting structure (spans are nested iff their intervals are contained).
TraceSummary summarize(const ParsedTrace& trace);

/// Renders the summary as the human-readable table `tools/trace_summary`
/// prints: wall time, coverage, and a per-phase breakdown with self/total
/// times, counts and aggregated args.
std::string format_summary(const TraceSummary& summary);

/// One run phase as reconstructed from the "progress" records: the window
/// from this phase's first record to the next phase's first record (the
/// last phase extends to the final progress/resource timestamp).
struct ProgressPhase {
  std::string phase;
  std::int64_t start_us = 0;
  std::int64_t wall_us = 0;
  std::uint64_t samples = 0;
  /// rows_done at the last sample inside this phase.
  std::int64_t rows_done = 0;
};

/// What `trace_summary --progress` prints: the run's phase timeline plus
/// final throughput and peak RSS pulled from the telemetry records.
struct ProgressSummary {
  std::string run_id;
  std::vector<ProgressPhase> phases;  // in first-appearance order
  std::uint64_t progress_records = 0;
  std::uint64_t resource_records = 0;
  std::int64_t rows_done = 0;   // from the last progress record
  std::int64_t rows_total = 0;
  std::int64_t errors = 0;
  std::int64_t last_ts_us = 0;  // timestamp of the last telemetry record
  std::uint64_t peak_rss_kb = 0;
  /// rows_done over the last progress timestamp; 0 when indeterminate.
  double rows_per_second = 0.0;
};

ProgressSummary summarize_progress(const ParsedTrace& trace);

std::string format_progress(const ProgressSummary& summary);

}  // namespace lcl::obs
