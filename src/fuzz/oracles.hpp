#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/case.hpp"
#include "re/step.hpp"

namespace lcl::fuzz {

/// Budgets and fault-injection knobs shared by all oracles. The defaults
/// are deliberately tight - the fuzzer wants thousands of cheap cases, not
/// a handful of exhaustive ones; a case that busts a budget is *skipped*
/// (not failed), and the tally reports how many were.
struct OracleOptions {
  /// Backtracking budget for every brute-force reference call.
  std::uint64_t brute_force_budget = 250'000;
  /// Enumeration limits for the round-elimination operators.
  ReLimits limits{/*max_labels=*/512, /*max_configs=*/200'000};
  /// Paths of 2..N nodes and cycles of 3..N nodes swept by the classifier
  /// oracle.
  int sweep_max_length = 8;
  /// Step budget for the speedup engine in the synthesis oracle.
  int speedup_max_steps = 2;
  /// Fault injection for self-tests of the fuzzing harness itself: "" (no
  /// bug) or "drop-rbar-config" (silently delete one configuration of
  /// `Rbar(R(pi))` before cross-checking - the oracle bank must catch it).
  std::string inject;
};

/// Outcome of one oracle on one case. `applicable == false` means the case
/// was skipped (preconditions unmet or a budget was exhausted) - neither a
/// pass nor a failure. `failed == true` is a genuine differential
/// disagreement; `message` explains it.
struct OracleResult {
  bool applicable = false;
  bool failed = false;
  std::string message;

  bool passed() const noexcept { return applicable && !failed; }
};

/// One differential oracle: a named cross-check between two independent
/// computations of the same mathematical fact.
struct OracleEntry {
  const char* id;
  const char* description;
  OracleResult (*run)(const FuzzCase&, const OracleOptions&);
};

/// The bank, in execution order:
///  - "lift-soundness":    solvability of `pi` and `Rbar(R(pi))` must agree
///    on the instance, and every `Rbar(R(pi))` solution must lift to a
///    correct `pi` solution via Lemma 3.9;
///  - "synthesis":         a constant-round algorithm synthesized by the
///    speedup engine must produce checker-correct solutions on forests, and
///    an unsolvability verdict must match the brute-force reference;
///  - "classifier-lengths": the path/cycle walk-automaton solvability
///    verdicts must match brute force on a sweep of lengths;
///  - "cross-model":       the LOCAL and VOLUME implementations of the same
///    orientation rule must produce identical outputs;
///  - "lint-soundness":    `lclscape::lint` verdicts vs ground truth: an
///    L020 (trivially unsolvable) report must agree with brute force on the
///    instance, an L030 (0-round trivial) report with the exact `A_det`
///    decision procedure, and dead-label pruning must preserve per-instance
///    solvability (with pruned solutions re-checked against the original
///    problem after the `new_to_old` label translation);
///  - "canonicalization":  label-permutation canonicalization soundness: for
///    a random output-label permutation sigma drawn from the case seed,
///    `canonical_form(sigma(pi))` must equal `canonical_form(pi)` byte for
///    byte (equal signatures, equal |Aut|, the reported automorphism
///    generator must fix the constraint system), the speedup engine's
///    verdict must be relabeling-invariant, and a brute-force solution of
///    `sigma(pi)` mapped through `sigma^-1` must pass `pi`'s checker.
const std::vector<OracleEntry>& oracle_bank();

/// Runs the oracle with the given id; throws `std::invalid_argument` for an
/// unknown id (corpus files name their oracle - a typo must fail loudly).
OracleResult run_oracle(const std::string& id, const FuzzCase& fuzz_case,
                        const OracleOptions& options);

}  // namespace lcl::fuzz
