#include "fuzz/case_io.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/json.hpp"

namespace lcl::fuzz {

namespace json = lcl::obs::json;

namespace {

json::Value labels_array(const std::vector<Label>& labels) {
  json::Value arr = json::Value::make_array();
  for (const auto l : labels) {
    arr.array().push_back(json::Value(static_cast<std::int64_t>(l)));
  }
  return arr;
}

json::Value problem_to_value(const NodeEdgeCheckableLcl& p) {
  json::Value obj = json::Value::make_object();
  obj.object()["name"] = json::Value(p.name());
  obj.object()["max_degree"] =
      json::Value(static_cast<std::int64_t>(p.max_degree()));

  json::Value inputs = json::Value::make_array();
  for (Label l = 0; l < p.input_alphabet().size(); ++l) {
    inputs.array().push_back(json::Value(p.input_alphabet().name(l)));
  }
  obj.object()["inputs"] = std::move(inputs);

  json::Value outputs = json::Value::make_array();
  for (Label l = 0; l < p.output_alphabet().size(); ++l) {
    outputs.array().push_back(json::Value(p.output_alphabet().name(l)));
  }
  obj.object()["outputs"] = std::move(outputs);

  json::Value node = json::Value::make_array();
  for (int d = 1; d <= p.max_degree(); ++d) {
    for (const auto& config : p.node_configs(d)) {
      node.array().push_back(labels_array(config.labels()));
    }
  }
  obj.object()["node_configs"] = std::move(node);

  json::Value edge = json::Value::make_array();
  for (const auto& config : p.edge_configs()) {
    edge.array().push_back(labels_array(config.labels()));
  }
  obj.object()["edge_configs"] = std::move(edge);

  json::Value g = json::Value::make_array();
  for (Label in = 0; in < p.input_alphabet().size(); ++in) {
    json::Value row = json::Value::make_array();
    for (const auto out : p.allowed_outputs(in).to_vector()) {
      row.array().push_back(json::Value(static_cast<std::int64_t>(out)));
    }
    g.array().push_back(std::move(row));
  }
  obj.object()["g"] = std::move(g);
  return obj;
}

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("fuzz case: malformed JSON: " + what);
}

const json::Value& require(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) malformed(std::string("missing field '") + key + "'");
  return *v;
}

std::vector<Label> parse_labels(const json::Value& arr, std::size_t bound,
                                const char* context) {
  if (!arr.is_array()) malformed(std::string(context) + ": expected array");
  std::vector<Label> labels;
  labels.reserve(arr.as_array().size());
  for (const auto& v : arr.as_array()) {
    if (!v.is_number()) malformed(std::string(context) + ": expected number");
    const auto raw = v.as_int();
    if (raw < 0 || static_cast<std::size_t>(raw) >= bound) {
      malformed(std::string(context) + ": label " + std::to_string(raw) +
                " out of range [0, " + std::to_string(bound) + ")");
    }
    labels.push_back(static_cast<Label>(raw));
  }
  return labels;
}

NodeEdgeCheckableLcl problem_from_value(const json::Value& obj) {
  if (!obj.is_object()) malformed("'problem' must be an object");
  const auto& name = require(obj, "name");
  const auto& max_degree = require(obj, "max_degree");
  if (!name.is_string() || !max_degree.is_number()) {
    malformed("'problem.name' / 'problem.max_degree' types");
  }

  const auto parse_alphabet = [&obj](const char* key) {
    const auto& arr = require(obj, key);
    if (!arr.is_array()) malformed(std::string(key) + ": expected array");
    Alphabet alphabet;
    for (const auto& v : arr.as_array()) {
      if (!v.is_string()) malformed(std::string(key) + ": expected strings");
      alphabet.add(v.as_string());
    }
    return alphabet;
  };
  Alphabet input = parse_alphabet("inputs");
  Alphabet output = parse_alphabet("outputs");
  const std::size_t in_size = input.size();
  const std::size_t out_size = output.size();

  NodeEdgeCheckableLcl::Builder builder(
      name.as_string(), std::move(input), std::move(output),
      static_cast<int>(max_degree.as_int()));
  builder.allow_unsatisfiable_inputs();  // shrunk cases may have empty g rows

  const auto& node = require(obj, "node_configs");
  if (!node.is_array()) malformed("'node_configs': expected array");
  for (const auto& config : node.as_array()) {
    builder.allow_node(parse_labels(config, out_size, "node config"));
  }

  const auto& edge = require(obj, "edge_configs");
  if (!edge.is_array()) malformed("'edge_configs': expected array");
  for (const auto& config : edge.as_array()) {
    const auto labels = parse_labels(config, out_size, "edge config");
    if (labels.size() != 2) malformed("edge config must have 2 labels");
    builder.allow_edge(labels[0], labels[1]);
  }

  const auto& g = require(obj, "g");
  if (!g.is_array() || g.as_array().size() != in_size) {
    malformed("'g' must be an array with one row per input label");
  }
  for (std::size_t in_label = 0; in_label < in_size; ++in_label) {
    for (const auto out :
         parse_labels(g.as_array()[in_label], out_size, "g row")) {
      builder.allow_output_for_input(static_cast<Label>(in_label), out);
    }
  }
  return builder.build();
}

Graph graph_from_value(const json::Value& obj) {
  if (!obj.is_object()) malformed("'graph' must be an object");
  const auto& nodes = require(obj, "nodes");
  const auto& edges = require(obj, "edges");
  if (!nodes.is_number() || nodes.as_int() < 0) malformed("'graph.nodes'");
  if (!edges.is_array()) malformed("'graph.edges': expected array");
  Graph::Builder builder(static_cast<std::size_t>(nodes.as_int()));
  for (const auto& e : edges.as_array()) {
    if (!e.is_array() || e.as_array().size() != 2 ||
        !e.as_array()[0].is_number() || !e.as_array()[1].is_number()) {
      malformed("graph edge must be [u, v]");
    }
    const auto u = e.as_array()[0].as_int();
    const auto v = e.as_array()[1].as_int();
    if (u < 0 || v < 0 || u >= nodes.as_int() || v >= nodes.as_int()) {
      malformed("graph edge endpoint out of range");
    }
    builder.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return builder.build();
}

}  // namespace

std::string to_json(const FuzzCase& fuzz_case) {
  json::Value root = json::Value::make_object();
  root.object()["version"] = json::Value(std::int64_t{1});
  root.object()["oracle"] = json::Value(fuzz_case.oracle);
  root.object()["seed"] =
      json::Value(static_cast<std::int64_t>(fuzz_case.seed));
  root.object()["note"] = json::Value(fuzz_case.note);
  root.object()["family"] = json::Value(fuzz_case.family);
  root.object()["problem"] = problem_to_value(fuzz_case.problem);

  json::Value graph = json::Value::make_object();
  graph.object()["nodes"] =
      json::Value(static_cast<std::int64_t>(fuzz_case.graph.node_count()));
  json::Value edges = json::Value::make_array();
  for (EdgeId e = 0; e < fuzz_case.graph.edge_count(); ++e) {
    const auto [u, v] = fuzz_case.graph.endpoints(e);
    json::Value pair = json::Value::make_array();
    pair.array().push_back(json::Value(static_cast<std::int64_t>(u)));
    pair.array().push_back(json::Value(static_cast<std::int64_t>(v)));
    edges.array().push_back(std::move(pair));
  }
  graph.object()["edges"] = std::move(edges);
  root.object()["graph"] = std::move(graph);

  json::Value input = json::Value::make_array();
  for (const auto l : fuzz_case.input) {
    input.array().push_back(json::Value(static_cast<std::int64_t>(l)));
  }
  root.object()["input"] = std::move(input);
  return json::dump(root);
}

FuzzCase from_json(std::string_view text) {
  std::string error;
  const auto root = json::parse(text, &error);
  if (root == nullptr) malformed(error);
  if (!root->is_object()) malformed("top level must be an object");
  const auto& version = require(*root, "version");
  if (!version.is_number() || version.as_int() != 1) {
    malformed("unsupported version");
  }

  FuzzCase out;
  const auto& oracle = require(*root, "oracle");
  if (!oracle.is_string()) malformed("'oracle' must be a string");
  out.oracle = oracle.as_string();
  if (const auto* seed = root->find("seed"); seed && seed->is_number()) {
    out.seed = static_cast<std::uint64_t>(seed->as_int());
  }
  if (const auto* note = root->find("note"); note && note->is_string()) {
    out.note = note->as_string();
  }
  if (const auto* family = root->find("family");
      family && family->is_string()) {
    out.family = family->as_string();
  }
  out.problem = problem_from_value(require(*root, "problem"));
  out.graph = graph_from_value(require(*root, "graph"));
  out.input = parse_labels(require(*root, "input"),
                           out.problem.input_alphabet().size(), "input");
  if (out.input.size() != out.graph.half_edge_count()) {
    malformed("input labeling length != half-edge count");
  }
  if (out.graph.max_degree() > out.problem.max_degree()) {
    malformed("graph max degree exceeds problem max degree");
  }
  return out;
}

void save_case(const std::string& path, const FuzzCase& fuzz_case) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream file(p);
  if (!file) {
    throw std::runtime_error("fuzz case: cannot open '" + path +
                             "' for writing");
  }
  file << to_json(fuzz_case) << '\n';
  if (!file.good()) {
    throw std::runtime_error("fuzz case: write to '" + path + "' failed");
  }
}

FuzzCase load_case(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("fuzz case: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  try {
    return from_json(buffer.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " (file: " + path + ")");
  }
}

}  // namespace lcl::fuzz
