#pragma once

#include <cstddef>
#include <string>

#include "core/lcl.hpp"
#include "fuzz/case.hpp"
#include "graph/graph.hpp"
#include "graph/labeling.hpp"
#include "util/rng.hpp"

namespace lcl::fuzz {

/// What the generator does with degenerate draws - problems the
/// `lclscape::lint` analyzer flags at warning severity or above (dead
/// labels, vacuous configurations, trivial unsolvability):
///  - kOff:      emit them untouched (historical behavior);
///  - kAnnotate: emit them, but record the diagnostic codes in
///               `FuzzCase::note` so a failing seed is self-describing;
///  - kReject:   redraw (bounded by `lint_reject_attempts`), biasing the
///               stream toward problems whose constraint sets all matter.
/// Degenerate problems remain *valid* inputs - oracles must handle them -
/// so kAnnotate is the default: coverage with provenance.
enum class LintPolicy { kOff, kAnnotate, kReject };

/// Knobs of the random problem/instance generator. The defaults keep every
/// generated problem small enough that a brute-force reference and two
/// round-elimination steps stay affordable per seed.
struct GeneratorOptions {
  /// Range for the problem's max degree `Delta`.
  int min_degree = 2;
  int max_degree = 3;
  /// Range for the output alphabet size.
  std::size_t min_labels = 2;
  std::size_t max_labels = 3;
  /// Maximum input alphabet size; 1 generates problems "without inputs"
  /// (the classifier oracles only apply to those).
  std::size_t max_input_labels = 2;
  /// Probability that a candidate node / edge configuration is allowed.
  double node_density = 0.6;
  double edge_density = 0.6;
  /// Probability that `g` permits a given (input, output) pair (each input
  /// is always granted at least one output, so generated problems build).
  double g_density = 0.8;
  /// Node count range for generated instances.
  std::size_t min_instance_nodes = 3;
  std::size_t max_instance_nodes = 12;
  /// Lint treatment of degenerate draws (see `LintPolicy`).
  LintPolicy lint_policy = LintPolicy::kAnnotate;
  /// Redraw budget under `kReject`; after this many degenerate draws in a
  /// row the last one is emitted anyway (the stream must stay total).
  int lint_reject_attempts = 32;

  /// Wide-alphabet mode (`--wide-alphabets`): instead of the small dense
  /// problems above, draw output alphabets of `wide_min_labels ..
  /// wide_max_labels` labels (straddling the 64-label word seam) whose
  /// *live core* - the only labels appearing in the node and edge
  /// constraints - is a small scattered subset, always including a label at
  /// or past index 64 when the alphabet allows. `g` grants mostly live
  /// labels plus the occasional dead one. The point is the pipeline's
  /// wide-alphabet plumbing: lint preflight must prune the dead bulk,
  /// operators see the live core, and the derived iterates (up to
  /// `2^live - 1` labels) walk `reduce()`'s dominated pass through the
  /// multi-word mask tiers. Degree is pinned to 2 so enumeration over a
  /// 130-label alphabet stays affordable per seed.
  bool wide_alphabets = false;
  std::size_t wide_min_labels = 64;
  std::size_t wide_max_labels = 130;
  /// Live-core size range (kept <= 8 so a derived alphabet fits 255
  /// labels - inside the widest mask tier, past the one-word seam).
  std::size_t wide_min_live = 4;
  std::size_t wide_max_live = 8;
  /// Probability that `g` grants a *dead* (non-core) label - rare, so the
  /// trim pass has something to do without drowning the live structure.
  double wide_dead_g_density = 0.03;
};

/// Draws a random node-edge-checkable LCL. Deterministic in (options, rng
/// state). The problem always builds: at least one node configuration, at
/// least one edge configuration, and a non-empty `g` row per input label.
NodeEdgeCheckableLcl random_problem(const GeneratorOptions& options,
                                    SplitRng& rng);

/// Draws a random instance whose max degree fits `problem`: a path, cycle,
/// star, caterpillar, random tree, random forest or (for Delta >= 4) a 2-d
/// toroidal grid, plus a uniform random input labeling over the problem's
/// input alphabet. `family` records which generator was used.
struct Instance {
  std::string family;
  Graph graph;
  HalfEdgeLabeling input;
};

Instance random_instance(const NodeEdgeCheckableLcl& problem,
                         const GeneratorOptions& options, SplitRng& rng);

/// Convenience: problem + instance + metadata assembled into a `FuzzCase`
/// (with `oracle` left empty; the fuzz loop fills it per bank entry).
FuzzCase random_case(const GeneratorOptions& options, std::uint64_t seed);

}  // namespace lcl::fuzz
