#pragma once

#include <string>
#include <string_view>

#include "fuzz/case.hpp"

namespace lcl::fuzz {

/// JSON (de)serialization of `FuzzCase`, built on `lcl::obs::json`. The
/// format stores the problem and instance *explicitly* - alphabets,
/// configuration lists, edge list, input labeling - so corpus files are
/// self-contained regression tests, independent of the generator's RNG.
///
/// Schema (version 1):
/// ```json
/// {
///   "version": 1,
///   "oracle": "lift-soundness",
///   "seed": 17,
///   "note": "shrunk from seed 17",
///   "family": "tree",
///   "problem": {
///     "name": "fuzz", "max_degree": 3,
///     "inputs": ["-"], "outputs": ["x0", "x1"],
///     "node_configs": [[0], [0, 1]],
///     "edge_configs": [[0, 1]],
///     "g": [[0, 1]]
///   },
///   "graph": {"nodes": 3, "edges": [[0, 1], [1, 2]]},
///   "input": [0, 0, 0, 0]
/// }
/// ```
std::string to_json(const FuzzCase& fuzz_case);

/// Parses a case; throws `std::runtime_error` with a description of the
/// first malformed field. Validates structural consistency (label indices
/// in range, input length == half-edge count, graph degree <= problem
/// degree) so corrupt corpus files fail loudly at load time.
FuzzCase from_json(std::string_view text);

/// File wrappers; `save_case` creates parent directories as needed. Both
/// throw `std::runtime_error` on I/O failure.
void save_case(const std::string& path, const FuzzCase& fuzz_case);
FuzzCase load_case(const std::string& path);

}  // namespace lcl::fuzz
