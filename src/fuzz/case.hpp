#pragma once

#include <cstdint>
#include <string>

#include "core/lcl.hpp"
#include "graph/graph.hpp"
#include "graph/labeling.hpp"

namespace lcl::fuzz {

/// One differential-testing case: a problem, a concrete instance, and the
/// oracle it is checked against. Everything an oracle needs is stored
/// explicitly (not as generator seeds), so a saved case replays bit-for-bit
/// even after the generator evolves.
struct FuzzCase {
  /// Oracle id from the bank (`oracles.hpp`), e.g. "lift-soundness".
  std::string oracle;
  /// Generator seed the case came from (0 for hand-written cases).
  std::uint64_t seed = 0;
  /// Free-form provenance ("shrunk from seed 17", "regression for #42").
  std::string note;
  /// Instance family the graph was drawn from ("path", "tree", ...).
  std::string family;

  NodeEdgeCheckableLcl problem;
  Graph graph;
  HalfEdgeLabeling input;  // one label per half-edge, in the input alphabet
};

}  // namespace lcl::fuzz
