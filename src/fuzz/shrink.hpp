#pragma once

#include <cstddef>

#include "fuzz/case.hpp"
#include "fuzz/oracles.hpp"

namespace lcl::fuzz {

/// Bookkeeping of one shrink run.
struct ShrinkStats {
  std::size_t attempts = 0;  // candidate cases whose oracle was re-run
  std::size_t accepted = 0;  // candidates that kept failing (and were kept)
  std::size_t rounds = 0;    // full passes until a pass changed nothing
};

/// Greedily minimizes a failing case while its oracle keeps failing (same
/// `options`, including any fault injection - the counterexample must
/// reproduce under the exact conditions that found it).
///
/// Deletion passes, iterated to a fixed point:
///  - graph nodes (highest id first; incident edges go with the node),
///  - output labels (with every configuration and `g` entry naming them),
///  - individual node configurations and edge configurations,
///  - input labels unused by the instance labeling.
///
/// Every candidate is validated by re-running the oracle: a candidate that
/// stops failing (or stops being applicable) is discarded. `max_attempts`
/// bounds total oracle re-runs so shrinking stays cheap even when every
/// deletion keeps failing.
FuzzCase shrink_case(const FuzzCase& failing, const OracleOptions& options,
                     ShrinkStats* stats = nullptr,
                     std::size_t max_attempts = 2000);

}  // namespace lcl::fuzz
