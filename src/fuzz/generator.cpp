#include "fuzz/generator.hpp"

#include <algorithm>
#include <vector>

#include "graph/generators.hpp"
#include "grid/torus.hpp"
#include "lint/analyzer.hpp"
#include "util/combinatorics.hpp"

namespace lcl::fuzz {

namespace {

std::size_t pick_in_range(std::size_t lo, std::size_t hi, SplitRng& rng) {
  if (hi <= lo) return lo;
  return lo + rng.next_below(hi - lo + 1);
}

bool flip(double probability, SplitRng& rng) {
  return rng.next_double() < probability;
}

/// Sorted, deduped codes of the warning-or-worse lint diagnostics; empty
/// for problems every oracle considers well-bred.
std::vector<std::string> degenerate_codes(const NodeEdgeCheckableLcl& problem) {
  lint::LintOptions lint_options;
  lint_options.zero_round = false;  // L030 is info-level; not degeneracy
  const auto report = lint::lint_problem(problem, lint_options);
  std::vector<std::string> codes;
  for (const auto& diagnostic : report.diagnostics) {
    if (diagnostic.severity >= lint::Severity::kWarning) {
      codes.push_back(diagnostic.code);
    }
  }
  std::sort(codes.begin(), codes.end());
  codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  return codes;
}

/// Wide-alphabet draw (see `GeneratorOptions::wide_alphabets`): a 64..130
/// label output alphabet whose constraints touch only a small scattered live
/// core. Degree is pinned to 2 - a 130-label alphabet already yields ~8.6k
/// candidate pair multisets; degree 3 would be ~380k per seed.
NodeEdgeCheckableLcl draw_wide_problem(const GeneratorOptions& options,
                                       SplitRng& rng) {
  const int delta = 2;
  const std::size_t out_size = pick_in_range(
      std::max<std::size_t>(options.wide_min_labels, 2),
      std::max(options.wide_max_labels, options.wide_min_labels), rng);
  const std::size_t in_size =
      pick_in_range(2, std::max<std::size_t>(options.max_input_labels, 2),
                    rng);

  Alphabet output;
  for (std::size_t l = 0; l < out_size; ++l) {
    std::string name = "x";
    name += std::to_string(l);
    output.add(name);
  }
  Alphabet input;
  for (std::size_t l = 0; l < in_size; ++l) {
    std::string name = "i";
    name += std::to_string(l);
    input.add(name);
  }

  NodeEdgeCheckableLcl::Builder builder("fuzz-wide", std::move(input),
                                        std::move(output), delta);

  // Live core: scattered distinct labels, always straddling the 64-bit word
  // seam when the alphabet reaches past it.
  const std::size_t live_count = std::min(
      out_size, pick_in_range(std::max<std::size_t>(options.wide_min_live, 1),
                              std::max(options.wide_max_live,
                                       options.wide_min_live),
                              rng));
  std::vector<char> is_live(out_size, 0);
  std::vector<Label> live;
  if (out_size > 64) {
    const auto seam = static_cast<Label>(64 + rng.next_below(out_size - 64));
    is_live[static_cast<std::size_t>(seam)] = 1;
    live.push_back(seam);
  }
  while (live.size() < live_count) {
    const auto candidate = static_cast<Label>(rng.next_below(out_size));
    if (is_live[static_cast<std::size_t>(candidate)]) continue;
    is_live[static_cast<std::size_t>(candidate)] = 1;
    live.push_back(candidate);
  }
  std::sort(live.begin(), live.end());

  // Node constraint: singles and pairs over the live core only.
  std::size_t node_total = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (flip(options.node_density, rng)) {
      builder.allow_node({live[i]});
      ++node_total;
    }
    for (std::size_t j = i; j < live.size(); ++j) {
      if (flip(options.node_density, rng)) {
        builder.allow_node({live[i], live[j]});
        ++node_total;
      }
    }
  }
  if (node_total == 0) {
    builder.allow_node({live[rng.next_below(live.size())]});
  }

  // Edge constraint over the live core.
  std::size_t edge_total = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    for (std::size_t j = i; j < live.size(); ++j) {
      if (flip(options.edge_density, rng)) {
        builder.allow_edge(live[i], live[j]);
        ++edge_total;
      }
    }
  }
  if (edge_total == 0) {
    builder.allow_edge(live[rng.next_below(live.size())],
                       live[rng.next_below(live.size())]);
  }

  // g: mostly live grants, with the occasional dead label so the trim /
  // lint passes have real work; every input keeps at least one live grant.
  for (Label in = 0; in < static_cast<Label>(in_size); ++in) {
    bool any = false;
    for (Label out = 0; out < static_cast<Label>(out_size); ++out) {
      const double density = is_live[static_cast<std::size_t>(out)]
                                 ? options.g_density
                                 : options.wide_dead_g_density;
      if (flip(density, rng)) {
        builder.allow_output_for_input(in, out);
        any = true;
      }
    }
    if (!any) {
      builder.allow_output_for_input(in,
                                     live[rng.next_below(live.size())]);
    }
  }

  return builder.build();
}

NodeEdgeCheckableLcl draw_problem(const GeneratorOptions& options,
                                  SplitRng& rng) {
  if (options.wide_alphabets) return draw_wide_problem(options, rng);
  const int delta = static_cast<int>(
      pick_in_range(static_cast<std::size_t>(options.min_degree),
                    static_cast<std::size_t>(options.max_degree), rng));
  const std::size_t out_size =
      pick_in_range(options.min_labels, options.max_labels, rng);
  const std::size_t in_size = pick_in_range(1, options.max_input_labels, rng);

  Alphabet output;
  for (std::size_t l = 0; l < out_size; ++l) {
    std::string name = "x";
    name += std::to_string(l);
    output.add(name);
  }
  Alphabet input;
  if (in_size == 1) {
    input.add("-");
  } else {
    for (std::size_t l = 0; l < in_size; ++l) {
      std::string name = "i";
      name += std::to_string(l);
      input.add(name);
    }
  }

  NodeEdgeCheckableLcl::Builder builder("fuzz", std::move(input),
                                        std::move(output), delta);

  // Node constraint: each candidate multiset independently, with a forced
  // fallback so the problem always builds.
  std::size_t node_total = 0;
  for (int d = 1; d <= delta; ++d) {
    for (const auto& multiset :
         enumerate_multisets(out_size, static_cast<std::size_t>(d))) {
      if (flip(options.node_density, rng)) {
        builder.allow_node(std::vector<Label>(multiset.begin(),
                                              multiset.end()));
        ++node_total;
      }
    }
  }
  if (node_total == 0) {
    const int d = 1 + static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(delta)));
    const auto label = static_cast<Label>(rng.next_below(out_size));
    builder.allow_node(std::vector<Label>(static_cast<std::size_t>(d),
                                          label));
  }

  // Edge constraint.
  std::size_t edge_total = 0;
  for (Label a = 0; a < static_cast<Label>(out_size); ++a) {
    for (Label b = a; b < static_cast<Label>(out_size); ++b) {
      if (flip(options.edge_density, rng)) {
        builder.allow_edge(a, b);
        ++edge_total;
      }
    }
  }
  if (edge_total == 0) {
    const auto a = static_cast<Label>(rng.next_below(out_size));
    const auto b = static_cast<Label>(rng.next_below(out_size));
    builder.allow_edge(a, b);
  }

  // g: dense by default, with one guaranteed output per input label. A
  // 1-input problem gets the full row: "no inputs" means g is trivial, and
  // the walk-automaton classifiers rely on that.
  for (Label in = 0; in < static_cast<Label>(in_size); ++in) {
    bool any = false;
    for (Label out = 0; out < static_cast<Label>(out_size); ++out) {
      if (in_size == 1 || flip(options.g_density, rng)) {
        builder.allow_output_for_input(in, out);
        any = true;
      }
    }
    if (!any) {
      builder.allow_output_for_input(
          in, static_cast<Label>(rng.next_below(out_size)));
    }
  }

  return builder.build();
}

}  // namespace

NodeEdgeCheckableLcl random_problem(const GeneratorOptions& options,
                                    SplitRng& rng) {
  if (options.lint_policy != LintPolicy::kReject) {
    return draw_problem(options, rng);
  }
  NodeEdgeCheckableLcl problem = draw_problem(options, rng);
  for (int attempt = 1; attempt < options.lint_reject_attempts &&
                        !degenerate_codes(problem).empty();
       ++attempt) {
    problem = draw_problem(options, rng);
  }
  return problem;
}

Instance random_instance(const NodeEdgeCheckableLcl& problem,
                         const GeneratorOptions& options, SplitRng& rng) {
  const int delta = problem.max_degree();
  const std::size_t n = pick_in_range(
      std::max<std::size_t>(options.min_instance_nodes, 3),
      std::max(options.max_instance_nodes, options.min_instance_nodes), rng);

  // Families applicable at this degree bound; trees/forests need Delta >= 2
  // (a tree with >= 3 nodes has an internal node), so Delta = 1 instances
  // degrade to a single edge.
  std::vector<std::string> families;
  if (delta >= 2) {
    families.insert(families.end(), {"path", "cycle", "tree", "forest"});
  }
  if (delta >= 3) {
    families.push_back("star");
    families.push_back("caterpillar");
  }
  if (delta >= 4) families.push_back("grid");

  Instance instance;
  if (families.empty()) {
    instance.family = "edge";
    instance.graph = make_path(2);
  } else {
    instance.family = families[rng.next_below(families.size())];
    if (instance.family == "path") {
      instance.graph = make_path(std::max<std::size_t>(n, 2));
    } else if (instance.family == "cycle") {
      instance.graph = make_cycle(std::max<std::size_t>(n, 3));
    } else if (instance.family == "tree") {
      SplitRng child = rng.fork(1);
      instance.graph = make_random_tree(n, delta, child);
    } else if (instance.family == "forest") {
      SplitRng child = rng.fork(2);
      const std::size_t components = 1 + rng.next_below(3);
      instance.graph = make_random_forest(std::max(n, components), components,
                                          delta, child);
    } else if (instance.family == "star") {
      instance.graph = make_star(static_cast<std::size_t>(delta));
    } else if (instance.family == "caterpillar") {
      // Spine nodes have degree legs + 2; keep within Delta.
      const int legs = std::max(1, delta - 2);
      instance.graph = make_caterpillar(std::max<std::size_t>(n / 2, 2), legs);
    } else {  // grid
      const std::size_t w = 3 + rng.next_below(2);
      const std::size_t h = 3 + rng.next_below(2);
      instance.graph = OrientedTorus({w, h}).graph();
    }
  }

  const std::size_t in_size = problem.input_alphabet().size();
  if (in_size == 1) {
    instance.input = uniform_labeling(instance.graph, 0);
  } else {
    SplitRng child = rng.fork(3);
    instance.input = random_labeling(instance.graph, in_size, child);
  }
  return instance;
}

FuzzCase random_case(const GeneratorOptions& options, std::uint64_t seed) {
  SplitRng rng(seed);
  FuzzCase out;
  out.seed = seed;
  out.problem = random_problem(options, rng);
  if (options.lint_policy == LintPolicy::kAnnotate) {
    const auto codes = degenerate_codes(out.problem);
    if (!codes.empty()) {
      out.note = "lint:";
      for (const auto& code : codes) {
        out.note += ' ';
        out.note += code;
      }
    }
  }
  Instance instance = random_instance(out.problem, options, rng);
  out.family = std::move(instance.family);
  out.graph = std::move(instance.graph);
  out.input = std::move(instance.input);
  return out;
}

}  // namespace lcl::fuzz
