#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fuzz/case.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracles.hpp"
#include "obs/run_context.hpp"

namespace lcl::fuzz {

/// One fuzzing campaign: seeds `seed_start .. seed_start + seeds - 1`, each
/// expanded into one case per bank oracle.
struct FuzzRunOptions {
  std::uint64_t seed_start = 1;
  std::uint64_t seeds = 100;
  /// Worker threads (`batch::Pool`); 0 = hardware concurrency, 1 = run
  /// inline. Seeds are independent, so the report is identical for any
  /// value - results are merged in seed order and corpus files are written
  /// by the coordinating thread.
  std::size_t jobs = 1;
  /// Wall-clock budget in seconds; 0 = unlimited. Checked between seeds, so
  /// the run always finishes the seed it is on.
  double budget_seconds = 0.0;
  /// Where shrunk failing cases are written (one JSON file per failure,
  /// named `<oracle>-seed<N>.json`). Empty = don't write corpus files.
  std::string corpus_dir;
  /// Shrink failing cases before reporting/saving them.
  bool shrink = true;
  /// Restrict the run to a single oracle id; empty = the whole bank.
  std::string only_oracle;

  GeneratorOptions generator;
  OracleOptions oracle;

  /// Optional progress sink: one "row" per seed, plus "oracle_checks" /
  /// "oracle_failures" unit counters. Never influences verdicts.
  obs::RunContext* run = nullptr;
};

/// Per-oracle outcome counts across a campaign.
struct OracleTally {
  std::uint64_t checks = 0;   // oracle ran to a verdict (pass or fail)
  std::uint64_t skipped = 0;  // preconditions unmet or budget exhausted
  std::uint64_t failures = 0;
};

/// Aggregate result of `run_fuzz`.
struct FuzzReport {
  std::uint64_t seeds_run = 0;
  std::uint64_t checks = 0;
  std::uint64_t skipped = 0;
  std::uint64_t failures = 0;
  /// True when `budget_seconds` expired before all seeds were run.
  bool budget_exhausted = false;
  /// Corpus files written for (shrunk) failing cases, in discovery order.
  std::vector<std::string> corpus_files;
  /// One human-readable line per failure, in discovery order.
  std::vector<std::string> failure_messages;
  std::map<std::string, OracleTally> per_oracle;

  bool ok() const noexcept { return failures == 0; }
};

/// Runs the campaign. Deterministic in `options` (except for the wall-clock
/// budget cutoff): seed N always produces the same case and verdicts.
FuzzReport run_fuzz(const FuzzRunOptions& options);

/// Replays one saved case against its recorded oracle. Returns the raw
/// oracle result; a replayed counterexample whose bug has since been fixed
/// reports `applicable && !failed`.
OracleResult replay_case(const FuzzCase& fuzz_case,
                         const OracleOptions& options);

}  // namespace lcl::fuzz
