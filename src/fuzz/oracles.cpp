#include "fuzz/oracles.hpp"

#include <optional>
#include <stdexcept>

#include "classify/cycle_classifier.hpp"
#include "classify/path_classifier.hpp"
#include "core/brute_force.hpp"
#include "core/checker.hpp"
#include "graph/generators.hpp"
#include "lint/analyzer.hpp"
#include "lint/canonical.hpp"
#include "lint/spec.hpp"
#include "util/rng.hpp"
#include "local/order_invariant.hpp"
#include "local/view.hpp"
#include "re/engine.hpp"
#include "re/lift.hpp"
#include "re/operators.hpp"
#include "re/reduce.hpp"
#include "re/zero_round.hpp"
#include "volume/algorithms.hpp"
#include "volume/model.hpp"

namespace lcl::fuzz {

namespace {

/// Rebuilds `p` with one configuration silently deleted - the "bug" behind
/// the `drop-rbar-config` injection. Prefers the last node configuration of
/// the highest populated degree (keeping the problem buildable); falls back
/// to an edge configuration; returns nullopt when nothing can be dropped.
std::optional<NodeEdgeCheckableLcl> drop_one_config(
    const NodeEdgeCheckableLcl& p) {
  const bool drop_node = p.total_node_configs() > 1;
  if (!drop_node && p.edge_configs().size() <= 1) return std::nullopt;

  int victim_degree = 0;
  if (drop_node) {
    for (int d = p.max_degree(); d >= 1; --d) {
      if (!p.node_configs(d).empty()) {
        victim_degree = d;
        break;
      }
    }
  }

  NodeEdgeCheckableLcl::Builder builder(p.name() + "[dropped-config]",
                                        p.input_alphabet(),
                                        p.output_alphabet(), p.max_degree());
  builder.allow_unsatisfiable_inputs();
  for (int d = 1; d <= p.max_degree(); ++d) {
    const auto& configs = p.node_configs(d);
    std::size_t index = 0;
    for (const auto& config : configs) {
      const bool is_victim =
          drop_node && d == victim_degree && index + 1 == configs.size();
      if (!is_victim) builder.allow_node(config.labels());
      ++index;
    }
  }
  {
    std::size_t index = 0;
    for (const auto& config : p.edge_configs()) {
      const bool is_victim =
          !drop_node && index + 1 == p.edge_configs().size();
      if (!is_victim) builder.allow_edge(config[0], config[1]);
      ++index;
    }
  }
  for (Label in = 0; in < p.input_alphabet().size(); ++in) {
    for (const auto out : p.allowed_outputs(in).to_vector()) {
      builder.allow_output_for_input(in, out);
    }
  }
  return builder.build();
}

/// Oracle (a): per-instance solvability of `pi` and `Rbar(R(pi))` must
/// coincide (a solution of `pi` embeds as singletons; a solution of
/// `Rbar(R(pi))` lifts via Lemma 3.9), and a lifted solution must pass the
/// `pi` checker.
OracleResult oracle_lift_soundness(const FuzzCase& c,
                                   const OracleOptions& o) {
  OracleResult r;
  if (c.graph.edge_count() == 0 ||
      c.graph.max_degree() > c.problem.max_degree()) {
    return r;
  }

  ReStep psi;
  ReStep next;
  try {
    psi = reduce_step(apply_r(c.problem, o.limits), o.limits.kernel);
    next = reduce_step(apply_rbar(psi.problem, o.limits), o.limits.kernel);
  } catch (const ReBlowupError&) {
    return r;  // enumeration budget - skip, don't judge
  } catch (const std::logic_error&) {
    return r;  // derived problem unbuildable (e.g. empty g after shrinking)
  } catch (const std::runtime_error& e) {
    // reduce() proved a derived problem unsolvable on every graph with an
    // edge; the base problem must agree on this instance.
    r.applicable = true;
    try {
      if (brute_force_solvable(c.problem, c.graph, c.input,
                               o.brute_force_budget)) {
        r.failed = true;
        r.message =
            std::string("reduction declared the sequence unsolvable, but "
                        "the base problem is solvable on the instance (") +
            e.what() + ")";
      }
    } catch (const StepBudgetExceeded&) {
      r.applicable = false;
    }
    return r;
  }

  if (o.inject == "drop-rbar-config") {
    auto corrupted = drop_one_config(next.problem);
    if (!corrupted) return r;  // nothing to drop on this case
    next.problem = std::move(*corrupted);
  }

  r.applicable = true;
  bool base_solvable = false;
  std::optional<HalfEdgeLabeling> next_solution;
  try {
    base_solvable = brute_force_solvable(c.problem, c.graph, c.input,
                                         o.brute_force_budget);
    next_solution = brute_force_solve(next.problem, c.graph, c.input,
                                      o.brute_force_budget);
  } catch (const StepBudgetExceeded&) {
    r.applicable = false;
    return r;
  }

  if (base_solvable != next_solution.has_value()) {
    r.failed = true;
    r.message = std::string("solvability disagreement: pi is ") +
                (base_solvable ? "solvable" : "unsolvable") +
                " but Rbar(R(pi)) is " +
                (next_solution ? "solvable" : "unsolvable") +
                " on the same instance";
    return r;
  }

  if (next_solution) {
    const SequenceLevel level{psi, next};
    try {
      const auto lifted = lift_solution(c.problem, level, c.graph, c.input,
                                        *next_solution);
      const auto check =
          check_solution(c.problem, c.graph, c.input, lifted);
      if (!check.ok()) {
        r.failed = true;
        r.message = "Lemma 3.9 lift produced an incorrect pi solution: " +
                    check.to_string();
      }
    } catch (const std::logic_error& e) {
      r.failed = true;
      r.message = std::string("Lemma 3.9 lift threw: ") + e.what();
    }
  }
  return r;
}

/// Oracle (b): what the speedup engine certifies must hold on the concrete
/// instance - a synthesized constant-round algorithm produces
/// checker-correct solutions on forests; an unsolvability verdict agrees
/// with brute force.
OracleResult oracle_synthesis(const FuzzCase& c, const OracleOptions& o) {
  OracleResult r;
  if (!c.graph.is_forest() || c.graph.edge_count() == 0 ||
      c.graph.max_degree() > c.problem.max_degree()) {
    return r;
  }
  // The 0-round witness only answers degrees 1..Delta; isolated nodes would
  // ask for a degree-0 tuple.
  for (NodeId v = 0; v < c.graph.node_count(); ++v) {
    if (c.graph.degree(v) == 0) return r;
  }

  SpeedupEngine engine(c.problem);
  SpeedupEngine::Options options;
  options.max_steps = o.speedup_max_steps;
  options.limits = o.limits;
  SpeedupEngine::Outcome outcome;
  try {
    outcome = engine.run(options);
  } catch (const std::logic_error&) {
    return r;  // a derived problem failed to build - skip
  }

  r.applicable = true;
  if (outcome.zero_round_step >= 0) {
    const auto algorithm = engine.synthesize();
    const auto ids = sequential_ids(c.graph);
    HalfEdgeLabeling produced;
    try {
      produced = run_ball_algorithm(*algorithm, c.graph, c.input, ids);
    } catch (const std::logic_error& e) {
      r.failed = true;
      r.message = std::string("synthesized algorithm threw: ") + e.what();
      return r;
    }
    const auto check = check_solution(c.problem, c.graph, c.input, produced);
    if (!check.ok()) {
      r.failed = true;
      r.message = "synthesized " + std::to_string(outcome.zero_round_step) +
                  "-round algorithm produced an incorrect solution: " +
                  check.to_string();
    }
  } else if (outcome.detected_unsolvable) {
    try {
      if (brute_force_solvable(c.problem, c.graph, c.input,
                               o.brute_force_budget)) {
        r.failed = true;
        r.message =
            "engine declared the problem unsolvable (no label survives "
            "reduction), but brute force solved the instance";
      }
    } catch (const StepBudgetExceeded&) {
      r.applicable = false;
    }
  }
  // Fixed point / step budget without a verdict: nothing checkable; counts
  // as a (vacuous) pass so the tally reflects that the engine ran.
  return r;
}

/// Oracle (c): walk-automaton solvability per length vs brute force, for
/// no-input problems with Delta >= 2.
OracleResult oracle_classifier_lengths(const FuzzCase& c,
                                       const OracleOptions& o) {
  OracleResult r;
  if (c.problem.input_alphabet().size() != 1 || c.problem.max_degree() < 2) {
    return r;
  }
  // The walk automata ignore g; they only match brute force when the single
  // input label genuinely permits every output.
  if (c.problem.allowed_outputs(0).to_vector().size() !=
      c.problem.output_alphabet().size()) {
    return r;
  }
  r.applicable = true;
  for (std::uint64_t n = 2;
       n <= static_cast<std::uint64_t>(o.sweep_max_length); ++n) {
    const bool automaton = solvable_on_path_length(c.problem, n);
    const Graph g = make_path(n);
    bool reference = false;
    try {
      reference = brute_force_solvable(c.problem, g, uniform_labeling(g, 0),
                                       o.brute_force_budget);
    } catch (const StepBudgetExceeded&) {
      continue;
    }
    if (automaton != reference) {
      r.failed = true;
      r.message = "path length " + std::to_string(n) +
                  ": walk automaton says " +
                  (automaton ? "solvable" : "unsolvable") +
                  ", brute force says the opposite";
      return r;
    }
  }
  for (std::uint64_t n = 3;
       n <= static_cast<std::uint64_t>(o.sweep_max_length); ++n) {
    const bool automaton = solvable_on_cycle_length(c.problem, n);
    const Graph g = make_cycle(n);
    bool reference = false;
    try {
      reference = brute_force_solvable(c.problem, g, uniform_labeling(g, 0),
                                       o.brute_force_budget);
    } catch (const StepBudgetExceeded&) {
      continue;
    }
    if (automaton != reference) {
      r.failed = true;
      r.message = "cycle length " + std::to_string(n) +
                  ": walk automaton says " +
                  (automaton ? "solvable" : "unsolvable") +
                  ", brute force says the opposite";
      return r;
    }
  }
  return r;
}

/// Oracle (e): `lclscape::lint` verdicts vs ground truth. One-directional
/// checks of the semantic passes (the lint analyzer claims more than any
/// single instance can refute, so only its *positive* verdicts are
/// falsifiable here):
///  - L020 (trivially unsolvable) => brute force must find no solution on
///    the instance (any instance with an edge);
///  - L030 (0-round trivial)      => the exact `A_det` decision procedure
///    must confirm 0-round solvability;
///  - pruning is conservative     => the pruned problem is solvable on the
///    instance iff the original is, and a pruned solution mapped through
///    `new_to_old` must pass the *original* checker.
OracleResult oracle_lint_soundness(const FuzzCase& c, const OracleOptions& o) {
  OracleResult r;
  if (c.graph.edge_count() == 0 ||
      c.graph.max_degree() > c.problem.max_degree()) {
    return r;
  }

  const auto pruned = lint::prune_problem(c.problem, lint::LintOptions{});
  const auto& report = pruned.report;
  r.applicable = true;

  bool base_solvable = false;
  try {
    base_solvable = brute_force_solvable(c.problem, c.graph, c.input,
                                         o.brute_force_budget);
  } catch (const StepBudgetExceeded&) {
    r.applicable = false;
    return r;
  }

  if (report.trivially_unsolvable) {
    if (base_solvable) {
      r.failed = true;
      r.message =
          "lint reported L020 (trivially unsolvable), but brute force "
          "solved the instance";
    }
    return r;  // no pruned problem exists to compare against
  }

  if (report.zero_round_label >= 0 && !zero_round_solvable(c.problem)) {
    r.failed = true;
    r.message = "lint reported L030 (0-round trivial via label " +
                std::to_string(report.zero_round_label) +
                "), but the A_det decision procedure found no 0-round "
                "algorithm";
    return r;
  }

  std::optional<HalfEdgeLabeling> pruned_solution;
  try {
    pruned_solution = brute_force_solve(pruned.problem, c.graph, c.input,
                                        o.brute_force_budget);
  } catch (const StepBudgetExceeded&) {
    r.applicable = false;
    return r;
  }
  if (base_solvable != pruned_solution.has_value()) {
    r.failed = true;
    r.message = std::string("pruning changed solvability: the original is ") +
                (base_solvable ? "solvable" : "unsolvable") +
                " but the pruned problem is " +
                (pruned_solution ? "solvable" : "unsolvable") +
                " on the same instance (" +
                std::to_string(report.dead_labels) + " labels pruned)";
    return r;
  }

  if (pruned_solution && !report.new_to_old.empty()) {
    HalfEdgeLabeling mapped = *pruned_solution;
    for (auto& label : mapped) label = report.new_to_old[label];
    const auto check = check_solution(c.problem, c.graph, c.input, mapped);
    if (!check.ok()) {
      r.failed = true;
      r.message =
          "a pruned-problem solution mapped through new_to_old fails the "
          "original checker: " +
          check.to_string();
    }
  }
  return r;
}

/// Oracle (d): the LOCAL and VOLUME implementations of orient-by-larger-id
/// must agree output-for-output, and both must produce a consistent
/// orientation (one kOut / one kIn per edge).
OracleResult oracle_cross_model(const FuzzCase& c, const OracleOptions& o) {
  (void)o;
  OracleResult r;
  if (c.graph.edge_count() == 0) return r;
  r.applicable = true;

  SplitRng rng(c.seed ^ 0xc2b2ae3d27d4eb4fULL);
  const auto ids = shuffled_sequential_ids(c.graph, rng);

  const OrientByIdOrder local_algo;
  const auto local = run_ball_algorithm(local_algo, c.graph, c.input, ids);
  const auto volume =
      run_volume_algorithm(VolumeOrientByIds{}, c.graph, c.input, ids);

  if (local != volume.output) {
    r.failed = true;
    r.message =
        "LOCAL and VOLUME orientation algorithms disagree on the instance";
    return r;
  }
  for (EdgeId e = 0; e < c.graph.edge_count(); ++e) {
    const Label a = local[2 * e];
    const Label b = local[2 * e + 1];
    const bool oriented = (a == OrientByIdOrder::kOut &&
                           b == OrientByIdOrder::kIn) ||
                          (a == OrientByIdOrder::kIn &&
                           b == OrientByIdOrder::kOut);
    if (!oriented) {
      r.failed = true;
      r.message = "orientation output invalid on edge " + std::to_string(e);
      return r;
    }
  }
  return r;
}

/// Oracle (f): label-permutation canonicalization soundness. Draw a random
/// output-label permutation sigma from the case seed and cross-check
/// `lint::canonical_form` against it:
///  - canonical_form(sigma(pi)) == canonical_form(pi), byte for byte (label
///    names ride with their labels), with equal canonical signatures and
///    equal automorphism-group orders;
///  - a reported automorphism generator really fixes the constraint system;
///  - the speedup engine's verdict on sigma(pi) matches its verdict on pi
///    (the landscape class of a problem cannot depend on label names);
///  - a brute-force solution of sigma(pi) mapped through sigma^-1 passes
///    pi's checker (solutions transport along the permutation).
OracleResult oracle_canonicalization(const FuzzCase& c,
                                     const OracleOptions& o) {
  OracleResult r;
  const lint::ProblemSpec spec = lint::spec_from_problem(c.problem);
  const std::size_t k = spec.outputs.size();
  if (k == 0) return r;

  // Fisher-Yates from the case seed: deterministic per case, independent of
  // the instance stream.
  std::vector<Label> sigma(k);
  for (std::size_t i = 0; i < k; ++i) sigma[i] = static_cast<Label>(i);
  SplitRng rng(c.seed ^ 0x51a0b1c2d3e4f567ULL);
  for (std::size_t i = k; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(sigma[i - 1], sigma[j]);
  }

  const lint::ProblemSpec permuted_spec = lint::permute_spec(spec, sigma);
  const auto f1 = lint::canonical_form(spec);
  const auto f2 = lint::canonical_form(permuted_spec);
  if (!f1.complete || !f2.complete) return r;  // budget - skip, don't judge
  r.applicable = true;

  if (!(f1.spec == f2.spec)) {
    r.failed = true;
    r.message =
        "canonical_form(sigma(pi)) differs from canonical_form(pi): the "
        "canonical representative depends on the input labeling";
    return r;
  }
  if (lint::spec_signature(f1.spec) != lint::spec_signature(f2.spec)) {
    r.failed = true;
    r.message = "equal canonical forms hash to different signatures";
    return r;
  }
  if (f1.automorphism_order != f2.automorphism_order ||
      f1.automorphism_order_saturated != f2.automorphism_order_saturated) {
    r.failed = true;
    r.message = "automorphism-group order changed under relabeling: " +
                std::to_string(f1.automorphism_order) + " vs " +
                std::to_string(f2.automorphism_order);
    return r;
  }
  if (!f1.automorphism_generator.empty() &&
      !lint::same_structure(
          lint::permute_spec(spec, f1.automorphism_generator), spec)) {
    r.failed = true;
    r.message =
        "the reported automorphism generator does not fix the constraint "
        "system";
    return r;
  }

  // The engine's verdict is a function of the constraint system, not of
  // label names: run both copies under the same budget and compare the
  // observable certificate.
  NodeEdgeCheckableLcl permuted_problem =
      lint::build_spec(permuted_spec);
  try {
    SpeedupEngine::Options options;
    options.max_steps = o.speedup_max_steps;
    options.limits = o.limits;
    SpeedupEngine original_engine(c.problem);
    SpeedupEngine permuted_engine(permuted_problem);
    const auto a = original_engine.run(options);
    const auto b = permuted_engine.run(options);
    if (a.zero_round_step != b.zero_round_step ||
        a.detected_unsolvable != b.detected_unsolvable ||
        a.fixed_point != b.fixed_point ||
        a.budget_exhausted != b.budget_exhausted) {
      r.failed = true;
      r.message = "engine verdict changed under relabeling: zero_round_step " +
                  std::to_string(a.zero_round_step) + " vs " +
                  std::to_string(b.zero_round_step);
      return r;
    }
  } catch (const std::logic_error&) {
    // A derived problem failed to build; the verdict comparison is
    // inapplicable but the form checks above already ran.
  }

  // Solutions transport along sigma: solve the relabeled problem on the
  // instance and replay the answer through sigma^-1 against pi's checker.
  if (c.graph.edge_count() > 0 &&
      c.graph.max_degree() <= c.problem.max_degree()) {
    std::vector<Label> sigma_inverse(k);
    for (std::size_t l = 0; l < k; ++l) sigma_inverse[sigma[l]] = l;
    try {
      const auto permuted_solution = brute_force_solve(
          permuted_problem, c.graph, c.input, o.brute_force_budget);
      const bool base_solvable = brute_force_solvable(
          c.problem, c.graph, c.input, o.brute_force_budget);
      if (base_solvable != permuted_solution.has_value()) {
        r.failed = true;
        r.message = std::string("relabeling changed solvability: pi is ") +
                    (base_solvable ? "solvable" : "unsolvable") +
                    " but sigma(pi) is " +
                    (permuted_solution ? "solvable" : "unsolvable") +
                    " on the same instance";
        return r;
      }
      if (permuted_solution) {
        HalfEdgeLabeling mapped = *permuted_solution;
        for (auto& label : mapped) label = sigma_inverse[label];
        const auto check =
            check_solution(c.problem, c.graph, c.input, mapped);
        if (!check.ok()) {
          r.failed = true;
          r.message =
              "a sigma(pi) solution mapped through sigma^-1 fails pi's "
              "checker: " +
              check.to_string();
        }
      }
    } catch (const StepBudgetExceeded&) {
      // Instance-level budget: the form/engine checks above still count.
    }
  }
  return r;
}

}  // namespace

const std::vector<OracleEntry>& oracle_bank() {
  static const std::vector<OracleEntry> kBank = {
      {"lift-soundness",
       "pi vs Rbar(R(pi)): per-instance solvability agreement + Lemma 3.9 "
       "lift re-checked against pi's checker",
       &oracle_lift_soundness},
      {"synthesis",
       "speedup-engine certificates vs brute force: synthesized algorithms "
       "are checker-correct, unsolvability verdicts agree",
       &oracle_synthesis},
      {"classifier-lengths",
       "path/cycle walk-automaton solvability vs brute force on a sweep of "
       "lengths",
       &oracle_classifier_lengths},
      {"cross-model",
       "LOCAL vs VOLUME implementations of the same orientation rule "
       "produce identical outputs",
       &oracle_cross_model},
      {"lint-soundness",
       "lint verdicts vs ground truth: L020 agrees with brute force, L030 "
       "with the A_det decision procedure, and dead-label pruning preserves "
       "per-instance solvability",
       &oracle_lint_soundness},
      {"canonicalization",
       "label-permutation canonicalization soundness: canonical_form("
       "sigma(pi)) == canonical_form(pi) with matching signatures and |Aut|, "
       "engine verdicts are relabeling-invariant, and sigma(pi) solutions "
       "transport through sigma^-1 to pi's checker",
       &oracle_canonicalization},
  };
  return kBank;
}

OracleResult run_oracle(const std::string& id, const FuzzCase& fuzz_case,
                        const OracleOptions& options) {
  for (const auto& entry : oracle_bank()) {
    if (id == entry.id) return entry.run(fuzz_case, options);
  }
  throw std::invalid_argument("fuzz: unknown oracle '" + id + "'");
}

}  // namespace lcl::fuzz
