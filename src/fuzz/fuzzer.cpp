#include "fuzz/fuzzer.hpp"

#include <chrono>
#include <filesystem>
#include <functional>
#include <future>
#include <utility>
#include <vector>

#include "batch/pool.hpp"
#include "fuzz/case_io.hpp"
#include "fuzz/shrink.hpp"
#include "obs/obs.hpp"

namespace lcl::fuzz {

namespace {

/// Everything one seed produced, I/O-free. Corpus files are written by the
/// coordinating thread in seed order, so a parallel campaign emits exactly
/// the files (and the report) a sequential one does.
struct SeedOutcome {
  bool ran = false;
  std::map<std::string, OracleTally> per_oracle;
  std::uint64_t checks = 0;
  std::uint64_t skipped = 0;
  std::uint64_t failures = 0;
  std::vector<std::string> failure_messages;
  struct SavedCase {
    std::string oracle_id;
    std::uint64_t seed = 0;
    FuzzCase minimal;
  };
  std::vector<SavedCase> to_save;
};

/// Progress bookkeeping for one finished seed; shared by the sequential
/// and the pool paths.
void note_seed_done(const FuzzRunOptions& options, const SeedOutcome& out) {
  obs::RunContext* run = options.run;
  if (run == nullptr) return;
  run->add_rows_done(1);
  if (out.failures != 0) run->add_errors(out.failures);
  if (out.checks != 0) run->bump("oracle_checks", out.checks);
  if (out.failures != 0) run->bump("oracle_failures", out.failures);
  run->publish_gauges();
}

SeedOutcome run_seed(std::uint64_t seed, const FuzzRunOptions& options) {
  SeedOutcome out;
  out.ran = true;
  FuzzCase base = random_case(options.generator, seed);

  for (const auto& entry : oracle_bank()) {
    if (!options.only_oracle.empty() && options.only_oracle != entry.id) {
      continue;
    }
    FuzzCase c = base;
    c.oracle = entry.id;
    auto& tally = out.per_oracle[entry.id];
    const OracleResult result = entry.run(c, options.oracle);
    if (!result.applicable) {
      ++tally.skipped;
      ++out.skipped;
      continue;
    }
    ++tally.checks;
    ++out.checks;
    if (!result.failed) continue;

    ++tally.failures;
    ++out.failures;
    LCL_OBS_EVENT1("fuzz/failure", "fuzz", "seed",
                   static_cast<std::int64_t>(seed));

    FuzzCase minimal = c;
    if (options.shrink) {
      ShrinkStats stats;
      minimal = shrink_case(c, options.oracle, &stats);
      minimal.note = "shrunk from seed " + std::to_string(seed) + " (" +
                     std::to_string(stats.accepted) + "/" +
                     std::to_string(stats.attempts) + " deletions accepted)";
    }
    const OracleResult final_result =
        run_oracle(minimal.oracle, minimal, options.oracle);
    out.failure_messages.push_back(
        std::string(entry.id) + " seed " + std::to_string(seed) + ": " +
        (final_result.message.empty() ? result.message
                                      : final_result.message));
    if (!options.corpus_dir.empty()) {
      out.to_save.push_back(
          SeedOutcome::SavedCase{entry.id, seed, std::move(minimal)});
    }
  }
  return out;
}

/// Folds one seed's outcome into the report (and performs its corpus I/O).
/// Always called in seed order.
void merge(FuzzReport& report, SeedOutcome&& outcome,
           const FuzzRunOptions& options) {
  if (!outcome.ran) return;
  ++report.seeds_run;
  report.checks += outcome.checks;
  report.skipped += outcome.skipped;
  report.failures += outcome.failures;
  for (auto& [id, tally] : outcome.per_oracle) {
    auto& total = report.per_oracle[id];
    total.checks += tally.checks;
    total.skipped += tally.skipped;
    total.failures += tally.failures;
  }
  for (auto& message : outcome.failure_messages) {
    report.failure_messages.push_back(std::move(message));
  }
  for (auto& saved : outcome.to_save) {
    const auto path = std::filesystem::path(options.corpus_dir) /
                      (saved.oracle_id + "-seed" + std::to_string(saved.seed) +
                       ".json");
    save_case(path.string(), saved.minimal);
    report.corpus_files.push_back(path.string());
  }
}

}  // namespace

FuzzReport run_fuzz(const FuzzRunOptions& options) {
  FuzzReport report;
  if (options.run != nullptr) {
    options.run->set_phase("fuzz");
    options.run->set_rows_total(options.seeds);
  }
  const auto started = std::chrono::steady_clock::now();
  const auto over_budget = [&]() {
    if (options.budget_seconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - started;
    return elapsed.count() >= options.budget_seconds;
  };

  if (options.jobs == 1) {
    for (std::uint64_t i = 0; i < options.seeds; ++i) {
      if (over_budget()) {
        report.budget_exhausted = true;
        break;
      }
      SeedOutcome outcome = run_seed(options.seed_start + i, options);
      note_seed_done(options, outcome);
      merge(report, std::move(outcome), options);
    }
    return report;
  }

  // Parallel campaign: one pool task per seed, outcome slots pre-sized so
  // completion order does not matter, merged in seed order afterwards.
  std::vector<SeedOutcome> outcomes(options.seeds);
  {
    batch::Pool pool(batch::Pool::Options{options.jobs});
    std::vector<std::future<void>> futures;
    futures.reserve(outcomes.size());
    for (std::uint64_t i = 0; i < options.seeds; ++i) {
      futures.push_back(pool.submit([i, &outcomes, &options, &over_budget]() {
        // The budget is checked at task start, mirroring the sequential
        // between-seeds check: a seed either runs to completion or not at
        // all.
        if (over_budget()) return;
        outcomes[i] = run_seed(options.seed_start + i, options);
        note_seed_done(options, outcomes[i]);
      }));
    }
    for (auto& future : futures) future.get();
    if (options.run != nullptr) {
      options.run->record_busy_fractions(pool.busy_fractions());
    }
  }
  for (auto& outcome : outcomes) {
    if (!outcome.ran) report.budget_exhausted = true;
    merge(report, std::move(outcome), options);
  }
  return report;
}

OracleResult replay_case(const FuzzCase& fuzz_case,
                         const OracleOptions& options) {
  return run_oracle(fuzz_case.oracle, fuzz_case, options);
}

}  // namespace lcl::fuzz
