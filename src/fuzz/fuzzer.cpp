#include "fuzz/fuzzer.hpp"

#include <chrono>
#include <filesystem>

#include "fuzz/case_io.hpp"
#include "fuzz/shrink.hpp"
#include "obs/obs.hpp"

namespace lcl::fuzz {

FuzzReport run_fuzz(const FuzzRunOptions& options) {
  FuzzReport report;
  const auto started = std::chrono::steady_clock::now();
  const auto over_budget = [&]() {
    if (options.budget_seconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - started;
    return elapsed.count() >= options.budget_seconds;
  };

  for (std::uint64_t i = 0; i < options.seeds; ++i) {
    if (over_budget()) {
      report.budget_exhausted = true;
      break;
    }
    const std::uint64_t seed = options.seed_start + i;
    FuzzCase base = random_case(options.generator, seed);
    ++report.seeds_run;

    for (const auto& entry : oracle_bank()) {
      if (!options.only_oracle.empty() && options.only_oracle != entry.id) {
        continue;
      }
      FuzzCase c = base;
      c.oracle = entry.id;
      auto& tally = report.per_oracle[entry.id];
      const OracleResult result = entry.run(c, options.oracle);
      if (!result.applicable) {
        ++tally.skipped;
        ++report.skipped;
        continue;
      }
      ++tally.checks;
      ++report.checks;
      if (!result.failed) continue;

      ++tally.failures;
      ++report.failures;
      LCL_OBS_EVENT1("fuzz/failure", "fuzz", "seed",
                     static_cast<std::int64_t>(seed));

      FuzzCase minimal = c;
      if (options.shrink) {
        ShrinkStats stats;
        minimal = shrink_case(c, options.oracle, &stats);
        minimal.note = "shrunk from seed " + std::to_string(seed) + " (" +
                       std::to_string(stats.accepted) + "/" +
                       std::to_string(stats.attempts) +
                       " deletions accepted)";
      }
      const OracleResult final_result =
          run_oracle(minimal.oracle, minimal, options.oracle);
      report.failure_messages.push_back(
          std::string(entry.id) + " seed " + std::to_string(seed) + ": " +
          (final_result.message.empty() ? result.message
                                        : final_result.message));
      if (!options.corpus_dir.empty()) {
        const auto path = std::filesystem::path(options.corpus_dir) /
                          (std::string(entry.id) + "-seed" +
                           std::to_string(seed) + ".json");
        save_case(path.string(), minimal);
        report.corpus_files.push_back(path.string());
      }
    }
  }
  return report;
}

OracleResult replay_case(const FuzzCase& fuzz_case,
                         const OracleOptions& options) {
  return run_oracle(fuzz_case.oracle, fuzz_case, options);
}

}  // namespace lcl::fuzz
