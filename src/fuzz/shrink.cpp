#include "fuzz/shrink.hpp"

#include <optional>
#include <vector>

namespace lcl::fuzz {

namespace {

constexpr Label kNone = static_cast<Label>(-1);

/// Rebuilds `p` keeping only the masked labels and skipping at most one
/// node/edge configuration (by global index; -1 = none). Returns nullopt
/// when the result would be unbuildable (no output label, no input label,
/// no node configuration, or no edge configuration left).
std::optional<NodeEdgeCheckableLcl> rebuild_problem(
    const NodeEdgeCheckableLcl& p, const std::vector<char>& keep_out,
    const std::vector<char>& keep_in, std::ptrdiff_t skip_node_config,
    std::ptrdiff_t skip_edge_config, std::vector<Label>* in_map_out) {
  const std::size_t out_size = p.output_alphabet().size();
  const std::size_t in_size = p.input_alphabet().size();

  std::vector<Label> out_map(out_size, kNone);
  Alphabet output;
  for (std::size_t l = 0; l < out_size; ++l) {
    if (keep_out[l]) {
      out_map[l] = output.add(p.output_alphabet().name(static_cast<Label>(l)));
    }
  }
  std::vector<Label> in_map(in_size, kNone);
  Alphabet input;
  for (std::size_t l = 0; l < in_size; ++l) {
    if (keep_in[l]) {
      in_map[l] = input.add(p.input_alphabet().name(static_cast<Label>(l)));
    }
  }
  if (output.empty() || input.empty()) return std::nullopt;

  NodeEdgeCheckableLcl::Builder builder(p.name(), std::move(input),
                                        std::move(output), p.max_degree());
  builder.allow_unsatisfiable_inputs();

  std::size_t node_total = 0;
  std::ptrdiff_t index = 0;
  for (int d = 1; d <= p.max_degree(); ++d) {
    for (const auto& config : p.node_configs(d)) {
      const bool skipped = index++ == skip_node_config;
      if (skipped) continue;
      std::vector<Label> mapped;
      mapped.reserve(config.size());
      bool ok = true;
      for (const auto l : config.labels()) {
        if (out_map[l] == kNone) {
          ok = false;
          break;
        }
        mapped.push_back(out_map[l]);
      }
      if (!ok) continue;
      builder.allow_node(mapped);
      ++node_total;
    }
  }
  if (node_total == 0) return std::nullopt;

  std::size_t edge_total = 0;
  index = 0;
  for (const auto& config : p.edge_configs()) {
    const bool skipped = index++ == skip_edge_config;
    if (skipped) continue;
    if (out_map[config[0]] == kNone || out_map[config[1]] == kNone) continue;
    builder.allow_edge(out_map[config[0]], out_map[config[1]]);
    ++edge_total;
  }
  if (edge_total == 0) return std::nullopt;

  for (std::size_t in_label = 0; in_label < in_size; ++in_label) {
    if (!keep_in[in_label]) continue;
    for (const auto out :
         p.allowed_outputs(static_cast<Label>(in_label)).to_vector()) {
      if (out_map[out] != kNone) {
        builder.allow_output_for_input(in_map[in_label], out_map[out]);
      }
    }
  }
  if (in_map_out != nullptr) *in_map_out = std::move(in_map);
  return builder.build();
}

std::optional<FuzzCase> without_node(const FuzzCase& c, NodeId victim) {
  if (c.graph.node_count() <= 1) return std::nullopt;
  FuzzCase out = c;
  Graph::Builder builder(c.graph.node_count() - 1);
  HalfEdgeLabeling input;
  const auto remap = [victim](NodeId v) {
    return v > victim ? v - 1 : v;
  };
  for (EdgeId e = 0; e < c.graph.edge_count(); ++e) {
    const auto [u, v] = c.graph.endpoints(e);
    if (u == victim || v == victim) continue;
    builder.add_edge(remap(u), remap(v));
    input.push_back(c.input[2 * e]);
    input.push_back(c.input[2 * e + 1]);
  }
  out.graph = builder.build();
  out.input = std::move(input);
  return out;
}

std::optional<FuzzCase> without_output_label(const FuzzCase& c,
                                             Label victim) {
  std::vector<char> keep_out(c.problem.output_alphabet().size(), 1);
  keep_out[victim] = 0;
  std::vector<char> keep_in(c.problem.input_alphabet().size(), 1);
  auto problem = rebuild_problem(c.problem, keep_out, keep_in, -1, -1,
                                 nullptr);
  if (!problem) return std::nullopt;
  FuzzCase out = c;
  out.problem = std::move(*problem);
  return out;
}

std::optional<FuzzCase> without_config(const FuzzCase& c,
                                       std::ptrdiff_t node_index,
                                       std::ptrdiff_t edge_index) {
  const std::vector<char> keep_out(c.problem.output_alphabet().size(), 1);
  const std::vector<char> keep_in(c.problem.input_alphabet().size(), 1);
  auto problem = rebuild_problem(c.problem, keep_out, keep_in, node_index,
                                 edge_index, nullptr);
  if (!problem) return std::nullopt;
  FuzzCase out = c;
  out.problem = std::move(*problem);
  return out;
}

std::optional<FuzzCase> without_input_label(const FuzzCase& c, Label victim) {
  if (c.problem.input_alphabet().size() <= 1) return std::nullopt;
  for (const auto l : c.input) {
    if (l == victim) return std::nullopt;  // in use by the instance
  }
  const std::vector<char> keep_out(c.problem.output_alphabet().size(), 1);
  std::vector<char> keep_in(c.problem.input_alphabet().size(), 1);
  keep_in[victim] = 0;
  std::vector<Label> in_map;
  auto problem =
      rebuild_problem(c.problem, keep_out, keep_in, -1, -1, &in_map);
  if (!problem) return std::nullopt;
  FuzzCase out = c;
  out.problem = std::move(*problem);
  for (auto& l : out.input) l = in_map[l];
  return out;
}

}  // namespace

FuzzCase shrink_case(const FuzzCase& failing, const OracleOptions& options,
                     ShrinkStats* stats, std::size_t max_attempts) {
  ShrinkStats local;
  ShrinkStats& s = stats != nullptr ? *stats : local;

  const auto still_fails = [&options](const FuzzCase& candidate) {
    try {
      const auto result =
          run_oracle(candidate.oracle, candidate, options);
      return result.applicable && result.failed;
    } catch (...) {
      // A shrunk candidate that crashes the oracle is not a valid smaller
      // counterexample for the *original* disagreement - discard it.
      return false;
    }
  };

  FuzzCase best = failing;
  bool changed = true;
  while (changed && s.attempts < max_attempts) {
    changed = false;
    ++s.rounds;

    const auto try_candidate = [&](std::optional<FuzzCase> candidate) {
      if (!candidate || s.attempts >= max_attempts) return;
      ++s.attempts;
      if (still_fails(*candidate)) {
        best = std::move(*candidate);
        ++s.accepted;
        changed = true;
      }
    };

    for (std::size_t v = best.graph.node_count(); v-- > 0;) {
      try_candidate(without_node(best, static_cast<NodeId>(v)));
    }
    for (std::size_t l = best.problem.output_alphabet().size(); l-- > 0;) {
      try_candidate(without_output_label(best, static_cast<Label>(l)));
    }
    for (std::size_t i = best.problem.total_node_configs(); i-- > 0;) {
      try_candidate(
          without_config(best, static_cast<std::ptrdiff_t>(i), -1));
    }
    for (std::size_t i = best.problem.edge_configs().size(); i-- > 0;) {
      try_candidate(
          without_config(best, -1, static_cast<std::ptrdiff_t>(i)));
    }
    for (std::size_t l = best.problem.input_alphabet().size(); l-- > 0;) {
      try_candidate(without_input_label(best, static_cast<Label>(l)));
    }
  }
  return best;
}

}  // namespace lcl::fuzz
