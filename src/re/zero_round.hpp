#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/lcl.hpp"

namespace lcl {

/// A deterministic 0-round algorithm in the sense of Theorem 3.10's
/// `A_det`: a function from a node's input tuple to an output tuple, valid
/// on every forest regardless of size. Keyed by the *sorted* input multiset;
/// a node applies it by sorting its inputs, reading off the output tuple,
/// and undoing the sort (stably), so all nodes with the same inputs behave
/// identically.
struct ZeroRoundAlgorithm {
  /// outputs.at(sorted inputs)[j] = output for the j-th smallest input.
  std::map<std::vector<Label>, std::vector<Label>> outputs;

  /// Output labels (per port) for a node whose port p carries input
  /// `inputs[p]`. Throws `std::out_of_range` for an unknown input tuple.
  std::vector<Label> apply(const std::vector<Label>& inputs) const;
};

/// Decides whether `problem` admits a deterministic 0-round algorithm on
/// forests (all degrees 1..max_degree, all input labelings), and returns a
/// witness if so.
///
/// Characterization (extracted from the proof of Theorem 3.10): such an
/// algorithm is a map I -> O(I) from input tuples to output tuples with
///  1. multiset(O(I)) an allowed node configuration,
///  2. O(I)_j in g(I_j) for every position j, and
///  3. every pair of *used* output labels - across all tuples and
///     positions, including a label with itself - an allowed edge
///     configuration, because any two half-edges produced by the map can
///     end up facing each other across an edge of some forest.
///
/// The search backtracks over input multisets, maintaining the growing
/// "used label" clique of condition 3.
///
/// `degrees` restricts which node degrees must be answered (default: all of
/// 1..max_degree, the forest setting). Pass `{2}` for cycles, where every
/// node has degree exactly 2.
std::optional<ZeroRoundAlgorithm> find_zero_round_algorithm(
    const NodeEdgeCheckableLcl& problem, const std::vector<int>& degrees = {});

/// Convenience: true iff a witness exists.
bool zero_round_solvable(const NodeEdgeCheckableLcl& problem,
                         const std::vector<int>& degrees = {});

}  // namespace lcl
