#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/lcl.hpp"
#include "local/view.hpp"
#include "re/lift.hpp"
#include "re/step.hpp"
#include "re/zero_round.hpp"

namespace lcl {

/// Drives the problem sequence `pi, f(pi), f^2(pi), ...` with
/// `f = Rbar o R` (Section 3.1) and tests each member for 0-round
/// solvability. This is the computational core of Theorem 3.10: if
/// `f^k(pi)` is 0-round solvable, then `pi` is solvable in `k` rounds on
/// forests of *any* size - and `synthesize()` returns that k-round
/// algorithm, built from the `A_det` witness by applying Lemma 3.9 `k`
/// times.
class SpeedupEngine {
 public:
  struct Options {
    int max_steps = 6;
    ReLimits limits;
    /// Apply the sound label reduction after each operator (recommended;
    /// without it the faithful sequence blows up after 1-2 steps). The
    /// ablation bench compares both settings.
    bool reduce = true;
    /// Node degrees the 0-round test must answer (empty = 1..max_degree,
    /// the forest setting; use {2} when classifying problems on cycles).
    std::vector<int> degrees;
    /// Run the `lclscape::lint` pre-flight before the first step: an L020
    /// verdict (trivially unsolvable) short-circuits the whole run, and
    /// dead-label pruning shrinks the base alphabet - cutting the
    /// `2^k - 1` power-set base that `R` pays - without changing any
    /// verdict. Each produced iterate is linted too (`StepStats::
    /// lint_dead_labels`; always 0 while `reduce` is on, since reduction's
    /// trim performs the same fixpoint).
    bool preflight_lint = true;
    /// Relabel each produced iterate to its label-permutation canonical
    /// form (`lint::canonical_form`) before it enters the sequence. Off by
    /// default - it pays one orbit search per step. Pure renaming: the
    /// iterate's meaning table is permuted alongside, so the lift chain
    /// (and every verdict) is unchanged; what it buys is iterate specs
    /// that are independent of operator enumeration order, so cross-run
    /// comparisons and shared step caches key on the same bytes.
    bool canonicalize_iterates = false;
  };

  /// Statistics for one applied step `pi_i -> pi_{i+1}`.
  struct StepStats {
    int index = 0;                 // i of the step pi_i -> pi_{i+1}
    std::size_t labels_psi = 0;    // |Sigma_out(R(pi_i))| after reduction
    std::size_t labels_next = 0;   // |Sigma_out(pi_{i+1})| after reduction
    std::size_t node_configs = 0;  // of pi_{i+1}
    std::size_t edge_configs = 0;  // of pi_{i+1}
    bool zero_round_solvable = false;  // of pi_{i+1}
    /// Dead labels the lint pass found on pi_{i+1} (pre-flight builds only;
    /// 0 whenever `reduce` already trimmed the iterate).
    std::size_t lint_dead_labels = 0;
    double seconds = 0.0;
  };

  struct Outcome {
    /// Step index k at which f^k(pi) became 0-round solvable (0 = the base
    /// problem already was); -1 if not found within the budget.
    int zero_round_step = -1;
    /// True if a step aborted due to enumeration limits.
    bool budget_exhausted = false;
    std::string blowup_message;
    /// True if the reduction proved the problem unsolvable on every graph
    /// with at least one edge (no output label survives trimming).
    bool detected_unsolvable = false;
    /// True if the (reduced) problem stopped changing between steps - a
    /// round-elimination fixed point, the classic hardness certificate
    /// (e.g. sinkless orientation).
    bool fixed_point = false;
    /// Pre-flight lint results (Options::preflight_lint): number of dead
    /// output labels pruned from the base problem, and whether the sequence
    /// was actually built from the pruned base.
    std::size_t preflight_dead_labels = 0;
    bool preflight_pruned = false;
    std::vector<StepStats> steps;
  };

  explicit SpeedupEngine(NodeEdgeCheckableLcl base);

  /// Runs the sequence until 0-round solvability, a fixed point, the step
  /// budget, or an enumeration blow-up.
  Outcome run(const Options& options);

  /// Problem `f^i(pi)`; valid for `0 <= i <= steps applied`. Index 0 is the
  /// problem as given; when the pre-flight pruned it, the sequence for
  /// `i >= 1` is derived from `effective_base()` instead.
  const NodeEdgeCheckableLcl& problem_at(std::size_t i) const;
  /// The problem the sequence actually starts from: the lint-pruned base
  /// when the pre-flight removed dead labels, the base problem otherwise.
  const NodeEdgeCheckableLcl& effective_base() const noexcept {
    return effective_base_;
  }
  std::size_t steps_applied() const noexcept { return levels_.size(); }

  /// After `run` found `zero_round_step == k`: the synthesized k-round
  /// LOCAL algorithm for the base problem (Theorem 3.10's conclusion). Its
  /// radius is the constant k, independent of n. Throws `std::logic_error`
  /// if no 0-round witness was found. The returned algorithm references
  /// this engine's state; the engine must outlive it.
  std::unique_ptr<BallAlgorithm> synthesize() const;

 private:
  NodeEdgeCheckableLcl base_;
  /// The lint-pruned base (== `base_` until a pre-flight prunes it). The
  /// levels always map effective_base_ -> pi_1 -> ...; synthesized outputs
  /// are translated back to `base_` labels via `prune_new_to_old_`.
  NodeEdgeCheckableLcl effective_base_;
  std::vector<Label> prune_new_to_old_;  // empty = identity
  std::vector<SequenceLevel> levels_;  // level i maps pi_i -> pi_{i+1}
  std::optional<ZeroRoundAlgorithm> witness_;
  int witness_step_ = -1;
};

}  // namespace lcl
