#include "re/lift.hpp"

#include <stdexcept>
#include <string>

namespace lcl {

namespace {

/// Step 1 of Lemma 3.9 for a single edge: the lexicographically smallest
/// pair (La, Lb) with La in meaning(xa), Lb in meaning(xb) and {La, Lb} an
/// allowed edge of psi. Deterministic in (xa, xb).
std::pair<Label, Label> choose_edge_pair(const NodeEdgeCheckableLcl& psi,
                                         const std::vector<LabelSet>& meaning,
                                         Label xa, Label xb) {
  for (const auto la : meaning[xa].to_vector()) {
    for (const auto lb : meaning[xb].to_vector()) {
      if (psi.edge_allows(la, lb)) return {la, lb};
    }
  }
  throw std::logic_error(
      "lift_solution: no compatible pair in the Rbar edge constraint "
      "(solution not correct for Rbar(R(pi)))");
}

/// Step 2 of Lemma 3.9 for a single node: from the per-port psi-labels
/// (already fixed in step 1), pick pi-labels l_p in meaning_psi(L_p) whose
/// multiset is an allowed node configuration of pi. Deterministic
/// backtracking, smallest labels first.
std::vector<Label> choose_node_labels(const NodeEdgeCheckableLcl& pi,
                                      const std::vector<LabelSet>& meaning,
                                      const std::vector<Label>& psi_labels) {
  std::vector<std::vector<Label>> options;
  options.reserve(psi_labels.size());
  for (const auto L : psi_labels) {
    options.push_back(meaning[L].to_vector());  // ascending
  }
  std::vector<Label> current(psi_labels.size());
  const auto search = [&](auto&& self, std::size_t pos) -> bool {
    if (pos == current.size()) {
      return pi.node_allows(Configuration(current));
    }
    for (const auto l : options[pos]) {
      current[pos] = l;
      if (self(self, pos + 1)) return true;
    }
    return false;
  };
  if (!search(search, 0)) {
    throw std::logic_error(
        "lift_solution: no selection satisfies the pi node constraint "
        "(solution not correct for Rbar(R(pi)))");
  }
  return current;
}

}  // namespace

HalfEdgeLabeling lift_solution(const NodeEdgeCheckableLcl& pi,
                               const SequenceLevel& level, const Graph& graph,
                               const HalfEdgeLabeling& input,
                               const HalfEdgeLabeling& solution) {
  if (solution.size() != graph.half_edge_count() ||
      input.size() != graph.half_edge_count()) {
    throw std::invalid_argument("lift_solution: labeling size mismatch");
  }
  const auto& psi = level.psi.problem;

  // Step 1: per edge, fix psi-labels on both half-edges.
  HalfEdgeLabeling psi_labels(graph.half_edge_count(), 0);
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const HalfEdgeId h0 = 2 * e;
    const HalfEdgeId h1 = 2 * e + 1;
    const auto [l0, l1] = choose_edge_pair(psi, level.next.meaning,
                                           solution[h0], solution[h1]);
    psi_labels[h0] = l0;
    psi_labels[h1] = l1;
  }

  // Step 2: per node, fix pi-labels.
  HalfEdgeLabeling out(graph.half_edge_count(), 0);
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    const int degree = graph.degree(v);
    if (degree == 0) continue;
    std::vector<Label> around(static_cast<std::size_t>(degree));
    for (int p = 0; p < degree; ++p) {
      around[static_cast<std::size_t>(p)] = psi_labels[graph.half_edge(v, p)];
    }
    const auto chosen = choose_node_labels(pi, level.psi.meaning, around);
    for (int p = 0; p < degree; ++p) {
      out[graph.half_edge(v, p)] = chosen[static_cast<std::size_t>(p)];
    }
  }
  (void)input;
  return out;
}

}  // namespace lcl
