#pragma once

#include <stdexcept>
#include <vector>

#include "core/lcl.hpp"
#include "util/label_set.hpp"

namespace lcl {

/// The result of applying a round-elimination operator (`R` or `Rbar`,
/// Definitions 3.1/3.2) to a problem `Pi`: the derived node-edge-checkable
/// problem, together with the *meaning* of each of its output labels as a
/// set of `Pi`-output labels (the derived alphabets are subsets of the
/// predecessor's output alphabet; after label reduction, `meaning[l]` is the
/// set the representative label denotes).
///
/// The meanings are what make the derived problems executable: the Lemma
/// 3.9 lifting picks concrete predecessor labels out of these sets.
struct ReStep {
  NodeEdgeCheckableLcl problem;
  std::vector<LabelSet> meaning;  // indexed by output label of `problem`
};

/// Thrown when the faithful enumeration of a derived problem would exceed
/// the configured safety limits (the label/configuration counts grow doubly
/// exponentially along the sequence - the paper's parameter `S` in Theorem
/// 3.4 quantifies the same blow-up).
class ReBlowupError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Enumeration budgets for the operators.
struct ReLimits {
  /// Maximum size of the derived output alphabet (before reduction).
  std::size_t max_labels = 4096;
  /// Maximum number of candidate configurations examined per constraint.
  std::uint64_t max_configs = 4'000'000;
};

}  // namespace lcl
