#pragma once

#include <stdexcept>
#include <vector>

#include "core/lcl.hpp"
#include "util/label_set.hpp"

namespace lcl {

/// The result of applying a round-elimination operator (`R` or `Rbar`,
/// Definitions 3.1/3.2) to a problem `Pi`: the derived node-edge-checkable
/// problem, together with the *meaning* of each of its output labels as a
/// set of `Pi`-output labels (the derived alphabets are subsets of the
/// predecessor's output alphabet; after label reduction, `meaning[l]` is the
/// set the representative label denotes).
///
/// The meanings are what make the derived problems executable: the Lemma
/// 3.9 lifting picks concrete predecessor labels out of these sets.
struct ReStep {
  NodeEdgeCheckableLcl problem;
  std::vector<LabelSet> meaning;  // indexed by output label of `problem`
};

/// Thrown when the faithful enumeration of a derived problem would exceed
/// the configured safety limits (the label/configuration counts grow doubly
/// exponentially along the sequence - the paper's parameter `S` in Theorem
/// 3.4 quantifies the same blow-up).
class ReBlowupError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which enumeration implementation the operators run on. Both produce
/// constraint-identical problems (fenced by `test_re_kernel_parity`); they
/// differ only in speed.
enum class ReKernel {
  /// Dense bitmask kernels when the base output alphabet fits one 64-bit
  /// word (always the case today: the alphabet guard rejects bases >= 63
  /// before enumeration), the generic path otherwise.
  kAuto,
  /// The original ordered-container enumeration over `LabelSet`s - kept as
  /// the ablation baseline (`bench_re_ablation`'s old-kernel columns) and
  /// as the fallback for hypothetical > 64-label bases.
  kGeneric,
  /// Dense single-word `LabelMask` kernels: derived label `i` *is* the mask
  /// `i + 1`, support tests are popcounts/ANDs, power sets are subset
  /// walks, and node-configuration membership goes through a packed
  /// canonical-form memo. Throws `std::invalid_argument` if the base
  /// alphabet exceeds 64 labels (unreachable through the public operators).
  kMask,
};

/// Enumeration budgets (and kernel choice) for the operators.
struct ReLimits {
  /// Maximum size of the derived output alphabet (before reduction).
  std::size_t max_labels = 4096;
  /// Maximum number of candidate configurations examined per constraint.
  std::uint64_t max_configs = 4'000'000;
  /// Implementation selector; rides along with the budgets so that every
  /// caller threading `ReLimits` (engine, batch surveys, fuzz oracles)
  /// picks the kernel up transparently.
  ReKernel kernel = ReKernel::kAuto;
};

}  // namespace lcl
