#pragma once

#include <stdexcept>
#include <vector>

#include "core/lcl.hpp"
#include "util/label_set.hpp"

namespace lcl {

/// The result of applying a round-elimination operator (`R` or `Rbar`,
/// Definitions 3.1/3.2) to a problem `Pi`: the derived node-edge-checkable
/// problem, together with the *meaning* of each of its output labels as a
/// set of `Pi`-output labels (the derived alphabets are subsets of the
/// predecessor's output alphabet; after label reduction, `meaning[l]` is the
/// set the representative label denotes).
///
/// The meanings are what make the derived problems executable: the Lemma
/// 3.9 lifting picks concrete predecessor labels out of these sets.
struct ReStep {
  NodeEdgeCheckableLcl problem;
  std::vector<LabelSet> meaning;  // indexed by output label of `problem`
};

/// Thrown when the faithful enumeration of a derived problem would exceed
/// the configured safety limits (the label/configuration counts grow doubly
/// exponentially along the sequence - the paper's parameter `S` in Theorem
/// 3.4 quantifies the same blow-up).
class ReBlowupError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which enumeration implementation the operators run on. Both produce
/// constraint-identical problems (fenced by `test_re_kernel_parity`); they
/// differ only in speed.
enum class ReKernel {
  /// Narrowest mask tier that fits the alphabet at hand: one word for the
  /// operators' base alphabets (the alphabet guard rejects bases >= 63
  /// before enumeration), and for the per-iterate passes (`reduce`'s
  /// dominated-label elimination, whose alphabets are the operators'
  /// 2^base - 1 sized outputs) the `LabelMaskW<W>` tier with
  /// 64 * W >= labels - W in {1, 2, 4, 8}, so alphabets up to 512 labels
  /// stay on mask kernels. Beyond 512 labels the pass falls back to the
  /// generic path and says so: the `re.kernel_fallback` counter and a
  /// `re/kernel_fallback` event record the (previously silent) slowdown.
  kAuto,
  /// The original ordered-container enumeration over `LabelSet`s - kept as
  /// the ablation baseline (`bench_re_ablation`'s old-kernel columns) and
  /// as the fallback for alphabets beyond the widest mask tier.
  kGeneric,
  /// Dense single-word `LabelMask` kernels: derived label `i` *is* the mask
  /// `i + 1`, support tests are popcounts/ANDs, power sets are subset
  /// walks, and node-configuration membership goes through a packed
  /// canonical-form memo. Throws `std::invalid_argument` if the base
  /// alphabet exceeds 64 labels (unreachable through the public operators).
  kMask,
  /// Forced multi-word tiers: the same kernels instantiated over
  /// `LabelMaskW<2>`/`<4>`/`<8>` words. Functionally identical to `kMask`
  /// on alphabets that fit fewer words (the upper words are zero) - that
  /// redundancy is exactly what the parity battery exploits to fence the
  /// word-seam arithmetic. `kAuto` picks these tiers on its own when an
  /// iterate's alphabet genuinely needs them.
  kMask2,
  kMask4,
  kMask8,
};

/// Enumeration budgets (and kernel choice) for the operators.
struct ReLimits {
  /// Maximum size of the derived output alphabet (before reduction).
  std::size_t max_labels = 4096;
  /// Maximum number of candidate configurations examined per constraint.
  std::uint64_t max_configs = 4'000'000;
  /// Implementation selector; rides along with the budgets so that every
  /// caller threading `ReLimits` (engine, batch surveys, fuzz oracles)
  /// picks the kernel up transparently.
  ReKernel kernel = ReKernel::kAuto;
  /// Worker threads for the operators' outer configuration enumeration
  /// (node-constraint multiset walk and edge-constraint rows). 1 = run
  /// inline on the calling thread; N > 1 partitions the enumeration across
  /// a `batch::Pool` and merges the per-worker results in deterministic
  /// order, so the built problem is byte-identical for every jobs value
  /// (fenced by the `--jobs=1` vs `--jobs=4` determinism test).
  std::size_t jobs = 1;
};

}  // namespace lcl
