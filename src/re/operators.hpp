#pragma once

#include "re/step.hpp"

namespace lcl {

/// Definition 3.1: the problem `R(Pi)`.
///
///  - output labels: non-empty subsets of `Sigma_out(Pi)` (the empty set is
///    excluded: it can never occur in a valid node configuration, since the
///    node constraint requires an existing selection);
///  - edge constraint: `{B1, B2}` allowed iff ALL pairs `(b1, b2)` in
///    `B1 x B2` are allowed edges of `Pi`;
///  - node constraint: `{A1, .., Ai}` allowed iff SOME selection
///    `(a1, .., ai)` in `A1 x .. x Ai` is an allowed node configuration of
///    `Pi`;
///  - `g(l)`: subsets of `g_Pi(l)`.
///
/// As in the paper (note after Definition 3.1), non-maximal configurations
/// are NOT removed here; use `reduce()` for the sound label-level
/// simplifications. Throws `ReBlowupError` when the enumeration would
/// exceed `limits`. `limits.kernel` selects the enumeration implementation
/// (dense bitmask kernels by default - see `re/kernel.hpp`); all kernels
/// build constraint-identical problems.
ReStep apply_r(const NodeEdgeCheckableLcl& pi, const ReLimits& limits = {});

/// Definition 3.2: the problem `Rbar(Pi)` - same alphabets and `g` as
/// `R(Pi)`, with the quantifiers swapped: node constraint requires ALL
/// selections to be allowed node configurations of `Pi`, edge constraint
/// requires SOME selection to be an allowed edge of `Pi`.
///
/// The paper applies `Rbar` only to problems of the form `R(Pi)`; the
/// operator itself accepts any node-edge-checkable problem.
ReStep apply_rbar(const NodeEdgeCheckableLcl& pi, const ReLimits& limits = {});

}  // namespace lcl
