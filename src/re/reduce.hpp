#pragma once

#include <vector>

#include "core/lcl.hpp"
#include "re/step.hpp"

namespace lcl {

/// Result of the sound label-level simplification of a problem.
struct Reduction {
  NodeEdgeCheckableLcl problem;
  /// For each old output label, its new label, or `kDropped`.
  std::vector<Label> old_to_new;
  /// For each new label, a representative old label.
  std::vector<Label> new_to_old;

  static constexpr Label kDropped = static_cast<Label>(-1);
};

/// Simplifies a node-edge-checkable problem without changing its set of
/// correct solutions up to relabeling - in particular, preserving
/// solvability on every instance, round complexity, and 0-round
/// solvability. Two passes, iterated to a fixed point:
///
///  1. *Trim*: drop output labels that appear in no node configuration, or
///     have no edge partner, or are permitted by no input label. Such
///     labels cannot occur in any correct solution, so removing them (and
///     every configuration mentioning them) is lossless.
///  2. *Merge*: identify output labels with identical behaviour - equal
///     edge partner sets, equal `g`-preimages, and equal node-configuration
///     signatures (the multisets obtained by deleting one occurrence of the
///     label from each configuration containing it). Replacing one such
///     label by the other maps correct solutions to correct solutions in
///     both directions, so the quotient problem is equivalent.
///
/// The paper's operators deliberately skip such simplifications (note after
/// Definition 3.1); `reduce` is the practical counterpart that keeps the
/// faithful sequence computable for a few extra steps. The ablation bench
/// `bench_re_ablation` quantifies the difference.
///
/// `kernel` selects the implementation of the quadratic dominated-label
/// pass (the reduction's hot spot on post-operator iterates, whose
/// alphabets routinely exceed 64 labels): any mask kernel resolves to the
/// narrowest `LabelMaskW` tier covering the alphabet, `kGeneric` keeps the
/// original ordered-set scan. Every choice drops the same labels in the
/// same order - `test_re_kernel_parity`'s boundary battery fences that.
Reduction reduce(const NodeEdgeCheckableLcl& problem,
                 ReKernel kernel = ReKernel::kAuto);

/// Composes an operator step with a label reduction: the reduced problem's
/// label `l` means whatever the representative pre-reduction label meant.
/// This is how the engine (and the fuzzer's differential oracles) keep the
/// sequence computable while preserving the Lemma 3.9 lifting data.
ReStep reduce_step(ReStep step, ReKernel kernel = ReKernel::kAuto);

}  // namespace lcl
