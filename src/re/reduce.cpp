#include "re/reduce.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "re/kernel.hpp"
#include "util/label_mask.hpp"
#include "util/label_set.hpp"

namespace lcl {

namespace {

/// Labels that can occur in a correct solution: member of some node config,
/// some edge config, and of g(l) for some input l.
std::vector<char> usable_labels(const NodeEdgeCheckableLcl& p) {
  const std::size_t n = p.output_alphabet().size();
  std::vector<char> in_node(n, 0), in_edge(n, 0), in_g(n, 0);
  for (int d = 1; d <= p.max_degree(); ++d) {
    for (const auto& c : p.node_configs(d)) {
      for (const auto l : c.labels()) in_node[l] = 1;
    }
  }
  for (const auto& c : p.edge_configs()) {
    for (const auto l : c.labels()) in_edge[l] = 1;
  }
  for (Label in = 0; in < p.input_alphabet().size(); ++in) {
    for (const auto l : p.allowed_outputs(in).to_vector()) in_g[l] = 1;
  }
  std::vector<char> usable(n, 0);
  for (std::size_t l = 0; l < n; ++l) {
    usable[l] = in_node[l] && in_edge[l] && in_g[l];
  }
  return usable;
}

/// Rebuilds the problem keeping only labels in `keep` (classes mapped by
/// old_to_new). Configurations containing dropped labels are discarded;
/// duplicated configurations merge.
NodeEdgeCheckableLcl rebuild(const NodeEdgeCheckableLcl& p,
                             const std::vector<Label>& old_to_new,
                             const std::vector<Label>& new_to_old) {
  Alphabet out;
  for (const auto rep : new_to_old) {
    out.add(p.output_alphabet().name(rep));
  }
  NodeEdgeCheckableLcl::Builder builder(p.name(), p.input_alphabet(),
                                        std::move(out), p.max_degree());
  builder.allow_unsatisfiable_inputs();
  for (int d = 1; d <= p.max_degree(); ++d) {
    for (const auto& c : p.node_configs(d)) {
      std::vector<Label> mapped;
      mapped.reserve(c.size());
      bool ok = true;
      for (const auto l : c.labels()) {
        if (old_to_new[l] == Reduction::kDropped) {
          ok = false;
          break;
        }
        mapped.push_back(old_to_new[l]);
      }
      if (ok) builder.allow_node(mapped);
    }
  }
  for (const auto& c : p.edge_configs()) {
    const Label a = old_to_new[c[0]];
    const Label b = old_to_new[c[1]];
    if (a != Reduction::kDropped && b != Reduction::kDropped) {
      builder.allow_edge(a, b);
    }
  }
  for (Label in = 0; in < p.input_alphabet().size(); ++in) {
    for (const auto l : p.allowed_outputs(in).to_vector()) {
      if (old_to_new[l] != Reduction::kDropped) {
        builder.allow_output_for_input(in, old_to_new[l]);
      }
    }
  }
  return builder.build();
}

/// One trim pass; returns false if nothing was dropped.
bool trim_once(NodeEdgeCheckableLcl& p, std::vector<Label>& global_map,
               std::vector<Label>& reps) {
  const auto usable = usable_labels(p);
  const std::size_t n = p.output_alphabet().size();
  if (std::all_of(usable.begin(), usable.end(),
                  [](char u) { return u != 0; })) {
    return false;
  }
  std::vector<Label> old_to_new(n, Reduction::kDropped);
  std::vector<Label> new_to_old;
  for (std::size_t l = 0; l < n; ++l) {
    if (usable[l]) {
      old_to_new[l] = static_cast<Label>(new_to_old.size());
      new_to_old.push_back(static_cast<Label>(l));
    }
  }
  if (new_to_old.empty()) {
    throw std::runtime_error("reduce: no usable labels at all - the problem '" +
                             p.name() + "' is unsolvable on any graph");
  }
  try {
    p = rebuild(p, old_to_new, new_to_old);
  } catch (const std::logic_error& e) {
    // Dropping unusable labels emptied the node or edge constraint: no
    // correct solution exists on any graph with an edge.
    throw std::runtime_error(
        "reduce: trimming emptied the constraints of '" + p.name() +
        "' - the problem is unsolvable on any graph with an edge (" +
        e.what() + ")");
  }
  // Compose into the global old->new map and the representative list.
  for (auto& m : global_map) {
    if (m != Reduction::kDropped) m = old_to_new[m];
  }
  std::vector<Label> new_reps(new_to_old.size());
  for (std::size_t m = 0; m < new_to_old.size(); ++m) {
    new_reps[m] = reps[new_to_old[m]];
  }
  reps = std::move(new_reps);
  return true;
}

/// One merge pass; returns false if no labels were merged.
bool merge_once(NodeEdgeCheckableLcl& p, std::vector<Label>& global_map,
                std::vector<Label>& reps) {
  const std::size_t n = p.output_alphabet().size();
  // Signature: (edge partners, g-preimage, node signature).
  struct Signature {
    std::vector<std::uint32_t> partners;
    std::vector<char> g_preimage;
    std::set<std::vector<Label>> node_contexts;  // degree implicit in size
    bool operator<(const Signature& o) const {
      if (partners != o.partners) return partners < o.partners;
      if (g_preimage != o.g_preimage) return g_preimage < o.g_preimage;
      return node_contexts < o.node_contexts;
    }
  };
  std::map<Signature, std::vector<Label>> classes;
  for (Label l = 0; l < n; ++l) {
    Signature sig;
    sig.partners = p.edge_partners(l).to_vector();
    // Raw partner-set equality is sound even across class members: if
    // partners(o1) == partners(o2), then {o2,o2} in E implies {o1,o1} in E
    // (o2 in partners(o1) gives {o1,o2} in E, so o1 in partners(o2) =
    // partners(o1)), so simultaneous replacement preserves edges.
    sig.g_preimage.resize(p.input_alphabet().size());
    for (Label in = 0; in < p.input_alphabet().size(); ++in) {
      sig.g_preimage[in] = p.allowed_outputs(in).contains(l) ? 1 : 0;
    }
    for (int d = 1; d <= p.max_degree(); ++d) {
      for (const auto& c : p.node_configs(d)) {
        const auto& labels = c.labels();
        if (std::find(labels.begin(), labels.end(), l) == labels.end()) {
          continue;
        }
        // Delete one occurrence of l.
        std::vector<Label> context = labels;
        context.erase(std::find(context.begin(), context.end(), l));
        context.push_back(static_cast<Label>(d));  // tag with the degree
        sig.node_contexts.insert(std::move(context));
      }
    }
    classes[std::move(sig)].push_back(l);
  }
  if (classes.size() == n) return false;

  std::vector<Label> old_to_new(n, Reduction::kDropped);
  std::vector<Label> new_to_old;
  // Deterministic order: representative = smallest member; classes ordered
  // by representative.
  std::vector<std::vector<Label>> ordered;
  for (const auto& [sig, members] : classes) {
    (void)sig;
    ordered.push_back(members);
  }
  std::sort(ordered.begin(), ordered.end());
  for (const auto& members : ordered) {
    const Label fresh = static_cast<Label>(new_to_old.size());
    new_to_old.push_back(members.front());
    for (const auto m : members) old_to_new[m] = fresh;
  }
  p = rebuild(p, old_to_new, new_to_old);
  for (auto& m : global_map) {
    if (m != Reduction::kDropped) m = old_to_new[m];
  }
  std::vector<Label> new_reps(new_to_old.size());
  for (std::size_t m = 0; m < new_to_old.size(); ++m) {
    new_reps[m] = reps[new_to_old[m]];
  }
  reps = std::move(new_reps);
  return true;
}

/// One dominated-label elimination pass; returns false if nothing dropped.
///
/// Label `a` is dominated by `b != a` when
///   - partners(a) subseteq partners(b),
///   - g-preimage(a) subseteq g-preimage(b), and
///   - every node configuration containing `a` stays allowed when one
///     occurrence of `a` is replaced by `b`.
/// Replacing every occurrence of `a` by `b` then maps correct solutions to
/// correct solutions (nodes by induction over occurrences, edges by the
/// partner inclusion - including {b,b}: a in partners(a) subseteq
/// partners(b) gives {a,b} in E, so b in partners(a) subseteq partners(b)),
/// so dropping `a` preserves solvability and 0-round solvability. This is
/// the classic "non-maximal label" simplification of round-elimination
/// practice that the paper's Definition 3.1 deliberately does not apply.
/// Generic domination scan: the original `LabelSet`-based pair search.
/// Returns the first (dropped, dominator) pair in scan order, or false.
bool find_dominated_generic(const NodeEdgeCheckableLcl& p, Label& out_a,
                            Label& out_b) {
  const std::size_t n = p.output_alphabet().size();
  // The pass probes the same node configurations for every candidate pair;
  // the packed canonical-form memo answers each probe with one hash lookup.
  const NodeConfigIndex config_index(p);

  const auto dominated_by = [&](Label a, Label b) {
    if (!p.edge_partners(a).is_subset_of(p.edge_partners(b))) return false;
    for (Label in = 0; in < p.input_alphabet().size(); ++in) {
      if (p.allowed_outputs(in).contains(a) &&
          !p.allowed_outputs(in).contains(b)) {
        return false;
      }
    }
    for (int d = 1; d <= p.max_degree(); ++d) {
      for (const auto& c : p.node_configs(d)) {
        const auto& labels = c.labels();
        const auto it = std::find(labels.begin(), labels.end(), a);
        if (it == labels.end()) continue;
        std::vector<Label> replaced = labels;
        *std::find(replaced.begin(), replaced.end(), a) = b;
        std::sort(replaced.begin(), replaced.end());
        if (!config_index.allows_sorted(replaced.data(), replaced.size())) {
          return false;
        }
      }
    }
    return true;
  };

  for (Label a = 0; a < n; ++a) {
    for (Label b = 0; b < n; ++b) {
      if (a == b) continue;
      if (!dominated_by(a, b)) continue;
      if (dominated_by(b, a) && b > a) continue;  // tie: keep the smaller
      out_a = a;
      out_b = b;
      return true;
    }
  }
  return false;
}

/// Masked domination scan: identical pair order and verdicts to the generic
/// scan (the parity battery fences this), but with the per-pair work done on
/// precomputed dense structures - `LabelMaskW<W>` partner masks (the subset
/// test is W ANDNOT words instead of an ordered-set walk), `LabelSet`
/// g-preimages over the input alphabet, and per-label occurrence lists so a
/// `dominated_by(a, b)` probe touches only the configurations that actually
/// contain `a`. This is the pass where the multi-word tiers genuinely fire:
/// operator iterates carry 2^base - 1 labels, so alphabets of 65..512 labels
/// are the common case right after a step.
template <std::size_t W>
bool find_dominated_masked(const NodeEdgeCheckableLcl& p, Label& out_a,
                           Label& out_b) {
  const std::size_t n = p.output_alphabet().size();
  const NodeConfigIndex config_index(p);

  std::vector<LabelMaskW<W>> partners;
  partners.reserve(n);
  for (Label l = 0; l < n; ++l) {
    partners.push_back(LabelMaskW<W>::from_label_set(p.edge_partners(l)));
  }

  const std::size_t inputs = p.input_alphabet().size();
  std::vector<LabelSet> g_preimage(n, LabelSet(inputs));
  for (Label in = 0; in < inputs; ++in) {
    for (const auto l : p.allowed_outputs(in).to_vector()) {
      g_preimage[l].insert(in);
    }
  }

  // occurrences[l] = the node configurations containing l (each once, even
  // when l occurs multiple times - replacing any one occurrence yields the
  // same multiset after sorting).
  std::vector<std::vector<const Configuration*>> occurrences(n);
  for (int d = 1; d <= p.max_degree(); ++d) {
    for (const auto& c : p.node_configs(d)) {
      const auto& labels = c.labels();
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i > 0 && labels[i] == labels[i - 1]) continue;  // sorted: dedup
        occurrences[labels[i]].push_back(&c);
      }
    }
  }

  std::vector<Label> replaced;
  const auto dominated_by = [&](Label a, Label b) {
    if (!partners[a].is_subset_of(partners[b])) return false;
    if (!g_preimage[a].is_subset_of(g_preimage[b])) return false;
    for (const Configuration* c : occurrences[a]) {
      replaced.assign(c->labels().begin(), c->labels().end());
      *std::find(replaced.begin(), replaced.end(), a) = b;
      std::sort(replaced.begin(), replaced.end());
      if (!config_index.allows_sorted(replaced.data(), replaced.size())) {
        return false;
      }
    }
    return true;
  };

  for (Label a = 0; a < n; ++a) {
    for (Label b = 0; b < n; ++b) {
      if (a == b) continue;
      if (!dominated_by(a, b)) continue;
      if (dominated_by(b, a) && b > a) continue;  // tie: keep the smaller
      out_a = a;
      out_b = b;
      return true;
    }
  }
  return false;
}

/// One dominated-label elimination pass; returns false if nothing dropped.
///
/// Label `a` is dominated by `b != a` when
///   - partners(a) subseteq partners(b),
///   - g-preimage(a) subseteq g-preimage(b), and
///   - every node configuration containing `a` stays allowed when one
///     occurrence of `a` is replaced by `b`.
/// Replacing every occurrence of `a` by `b` then maps correct solutions to
/// correct solutions (nodes by induction over occurrences, edges by the
/// partner inclusion - including {b,b}: a in partners(a) subseteq
/// partners(b) gives {a,b} in E, so b in partners(a) subseteq partners(b)),
/// so dropping `a` preserves solvability and 0-round solvability. This is
/// the classic "non-maximal label" simplification of round-elimination
/// practice that the paper's Definition 3.1 deliberately does not apply.
///
/// `kernel` picks the scan implementation: `kGeneric` runs the original
/// `LabelSet` scan; everything else resolves to the narrowest `LabelMaskW`
/// tier covering the alphabet (a forced tier acts as a floor). When no tier
/// fits (> 512 labels) the pass falls back to the generic scan and says so
/// through the `re.kernel_fallback` counter and a `re/kernel_fallback`
/// event - previously this slowdown was silent.
bool drop_dominated_once(NodeEdgeCheckableLcl& p,
                         std::vector<Label>& global_map,
                         std::vector<Label>& reps, ReKernel kernel) {
  const std::size_t n = p.output_alphabet().size();
  if (n < 2 || n > 4096) return false;  // quadratic pass: cap the size

  Label a = 0;
  Label b = 0;
  bool found = false;
  std::size_t words = 0;
  if (kernel != ReKernel::kGeneric) {
    words = std::max(re_kernel::mask_tier_words(n),
                     re_kernel::forced_tier_words(kernel));
  }
  switch (words) {
    case 1:
      found = find_dominated_masked<1>(p, a, b);
      break;
    case 2:
      found = find_dominated_masked<2>(p, a, b);
      break;
    case 4:
      found = find_dominated_masked<4>(p, a, b);
      break;
    case 8:
      found = find_dominated_masked<8>(p, a, b);
      break;
    default:
      if (kernel != ReKernel::kGeneric) {
        // A mask kernel was requested but the iterate outgrew the widest
        // tier: record the (otherwise silent) generic fallback.
        LCL_OBS_COUNTER_ADD("re.kernel_fallback", 1);
        LCL_OBS_EVENT1("re/kernel_fallback", "re", "labels",
                       static_cast<std::int64_t>(n));
      }
      found = find_dominated_generic(p, a, b);
      break;
  }
  if (!found) return false;

  std::vector<Label> old_to_new(n, Reduction::kDropped);
  std::vector<Label> new_to_old;
  for (Label l = 0; l < n; ++l) {
    if (l == a) continue;
    old_to_new[l] = static_cast<Label>(new_to_old.size());
    new_to_old.push_back(l);
  }
  p = rebuild(p, old_to_new, new_to_old);
  for (auto& m : global_map) {
    if (m == Reduction::kDropped) continue;
    // A solution label that pointed at the dropped label follows its
    // dominator.
    m = old_to_new[m == a ? b : m];
  }
  std::vector<Label> new_reps(new_to_old.size());
  for (std::size_t m = 0; m < new_to_old.size(); ++m) {
    new_reps[m] = reps[new_to_old[m]];
  }
  reps = std::move(new_reps);
  return true;
}

}  // namespace

Reduction reduce(const NodeEdgeCheckableLcl& problem, ReKernel kernel) {
  LCL_OBS_SPAN(span, "re/reduce", "re");
  Reduction result;
  const std::size_t n = problem.output_alphabet().size();
  result.old_to_new.resize(n);
  for (std::size_t l = 0; l < n; ++l) {
    result.old_to_new[l] = static_cast<Label>(l);
  }
  result.problem = problem;

  // reps[m] = the original label the current label m corresponds to. For
  // merge classes any member is a valid representative; for dominance drops
  // it must be the *kept* label - tracking representatives through each
  // pass guarantees that.
  std::vector<Label> reps(n);
  for (std::size_t l = 0; l < n; ++l) reps[l] = static_cast<Label>(l);

  bool changed = true;
  while (changed) {
    changed = false;
    [[maybe_unused]] std::size_t before =
        result.problem.output_alphabet().size();
    if (trim_once(result.problem, result.old_to_new, reps)) {
      LCL_OBS_COUNTER_ADD("re.labels_trimmed",
                          before - result.problem.output_alphabet().size());
      changed = true;
    }
    before = result.problem.output_alphabet().size();
    if (merge_once(result.problem, result.old_to_new, reps)) {
      LCL_OBS_COUNTER_ADD("re.labels_merged",
                          before - result.problem.output_alphabet().size());
      changed = true;
    }
    if (drop_dominated_once(result.problem, result.old_to_new, reps,
                            kernel)) {
      LCL_OBS_COUNTER_ADD("re.labels_dominated", 1);
      changed = true;
    }
  }

  LCL_OBS_SPAN_ARG(span, "labels_in", n);
  LCL_OBS_SPAN_ARG(span, "labels_out", result.problem.output_alphabet().size());
  result.new_to_old = std::move(reps);
  return result;
}

ReStep reduce_step(ReStep step, ReKernel kernel) {
  Reduction red = reduce(step.problem, kernel);
  ReStep out;
  out.meaning.reserve(red.new_to_old.size());
  for (const auto rep : red.new_to_old) {
    out.meaning.push_back(step.meaning[rep]);
  }
  out.problem = std::move(red.problem);
  return out;
}

}  // namespace lcl
