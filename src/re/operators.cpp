#include "re/operators.hpp"

#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "util/combinatorics.hpp"

namespace lcl {

namespace {

/// Shared scaffolding of R and Rbar: both have output alphabet
/// 2^Sigma_out(Pi) \ {{}} and g(l) = { A : A subseteq g_Pi(l) }.
struct DerivedAlphabet {
  std::vector<LabelSet> labels;  // meaning of each new label
  Alphabet alphabet;             // names like "{A,B}"
};

DerivedAlphabet derive_alphabet(const NodeEdgeCheckableLcl& pi,
                                const ReLimits& limits) {
  const std::size_t base = pi.output_alphabet().size();
  if (base >= 63 || ((std::uint64_t{1} << base) - 1) > limits.max_labels) {
    throw ReBlowupError(
        "round elimination: derived alphabet for '" + pi.name() +
        "' would have 2^" + std::to_string(base) +
        "-1 labels, exceeding the limit of " +
        std::to_string(limits.max_labels));
  }
  DerivedAlphabet out;
  out.labels = all_nonempty_subsets(base, /*max_universe_bits=*/62);
  const auto namer = [&pi](std::uint32_t l) {
    return pi.output_alphabet().name(l);
  };
  for (const auto& set : out.labels) {
    out.alphabet.add(set.to_string(namer));
  }
  return out;
}

/// True iff the multiset {sets[0], .., sets[d-1]} admits a selection that is
/// an allowed node configuration of `pi`. Checked per stored configuration
/// via a small backtracking matching (configurations and degrees are tiny).
bool exists_selection_in_node_constraint(const NodeEdgeCheckableLcl& pi,
                                         const std::vector<LabelSet>& sets) {
  const int degree = static_cast<int>(sets.size());
  for (const auto& config : pi.node_configs(degree)) {
    // Match each config label occurrence to a distinct slot whose set
    // contains it.
    const auto& labels = config.labels();
    std::vector<char> used(sets.size(), 0);
    // Recursive matching over config positions.
    const auto match = [&](auto&& self, std::size_t pos) -> bool {
      if (pos == labels.size()) return true;
      for (std::size_t slot = 0; slot < sets.size(); ++slot) {
        if (!used[slot] && sets[slot].contains(labels[pos])) {
          used[slot] = 1;
          if (self(self, pos + 1)) return true;
          used[slot] = 0;
        }
      }
      return false;
    };
    if (match(match, 0)) return true;
  }
  return false;
}

/// True iff EVERY selection from the sets is an allowed node configuration
/// of `pi`.
bool all_selections_in_node_constraint(const NodeEdgeCheckableLcl& pi,
                                       const std::vector<LabelSet>& sets) {
  // Search for a counterexample selection.
  const bool found_bad = for_each_selection(
      sets, [&](const std::vector<std::uint32_t>& selection) {
        return !pi.node_allows(
            Configuration(std::vector<Label>(selection.begin(),
                                             selection.end())));
      });
  return !found_bad;
}

enum class Quantifier { kExists, kForAll };

ReStep apply_operator(const NodeEdgeCheckableLcl& pi, const ReLimits& limits,
                      Quantifier node_quantifier, const char* name_prefix) {
  LCL_OBS_SPAN(span, node_quantifier == Quantifier::kExists ? "re/R"
                                                            : "re/Rbar",
               "re");
  auto derived = derive_alphabet(pi, limits);
  const std::size_t label_count = derived.labels.size();
  const std::size_t base = pi.output_alphabet().size();

  // Configuration-count guard across all degrees plus edge pairs.
  std::uint64_t candidates = count_multisets(label_count, 2);
  for (int d = 1; d <= pi.max_degree(); ++d) {
    const std::uint64_t c = count_multisets(label_count, d);
    candidates = candidates > limits.max_configs ? candidates
                                                 : candidates + c;
  }
  if (candidates > limits.max_configs) {
    LCL_OBS_COUNTER_ADD("re.blowups", 1);
    LCL_OBS_EVENT1("re/blowup", "re", "candidates",
                   static_cast<std::int64_t>(candidates));
    throw ReBlowupError("round elimination: '" + std::string(name_prefix) +
                        "(" + pi.name() + ")' would need " +
                        std::to_string(candidates) +
                        " candidate configurations, exceeding the limit of " +
                        std::to_string(limits.max_configs));
  }
  LCL_OBS_COUNTER_ADD("re.operator_applications", 1);
  LCL_OBS_COUNTER_ADD("re.configs_enumerated", candidates);
  LCL_OBS_COUNTER_ADD("re.labels_derived", label_count);
  LCL_OBS_HISTOGRAM_RECORD("re.configs_per_operator", candidates);
  LCL_OBS_SPAN_ARG(span, "labels", label_count);
  LCL_OBS_SPAN_ARG(span, "configs", candidates);

  NodeEdgeCheckableLcl::Builder builder(
      std::string(name_prefix) + "(" + pi.name() + ")", pi.input_alphabet(),
      derived.alphabet, pi.max_degree());

  // Precompute, per derived label B:
  //  - forall_partners(B) = { b : {b1, b} in E_Pi for ALL b1 in B }
  //  - exists_partners(B) = { b : {b1, b} in E_Pi for SOME b1 in B }
  std::vector<LabelSet> forall_partners(label_count, LabelSet(base));
  std::vector<LabelSet> exists_partners(label_count, LabelSet(base));
  for (std::size_t i = 0; i < label_count; ++i) {
    LabelSet all = LabelSet::full(base);
    LabelSet any(base);
    for (const auto b : derived.labels[i].to_vector()) {
      all = all.intersect_with(pi.edge_partners(b));
      any = any.union_with(pi.edge_partners(b));
    }
    forall_partners[i] = std::move(all);
    exists_partners[i] = std::move(any);
  }

  // Edge constraint.
  for (std::size_t i = 0; i < label_count; ++i) {
    for (std::size_t j = i; j < label_count; ++j) {
      const bool allowed =
          node_quantifier == Quantifier::kExists
              // R: edge is the FORALL side.
              ? derived.labels[j].is_subset_of(forall_partners[i])
              // Rbar: edge is the EXISTS side.
              : derived.labels[j].intersects(exists_partners[i]);
      if (allowed) {
        builder.allow_edge(static_cast<Label>(i), static_cast<Label>(j));
      }
    }
  }

  // Node constraint per degree.
  std::vector<LabelSet> slot_sets;
  for (int d = 1; d <= pi.max_degree(); ++d) {
    for (const auto& multiset :
         enumerate_multisets(label_count, static_cast<std::size_t>(d))) {
      slot_sets.clear();
      for (const auto l : multiset) slot_sets.push_back(derived.labels[l]);
      const bool allowed =
          node_quantifier == Quantifier::kExists
              ? exists_selection_in_node_constraint(pi, slot_sets)
              : all_selections_in_node_constraint(pi, slot_sets);
      if (allowed) {
        builder.allow_node(
            std::vector<Label>(multiset.begin(), multiset.end()));
      }
    }
  }

  // g: derived label allowed for input l iff its meaning is a subset of
  // g_Pi(l).
  for (Label in = 0; in < pi.input_alphabet().size(); ++in) {
    const LabelSet& allowed = pi.allowed_outputs(in);
    for (std::size_t i = 0; i < label_count; ++i) {
      if (derived.labels[i].is_subset_of(allowed)) {
        builder.allow_output_for_input(in, static_cast<Label>(i));
      }
    }
  }

  return ReStep{builder.build(), std::move(derived.labels)};
}

}  // namespace

ReStep apply_r(const NodeEdgeCheckableLcl& pi, const ReLimits& limits) {
  return apply_operator(pi, limits, Quantifier::kExists, "R");
}

ReStep apply_rbar(const NodeEdgeCheckableLcl& pi, const ReLimits& limits) {
  return apply_operator(pi, limits, Quantifier::kForAll, "Rbar");
}

}  // namespace lcl
