#include "re/operators.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "re/kernel.hpp"
#include "util/combinatorics.hpp"
#include "util/label_mask.hpp"

namespace lcl {

namespace {

enum class Quantifier { kExists, kForAll };

/// Shared scaffolding of R and Rbar: both have output alphabet
/// 2^Sigma_out(Pi) \ {{}} and g(l) = { A : A subseteq g_Pi(l) }. The
/// alphabet guard and the naming are kernel-independent; the derived label
/// `i` always denotes the base-label set whose mask is `i + 1`.
Alphabet derive_alphabet(const NodeEdgeCheckableLcl& pi,
                         const ReLimits& limits) {
  const std::size_t base = pi.output_alphabet().size();
  if (base >= 63 || ((std::uint64_t{1} << base) - 1) > limits.max_labels) {
    throw ReBlowupError(
        "round elimination: derived alphabet for '" + pi.name() +
        "' would have 2^" + std::to_string(base) +
        "-1 labels, exceeding the limit of " +
        std::to_string(limits.max_labels));
  }
  const auto namer = [&pi](std::uint32_t l) {
    return pi.output_alphabet().name(l);
  };
  Alphabet out;
  const std::uint64_t count = (std::uint64_t{1} << base) - 1;
  for (std::uint64_t mask = 1; mask <= count; ++mask) {
    out.add(LabelMask(base, mask).to_string(namer));
  }
  return out;
}

ReStep apply_operator(const NodeEdgeCheckableLcl& pi, const ReLimits& limits,
                      Quantifier node_quantifier, const char* name_prefix) {
  LCL_OBS_SPAN(span, node_quantifier == Quantifier::kExists ? "re/R"
                                                            : "re/Rbar",
               "re");
  Alphabet derived = derive_alphabet(pi, limits);
  const std::size_t label_count = derived.size();
  const std::size_t base = pi.output_alphabet().size();

  // Configuration-count guard across all degrees plus edge pairs.
  std::uint64_t candidates = count_multisets(label_count, 2);
  for (int d = 1; d <= pi.max_degree(); ++d) {
    const std::uint64_t c = count_multisets(label_count, d);
    candidates = candidates > limits.max_configs ? candidates
                                                 : candidates + c;
  }
  if (candidates > limits.max_configs) {
    LCL_OBS_COUNTER_ADD("re.blowups", 1);
    LCL_OBS_EVENT1("re/blowup", "re", "candidates",
                   static_cast<std::int64_t>(candidates));
    throw ReBlowupError("round elimination: '" + std::string(name_prefix) +
                        "(" + pi.name() + ")' would need " +
                        std::to_string(candidates) +
                        " candidate configurations, exceeding the limit of " +
                        std::to_string(limits.max_configs));
  }
  LCL_OBS_COUNTER_ADD("re.operator_applications", 1);
  LCL_OBS_COUNTER_ADD("re.configs_enumerated", candidates);
  LCL_OBS_COUNTER_ADD("re.labels_derived", label_count);
  LCL_OBS_HISTOGRAM_RECORD("re.configs_per_operator", candidates);
  LCL_OBS_SPAN_ARG(span, "labels", label_count);
  LCL_OBS_SPAN_ARG(span, "configs", candidates);

  // Kernel dispatch. The alphabet guard above already rejected bases that
  // do not fit one word, so kAuto always resolves to the one-word mask
  // kernel here; forced tiers (kMask2/kMask4/kMask8) run the same fill over
  // wider words (the extra words are zero for these bases - the parity
  // battery leans on that to fence the word-seam arithmetic). The generic
  // path stays reachable explicitly (ablation benches, parity fences).
  const std::size_t forced = re_kernel::forced_tier_words(limits.kernel);
  const bool use_mask = limits.kernel != ReKernel::kGeneric &&
                        base <= LabelMask::kMaxUniverse;
  if (limits.kernel == ReKernel::kMask && base > LabelMask::kMaxUniverse) {
    throw std::invalid_argument(
        "round elimination: ReKernel::kMask requires a base alphabet of at "
        "most 64 labels");
  }
  const std::size_t words = use_mask ? std::max<std::size_t>(forced, 1) : 0;
  LCL_OBS_SPAN_ARG(span, "kernel", static_cast<std::int64_t>(words));

  NodeEdgeCheckableLcl::Builder builder(
      std::string(name_prefix) + "(" + pi.name() + ")", pi.input_alphabet(),
      std::move(derived), pi.max_degree());
  const bool exists_node = node_quantifier == Quantifier::kExists;
  std::vector<LabelSet> meaning =
      use_mask
          ? re_kernel::fill_mask(builder, pi, exists_node, words, limits.jobs)
          : re_kernel::fill_generic(builder, pi, exists_node);

  return ReStep{builder.build(), std::move(meaning)};
}

}  // namespace

ReStep apply_r(const NodeEdgeCheckableLcl& pi, const ReLimits& limits) {
  return apply_operator(pi, limits, Quantifier::kExists, "R");
}

ReStep apply_rbar(const NodeEdgeCheckableLcl& pi, const ReLimits& limits) {
  return apply_operator(pi, limits, Quantifier::kForAll, "Rbar");
}

}  // namespace lcl
