#include "re/kernel.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <future>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "batch/pool.hpp"
#include "util/combinatorics.hpp"
#include "util/label_mask.hpp"

namespace lcl {

NodeConfigIndex::NodeConfigIndex(const NodeEdgeCheckableLcl& pi) : pi_(&pi) {
  const std::size_t n = pi.output_alphabet().size();
  bits_per_label_ =
      n <= 1 ? 1u : static_cast<unsigned>(std::bit_width(n - 1));
  packed1_.resize(static_cast<std::size_t>(pi.max_degree()) + 1);
  packed2_.resize(static_cast<std::size_t>(pi.max_degree()) + 1);
  for (int d = 1; d <= pi.max_degree(); ++d) {
    const auto degree = static_cast<std::size_t>(d);
    const std::size_t words = packed_words(degree);
    if (words == 0) continue;
    const auto& configs = pi.node_configs(d);
    if (words == 1) {
      auto& keys = packed1_[degree];
      keys.reserve(configs.size() * 2);
      for (const auto& config : configs) {
        // Configuration stores its labels in canonical ascending order, so
        // the stored key matches what `allows_sorted` packs for a probe.
        keys.insert(pack1(config.labels().data(), config.size()));
      }
    } else {
      auto& keys = packed2_[degree];
      keys.reserve(configs.size() * 2);
      for (const auto& config : configs) {
        keys.insert(pack2(config.labels().data(), config.size()));
      }
    }
  }
}

bool NodeConfigIndex::allows_sorted(const Label* labels,
                                    std::size_t degree) const {
  switch (degree < packed1_.size() ? packed_words(degree) : 0) {
    case 1:
      return packed1_[degree].contains(pack1(labels, degree));
    case 2:
      return packed2_[degree].contains(pack2(labels, degree));
    default:
      return pi_->node_allows(
          Configuration(std::vector<Label>(labels, labels + degree)));
  }
}

namespace re_kernel {

namespace {

/// True iff the multiset {sets[0], .., sets[d-1]} admits a selection that is
/// an allowed node configuration of `pi`. Checked per stored configuration
/// via a small backtracking matching (configurations and degrees are tiny).
bool exists_selection_in_node_constraint(const NodeEdgeCheckableLcl& pi,
                                         const std::vector<LabelSet>& sets) {
  const int degree = static_cast<int>(sets.size());
  for (const auto& config : pi.node_configs(degree)) {
    // Match each config label occurrence to a distinct slot whose set
    // contains it.
    const auto& labels = config.labels();
    std::vector<char> used(sets.size(), 0);
    // Recursive matching over config positions.
    const auto match = [&](auto&& self, std::size_t pos) -> bool {
      if (pos == labels.size()) return true;
      for (std::size_t slot = 0; slot < sets.size(); ++slot) {
        if (!used[slot] && sets[slot].contains(labels[pos])) {
          used[slot] = 1;
          if (self(self, pos + 1)) return true;
          used[slot] = 0;
        }
      }
      return false;
    };
    if (match(match, 0)) return true;
  }
  return false;
}

/// True iff EVERY selection from the sets is an allowed node configuration
/// of `pi`.
bool all_selections_in_node_constraint(const NodeEdgeCheckableLcl& pi,
                                       const std::vector<LabelSet>& sets) {
  // Search for a counterexample selection.
  const bool found_bad = for_each_selection(
      sets, [&](const std::vector<std::uint32_t>& selection) {
        return !pi.node_allows(
            Configuration(std::vector<Label>(selection.begin(),
                                             selection.end())));
      });
  return !found_bad;
}

template <std::size_t W>
using Words = std::array<std::uint64_t, W>;

/// Bit `l` of the W-word mask. The `% W` keeps the word index provably in
/// range for the optimizer (labels are range-checked upstream).
template <std::size_t W>
inline bool words_bit(const Words<W>& words, Label l) {
  return (words[(l >> 6) % W] >> (l & 63)) & 1;
}

/// One step of the config-into-slots matching: can occurrences
/// `labels[pos..degree)` be assigned to distinct unused slots whose words
/// contain them? `used` is a slot bitmask. Since configurations are sorted,
/// equal labels are adjacent; forcing equal occurrences into increasing
/// slots (`min_slot`) collapses the permutations of identical labels to one
/// canonical assignment.
template <std::size_t W>
bool config_fits_slots(const Label* labels, std::size_t degree,
                       const Words<W>* slots, std::uint32_t used,
                       std::size_t pos, std::size_t min_slot) {
  if (pos == degree) return true;
  const Label l = labels[pos];
  const std::size_t start =
      pos > 0 && labels[pos - 1] == l ? min_slot + 1 : 0;
  for (std::size_t slot = start; slot < degree; ++slot) {
    if (((used >> slot) & 1) == 0 && words_bit<W>(slots[slot], l)) {
      if (config_fits_slots<W>(labels, degree, slots,
                               used | (std::uint32_t{1} << slot), pos + 1,
                               slot)) {
        return true;
      }
    }
  }
  return false;
}

/// Mask variant of the EXISTS quantifier: a selection exists iff some
/// stored configuration (flattened, `degree` labels per row) matches into
/// the slot words.
template <std::size_t W>
bool exists_selection_mask(const std::vector<Label>& flat_configs,
                           const Words<W>* slots, std::size_t degree) {
  for (std::size_t at = 0; at < flat_configs.size(); at += degree) {
    if (config_fits_slots<W>(flat_configs.data() + at, degree, slots, 0, 0,
                             0)) {
      return true;
    }
  }
  return false;
}

/// Mask variant of the FORALL quantifier: walks the cartesian product of
/// the slot words' set bits (across all W words), canonicalizes each
/// selection by insertion sort into `sorted` (degrees are tiny), and probes
/// the packed memo; aborts on the first disallowed selection.
template <std::size_t W>
bool all_selections_mask(const NodeConfigIndex& index, const Words<W>* slots,
                         std::size_t degree, Label* selection, Label* sorted) {
  const auto walk = [&](auto&& self, std::size_t slot) -> bool {
    if (slot == degree) {
      for (std::size_t i = 0; i < degree; ++i) {
        const Label l = selection[i];
        std::size_t j = i;
        while (j > 0 && sorted[j - 1] > l) {
          sorted[j] = sorted[j - 1];
          --j;
        }
        sorted[j] = l;
      }
      return index.allows_sorted(sorted, degree);
    }
    for (std::size_t wi = 0; wi < W; ++wi) {
      std::uint64_t word = slots[slot][wi];
      while (word != 0) {
        selection[slot] = static_cast<Label>(
            64 * wi + static_cast<std::size_t>(std::countr_zero(word)));
        word &= word - 1;
        if (!self(self, slot + 1)) return false;
      }
    }
    return true;
  };
  return walk(walk, 0);
}

/// Advances `idx` to the lexicographically next non-decreasing tuple over
/// `{floor, .., limit-1}` whose FIRST entry stays fixed; returns false when
/// the suffix is exhausted. With `floor = 0` and a free first entry this is
/// the order of `enumerate_multisets` without materializing it.
bool next_multiset_suffix(std::vector<std::uint32_t>& idx, std::uint32_t limit,
                          std::size_t first_free) {
  std::size_t pos = idx.size();
  while (pos > first_free && idx[pos - 1] == limit - 1) --pos;
  if (pos <= first_free) return false;
  const std::uint32_t next = idx[pos - 1] + 1;
  for (std::size_t i = pos - 1; i < idx.size(); ++i) idx[i] = next;
  return true;
}

/// Contiguous near-even split of `[begin, end)` into at most `parts`
/// non-empty chunks, in order.
std::vector<std::pair<std::uint64_t, std::uint64_t>> split_range(
    std::uint64_t begin, std::uint64_t end, std::size_t parts) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> chunks;
  if (begin >= end) return chunks;
  const std::uint64_t total = end - begin;
  const std::uint64_t count =
      std::min<std::uint64_t>(total, parts == 0 ? 1 : parts);
  chunks.reserve(static_cast<std::size_t>(count));
  std::uint64_t at = begin;
  for (std::uint64_t c = 0; c < count; ++c) {
    const std::uint64_t size = total / count + (c < total % count ? 1 : 0);
    chunks.emplace_back(at, at + size);
    at += size;
  }
  return chunks;
}

/// Runs `task(chunk)` over every chunk and feeds the results to
/// `merge(chunk_result)` in chunk order. With `jobs <= 1` everything runs
/// inline; otherwise the tasks fan out across a `batch::Pool` and the merge
/// consumes the futures in submission order - either way `merge` sees the
/// same results in the same order, which is what makes the parallel
/// enumeration deterministic.
template <typename Chunk, typename Task, typename Merge>
void run_deterministic(const std::vector<Chunk>& chunks, std::size_t jobs,
                       Task&& task, Merge&& merge) {
  if (jobs <= 1 || chunks.size() <= 1) {
    for (const auto& chunk : chunks) merge(task(chunk));
    return;
  }
  batch::Pool pool(batch::Pool::Options{jobs});
  using Result = decltype(task(chunks.front()));
  std::vector<std::future<Result>> futures;
  futures.reserve(chunks.size());
  for (const auto& chunk : chunks) {
    futures.push_back(pool.submit([&task, &chunk]() { return task(chunk); }));
  }
  for (auto& future : futures) merge(future.get());
}

/// How many chunks to cut an outer loop into: enough that the skewed low
/// ends (first-index partitions shrink as the index grows) balance out.
constexpr std::size_t kChunksPerJob = 16;

template <std::size_t W>
std::vector<LabelSet> fill_mask_w(NodeEdgeCheckableLcl::Builder& builder,
                                  const NodeEdgeCheckableLcl& pi,
                                  bool exists_node, std::size_t jobs) {
  const std::size_t base = pi.output_alphabet().size();
  // The derived label indices (2^base - 1 of them) must fit one word no
  // matter how wide the masks are; the public operators' alphabet guard
  // rejects such bases long before dispatch, so this only fences direct
  // callers.
  if (base >= 63) {
    std::ostringstream os;
    os << "re_kernel::fill_mask: base alphabet of " << base
       << " labels does not leave room for the 2^base-1 derived masks in one "
          "word";
    throw std::invalid_argument(os.str());
  }
  const std::uint64_t label_count = (std::uint64_t{1} << base) - 1;
  const std::size_t chunk_target = jobs <= 1 ? 1 : jobs * kChunksPerJob;

  // Per-base-label edge partner words.
  std::vector<Words<W>> partners(base);
  for (std::size_t b = 0; b < base; ++b) {
    partners[b] =
        LabelMaskW<W>::from_label_set(pi.edge_partners(static_cast<Label>(b)))
            .words();
  }

  // Subset DP: partner words of every derived mask from its
  // lowest-bit-removed predecessor - one W-word AND/OR per mask. Masks over
  // the base alphabet live in word 0 (base < 63), so the DP is indexed by
  // the plain word-0 value; the *partner* sides are full W-word vectors.
  std::vector<Words<W>> forall(label_count + 1, Words<W>{});
  std::vector<Words<W>> exists(label_count + 1, Words<W>{});
  for (std::uint64_t m = 1; m <= label_count; ++m) {
    const std::size_t b = static_cast<std::size_t>(std::countr_zero(m));
    const std::uint64_t rest = m & (m - 1);
    for (std::size_t w = 0; w < W; ++w) {
      forall[m][w] =
          rest != 0 ? (forall[rest][w] & partners[b][w]) : partners[b][w];
      exists[m][w] =
          rest != 0 ? (exists[rest][w] | partners[b][w]) : partners[b][w];
    }
  }

  // Edge constraint. For R ({B1,B2} allowed iff B2 subseteq
  // forall_partners(B1), a symmetric relation) the allowed partners of B1
  // are exactly the non-empty submasks of its FORALL word - a subset walk
  // visits just those instead of testing every pair. For Rbar a W-word AND
  // decides each pair. The outer row loop partitions into contiguous
  // chunks; each task collects its allowed pairs into a flat arena, merged
  // in chunk order.
  {
    const auto chunks = split_range(1, label_count + 1, chunk_target);
    const auto edge_task =
        [&](const std::pair<std::uint64_t, std::uint64_t>& chunk) {
          std::vector<std::pair<Label, Label>> allowed;
          for (std::uint64_t mi = chunk.first; mi < chunk.second; ++mi) {
            if (exists_node) {
              for_each_nonempty_submask_words<W>(
                  forall[mi], [&](const Words<W>& sub) {
                    // Submasks of a base-alphabet word stay in word 0.
                    const std::uint64_t value = sub[0];
                    if (value >= mi) {
                      allowed.emplace_back(static_cast<Label>(mi - 1),
                                           static_cast<Label>(value - 1));
                    }
                  });
            } else {
              const Words<W>& any = exists[mi];
              for (std::uint64_t mj = mi; mj <= label_count; ++mj) {
                if ((mj & any[0]) != 0) {
                  allowed.emplace_back(static_cast<Label>(mi - 1),
                                       static_cast<Label>(mj - 1));
                }
              }
            }
          }
          return allowed;
        };
    run_deterministic(chunks, jobs, edge_task,
                      [&](const std::vector<std::pair<Label, Label>>& pairs) {
                        for (const auto& [a, b] : pairs) {
                          builder.allow_edge(a, b);
                        }
                      });
  }

  // Node constraint per degree: walk the non-decreasing index tuples in
  // enumerate_multisets order (without materializing them) and evaluate the
  // quantifier on the slot words. Derived label i IS the mask i + 1. The
  // walk partitions by the tuple's first index: a task owns the contiguous
  // first-index range [chunk.first, chunk.second) and appends each allowed
  // multiset to its flat arena (degree labels per row); arenas merge in
  // chunk order, reproducing the serial enumeration order exactly.
  NodeConfigIndex index(pi);
  for (int d = 1; d <= pi.max_degree(); ++d) {
    const auto degree = static_cast<std::size_t>(d);
    // The EXISTS matching iterates the stored configurations; copy them out
    // of the std::set once into one flat row-per-config array so the inner
    // loop is a contiguous scan.
    std::vector<Label> flat_configs;
    if (exists_node) {
      const auto& stored = pi.node_configs(d);
      flat_configs.reserve(stored.size() * degree);
      for (const auto& config : stored) {
        flat_configs.insert(flat_configs.end(), config.labels().begin(),
                            config.labels().end());
      }
    }
    const auto chunks = split_range(0, label_count, chunk_target);
    const auto node_task =
        [&](const std::pair<std::uint64_t, std::uint64_t>& chunk) {
          std::vector<Label> arena;
          std::vector<std::uint32_t> idx(degree);
          std::vector<Words<W>> slots(degree);
          std::vector<Label> selection(degree);
          std::vector<Label> sorted(degree);
          for (std::uint64_t first = chunk.first; first < chunk.second;
               ++first) {
            std::fill(idx.begin(), idx.end(),
                      static_cast<std::uint32_t>(first));
            do {
              for (std::size_t t = 0; t < degree; ++t) {
                slots[t] = Words<W>{};
                slots[t][0] = static_cast<std::uint64_t>(idx[t]) + 1;
              }
              const bool allowed =
                  exists_node
                      ? exists_selection_mask<W>(flat_configs, slots.data(),
                                                 degree)
                      : all_selections_mask<W>(index, slots.data(), degree,
                                               selection.data(),
                                               sorted.data());
              if (allowed) {
                arena.insert(arena.end(), idx.begin(), idx.end());
              }
            } while (next_multiset_suffix(
                idx, static_cast<std::uint32_t>(label_count), 1));
          }
          return arena;
        };
    run_deterministic(chunks, jobs, node_task,
                      [&](const std::vector<Label>& arena) {
                        for (std::size_t at = 0; at < arena.size();
                             at += degree) {
                          builder.allow_node(std::vector<Label>(
                              arena.begin() + static_cast<std::ptrdiff_t>(at),
                              arena.begin() +
                                  static_cast<std::ptrdiff_t>(at + degree)));
                        }
                      });
  }

  // g: the derived labels compatible with input l are exactly the
  // non-empty submasks of g_Pi(l) - enumerated directly by a subset walk.
  for (Label in = 0; in < pi.input_alphabet().size(); ++in) {
    const Words<W> g =
        LabelMaskW<W>::from_label_set(pi.allowed_outputs(in)).words();
    for_each_nonempty_submask_words<W>(g, [&](const Words<W>& sub) {
      builder.allow_output_for_input(in, static_cast<Label>(sub[0] - 1));
    });
  }

  // Meanings: mask m denotes the base-label set with exactly m's bits.
  std::vector<LabelSet> meaning;
  meaning.reserve(label_count);
  for (std::uint64_t m = 1; m <= label_count; ++m) {
    meaning.push_back(LabelMask(base, m).to_label_set());
  }
  return meaning;
}

}  // namespace

std::vector<LabelSet> fill_generic(NodeEdgeCheckableLcl::Builder& builder,
                                   const NodeEdgeCheckableLcl& pi,
                                   bool exists_node) {
  const std::size_t base = pi.output_alphabet().size();
  std::vector<LabelSet> derived =
      all_nonempty_subsets(base, /*max_universe_bits=*/62);
  const std::size_t label_count = derived.size();

  // Precompute, per derived label B:
  //  - forall_partners(B) = { b : {b1, b} in E_Pi for ALL b1 in B }
  //  - exists_partners(B) = { b : {b1, b} in E_Pi for SOME b1 in B }
  std::vector<LabelSet> forall_partners(label_count, LabelSet(base));
  std::vector<LabelSet> exists_partners(label_count, LabelSet(base));
  for (std::size_t i = 0; i < label_count; ++i) {
    LabelSet all = LabelSet::full(base);
    LabelSet any(base);
    for (const auto b : derived[i].to_vector()) {
      all = all.intersect_with(pi.edge_partners(b));
      any = any.union_with(pi.edge_partners(b));
    }
    forall_partners[i] = std::move(all);
    exists_partners[i] = std::move(any);
  }

  // Edge constraint.
  for (std::size_t i = 0; i < label_count; ++i) {
    for (std::size_t j = i; j < label_count; ++j) {
      const bool allowed =
          exists_node
              // R: edge is the FORALL side.
              ? derived[j].is_subset_of(forall_partners[i])
              // Rbar: edge is the EXISTS side.
              : derived[j].intersects(exists_partners[i]);
      if (allowed) {
        builder.allow_edge(static_cast<Label>(i), static_cast<Label>(j));
      }
    }
  }

  // Node constraint per degree.
  std::vector<LabelSet> slot_sets;
  for (int d = 1; d <= pi.max_degree(); ++d) {
    for (const auto& multiset :
         enumerate_multisets(label_count, static_cast<std::size_t>(d))) {
      slot_sets.clear();
      for (const auto l : multiset) slot_sets.push_back(derived[l]);
      const bool allowed =
          exists_node ? exists_selection_in_node_constraint(pi, slot_sets)
                      : all_selections_in_node_constraint(pi, slot_sets);
      if (allowed) {
        builder.allow_node(
            std::vector<Label>(multiset.begin(), multiset.end()));
      }
    }
  }

  // g: derived label allowed for input l iff its meaning is a subset of
  // g_Pi(l).
  for (Label in = 0; in < pi.input_alphabet().size(); ++in) {
    const LabelSet& allowed = pi.allowed_outputs(in);
    for (std::size_t i = 0; i < label_count; ++i) {
      if (derived[i].is_subset_of(allowed)) {
        builder.allow_output_for_input(in, static_cast<Label>(i));
      }
    }
  }

  return derived;
}

std::vector<LabelSet> fill_mask(NodeEdgeCheckableLcl::Builder& builder,
                                const NodeEdgeCheckableLcl& pi,
                                bool exists_node, std::size_t words,
                                std::size_t jobs) {
  switch (words) {
    case 1:
      return fill_mask_w<1>(builder, pi, exists_node, jobs);
    case 2:
      return fill_mask_w<2>(builder, pi, exists_node, jobs);
    case 4:
      return fill_mask_w<4>(builder, pi, exists_node, jobs);
    case 8:
      return fill_mask_w<8>(builder, pi, exists_node, jobs);
    default:
      throw std::invalid_argument(
          "re_kernel::fill_mask: supported mask tiers are 1, 2, 4 or 8 "
          "words");
  }
}

}  // namespace re_kernel
}  // namespace lcl
