#include "re/kernel.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/combinatorics.hpp"
#include "util/label_mask.hpp"

namespace lcl {

NodeConfigIndex::NodeConfigIndex(const NodeEdgeCheckableLcl& pi) : pi_(&pi) {
  const std::size_t n = pi.output_alphabet().size();
  bits_per_label_ =
      n <= 1 ? 1u : static_cast<unsigned>(std::bit_width(n - 1));
  packed_.resize(static_cast<std::size_t>(pi.max_degree()) + 1);
  for (int d = 1; d <= pi.max_degree(); ++d) {
    const auto degree = static_cast<std::size_t>(d);
    if (!packable(degree)) continue;
    auto& keys = packed_[degree];
    const auto& configs = pi.node_configs(d);
    keys.reserve(configs.size() * 2);
    for (const auto& config : configs) {
      // Configuration stores its labels in canonical ascending order, so
      // the stored key matches what `allows_sorted` packs for a probe.
      keys.insert(pack(config.labels().data(), config.size()));
    }
  }
}

bool NodeConfigIndex::allows_sorted(const Label* labels,
                                    std::size_t degree) const {
  if (degree < packed_.size() && packable(degree)) {
    return packed_[degree].contains(pack(labels, degree));
  }
  return pi_->node_allows(
      Configuration(std::vector<Label>(labels, labels + degree)));
}

namespace re_kernel {

namespace {

/// True iff the multiset {sets[0], .., sets[d-1]} admits a selection that is
/// an allowed node configuration of `pi`. Checked per stored configuration
/// via a small backtracking matching (configurations and degrees are tiny).
bool exists_selection_in_node_constraint(const NodeEdgeCheckableLcl& pi,
                                         const std::vector<LabelSet>& sets) {
  const int degree = static_cast<int>(sets.size());
  for (const auto& config : pi.node_configs(degree)) {
    // Match each config label occurrence to a distinct slot whose set
    // contains it.
    const auto& labels = config.labels();
    std::vector<char> used(sets.size(), 0);
    // Recursive matching over config positions.
    const auto match = [&](auto&& self, std::size_t pos) -> bool {
      if (pos == labels.size()) return true;
      for (std::size_t slot = 0; slot < sets.size(); ++slot) {
        if (!used[slot] && sets[slot].contains(labels[pos])) {
          used[slot] = 1;
          if (self(self, pos + 1)) return true;
          used[slot] = 0;
        }
      }
      return false;
    };
    if (match(match, 0)) return true;
  }
  return false;
}

/// True iff EVERY selection from the sets is an allowed node configuration
/// of `pi`.
bool all_selections_in_node_constraint(const NodeEdgeCheckableLcl& pi,
                                       const std::vector<LabelSet>& sets) {
  // Search for a counterexample selection.
  const bool found_bad = for_each_selection(
      sets, [&](const std::vector<std::uint32_t>& selection) {
        return !pi.node_allows(
            Configuration(std::vector<Label>(selection.begin(),
                                             selection.end())));
      });
  return !found_bad;
}

/// One step of the config-into-slots matching: can occurrences
/// `labels[pos..degree)` be assigned to distinct unused slots whose words
/// contain them? `used` is a slot bitmask. Since configurations are sorted,
/// equal labels are adjacent; forcing equal occurrences into increasing
/// slots (`min_slot`) collapses the permutations of identical labels to one
/// canonical assignment.
bool config_fits_slots(const Label* labels, std::size_t degree,
                       const std::uint64_t* slots, std::uint32_t used,
                       std::size_t pos, std::size_t min_slot) {
  if (pos == degree) return true;
  const Label l = labels[pos];
  const std::size_t start =
      pos > 0 && labels[pos - 1] == l ? min_slot + 1 : 0;
  for (std::size_t slot = start; slot < degree; ++slot) {
    if (((used >> slot) & 1) == 0 && ((slots[slot] >> l) & 1) != 0) {
      if (config_fits_slots(labels, degree, slots,
                            used | (std::uint32_t{1} << slot), pos + 1,
                            slot)) {
        return true;
      }
    }
  }
  return false;
}

/// Mask variant of the EXISTS quantifier: a selection exists iff some
/// stored configuration (flattened, `degree` labels per row) matches into
/// the slot words.
bool exists_selection_mask(const std::vector<Label>& flat_configs,
                           const std::uint64_t* slots, std::size_t degree) {
  for (std::size_t at = 0; at < flat_configs.size(); at += degree) {
    if (config_fits_slots(flat_configs.data() + at, degree, slots, 0, 0, 0)) {
      return true;
    }
  }
  return false;
}

/// Mask variant of the FORALL quantifier: walks the cartesian product of
/// the slot words' set bits, canonicalizes each selection by insertion sort
/// into `sorted` (degrees are tiny), and probes the packed memo; aborts on
/// the first disallowed selection.
bool all_selections_mask(const NodeConfigIndex& index,
                         const std::uint64_t* slots, std::size_t degree,
                         Label* selection, Label* sorted) {
  const auto walk = [&](auto&& self, std::size_t slot) -> bool {
    if (slot == degree) {
      for (std::size_t i = 0; i < degree; ++i) {
        const Label l = selection[i];
        std::size_t j = i;
        while (j > 0 && sorted[j - 1] > l) {
          sorted[j] = sorted[j - 1];
          --j;
        }
        sorted[j] = l;
      }
      return index.allows_sorted(sorted, degree);
    }
    std::uint64_t word = slots[slot];
    while (word != 0) {
      selection[slot] = static_cast<Label>(std::countr_zero(word));
      word &= word - 1;
      if (!self(self, slot + 1)) return false;
    }
    return true;
  };
  return walk(walk, 0);
}

/// Advances `idx` to the lexicographically next non-decreasing tuple over
/// `{0, .., limit-1}`; returns false when exhausted. Matches the order of
/// `enumerate_multisets` without materializing the enumeration.
bool next_multiset(std::vector<std::uint32_t>& idx, std::uint32_t limit) {
  std::size_t pos = idx.size();
  while (pos > 0 && idx[pos - 1] == limit - 1) --pos;
  if (pos == 0) return false;
  const std::uint32_t next = idx[pos - 1] + 1;
  for (std::size_t i = pos - 1; i < idx.size(); ++i) idx[i] = next;
  return true;
}

}  // namespace

std::vector<LabelSet> fill_generic(NodeEdgeCheckableLcl::Builder& builder,
                                   const NodeEdgeCheckableLcl& pi,
                                   bool exists_node) {
  const std::size_t base = pi.output_alphabet().size();
  std::vector<LabelSet> derived =
      all_nonempty_subsets(base, /*max_universe_bits=*/62);
  const std::size_t label_count = derived.size();

  // Precompute, per derived label B:
  //  - forall_partners(B) = { b : {b1, b} in E_Pi for ALL b1 in B }
  //  - exists_partners(B) = { b : {b1, b} in E_Pi for SOME b1 in B }
  std::vector<LabelSet> forall_partners(label_count, LabelSet(base));
  std::vector<LabelSet> exists_partners(label_count, LabelSet(base));
  for (std::size_t i = 0; i < label_count; ++i) {
    LabelSet all = LabelSet::full(base);
    LabelSet any(base);
    for (const auto b : derived[i].to_vector()) {
      all = all.intersect_with(pi.edge_partners(b));
      any = any.union_with(pi.edge_partners(b));
    }
    forall_partners[i] = std::move(all);
    exists_partners[i] = std::move(any);
  }

  // Edge constraint.
  for (std::size_t i = 0; i < label_count; ++i) {
    for (std::size_t j = i; j < label_count; ++j) {
      const bool allowed =
          exists_node
              // R: edge is the FORALL side.
              ? derived[j].is_subset_of(forall_partners[i])
              // Rbar: edge is the EXISTS side.
              : derived[j].intersects(exists_partners[i]);
      if (allowed) {
        builder.allow_edge(static_cast<Label>(i), static_cast<Label>(j));
      }
    }
  }

  // Node constraint per degree.
  std::vector<LabelSet> slot_sets;
  for (int d = 1; d <= pi.max_degree(); ++d) {
    for (const auto& multiset :
         enumerate_multisets(label_count, static_cast<std::size_t>(d))) {
      slot_sets.clear();
      for (const auto l : multiset) slot_sets.push_back(derived[l]);
      const bool allowed =
          exists_node ? exists_selection_in_node_constraint(pi, slot_sets)
                      : all_selections_in_node_constraint(pi, slot_sets);
      if (allowed) {
        builder.allow_node(
            std::vector<Label>(multiset.begin(), multiset.end()));
      }
    }
  }

  // g: derived label allowed for input l iff its meaning is a subset of
  // g_Pi(l).
  for (Label in = 0; in < pi.input_alphabet().size(); ++in) {
    const LabelSet& allowed = pi.allowed_outputs(in);
    for (std::size_t i = 0; i < label_count; ++i) {
      if (derived[i].is_subset_of(allowed)) {
        builder.allow_output_for_input(in, static_cast<Label>(i));
      }
    }
  }

  return derived;
}

std::vector<LabelSet> fill_mask(NodeEdgeCheckableLcl::Builder& builder,
                                const NodeEdgeCheckableLcl& pi,
                                bool exists_node) {
  const std::size_t base = pi.output_alphabet().size();
  // The public operators' alphabet guard rejects bases >= 63 long before
  // dispatch; this check only fences direct callers.
  if (base >= 63) {
    throw std::invalid_argument(
        "re_kernel::fill_mask: base alphabet of " + std::to_string(base) +
        " labels does not leave room for the 2^base-1 derived masks in one "
        "word");
  }
  const std::uint64_t label_count = (std::uint64_t{1} << base) - 1;

  // Per-base-label edge partner words.
  std::vector<std::uint64_t> partners(base);
  for (std::size_t b = 0; b < base; ++b) {
    partners[b] =
        LabelMask::from_label_set(pi.edge_partners(static_cast<Label>(b)))
            .word();
  }

  // Subset DP: partner words of every derived mask from its
  // lowest-bit-removed predecessor - one AND/OR per mask.
  std::vector<std::uint64_t> forall(label_count + 1, 0);
  std::vector<std::uint64_t> exists(label_count + 1, 0);
  for (std::uint64_t m = 1; m <= label_count; ++m) {
    const std::size_t b = static_cast<std::size_t>(std::countr_zero(m));
    const std::uint64_t rest = m & (m - 1);
    forall[m] = rest != 0 ? (forall[rest] & partners[b]) : partners[b];
    exists[m] = rest != 0 ? (exists[rest] | partners[b]) : partners[b];
  }

  // Edge constraint. For R ({B1,B2} allowed iff B2 subseteq
  // forall_partners(B1), a symmetric relation) the allowed partners of B1
  // are exactly the non-empty submasks of its FORALL word - a subset walk
  // visits just those instead of testing every pair. For Rbar one
  // single-word AND decides each pair.
  if (exists_node) {
    for (std::uint64_t mi = 1; mi <= label_count; ++mi) {
      for_each_nonempty_submask(forall[mi], [&](std::uint64_t sub) {
        if (sub >= mi) {
          builder.allow_edge(static_cast<Label>(mi - 1),
                             static_cast<Label>(sub - 1));
        }
      });
    }
  } else {
    for (std::uint64_t mi = 1; mi <= label_count; ++mi) {
      const std::uint64_t any = exists[mi];
      for (std::uint64_t mj = mi; mj <= label_count; ++mj) {
        if ((mj & any) != 0) {
          builder.allow_edge(static_cast<Label>(mi - 1),
                             static_cast<Label>(mj - 1));
        }
      }
    }
  }

  // Node constraint per degree: walk the non-decreasing index tuples in
  // enumerate_multisets order (without materializing them) and evaluate the
  // quantifier on the slot words. Derived label i IS the mask i + 1.
  NodeConfigIndex index(pi);
  for (int d = 1; d <= pi.max_degree(); ++d) {
    const auto degree = static_cast<std::size_t>(d);
    // The EXISTS matching iterates the stored configurations; copy them out
    // of the std::set once into one flat row-per-config array so the inner
    // loop is a contiguous scan.
    std::vector<Label> flat_configs;
    if (exists_node) {
      const auto& stored = pi.node_configs(d);
      flat_configs.reserve(stored.size() * degree);
      for (const auto& config : stored) {
        flat_configs.insert(flat_configs.end(), config.labels().begin(),
                            config.labels().end());
      }
    }
    std::vector<std::uint32_t> idx(degree, 0);
    std::vector<std::uint64_t> slots(degree);
    std::vector<Label> selection(degree);
    std::vector<Label> sorted(degree);
    do {
      for (std::size_t t = 0; t < degree; ++t) {
        slots[t] = static_cast<std::uint64_t>(idx[t]) + 1;
      }
      const bool allowed =
          exists_node
              ? exists_selection_mask(flat_configs, slots.data(), degree)
              : all_selections_mask(index, slots.data(), degree,
                                    selection.data(), sorted.data());
      if (allowed) {
        builder.allow_node(std::vector<Label>(idx.begin(), idx.end()));
      }
    } while (next_multiset(idx, static_cast<std::uint32_t>(label_count)));
  }

  // g: the derived labels compatible with input l are exactly the
  // non-empty submasks of g_Pi(l) - enumerated directly by a subset walk.
  for (Label in = 0; in < pi.input_alphabet().size(); ++in) {
    const std::uint64_t g =
        LabelMask::from_label_set(pi.allowed_outputs(in)).word();
    for_each_nonempty_submask(g, [&](std::uint64_t sub) {
      builder.allow_output_for_input(in, static_cast<Label>(sub - 1));
    });
  }

  // Meanings: mask m denotes the base-label set with exactly m's bits.
  std::vector<LabelSet> meaning;
  meaning.reserve(label_count);
  for (std::uint64_t m = 1; m <= label_count; ++m) {
    meaning.push_back(LabelMask(base, m).to_label_set());
  }
  return meaning;
}

}  // namespace re_kernel
}  // namespace lcl
