#pragma once

#include <vector>

#include "core/lcl.hpp"
#include "graph/graph.hpp"
#include "graph/labeling.hpp"
#include "re/step.hpp"

namespace lcl {

/// One level of the round-elimination sequence, as kept by the engine:
/// `psi = R(pi_i)` and `next = Rbar(psi)` (both possibly label-reduced, with
/// `meaning` composed through the reduction). `psi.meaning[l]` is a set of
/// `pi_i` output labels; `next.meaning[l]` is a set of `psi` output labels.
struct SequenceLevel {
  ReStep psi;   // R(pi_i)
  ReStep next;  // Rbar(R(pi_i)) = pi_{i+1}
};

/// The constructive content of Lemma 3.9, centralized: given a correct
/// solution of `Rbar(R(pi))` on `(graph, input)`, produce a correct solution
/// of `pi` via the two-step choice
///  1. per edge, pick compatible `R(pi)`-labels out of the two half-edges'
///     label sets (the Rbar edge constraint guarantees a choice exists);
///  2. per node, pick `pi`-labels out of the chosen sets whose multiset is
///     an allowed node configuration (the R node constraint guarantees it).
/// Both choices are deterministic (lexicographically smallest), mirroring
/// the "in some deterministic fashion" of the lemma.
///
/// Throws `std::logic_error` if `solution` is not actually correct for
/// `level.next.problem` (the lemma's preconditions are violated).
HalfEdgeLabeling lift_solution(const NodeEdgeCheckableLcl& pi,
                               const SequenceLevel& level, const Graph& graph,
                               const HalfEdgeLabeling& input,
                               const HalfEdgeLabeling& solution);

}  // namespace lcl
