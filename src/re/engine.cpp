#include "re/engine.hpp"

#include <chrono>
#include <map>
#include <stdexcept>
#include <utility>

#include "lint/analyzer.hpp"
#include "lint/canonical.hpp"
#include "obs/obs.hpp"
#include "obs/run_context.hpp"
#include "re/operators.hpp"
#include "re/reduce.hpp"

namespace lcl {

namespace {

/// Cheap structural signature for fixed-point detection: label count and
/// per-degree configuration counts. A matching signature alone is only a
/// *likely* fixed point - it is confirmed by an exact (up to output-label
/// renaming) constraint comparison before being reported.
std::vector<std::size_t> signature(const NodeEdgeCheckableLcl& p) {
  std::vector<std::size_t> sig{p.output_alphabet().size(),
                               p.edge_configs().size()};
  for (int d = 1; d <= p.max_degree(); ++d) {
    sig.push_back(p.node_configs(d).size());
  }
  return sig;
}

/// The synthesized constant-round algorithm: evaluates the 0-round witness
/// at level k and lifts it down level by level via Lemma 3.9, simulating
/// the lift at every node within the radius-k view.
class SynthesizedAlgorithm final : public BallAlgorithm {
 public:
  /// `base` is the problem the levels actually lift down to (the engine's
  /// effective, possibly lint-pruned, base); `new_to_old` translates its
  /// labels back to the original problem's (empty = identity).
  SynthesizedAlgorithm(const NodeEdgeCheckableLcl& base,
                       const std::vector<SequenceLevel>& levels,
                       ZeroRoundAlgorithm witness,
                       std::vector<Label> new_to_old)
      : base_(base),
        levels_(levels),
        witness_(std::move(witness)),
        new_to_old_(std::move(new_to_old)) {}

  int radius(std::size_t advertised_n) const override {
    (void)advertised_n;
    return static_cast<int>(levels_.size());
  }

  std::vector<Label> outputs(const LocalView& view) const override {
    std::map<std::pair<std::size_t, NodeId>, std::vector<Label>> memo;
    std::vector<Label> result = labels_at(view, 0, view.center(), memo);
    if (!new_to_old_.empty()) {
      for (auto& l : result) l = new_to_old_[l];
    }
    return result;
  }

 private:
  /// Output labels of problem `f^level(pi)` at node `u`, one per port.
  std::vector<Label> labels_at(
      const LocalView& view, std::size_t level, NodeId u,
      std::map<std::pair<std::size_t, NodeId>, std::vector<Label>>& memo)
      const {
    const auto key = std::make_pair(level, u);
    if (auto it = memo.find(key); it != memo.end()) return it->second;

    const int degree = view.degree(u);
    std::vector<Label> result;
    if (level == levels_.size()) {
      // Top of the sequence: apply the 0-round witness to u's input tuple.
      std::vector<Label> inputs(static_cast<std::size_t>(degree));
      for (int p = 0; p < degree; ++p) {
        inputs[static_cast<std::size_t>(p)] = view.input(u, p);
      }
      result = witness_.apply(inputs);
    } else {
      // Lemma 3.9 at this level: compute f^(level+1) labels at u and its
      // neighbors, then the two-step choice.
      const auto& lvl = levels_[level];
      const auto mine = labels_at(view, level + 1, u, memo);
      // Step 1: per edge, both endpoints pick the same psi-label pair; the
      // smaller-ID endpoint plays the role of "first".
      std::vector<Label> psi_labels(static_cast<std::size_t>(degree));
      for (int p = 0; p < degree; ++p) {
        const NodeId w = view.neighbor(u, p);
        const auto theirs = labels_at(view, level + 1, w, memo);
        const int q = view.twin_port(u, p);
        const Label xu = mine[static_cast<std::size_t>(p)];
        const Label xw = theirs[static_cast<std::size_t>(q)];
        psi_labels[static_cast<std::size_t>(p)] =
            (view.id(u) < view.id(w))
                ? choose_pair(lvl, xu, xw).first
                : choose_pair(lvl, xw, xu).second;
      }
      // Step 2: per node selection satisfying the lower-level node
      // constraint.
      result = choose_node(level, psi_labels);
    }
    memo.emplace(key, result);
    return result;
  }

  /// Lexicographically smallest pair (La, Lb) in meaning(xa) x meaning(xb)
  /// allowed by the psi edge constraint (deterministic; both endpoints
  /// compute it identically).
  std::pair<Label, Label> choose_pair(const SequenceLevel& lvl, Label xa,
                                      Label xb) const {
    for (const auto la : lvl.next.meaning[xa].to_vector()) {
      for (const auto lb : lvl.next.meaning[xb].to_vector()) {
        if (lvl.psi.problem.edge_allows(la, lb)) return {la, lb};
      }
    }
    throw std::logic_error(
        "SynthesizedAlgorithm: Rbar edge constraint violated");
  }

  std::vector<Label> choose_node(std::size_t level,
                                 const std::vector<Label>& psi_labels) const {
    const auto& lvl = levels_[level];
    const NodeEdgeCheckableLcl& lower =
        level == 0 ? base_ : levels_[level - 1].next.problem;
    std::vector<std::vector<Label>> options;
    options.reserve(psi_labels.size());
    for (const auto L : psi_labels) {
      options.push_back(lvl.psi.meaning[L].to_vector());
    }
    std::vector<Label> current(psi_labels.size());
    const auto search = [&](auto&& self, std::size_t pos) -> bool {
      if (pos == current.size()) {
        return lower.node_allows(Configuration(current));
      }
      for (const auto l : options[pos]) {
        current[pos] = l;
        if (self(self, pos + 1)) return true;
      }
      return false;
    };
    if (!search(search, 0)) {
      throw std::logic_error(
          "SynthesizedAlgorithm: R node constraint violated");
    }
    return current;
  }

  const NodeEdgeCheckableLcl& base_;
  const std::vector<SequenceLevel>& levels_;
  ZeroRoundAlgorithm witness_;
  std::vector<Label> new_to_old_;
};

}  // namespace

SpeedupEngine::SpeedupEngine(NodeEdgeCheckableLcl base)
    : base_(std::move(base)), effective_base_(base_) {}

const NodeEdgeCheckableLcl& SpeedupEngine::problem_at(std::size_t i) const {
  if (i == 0) return base_;
  if (i <= levels_.size()) return levels_[i - 1].next.problem;
  throw std::out_of_range("SpeedupEngine::problem_at: step not computed");
}

SpeedupEngine::Outcome SpeedupEngine::run(const Options& options) {
  LCL_OBS_SPAN(run_span, "re/run", "re");
  LCL_OBS_COUNTER_ADD("re.runs", 1);
  Outcome outcome;
  levels_.clear();
  witness_.reset();
  witness_step_ = -1;
  effective_base_ = base_;
  prune_new_to_old_.clear();

  if (options.preflight_lint) {
    // Lint pre-flight: L020 short-circuits the run; dead-label pruning
    // shrinks the alphabet `R`'s power set is built over. Both are sound:
    // dead labels occur in no correct solution on any instance, so the
    // pruned problem has the same solvability, round complexity, and
    // 0-round verdicts as the original (the L030/zero-round pass is skipped
    // here - the engine runs the exact `A_det` decision itself).
    lint::LintOptions lint_options;
    lint_options.zero_round = false;
    auto preflight = lint::prune_problem(base_, lint_options);
    outcome.preflight_dead_labels = preflight.report.dead_labels;
    LCL_OBS_COUNTER_ADD("re.preflight_dead_labels",
                        preflight.report.dead_labels);
    if (preflight.report.trivially_unsolvable) {
      outcome.detected_unsolvable = true;
      outcome.blowup_message =
          "preflight lint (L020): the pruned constraint set is empty";
      LCL_OBS_EVENT1("re/preflight_unsolvable", "re", "dead_labels",
                     preflight.report.dead_labels);
      return outcome;
    }
    if (preflight.changed) {
      effective_base_ = std::move(preflight.problem);
      prune_new_to_old_ = std::move(preflight.report.new_to_old);
      outcome.preflight_pruned = true;
    }
  }

  if (auto w = find_zero_round_algorithm(effective_base_, options.degrees)) {
    witness_ = std::move(w);
    witness_step_ = 0;
    outcome.zero_round_step = 0;
    return outcome;
  }

  auto previous_signature = signature(effective_base_);
  for (int step = 0; step < options.max_steps; ++step) {
    const auto start = std::chrono::steady_clock::now();
    LCL_OBS_SPAN(step_span, "re/step", "re");
    LCL_OBS_SPAN_ARG(step_span, "index", step);
    StepStats stats;
    stats.index = step;
    try {
      const NodeEdgeCheckableLcl& current =
          levels_.empty() ? effective_base_ : levels_.back().next.problem;
      ReStep psi = apply_r(current, options.limits);
      if (options.reduce) {
        psi = reduce_step(std::move(psi), options.limits.kernel);
      }
      ReStep next = apply_rbar(psi.problem, options.limits);
      if (options.reduce) {
        next = reduce_step(std::move(next), options.limits.kernel);
      }
      if (options.canonicalize_iterates) {
        // Pure relabeling of the iterate: the problem takes its canonical
        // label order and the meaning table is permuted alongside
        // (new_meaning[p[l]] = meaning[l]), so the lift consumes the same
        // label -> label-set associations and the synthesized algorithm is
        // untouched.
        const auto form =
            lint::canonical_form(lint::spec_from_problem(next.problem));
        bool identity = true;
        for (std::size_t l = 0; l < form.old_to_new.size(); ++l) {
          if (form.old_to_new[l] != l) {
            identity = false;
            break;
          }
        }
        if (!identity) {
          std::vector<LabelSet> meaning(next.meaning.size());
          for (std::size_t l = 0; l < next.meaning.size(); ++l) {
            meaning[form.old_to_new[l]] = next.meaning[l];
          }
          next.problem = lint::build_spec(form.spec);
          next.meaning = std::move(meaning);
        }
      }
      stats.labels_psi = psi.problem.output_alphabet().size();
      stats.labels_next = next.problem.output_alphabet().size();
      stats.node_configs = next.problem.total_node_configs();
      stats.edge_configs = next.problem.edge_configs().size();
      levels_.push_back(SequenceLevel{std::move(psi), std::move(next)});
    } catch (const ReBlowupError& e) {
      outcome.budget_exhausted = true;
      outcome.blowup_message = e.what();
      return outcome;
    } catch (const std::runtime_error& e) {
      // reduce() throws when no output label survives trimming: the
      // problem admits no correct solution on any graph with an edge.
      outcome.detected_unsolvable = true;
      outcome.blowup_message = e.what();
      return outcome;
    }
    LCL_OBS_COUNTER_ADD("re.steps", 1);
    if (auto* run = obs::RunContext::current(); run != nullptr) {
      run->bump("engine_steps");
    }
    LCL_OBS_HISTOGRAM_RECORD("re.labels_per_step", stats.labels_next);
    LCL_OBS_HISTOGRAM_RECORD("re.node_configs_per_step", stats.node_configs);
    LCL_OBS_GAUGE_SET("re.current_labels", stats.labels_next);
    LCL_OBS_SPAN_ARG(step_span, "labels", stats.labels_next);
    LCL_OBS_SPAN_ARG(step_span, "node_configs", stats.node_configs);

    const NodeEdgeCheckableLcl& latest = levels_.back().next.problem;
    if (options.preflight_lint) {
      // Lint each produced iterate. With `reduce` on this is a cross-check
      // (reduction's trim performs the same support fixpoint, so any dead
      // label here is a bug worth surfacing); with `reduce` off it
      // quantifies what the faithful sequence drags along.
      lint::LintOptions lint_options;
      lint_options.zero_round = false;
      const auto iterate_report = lint::lint_problem(latest, lint_options);
      stats.lint_dead_labels = iterate_report.dead_labels;
      if (iterate_report.dead_labels > 0) {
        LCL_OBS_EVENT1("re/iterate_dead_labels", "re", "step", step);
      }
    }
    if (auto w = find_zero_round_algorithm(latest, options.degrees)) {
      witness_ = std::move(w);
      witness_step_ = static_cast<int>(levels_.size());
      stats.zero_round_solvable = true;
      outcome.zero_round_step = witness_step_;
    }
    stats.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    outcome.steps.push_back(stats);
    if (outcome.zero_round_step >= 0) return outcome;

    const auto sig = signature(latest);
    if (sig == previous_signature) {
      // The signature can collide for genuinely different problems; only an
      // exact match (up to relabeling outputs) certifies the fixed point.
      const NodeEdgeCheckableLcl& prior =
          levels_.size() >= 2 ? levels_[levels_.size() - 2].next.problem
                              : effective_base_;
      if (same_constraints(latest, prior) ||
          isomorphic_constraints(latest, prior)) {
        outcome.fixed_point = true;
        LCL_OBS_EVENT1("re/fixed_point", "re", "step", step);
        return outcome;
      }
    }
    previous_signature = sig;
  }
  return outcome;
}

std::unique_ptr<BallAlgorithm> SpeedupEngine::synthesize() const {
  LCL_OBS_SPAN(span, "re/synthesize", "re");
  if (!witness_) {
    throw std::logic_error(
        "SpeedupEngine::synthesize: no 0-round witness found; run() must "
        "succeed first");
  }
  // The witness lives at level `witness_step_`; the synthesized algorithm
  // lifts through exactly the first `witness_step_` levels.
  if (witness_step_ != static_cast<int>(levels_.size())) {
    // witness at the base problem: 0 levels to lift through.
    if (witness_step_ != 0) {
      throw std::logic_error("SpeedupEngine::synthesize: internal state");
    }
  }
  static const std::vector<SequenceLevel> kNoLevels;
  const auto& lifting_levels = witness_step_ == 0 ? kNoLevels : levels_;
  return std::make_unique<SynthesizedAlgorithm>(
      effective_base_, lifting_levels, *witness_, prune_new_to_old_);
}

}  // namespace lcl
