#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/lcl.hpp"
#include "re/step.hpp"

namespace lcl {

/// Canonical-form memo of a problem's allowed node configurations: every
/// stored configuration (a sorted multiset of output labels) is packed into
/// a 64- or 128-bit key and hashed exactly once at construction; membership
/// probes are then one pack + one flat hash lookup instead of an ordered-set
/// walk with vector comparisons. This is the shared lookup structure of the
/// mask kernels (`ReKernel::kMask` and the wider tiers) and of `reduce()`'s
/// dominated-label pass, both of which probe the same configurations over
/// and over across different derived multisets.
///
/// Packing uses `bits_per_label = bit_width(|Sigma_out| - 1)` bits per
/// label; a degree packs into one word when `degree * bits_per_label <= 64`
/// and into a two-word key when `<= 128` - the second tier is what keeps
/// 65..128-label iterates (where `bits_per_label` is 7) on the fast path up
/// to degree 18. Unpackable degrees transparently fall back to
/// `NodeEdgeCheckableLcl::node_allows`, so `allows_sorted` is always exact.
class NodeConfigIndex {
 public:
  explicit NodeConfigIndex(const NodeEdgeCheckableLcl& pi);

  /// Words of the packed key for degree-`degree` probes: 1, 2, or 0 when
  /// the degree does not pack (falls back to `node_allows`).
  std::size_t packed_words(std::size_t degree) const {
    if (degree < 1) return 0;
    const std::size_t bits = degree * bits_per_label_;
    if (bits <= 64) return 1;
    if (bits <= 128) return 2;
    return 0;
  }

  /// True when degree-`degree` probes run on a packed fast path.
  bool packable(std::size_t degree) const { return packed_words(degree) != 0; }

  /// True iff the canonical (ascending) multiset `labels[0..degree)` is an
  /// allowed node configuration. `labels` MUST be sorted ascending.
  bool allows_sorted(const Label* labels, std::size_t degree) const;

 private:
  /// A 128-bit packed key; `lo` holds the least-significant bits.
  struct Key128 {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    bool operator==(const Key128& o) const { return hi == o.hi && lo == o.lo; }
  };
  struct Key128Hash {
    std::size_t operator()(const Key128& k) const noexcept {
      // Same splitmix-style fold LabelSet::hash uses per word.
      std::size_t h = static_cast<std::size_t>(k.lo);
      h ^= static_cast<std::size_t>(k.hi) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
      return h;
    }
  };

  std::uint64_t pack1(const Label* labels, std::size_t degree) const {
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < degree; ++i) {
      key = (key << bits_per_label_) | labels[i];
    }
    return key;
  }
  Key128 pack2(const Label* labels, std::size_t degree) const {
    // Big-integer shift-or: bits_per_label_ < 64 always (alphabets are
    // size_t-indexed), so the cross-word carry shift is well-defined.
    Key128 key;
    for (std::size_t i = 0; i < degree; ++i) {
      key.hi = (key.hi << bits_per_label_) | (key.lo >> (64 - bits_per_label_));
      key.lo = (key.lo << bits_per_label_) | labels[i];
    }
    return key;
  }

  const NodeEdgeCheckableLcl* pi_;
  unsigned bits_per_label_ = 1;
  /// Indexed by degree (0..max_degree); empty for degrees stored in the
  /// other tier (or not packable at all).
  std::vector<std::unordered_set<std::uint64_t>> packed1_;
  std::vector<std::unordered_set<Key128, Key128Hash>> packed2_;
};

/// Internal entry points of the operator enumeration paths; the public
/// `apply_r`/`apply_rbar` dispatch here on `ReLimits::kernel`. All paths
/// share the alphabet/configuration guards (performed by the dispatcher),
/// emit identical obs counters, and build constraint-identical problems
/// with identical label names - `test_re_kernel_parity` fences that.
namespace re_kernel {

/// Narrowest supported `LabelMaskW` tier (in 64-bit words) covering an
/// alphabet of `n` labels: 1, 2, 4 or 8; 0 when `n > 512` (no tier fits -
/// callers fall back to the generic path and record `re.kernel_fallback`).
constexpr std::size_t mask_tier_words(std::size_t n) {
  if (n <= 64) return 1;
  if (n <= 128) return 2;
  if (n <= 256) return 4;
  if (n <= 512) return 8;
  return 0;
}

/// Word count a forced kernel choice pins (0 for `kAuto`/`kGeneric`, which
/// do not force a tier).
constexpr std::size_t forced_tier_words(ReKernel kernel) {
  switch (kernel) {
    case ReKernel::kMask:
      return 1;
    case ReKernel::kMask2:
      return 2;
    case ReKernel::kMask4:
      return 4;
    case ReKernel::kMask8:
      return 8;
    default:
      return 0;
  }
}

/// Fills `builder` (already carrying the derived alphabet) with the edge,
/// node and `g` constraints of `R(pi)` / `Rbar(pi)`, and returns the
/// derived labels' meanings. `exists_node` is true for `R` (node EXISTS /
/// edge FORALL) and false for `Rbar` (node FORALL / edge EXISTS).
///
/// The generic path walks `LabelSet` containers; the mask path identifies
/// derived label `i` with the mask `i + 1` (a `LabelMaskW<words>` value),
/// computes per-label FORALL/EXISTS partner words by a subset DP,
/// enumerates `g`-compatible labels by multi-word subset walks, and answers
/// node-quantifier queries through a `NodeConfigIndex`. `words` selects the
/// mask tier (1, 2, 4 or 8); every tier produces byte-identical output (the
/// parity battery fences this). The mask path requires the base output
/// alphabet of `pi` to satisfy `base < 63` - the derived label *indices*
/// (2^base - 1 of them) must fit one word regardless of tier - and throws
/// `std::invalid_argument` otherwise.
///
/// `jobs > 1` partitions the outer enumeration (edge rows, node multisets
/// keyed by their first index) across a `batch::Pool` of that many workers,
/// each appending allowed configurations to a flat per-worker arena; the
/// arenas are merged in partition order, so the built problem is identical
/// for every jobs value.
std::vector<LabelSet> fill_generic(NodeEdgeCheckableLcl::Builder& builder,
                                   const NodeEdgeCheckableLcl& pi,
                                   bool exists_node);
std::vector<LabelSet> fill_mask(NodeEdgeCheckableLcl::Builder& builder,
                                const NodeEdgeCheckableLcl& pi,
                                bool exists_node, std::size_t words = 1,
                                std::size_t jobs = 1);

}  // namespace re_kernel

}  // namespace lcl
