#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/lcl.hpp"
#include "re/step.hpp"

namespace lcl {

/// Canonical-form memo of a problem's allowed node configurations: every
/// stored configuration (a sorted multiset of output labels) is packed into
/// a single 64-bit key and hashed exactly once at construction; membership
/// probes are then one pack + one flat hash lookup instead of an ordered-set
/// walk with vector comparisons. This is the shared lookup structure of the
/// mask kernels (`ReKernel::kMask`) and of `reduce()`'s dominated-label
/// pass, both of which probe the same configurations over and over across
/// different derived multisets.
///
/// Packing uses `bits_per_label = bit_width(|Sigma_out| - 1)` bits per
/// label; a degree packs when `degree * bits_per_label <= 64`. Unpackable
/// degrees (or alphabets beyond 64 labels) transparently fall back to
/// `NodeEdgeCheckableLcl::node_allows`, so `allows_sorted` is always exact.
class NodeConfigIndex {
 public:
  explicit NodeConfigIndex(const NodeEdgeCheckableLcl& pi);

  /// True when degree-`degree` probes run on the packed fast path.
  bool packable(std::size_t degree) const {
    return degree >= 1 && degree * bits_per_label_ <= 64;
  }

  /// True iff the canonical (ascending) multiset `labels[0..degree)` is an
  /// allowed node configuration. `labels` MUST be sorted ascending.
  bool allows_sorted(const Label* labels, std::size_t degree) const;

 private:
  std::uint64_t pack(const Label* labels, std::size_t degree) const {
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < degree; ++i) {
      key = (key << bits_per_label_) | labels[i];
    }
    return key;
  }

  const NodeEdgeCheckableLcl* pi_;
  unsigned bits_per_label_ = 1;
  /// Indexed by degree (0..max_degree); empty for unpackable degrees.
  std::vector<std::unordered_set<std::uint64_t>> packed_;
};

/// Internal entry points of the two operator enumeration paths; the public
/// `apply_r`/`apply_rbar` dispatch here on `ReLimits::kernel`. Both paths
/// share the alphabet/configuration guards (performed by the dispatcher),
/// emit identical obs counters, and build constraint-identical problems
/// with identical label names - `test_re_kernel_parity` fences that.
namespace re_kernel {

/// Fills `builder` (already carrying the derived alphabet) with the edge,
/// node and `g` constraints of `R(pi)` / `Rbar(pi)`, and returns the
/// derived labels' meanings. `exists_node` is true for `R` (node EXISTS /
/// edge FORALL) and false for `Rbar` (node FORALL / edge EXISTS).
///
/// The generic path walks `LabelSet` containers; the mask path identifies
/// derived label `i` with the single-word mask `i + 1`, computes per-label
/// FORALL/EXISTS partner words by a subset DP, enumerates `g`-compatible
/// labels by subset walks, and answers node-quantifier queries through a
/// `NodeConfigIndex`. The mask path requires the base output alphabet of
/// `pi` to fit one word (`<= 64` labels) and throws
/// `std::invalid_argument` otherwise.
std::vector<LabelSet> fill_generic(NodeEdgeCheckableLcl::Builder& builder,
                                   const NodeEdgeCheckableLcl& pi,
                                   bool exists_node);
std::vector<LabelSet> fill_mask(NodeEdgeCheckableLcl::Builder& builder,
                                const NodeEdgeCheckableLcl& pi,
                                bool exists_node);

}  // namespace re_kernel

}  // namespace lcl
