#include "re/zero_round.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/combinatorics.hpp"
#include "util/label_set.hpp"

namespace lcl {

std::vector<Label> ZeroRoundAlgorithm::apply(
    const std::vector<Label>& inputs) const {
  // Stable argsort of the inputs, so equal inputs keep port order.
  std::vector<std::size_t> order(inputs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return inputs[a] < inputs[b];
  });
  std::vector<Label> sorted(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    sorted[i] = inputs[order[i]];
  }
  const auto& out_sorted = outputs.at(sorted);
  std::vector<Label> out(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    out[order[i]] = out_sorted[i];
  }
  return out;
}

namespace {

/// All ways to answer one sorted input multiset: output tuples satisfying
/// the node constraint and g, position by position.
std::vector<std::vector<Label>> candidate_answers(
    const NodeEdgeCheckableLcl& p, const std::vector<Label>& inputs) {
  std::vector<std::vector<Label>> result;
  const int d = static_cast<int>(inputs.size());
  for (const auto& config : p.node_configs(d)) {
    // Assign the config's labels (a multiset) to positions such that
    // position j gets a label in g(inputs[j]). Enumerate distinct
    // assignments via backtracking over positions, consuming config labels.
    const auto& labels = config.labels();
    std::vector<char> used(labels.size(), 0);
    std::vector<Label> current(inputs.size());
    const auto assign = [&](auto&& self, std::size_t pos) -> void {
      if (pos == inputs.size()) {
        result.push_back(current);
        return;
      }
      Label previous = static_cast<Label>(-1);
      for (std::size_t k = 0; k < labels.size(); ++k) {
        if (used[k] || labels[k] == previous) continue;  // skip duplicates
        if (!p.allowed_outputs(inputs[pos]).contains(labels[k])) continue;
        previous = labels[k];
        used[k] = 1;
        current[pos] = labels[k];
        self(self, pos + 1);
        used[k] = 0;
      }
    };
    assign(assign, 0);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace

std::optional<ZeroRoundAlgorithm> find_zero_round_algorithm(
    const NodeEdgeCheckableLcl& problem, const std::vector<int>& degrees) {
  LCL_OBS_SPAN(span, "re/zero_round", "re");
  LCL_OBS_COUNTER_ADD("re.zero_round_tests", 1);
  std::vector<int> degree_list = degrees;
  if (degree_list.empty()) {
    for (int d = 1; d <= problem.max_degree(); ++d) degree_list.push_back(d);
  }
  // Enumerate all sorted input multisets for the required degrees.
  std::vector<std::vector<Label>> input_tuples;
  for (const int d : degree_list) {
    for (const auto& m : enumerate_multisets(
             problem.input_alphabet().size(), static_cast<std::size_t>(d))) {
      input_tuples.emplace_back(m.begin(), m.end());
    }
  }

  // Pre-compute candidates per tuple; fail fast if some tuple has none.
  std::vector<std::vector<std::vector<Label>>> candidates;
  candidates.reserve(input_tuples.size());
  for (const auto& tuple : input_tuples) {
    candidates.push_back(candidate_answers(problem, tuple));
    if (candidates.back().empty()) return std::nullopt;
  }

  // Order tuples by ascending candidate count: most constrained first.
  std::vector<std::size_t> order(input_tuples.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return candidates[a].size() < candidates[b].size();
  });

  const std::size_t out_size = problem.output_alphabet().size();
  std::vector<int> used_count(out_size, 0);
  LabelSet used(out_size);
  std::vector<const std::vector<Label>*> chosen(input_tuples.size(), nullptr);

  // A label may join the used set only if it is edge-compatible with every
  // already-used label and with itself.
  const auto compatible = [&](Label l) {
    if (!problem.edge_allows(l, l)) return false;
    return used.is_subset_of(problem.edge_partners(l));
  };

  const auto search = [&](auto&& self, std::size_t idx) -> bool {
    if (idx == order.size()) return true;
    const std::size_t t = order[idx];
    for (const auto& answer : candidates[t]) {
      // Try to commit this answer's labels to the used-clique.
      std::vector<Label> added;
      bool ok = true;
      for (const auto l : answer) {
        if (used_count[l] == 0) {
          if (!compatible(l)) {
            ok = false;
            break;
          }
          used.insert(l);
        }
        ++used_count[l];
        added.push_back(l);
      }
      if (ok) {
        chosen[t] = &answer;
        if (self(self, idx + 1)) return true;
        chosen[t] = nullptr;
      }
      for (auto it = added.rbegin(); it != added.rend(); ++it) {
        if (--used_count[*it] == 0) used.erase(*it);
      }
    }
    return false;
  };

  if (!search(search, 0)) return std::nullopt;

  ZeroRoundAlgorithm algo;
  for (std::size_t t = 0; t < input_tuples.size(); ++t) {
    algo.outputs[input_tuples[t]] = *chosen[t];
  }
  return algo;
}

bool zero_round_solvable(const NodeEdgeCheckableLcl& problem,
                         const std::vector<int>& degrees) {
  return find_zero_round_algorithm(problem, degrees).has_value();
}

}  // namespace lcl
