#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace lcl {

/// Internal digraph utilities shared by the cycle and path classifiers.
/// The "walk automaton" of an LCL on chains has one state per output label;
/// these helpers analyze its strongly connected structure.

/// Strongly connected components (Kosaraju); returns the component index of
/// every state (components numbered in reverse topological order).
std::vector<int> strongly_connected_components(
    const std::vector<std::vector<Label>>& adjacency);

/// Gcd of the cycle lengths within the SCC `target`, or 0 if that SCC
/// contains no edge (a singleton without a self-loop). Gcd 1 means the SCC
/// is *flexible*: it contains closed walks of every sufficiently large
/// length - the automaton-side characterization of Theta(log* n)
/// solvability on chains.
std::uint64_t scc_cycle_gcd(const std::vector<std::vector<Label>>& adjacency,
                            const std::vector<int>& component, int target);

/// States from which some state in `targets` is reachable (including the
/// targets themselves).
std::vector<char> co_reachable(const std::vector<std::vector<Label>>& adjacency,
                               const std::vector<char>& targets);

/// States reachable from some state in `sources` (including the sources).
std::vector<char> reachable(const std::vector<std::vector<Label>>& adjacency,
                            const std::vector<char>& sources);

}  // namespace lcl
