#include "classify/cycle_classifier.hpp"

#include <algorithm>
#include <stdexcept>

#include "classify/automaton.hpp"
#include "core/configuration.hpp"
#include "lint/analyzer.hpp"
#include "obs/obs.hpp"
#include "re/engine.hpp"

namespace lcl {

std::string to_string(CycleComplexity c) {
  switch (c) {
    case CycleComplexity::kUnsolvable:
      return "unsolvable";
    case CycleComplexity::kGlobal:
      return "Theta(n)";
    case CycleComplexity::kLogStar:
      return "Theta(log* n)";
    case CycleComplexity::kConstant:
      return "O(1)";
  }
  return "?";
}

namespace {

void validate(const NodeEdgeCheckableLcl& problem) {
  if (problem.input_alphabet().size() != 1) {
    throw std::invalid_argument(
        "cycle classifier: only LCLs without inputs are supported (the "
        "inputful question is PSPACE-hard, Section 1.4)");
  }
  if (problem.max_degree() < 2) {
    throw std::invalid_argument("cycle classifier: max degree must be >= 2");
  }
}

/// The walk automaton: adjacency[y] = all y' with a transition y -> y'.
std::vector<std::vector<Label>> walk_automaton(
    const NodeEdgeCheckableLcl& problem) {
  const std::size_t k = problem.output_alphabet().size();
  std::vector<std::vector<Label>> adjacency(k);
  for (Label y = 0; y < k; ++y) {
    for (Label y2 = 0; y2 < k; ++y2) {
      bool ok = false;
      for (Label x = 0; x < k && !ok; ++x) {
        if (problem.edge_allows(y, x) &&
            problem.node_allows(Configuration({x, y2}))) {
          ok = true;
        }
      }
      if (ok) adjacency[y].push_back(y2);
    }
  }
  return adjacency;
}

}  // namespace

CycleClassification classify_on_cycles(const NodeEdgeCheckableLcl& problem,
                                       int max_speedup_steps) {
  validate(problem);
  LCL_OBS_SPAN(span, "classify/cycles", "classify");
  CycleClassification result;

  // Lint pre-flight: an L020 verdict settles the classification outright,
  // and dead-label pruning shrinks the walk automaton (and the speedup
  // engine's power-set base) without changing the complexity class.
  lint::LintOptions lint_options;
  lint_options.zero_round = false;
  auto preflight = lint::prune_problem(problem, lint_options);
  result.pruned_labels = preflight.report.dead_labels;
  if (preflight.report.trivially_unsolvable) {
    result.complexity = CycleComplexity::kUnsolvable;
    return result;
  }
  const NodeEdgeCheckableLcl& effective = preflight.problem;

  const auto adj = walk_automaton(effective);
  if (LCL_OBS_ENABLED()) {
    std::size_t edges = 0;
    for (const auto& row : adj) edges += row.size();
    LCL_OBS_COUNTER_ADD("classify.automaton_states", adj.size());
    LCL_OBS_COUNTER_ADD("classify.automaton_edges", edges);
    LCL_OBS_HISTOGRAM_RECORD("classify.automaton_size", adj.size());
  }
  const auto component = strongly_connected_components(adj);
  int components = 0;
  for (const int c : component) components = std::max(components, c + 1);
  for (int c = 0; c < components; ++c) {
    const std::uint64_t g = scc_cycle_gcd(adj, component, c);
    if (g != 0) result.scc_gcds.push_back(g);
  }
  std::sort(result.scc_gcds.begin(), result.scc_gcds.end());

  if (result.scc_gcds.empty()) {
    result.complexity = CycleComplexity::kUnsolvable;
    return result;
  }
  const bool flexible =
      std::find(result.scc_gcds.begin(), result.scc_gcds.end(), 1u) !=
      result.scc_gcds.end();
  if (!flexible) {
    result.complexity = CycleComplexity::kGlobal;
    return result;
  }

  // Flexible: O(1) or Theta(log* n). The round-elimination engine
  // semidecides O(1) (Theorem 3.10 machinery restricted to degree 2).
  SpeedupEngine engine(effective);
  SpeedupEngine::Options options;
  options.max_steps = max_speedup_steps;
  options.degrees = {2};
  const auto outcome = engine.run(options);
  if (outcome.zero_round_step >= 0) {
    result.complexity = CycleComplexity::kConstant;
    result.zero_round_collapse_step = outcome.zero_round_step;
  } else {
    result.complexity = CycleComplexity::kLogStar;
  }
  return result;
}

bool solvable_on_cycle_length(const NodeEdgeCheckableLcl& problem,
                              std::uint64_t n) {
  validate(problem);
  if (n < 3) {
    throw std::invalid_argument("solvable_on_cycle_length: n >= 3");
  }
  LCL_OBS_SPAN(span, "classify/cycle_length", "classify");
  const auto adj = walk_automaton(problem);
  const std::size_t k = adj.size();
  if (k > 64 * 64) {
    throw std::invalid_argument(
        "solvable_on_cycle_length: alphabet too large for the dense matrix "
        "power");
  }
  // Boolean matrix power A^n via binary exponentiation; rows as bitsets.
  using Row = std::vector<std::uint64_t>;
  const std::size_t words = (k + 63) / 64;
  const auto make = [&]() {
    return std::vector<Row>(k, Row(words, 0));
  };
  auto base = make();
  for (Label u = 0; u < k; ++u) {
    for (const Label v : adj[u]) base[u][v / 64] |= std::uint64_t{1} << (v % 64);
  }
  const auto multiply = [&](const std::vector<Row>& a,
                            const std::vector<Row>& b) {
    LCL_OBS_COUNTER_ADD("classify.matrix_mults", 1);
    auto out = make();
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        if ((a[i][j / 64] >> (j % 64)) & 1) {
          for (std::size_t w = 0; w < words; ++w) out[i][w] |= b[j][w];
        }
      }
    }
    return out;
  };
  auto result = make();
  for (std::size_t i = 0; i < k; ++i) {
    result[i][i / 64] |= std::uint64_t{1} << (i % 64);  // identity
  }
  auto power = base;
  std::uint64_t e = n;
  while (e > 0) {
    if (e & 1) result = multiply(result, power);
    power = multiply(power, power);
    e >>= 1;
  }
  for (std::size_t i = 0; i < k; ++i) {
    if ((result[i][i / 64] >> (i % 64)) & 1) return true;
  }
  return false;
}

}  // namespace lcl
