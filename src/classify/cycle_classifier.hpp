#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/lcl.hpp"

namespace lcl {

/// Complexity classes of LCLs on cycles/paths (Section 1.4: "in paths and
/// cycles the only LOCAL complexities are O(1), Theta(log* n) and
/// Theta(n), and it can be decided in polynomial time into which class a
/// given LCL problem falls, provided that the LCL does not have inputs").
enum class CycleComplexity {
  /// No solution exists on any sufficiently long cycle.
  kUnsolvable,
  /// Solvable only for a strict (periodic) subset of lengths, or inflexibly:
  /// Theta(n) on the solvable instances (e.g. proper 2-coloring).
  kGlobal,
  /// Solvable in Theta(log* n) rounds.
  kLogStar,
  /// Solvable in O(1) rounds.
  kConstant,
};

std::string to_string(CycleComplexity c);

/// Outcome of the cycle classification.
struct CycleClassification {
  CycleComplexity complexity = CycleComplexity::kUnsolvable;
  /// Set of cycle lengths admitting a solution is, for large lengths, the
  /// union of arithmetic progressions with these gcds (one per automaton
  /// SCC); gcd 1 present <=> solvable on all large cycles.
  std::vector<std::uint64_t> scc_gcds;
  /// Step at which the round-elimination engine certified O(1)
  /// (-1: no collapse within budget).
  int zero_round_collapse_step = -1;
  /// Dead output labels the lint pre-flight pruned before the walk
  /// automaton was built (0 for well-formed specs). An L020 verdict
  /// short-circuits straight to `kUnsolvable`.
  std::size_t pruned_labels = 0;
};

/// Decides the complexity class of a node-edge-checkable LCL *without
/// inputs* (|Sigma_in| = 1) with max degree >= 2 on cycles.
///
/// Method: cycle solutions of length n correspond to closed n-walks in the
/// "walk automaton" whose states are output labels, with a transition
/// y -> y' iff some label x satisfies {y, x} in E and {x, y'} in N^2.
///  - no closed walks at all  => unsolvable (on large cycles);
///  - every SCC has cycle-gcd > 1 => solvable only for a periodic subset of
///    lengths => global;
///  - some SCC has cycle-gcd 1 => solvable on all large cycles; then the
///    round-elimination engine (Theorem 3.10 machinery, degree set {2})
///    separates O(1) - `f^k` becomes 0-round solvable for some k within
///    `max_speedup_steps` - from Theta(log* n).
///
/// The O(1)/log* separation is a semidecision procedure in the spirit of
/// Question 1.7: a collapse certifies O(1); exhausting the budget reports
/// log* (correct for every problem whose collapse point, if any, lies
/// within the budget).
CycleClassification classify_on_cycles(const NodeEdgeCheckableLcl& problem,
                                       int max_speedup_steps = 3);

/// True iff the problem (no inputs, Delta >= 2) is solvable on the cycle of
/// length `n` - computed from the walk automaton, suitable for
/// cross-checking against `brute_force_solvable`.
bool solvable_on_cycle_length(const NodeEdgeCheckableLcl& problem,
                              std::uint64_t n);

}  // namespace lcl
