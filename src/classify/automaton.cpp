#include "classify/automaton.hpp"

#include <algorithm>
#include <queue>

#include "util/math.hpp"

namespace lcl {

std::vector<int> strongly_connected_components(
    const std::vector<std::vector<Label>>& adjacency) {
  const std::size_t n = adjacency.size();
  std::vector<std::vector<Label>> rev(n);
  for (Label u = 0; u < n; ++u) {
    for (const Label v : adjacency[u]) rev[v].push_back(u);
  }
  std::vector<char> seen(n, 0);
  std::vector<Label> order;
  order.reserve(n);
  for (Label s = 0; s < n; ++s) {
    if (seen[s]) continue;
    std::vector<std::pair<Label, std::size_t>> stack{{s, 0}};
    seen[s] = 1;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < adjacency[u].size()) {
        const Label v = adjacency[u][next++];
        if (!seen[v]) {
          seen[v] = 1;
          stack.emplace_back(v, 0);
        }
      } else {
        order.push_back(u);
        stack.pop_back();
      }
    }
  }
  std::vector<int> component(n, -1);
  int components = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (component[*it] != -1) continue;
    std::queue<Label> frontier;
    frontier.push(*it);
    component[*it] = components;
    while (!frontier.empty()) {
      const Label u = frontier.front();
      frontier.pop();
      for (const Label v : rev[u]) {
        if (component[v] == -1) {
          component[v] = components;
          frontier.push(v);
        }
      }
    }
    ++components;
  }
  return component;
}

std::uint64_t scc_cycle_gcd(const std::vector<std::vector<Label>>& adjacency,
                            const std::vector<int>& component, int target) {
  Label root = static_cast<Label>(-1);
  for (Label v = 0; v < adjacency.size(); ++v) {
    if (component[v] == target) {
      root = v;
      break;
    }
  }
  if (root == static_cast<Label>(-1)) return 0;
  std::vector<std::int64_t> layer(adjacency.size(), -1);
  std::queue<Label> frontier;
  layer[root] = 0;
  frontier.push(root);
  std::uint64_t g = 0;
  bool any_edge = false;
  while (!frontier.empty()) {
    const Label u = frontier.front();
    frontier.pop();
    for (const Label v : adjacency[u]) {
      if (component[v] != target) continue;
      any_edge = true;
      if (layer[v] == -1) {
        layer[v] = layer[u] + 1;
        frontier.push(v);
      } else {
        const std::int64_t diff = layer[u] + 1 - layer[v];
        g = gcd_u64(g, static_cast<std::uint64_t>(diff < 0 ? -diff : diff));
      }
    }
  }
  return any_edge ? g : 0;
}

std::vector<char> reachable(const std::vector<std::vector<Label>>& adjacency,
                            const std::vector<char>& sources) {
  std::vector<char> seen = sources;
  std::queue<Label> frontier;
  for (Label v = 0; v < adjacency.size(); ++v) {
    if (seen[v]) frontier.push(v);
  }
  while (!frontier.empty()) {
    const Label u = frontier.front();
    frontier.pop();
    for (const Label v : adjacency[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        frontier.push(v);
      }
    }
  }
  return seen;
}

std::vector<char> co_reachable(const std::vector<std::vector<Label>>& adjacency,
                               const std::vector<char>& targets) {
  std::vector<std::vector<Label>> rev(adjacency.size());
  for (Label u = 0; u < adjacency.size(); ++u) {
    for (const Label v : adjacency[u]) rev[v].push_back(u);
  }
  return reachable(rev, targets);
}

}  // namespace lcl
