#pragma once

#include "classify/cycle_classifier.hpp"

namespace lcl {

/// Outcome of the path classification (same class enum as cycles; on paths
/// the known trichotomy for solvable no-input LCLs is O(1) / Theta(log* n)
/// / Theta(n) as well, Section 1.4).
struct PathClassification {
  CycleComplexity complexity = CycleComplexity::kUnsolvable;
  /// True iff a solution exists on the n-node path for every n >= 1.
  bool solvable_for_all_lengths = false;
  int zero_round_collapse_step = -1;
  /// Dead output labels the lint pre-flight pruned before the walk
  /// automaton was built (see CycleClassification::pruned_labels).
  std::size_t pruned_labels = 0;
};

/// Decides the complexity class of a node-edge-checkable LCL without inputs
/// on paths. Solutions on the n-node path correspond to n-node walks in the
/// walk automaton that start in a state compatible with a degree-1 start
/// node and end in a state compatible with a degree-1 end node; the
/// classifier analyzes the reachable/co-reachable subautomaton:
///  - no feasible walk for all large n  => unsolvable or global;
///  - feasible for all large n (some gcd-1 SCC on a start-to-end route, or
///    enough slack in walk lengths) => Theta(log* n) or, when the round
///    elimination engine collapses (degrees {1, 2}), O(1).
PathClassification classify_on_paths(const NodeEdgeCheckableLcl& problem,
                                     int max_speedup_steps = 2);

/// True iff the problem is solvable on the path with `n` nodes (n >= 1
/// single node allowed only when n >= 2 here: a 1-node path has no
/// half-edges; we require n >= 2). Cross-checkable with brute force.
bool solvable_on_path_length(const NodeEdgeCheckableLcl& problem,
                             std::uint64_t n);

}  // namespace lcl
