#include "classify/path_classifier.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

#include "classify/automaton.hpp"
#include "core/configuration.hpp"
#include "lint/analyzer.hpp"
#include "obs/obs.hpp"
#include "re/engine.hpp"
#include "util/label_set.hpp"

namespace lcl {

namespace {

void validate(const NodeEdgeCheckableLcl& problem) {
  if (problem.input_alphabet().size() != 1) {
    throw std::invalid_argument(
        "path classifier: only LCLs without inputs are supported");
  }
  if (problem.max_degree() < 2) {
    throw std::invalid_argument("path classifier: max degree must be >= 2");
  }
}

/// The walk automaton on "forward" half-edge labels, with start and end
/// state sets derived from the degree-1 node constraint:
///  - start states: {y} in N^1;
///  - transition y -> y': exists x with {y,x} in E and {x,y'} in N^2;
///  - end states: exists x with {y,x} in E and {x} in N^1.
struct PathAutomaton {
  std::size_t k = 0;
  std::vector<std::vector<Label>> adjacency;
  LabelSet start{0};
  LabelSet end{0};
};

PathAutomaton build_automaton(const NodeEdgeCheckableLcl& p) {
  PathAutomaton a;
  a.k = p.output_alphabet().size();
  a.adjacency.resize(a.k);
  a.start = LabelSet(a.k);
  a.end = LabelSet(a.k);
  for (Label y = 0; y < a.k; ++y) {
    if (p.node_allows(Configuration({y}))) a.start.insert(y);
    for (Label x = 0; x < a.k; ++x) {
      if (!p.edge_allows(y, x)) continue;
      if (p.node_allows(Configuration({x}))) a.end.insert(y);
      for (Label y2 = 0; y2 < a.k; ++y2) {
        if (p.node_allows(Configuration({x, y2}))) {
          // Duplicates via different intermediate x are deduped below.
          a.adjacency[y].push_back(y2);
        }
      }
    }
  }
  for (auto& adj : a.adjacency) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
  return a;
}

/// The sequence R_0 = start, R_{j+1} = successors(R_j) is eventually
/// periodic (finitely many subsets); returns the sequence up to the first
/// repeat together with (preperiod, period).
struct ReachSequence {
  std::vector<LabelSet> sets;
  std::size_t preperiod = 0;
  std::size_t period = 1;
};

ReachSequence reach_sequence(const PathAutomaton& a) {
  ReachSequence seq;
  std::map<LabelSet, std::size_t> seen;
  LabelSet current = a.start;
  while (seen.count(current) == 0) {
    seen[current] = seq.sets.size();
    seq.sets.push_back(current);
    LabelSet next(a.k);
    for (const auto y : current.to_vector()) {
      for (const auto y2 : a.adjacency[y]) next.insert(y2);
    }
    current = std::move(next);
  }
  seq.preperiod = seen[current];
  seq.period = seq.sets.size() - seq.preperiod;
  return seq;
}

/// Feasible with exactly j transitions?
bool feasible_steps(const PathAutomaton& a, const ReachSequence& seq,
                    std::uint64_t j) {
  const std::size_t idx =
      j < seq.sets.size()
          ? static_cast<std::size_t>(j)
          : seq.preperiod + static_cast<std::size_t>(
                                (j - seq.preperiod) % seq.period);
  return seq.sets[idx].intersects(a.end);
}

}  // namespace

bool solvable_on_path_length(const NodeEdgeCheckableLcl& problem,
                             std::uint64_t n) {
  validate(problem);
  if (n < 2) {
    throw std::invalid_argument("solvable_on_path_length: n >= 2");
  }
  LCL_OBS_SPAN(span, "classify/path_length", "classify");
  const auto a = build_automaton(problem);
  const auto seq = reach_sequence(a);
  return feasible_steps(a, seq, n - 2);
}

PathClassification classify_on_paths(const NodeEdgeCheckableLcl& problem,
                                     int max_speedup_steps) {
  validate(problem);
  LCL_OBS_SPAN(span, "classify/paths", "classify");
  PathClassification result;

  // Lint pre-flight, mirroring `classify_on_cycles`: L020 short-circuits,
  // pruning shrinks the automaton without changing the class. Note that
  // `solvable_for_all_lengths` stays correct too - dead labels occur in no
  // valid labeling of any path.
  lint::LintOptions lint_options;
  lint_options.zero_round = false;
  auto preflight = lint::prune_problem(problem, lint_options);
  result.pruned_labels = preflight.report.dead_labels;
  if (preflight.report.trivially_unsolvable) {
    result.complexity = CycleComplexity::kUnsolvable;
    return result;
  }
  const NodeEdgeCheckableLcl& effective = preflight.problem;

  const auto a = build_automaton(effective);
  if (LCL_OBS_ENABLED()) {
    std::size_t edges = 0;
    for (const auto& row : a.adjacency) edges += row.size();
    LCL_OBS_COUNTER_ADD("classify.automaton_states", a.k);
    LCL_OBS_COUNTER_ADD("classify.automaton_edges", edges);
    LCL_OBS_HISTOGRAM_RECORD("classify.automaton_size", a.k);
  }
  const auto seq = reach_sequence(a);
  LCL_OBS_HISTOGRAM_RECORD("classify.reach_sequence_length",
                           seq.sets.size());
  LCL_OBS_SPAN_ARG(span, "states", a.k);
  LCL_OBS_SPAN_ARG(span, "reach_sets", seq.sets.size());

  bool all = true, some_large = false;
  for (std::size_t j = 0; j < seq.sets.size(); ++j) {
    const bool ok = seq.sets[j].intersects(a.end);
    if (!ok) all = false;
    if (j >= seq.preperiod && ok) some_large = true;
  }
  result.solvable_for_all_lengths = all;

  if (!some_large) {
    result.complexity = CycleComplexity::kUnsolvable;
    return result;
  }

  // Sub-global solvability needs *state flexibility*, not just length
  // feasibility: a gcd-1 SCC on some start-to-end route lets partial
  // solutions be spliced locally (the classic log* upper bound); without
  // it the problem is global even when every length is feasible - proper
  // 2-coloring of paths is the canonical example (solvable for every n,
  // yet Theta(n), because the automaton's only SCC has cycle gcd 2).
  std::vector<char> starts(a.k, 0), ends(a.k, 0);
  for (const auto y : a.start.to_vector()) starts[y] = 1;
  for (const auto y : a.end.to_vector()) ends[y] = 1;
  const auto from_start = reachable(a.adjacency, starts);
  const auto to_end = co_reachable(a.adjacency, ends);
  const auto component = strongly_connected_components(a.adjacency);
  bool flexible = false;
  for (Label u = 0; u < a.k && !flexible; ++u) {
    if (from_start[u] && to_end[u] &&
        scc_cycle_gcd(a.adjacency, component, component[u]) == 1) {
      flexible = true;
    }
  }
  if (!flexible) {
    result.complexity = CycleComplexity::kGlobal;
    return result;
  }

  SpeedupEngine engine(effective);
  SpeedupEngine::Options options;
  options.max_steps = max_speedup_steps;
  options.degrees = {1, 2};
  const auto outcome = engine.run(options);
  if (outcome.zero_round_step >= 0) {
    result.complexity = CycleComplexity::kConstant;
    result.zero_round_collapse_step = outcome.zero_round_step;
  } else {
    result.complexity = CycleComplexity::kLogStar;
  }
  return result;
}

}  // namespace lcl
