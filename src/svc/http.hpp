#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace lcl::svc {

/// One HTTP header. Names are matched case-insensitively on lookup; the
/// original spelling is preserved for pass-through.
struct Header {
  std::string name;
  std::string value;
};

/// Case-insensitive ASCII comparison (HTTP header names, token values).
bool iequals(std::string_view a, std::string_view b) noexcept;

/// A parsed inbound request. `target` is the raw request target; `path` and
/// `query` are its two halves around the first '?'.
struct HttpRequest {
  std::string method;   // "GET", "POST", ... (verbatim)
  std::string target;   // "/v1/survey/s1?wait=1"
  std::string path;     // "/v1/survey/s1"
  std::string query;    // "wait=1" ("" when absent)
  std::string version;  // "HTTP/1.1"
  std::vector<Header> headers;
  std::string body;

  /// First header with this name (case-insensitive) or nullptr.
  const std::string* header(std::string_view name) const noexcept;
  /// HTTP/1.1 defaults to keep-alive unless `Connection: close`; HTTP/1.0
  /// defaults to close unless `Connection: keep-alive`.
  bool keep_alive() const noexcept;
};

/// What a handler returns. The server adds Content-Length, Connection, and
/// the status reason phrase itself.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::vector<Header> extra_headers;
};

/// Canonical reason phrase for the status codes this codebase emits;
/// "Unknown" otherwise (the code still serializes).
const char* status_reason(int status) noexcept;

/// Dependency-free threaded HTTP/1.1 server - the shared transport under
/// `obs::Exporter` (metrics scrapes) and `svc::Service` (the lcld API).
///
/// Model: one accept thread plus one thread per live connection, capped by
/// `Options::max_connections` (beyond the cap a connection is answered
/// `503` and closed before a thread is spawned). Connections are keep-alive
/// by default; each parsed request is handed to `Options::handler`, whose
/// exceptions map to a plain `500`. The server itself answers the
/// *transport*-level errors - `400` malformed request line/headers, `408`
/// read timeout on a partial request, `413` body over `max_body_bytes`,
/// `431` headers over `max_header_bytes`, `501` chunked transfer encoding -
/// always with `Connection: close`. Routing-level `404`/`405` are the
/// handler's business.
///
/// Shutdown is two-phase: `drain()` stops accepting (listen socket closes),
/// lets in-flight requests finish (their responses are sent
/// `Connection: close`), closes idle keep-alive connections, and returns
/// when the last connection thread is gone. `stop()` is `drain()` plus
/// joining the accept thread; the destructor calls `stop()`.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    /// Loopback by default so a box does not silently expose the API.
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port (read back via `port()`).
    std::uint16_t port = 0;
    /// Request line + headers cap; beyond it the request is answered 431.
    std::size_t max_header_bytes = 16 * 1024;
    /// Body cap (Content-Length and actual bytes); beyond it 413.
    std::size_t max_body_bytes = 1 << 20;
    /// Seconds a partial request (or an idle keep-alive connection) may
    /// sit before the connection is timed out (408 on partial reads).
    int read_timeout_seconds = 5;
    /// Live connection-thread cap; the overflow connection is answered 503.
    std::size_t max_connections = 32;
    /// false = every response carries `Connection: close` (the exporter's
    /// one-request-per-connection contract).
    bool keep_alive = true;
    Handler handler;
  };

  HttpServer() = default;
  explicit HttpServer(Options options) : options_(std::move(options)) {}
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the accept thread. Returns false with
  /// `error()` set when the address is unusable or no handler was given.
  /// Idempotent while running.
  bool start();

  /// Graceful shutdown: stop accepting, finish in-flight requests, close
  /// idle connections, wait for every connection thread. Idempotent.
  void drain();

  /// `drain()` + join the accept thread + close the listen socket. Called
  /// by the destructor.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound port (resolves port 0 after a successful `start()`).
  std::uint16_t port() const noexcept { return bound_port_; }
  const std::string& error() const noexcept { return error_; }

  /// Requests answered so far (handler responses and transport errors).
  std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }
  /// Connections refused with 503 because `max_connections` was reached.
  std::uint64_t connections_rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);

  Options options_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> rejected_{0};
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::string error_;

  // Connection threads detach; drain() waits on this count instead of
  // joining. A connection thread touches no server state after its final
  // decrement-and-notify, so waiting on zero is a safe teardown barrier.
  std::mutex conn_mutex_;
  std::condition_variable conn_cv_;
  std::size_t live_connections_ = 0;
};

/// Options for the blocking test/CLI client below.
struct HttpClientOptions {
  /// Hard cap on the response (headers + body); beyond it the request
  /// throws instead of silently truncating.
  std::size_t max_response_bytes = 8u << 20;
  /// Socket receive timeout.
  int timeout_seconds = 30;
};

/// A fully read client-side response.
struct HttpClientResponse {
  int status = 0;              // parsed from the status line
  std::string status_line;     // "HTTP/1.1 200 OK"
  std::vector<Header> headers;
  std::string body;

  const std::string* header(std::string_view name) const noexcept;
};

/// Minimal blocking HTTP/1.1 client for tests and CLIs: one request, one
/// fully validated response (`Connection: close` is always sent). Unlike a
/// read-to-EOF loop this *verifies* the transfer: a response whose body is
/// shorter than its Content-Length throws "truncated", one beyond
/// `max_response_bytes` throws "exceeds cap", a missing header terminator
/// or unparsable status line throws "malformed" - it never hands back a
/// silently incomplete body. Throws `std::runtime_error` on any connect /
/// transport / validation failure.
HttpClientResponse http_request(const std::string& host, std::uint16_t port,
                                const std::string& method,
                                const std::string& path,
                                const std::string& body = std::string(),
                                const std::string& content_type =
                                    "application/json",
                                const HttpClientOptions& options = {});

}  // namespace lcl::svc
