#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "batch/cache.hpp"
#include "batch/pool.hpp"
#include "obs/prom.hpp"
#include "re/engine.hpp"
#include "svc/http.hpp"

namespace lcl::svc {

/// The lcld application layer: routes the versioned HTTP+JSON API onto the
/// batch runtime. One `Service` owns the shared worker pool and result
/// cache; an `HttpServer` (or a test) feeds it parsed requests via
/// `handle()`.
///
/// Routes (bodies are the lint/fuzz spec-JSON dialect):
///
///   POST /v1/classify    one problem -> the survey outcome row (verdicts
///                        come from the same cached speedup/classifier
///                        pipeline as `lcl_batch`, so they match
///                        `SpeedupEngine::run` exactly);
///   POST /v1/lint        one spec -> the full lint report (canonical
///                        labels pass included);
///   POST /v1/synthesize  one problem -> the speedup certificate and, when
///                        a 0-round witness exists, the synthesized
///                        algorithm's radius;
///   POST /v1/survey      a family -> 202 + survey id (async; resumable
///                        across daemon restarts via the cache's JSONL
///                        tier). An optional "shard":{"index","count"}
///                        block restricts the job to one deterministic
///                        shard of the family (same partition as
///                        `lcl_batch --shard=i/N`);
///   GET  /v1/survey/<id> running -> progress JSON; done -> the
///                        `lclscape.survey.v3` report; sharded jobs echo
///                        their `lclscape.shards.v1` manifest either way;
///   GET  /healthz        liveness; GET /metrics  Prometheus exposition;
///   GET  /version        build provenance (also `lcld --version`).
///
/// Admission control: at most `Options::max_inflight` compute requests
/// (classify/synthesize/survey) are queued-or-running at once; beyond that
/// a request is answered `429 {"error":{"code":"overloaded"}}` without
/// touching the pool. Per-request engine budgets are accepted from the
/// request body and clamped to the service ceilings; a request that blows
/// its step budget gets `422 {"error":{"code":"step_budget_exceeded",...}}`
/// while concurrent requests are unaffected (task isolation is the pool's
/// contract). Every request runs under its own `obs::RunContext` run id,
/// echoed in the response body.
class Service {
 public:
  struct Options {
    /// Worker threads of the shared pool; 0 = hardware concurrency.
    std::size_t jobs = 0;
    /// Compute requests queued-or-running before 429. Also the bound on
    /// how much work a drain has to wait out.
    std::size_t max_inflight = 8;

    /// Default engine settings for requests that send no "options"; the
    /// budget fields double as *ceilings* for per-request overrides.
    SpeedupEngine::Options engine;
    /// Ceilings for the brute-force cross-check a request may ask for
    /// (check_nodes = 0 means the check is off by default).
    std::size_t check_nodes_ceiling = 10;
    std::uint64_t check_budget_ceiling = 1'000'000;
    /// Cap on `/v1/survey` family size (exhaustive enumerations are
    /// generated server-side; this bounds a hostile request).
    std::size_t max_family = 4096;

    /// Shared result cache: JSONL disk tier path ("" = in-memory only).
    /// `cache_resume` replays an existing file (warm restart).
    std::string cache_path;
    bool cache_resume = true;
    std::size_t cache_capacity = 1 << 16;

    /// Labels stamped on every /metrics series (e.g. {"service","lcld"}).
    std::vector<obs::prom::Label> const_labels;
    /// Tool name reported by /version.
    std::string tool = "lcld";
  };

  explicit Service(Options options);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Routes one parsed request. Never throws: handler-level failures map
  /// to structured JSON error bodies (400/404/405/409/422/429), and the
  /// transport turns anything escaping into a 500.
  HttpResponse handle(const HttpRequest& request);

  /// Waits until every admitted compute request (including async surveys)
  /// has finished. The HTTP server's own `drain()` stops new arrivals;
  /// this flushes the work already admitted. Cache inserts are flushed to
  /// the disk tier per append, so a drained daemon loses nothing.
  void drain();

  batch::Cache& cache() noexcept { return cache_; }
  const Options& options() const noexcept { return options_; }
  std::uint64_t requests() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }
  std::size_t inflight() const noexcept {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  struct SurveyJob;

  HttpResponse classify(const HttpRequest& request);
  HttpResponse lint(const HttpRequest& request);
  HttpResponse synthesize(const HttpRequest& request);
  HttpResponse survey_post(const HttpRequest& request);
  HttpResponse survey_get(const std::string& id);
  HttpResponse metrics();
  HttpResponse version() const;

  std::string next_run_id();

  Options options_;
  batch::Cache cache_;
  batch::Pool pool_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::uint64_t> run_seq_{0};

  std::mutex surveys_mutex_;
  std::map<std::string, std::shared_ptr<SurveyJob>> surveys_;
};

}  // namespace lcl::svc
