#include "svc/http.hpp"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace lcl::svc {

namespace {

void write_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

/// Opens a bound, listening IPv4 socket; returns -1 with `error` set.
int open_listener(const std::string& bind_address, std::uint16_t port,
                  std::uint16_t* bound_port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    *error = "bad bind address '" + bind_address + "'";
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    *error = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  *bound_port = ntohs(bound.sin_port);
  return fd;
}

/// Strips one trailing '\r' (header lines are split on '\n' so both CRLF
/// and bare-LF requests parse).
std::string_view strip_cr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Where the request headers end: index one past the blank line, or npos.
/// Accepts CRLFCRLF and bare LFLF.
std::size_t header_end(std::string_view buffer) {
  const auto crlf = buffer.find("\r\n\r\n");
  const auto lf = buffer.find("\n\n");
  if (crlf == std::string_view::npos) {
    return lf == std::string_view::npos ? std::string_view::npos : lf + 2;
  }
  if (lf == std::string_view::npos || crlf + 4 <= lf + 2) return crlf + 4;
  return lf + 2;
}

/// Outcome of parsing one request head; `error_status` 0 means OK.
struct ParsedHead {
  HttpRequest request;
  int error_status = 0;
  std::string error_message;
  std::size_t content_length = 0;
};

ParsedHead parse_head(std::string_view head) {
  ParsedHead out;
  std::size_t pos = 0;
  const auto next_line = [&]() -> std::string_view {
    const auto eol = head.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? head.substr(pos)
                                : head.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol + 1;
    return strip_cr(line);
  };

  const std::string_view request_line = next_line();
  const auto first_space = request_line.find(' ');
  const auto last_space = request_line.rfind(' ');
  if (first_space == std::string_view::npos || first_space == last_space ||
      first_space == 0) {
    out.error_status = 400;
    out.error_message = "malformed request line";
    return out;
  }
  out.request.method = std::string(request_line.substr(0, first_space));
  out.request.target = std::string(trim(
      request_line.substr(first_space + 1, last_space - first_space - 1)));
  out.request.version = std::string(request_line.substr(last_space + 1));
  if (out.request.target.empty() || out.request.target.front() != '/' ||
      out.request.version.rfind("HTTP/", 0) != 0) {
    out.error_status = 400;
    out.error_message = "malformed request line";
    return out;
  }
  const auto question = out.request.target.find('?');
  out.request.path = out.request.target.substr(0, question);
  out.request.query = question == std::string::npos
                          ? std::string()
                          : out.request.target.substr(question + 1);

  while (pos < head.size()) {
    const std::string_view line = next_line();
    if (line.empty()) break;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      out.error_status = 400;
      out.error_message = "malformed header line";
      return out;
    }
    out.request.headers.push_back(Header{
        std::string(trim(line.substr(0, colon))),
        std::string(trim(line.substr(colon + 1)))});
  }

  if (const std::string* te = out.request.header("Transfer-Encoding");
      te != nullptr && !iequals(*te, "identity")) {
    out.error_status = 501;
    out.error_message = "chunked transfer encoding not supported";
    return out;
  }
  if (const std::string* cl = out.request.header("Content-Length")) {
    std::size_t parsed = 0;
    try {
      std::size_t end = 0;
      const unsigned long long v = std::stoull(*cl, &end);
      if (end != cl->size()) throw std::invalid_argument(*cl);
      parsed = static_cast<std::size_t>(v);
    } catch (...) {
      out.error_status = 400;
      out.error_message = "malformed Content-Length";
      return out;
    }
    out.content_length = parsed;
  }
  return out;
}

std::string render_response(const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_reason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& header : response.extra_headers) {
    out += header.name + ": " + header.value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpResponse plain_error(int status, std::string message) {
  HttpResponse response;
  response.status = status;
  response.content_type = "text/plain; charset=utf-8";
  message += '\n';
  response.body = std::move(message);
  return response;
}

}  // namespace

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

const std::string* HttpRequest::header(std::string_view name) const noexcept {
  for (const auto& header : headers) {
    if (iequals(header.name, name)) return &header.value;
  }
  return nullptr;
}

bool HttpRequest::keep_alive() const noexcept {
  const std::string* connection = header("Connection");
  if (version == "HTTP/1.0") {
    return connection != nullptr && iequals(*connection, "keep-alive");
  }
  return connection == nullptr || !iequals(*connection, "close");
}

const char* status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start() {
  if (running()) return true;
  error_.clear();
  if (!options_.handler) {
    error_ = "no handler configured";
    return false;
  }
  listen_fd_ = open_listener(options_.bind_address, options_.port,
                             &bound_port_, &error_);
  if (listen_fd_ < 0) return false;
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void HttpServer::drain() {
  if (!running()) return;
  draining_.store(true, std::memory_order_release);
  // Join the accept thread first: once it is gone (it closes the listen
  // socket on exit, so later connects are refused) the connection count can
  // only fall, and waiting for zero is race-free.
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::unique_lock<std::mutex> lock(conn_mutex_);
    conn_cv_.wait(lock, [this] { return live_connections_ == 0; });
  }
  // The listener is closed and every connection finished: the server is no
  // longer running (start() may be called again).
  running_.store(false, std::memory_order_release);
}

void HttpServer::stop() { drain(); }

void HttpServer::accept_loop() {
  while (!draining_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    // 100 ms poll bounds drain() latency without a wakeup pipe.
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    if (draining_.load(std::memory_order_acquire)) break;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    bool reject = false;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      if (live_connections_ >= options_.max_connections) {
        reject = true;
      } else {
        ++live_connections_;
      }
    }
    if (reject) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      served_.fetch_add(1, std::memory_order_relaxed);
      write_all(client,
                render_response(plain_error(503, "connection limit reached"),
                                /*keep_alive=*/false));
      ::close(client);
      continue;
    }
    // Detached: serve_connection's last act is the tracked decrement, so
    // drain() waiting on live_connections_ == 0 is a complete barrier.
    std::thread([this, client] { serve_connection(client); }).detach();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::serve_connection(int fd) {
  std::string buffer;
  bool close_connection = false;

  const auto deadline_from_now = [this] {
    return std::chrono::steady_clock::now() +
           std::chrono::seconds(options_.read_timeout_seconds);
  };

  while (!close_connection) {
    // -- Read one request head (and then its body) into `buffer`. --------
    auto deadline = deadline_from_now();
    std::size_t head_size = header_end(buffer);
    int transport_error = 0;  // response status; 0 = none
    std::string transport_message;
    bool peer_closed = false;

    while (head_size == std::string_view::npos) {
      if (buffer.size() > options_.max_header_bytes) {
        transport_error = 431;
        transport_message = "request headers exceed " +
                            std::to_string(options_.max_header_bytes) +
                            " bytes";
        break;
      }
      if (draining_.load(std::memory_order_acquire) && buffer.empty()) {
        peer_closed = true;  // idle keep-alive connection during drain
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        if (buffer.empty()) {
          peer_closed = true;  // idle keep-alive timeout, not an error
        } else {
          transport_error = 408;
          transport_message = "timed out reading request";
        }
        break;
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, 100);
      if (ready < 0) {
        peer_closed = true;
        break;
      }
      if (ready == 0) continue;
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        // A torn request (peer died mid-send) cannot be answered; drop it.
        peer_closed = true;
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      head_size = header_end(buffer);
    }
    if (peer_closed && transport_error == 0 &&
        head_size == std::string_view::npos) {
      break;
    }

    // The limit applies to complete heads too, not just ones still being
    // read: a huge header block that arrives in one recv lands here.
    if (transport_error == 0 && head_size > options_.max_header_bytes) {
      transport_error = 431;
      transport_message = "request headers exceed " +
                          std::to_string(options_.max_header_bytes) +
                          " bytes";
    }

    ParsedHead head;
    if (transport_error == 0) {
      head = parse_head(std::string_view(buffer).substr(0, head_size));
      transport_error = head.error_status;
      transport_message = head.error_message;
    }
    if (transport_error == 0 &&
        head.content_length > options_.max_body_bytes) {
      transport_error = 413;
      transport_message = "request body exceeds " +
                          std::to_string(options_.max_body_bytes) + " bytes";
    }
    if (transport_error == 0) {
      // Read the declared body; the timeout keeps counting from the head.
      while (buffer.size() - head_size < head.content_length) {
        if (std::chrono::steady_clock::now() >= deadline) {
          transport_error = 408;
          transport_message = "timed out reading request body";
          break;
        }
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 100);
        if (ready < 0) break;
        if (ready == 0) continue;
        char chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) break;  // torn body: peer died mid-send
        buffer.append(chunk, static_cast<std::size_t>(n));
      }
      if (transport_error == 0 &&
          buffer.size() - head_size < head.content_length) {
        break;  // torn body and the peer is gone: nothing to answer
      }
    }

    if (transport_error != 0) {
      served_.fetch_add(1, std::memory_order_relaxed);
      write_all(fd, render_response(
                        plain_error(transport_error, transport_message),
                        /*keep_alive=*/false));
      break;
    }

    head.request.body = buffer.substr(head_size, head.content_length);
    buffer.erase(0, head_size + head.content_length);

    HttpResponse response;
    try {
      response = options_.handler(head.request);
    } catch (const std::exception& e) {
      response = plain_error(500, std::string("internal error: ") + e.what());
    } catch (...) {
      response = plain_error(500, "internal error");
    }

    const bool keep = options_.keep_alive && head.request.keep_alive() &&
                      !draining_.load(std::memory_order_acquire);
    served_.fetch_add(1, std::memory_order_relaxed);
    write_all(fd, render_response(response, keep));
    close_connection = !keep;
  }

  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    --live_connections_;
  }
  conn_cv_.notify_all();
}

const std::string* HttpClientResponse::header(
    std::string_view name) const noexcept {
  for (const auto& header : headers) {
    if (iequals(header.name, name)) return &header.value;
  }
  return nullptr;
}

HttpClientResponse http_request(const std::string& host, std::uint16_t port,
                                const std::string& method,
                                const std::string& path,
                                const std::string& body,
                                const std::string& content_type,
                                const HttpClientOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("http_request: socket failed");

  timeval timeout{};
  timeout.tv_sec = options.timeout_seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("http_request: bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("http_request: connect failed: " + reason);
  }

  std::string request = method + " " + path + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    request += "Content-Type: " + content_type + "\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;
  write_all(fd, request);

  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      const std::string reason = std::strerror(errno);
      ::close(fd);
      throw std::runtime_error("http_request: recv failed: " + reason);
    }
    if (n == 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
    if (response.size() > options.max_response_bytes) {
      ::close(fd);
      throw std::runtime_error(
          "http_request: response exceeds cap of " +
          std::to_string(options.max_response_bytes) + " bytes");
    }
  }
  ::close(fd);

  const std::size_t body_start = header_end(response);
  if (body_start == std::string::npos) {
    throw std::runtime_error(
        "http_request: malformed response (no header terminator)");
  }

  HttpClientResponse out;
  const std::string_view head = std::string_view(response).substr(
      0, body_start);
  std::size_t pos = 0;
  const auto next_line = [&]() -> std::string_view {
    const auto eol = head.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? head.substr(pos)
                                : head.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol + 1;
    return strip_cr(line);
  };
  const std::string_view status_line = next_line();
  out.status_line = std::string(status_line);
  if (status_line.rfind("HTTP/", 0) != 0) {
    throw std::runtime_error("http_request: malformed status line '" +
                             out.status_line + "'");
  }
  const auto space = status_line.find(' ');
  if (space == std::string_view::npos || space + 4 > status_line.size()) {
    throw std::runtime_error("http_request: malformed status line '" +
                             out.status_line + "'");
  }
  try {
    out.status = std::stoi(std::string(status_line.substr(space + 1, 3)));
  } catch (...) {
    throw std::runtime_error("http_request: malformed status code in '" +
                             out.status_line + "'");
  }
  while (pos < head.size()) {
    const std::string_view line = next_line();
    if (line.empty()) break;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    out.headers.push_back(Header{std::string(trim(line.substr(0, colon))),
                                 std::string(trim(line.substr(colon + 1)))});
  }

  out.body = response.substr(body_start);
  if (const std::string* cl = out.header("Content-Length")) {
    std::size_t declared = 0;
    try {
      declared = static_cast<std::size_t>(std::stoull(*cl));
    } catch (...) {
      throw std::runtime_error("http_request: malformed Content-Length '" +
                               *cl + "'");
    }
    if (out.body.size() < declared) {
      throw std::runtime_error(
          "http_request: truncated response (got " +
          std::to_string(out.body.size()) + " of " + std::to_string(declared) +
          " body bytes)");
    }
    out.body.resize(declared);
  }
  return out;
}

}  // namespace lcl::svc
