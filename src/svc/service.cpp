#include "svc/service.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "batch/shard.hpp"
#include "batch/survey.hpp"
#include "core/brute_force.hpp"
#include "lint/analyzer.hpp"
#include "lint/spec_io.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prom.hpp"
#include "obs/run_context.hpp"
#include "util/version.hpp"

namespace lcl::svc {

namespace json = lcl::obs::json;

namespace {

constexpr const char* kSchema = "lclscape.svc.v1";

json::Value int_value(std::uint64_t v) {
  return json::Value(static_cast<std::int64_t>(v));
}

/// The structured error body every non-2xx /v1 response carries:
/// {"error":{"code":..,"message":..[,"budget":N][,"lint":<report>]},
///  "run_id":..}. `code` is the machine-stable field; `message` is for
/// humans.
HttpResponse error_response(int status, const std::string& code,
                            const std::string& message,
                            const std::string& run_id = std::string(),
                            json::Value* detail = nullptr,
                            const char* detail_key = "detail") {
  json::Value root = json::Value::make_object();
  json::Value error = json::Value::make_object();
  error.object()["code"] = json::Value(code);
  error.object()["message"] = json::Value(message);
  if (detail != nullptr) error.object()[detail_key] = std::move(*detail);
  root.object()["error"] = std::move(error);
  if (!run_id.empty()) root.object()["run_id"] = json::Value(run_id);
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = json::dump(root);
  return response;
}

HttpResponse json_response(json::Value value, int status = 200) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = json::dump(value);
  return response;
}

/// Counts admitted compute requests; construction fails (ok() == false)
/// beyond the cap, releasing nothing. The slot is held until destruction -
/// for async surveys the slot is moved into the job and released when the
/// pool task finishes.
class AdmissionSlot {
 public:
  AdmissionSlot(std::atomic<std::size_t>& inflight, std::size_t cap)
      : inflight_(&inflight) {
    std::size_t current = inflight.load(std::memory_order_relaxed);
    while (current < cap) {
      if (inflight.compare_exchange_weak(current, current + 1,
                                         std::memory_order_acq_rel)) {
        ok_ = true;
        return;
      }
    }
  }
  ~AdmissionSlot() { release(); }

  AdmissionSlot(AdmissionSlot&& other) noexcept
      : inflight_(other.inflight_), ok_(other.ok_) {
    other.ok_ = false;
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(AdmissionSlot&&) = delete;

  bool ok() const noexcept { return ok_; }
  void release() noexcept {
    if (ok_) {
      inflight_->fetch_sub(1, std::memory_order_acq_rel);
      ok_ = false;
    }
  }

 private:
  std::atomic<std::size_t>* inflight_;
  bool ok_ = false;
};

/// What a compute request may tune, parsed from the body's "options"
/// member and clamped to the service ceilings (a request can tighten a
/// budget, never widen it past the daemon's configuration).
struct RequestOptions {
  SpeedupEngine::Options engine;
  std::size_t check_nodes = 0;
  std::uint64_t check_budget = 0;
  bool classify_cycles = true;
  bool classify_paths = true;
};

RequestOptions parse_request_options(const json::Value* options_json,
                                     const Service::Options& service) {
  RequestOptions out;
  out.engine = service.engine;
  out.check_budget = service.check_budget_ceiling;
  if (options_json == nullptr) return out;
  if (!options_json->is_object()) {
    throw std::runtime_error("\"options\" must be an object");
  }
  const auto clamp_u64 = [options_json](const char* key, std::uint64_t ceiling,
                                        std::uint64_t fallback) {
    const json::Value* v = options_json->find(key);
    if (v == nullptr) return fallback;
    if (!v->is_number() || v->as_int() < 0) {
      throw std::runtime_error(std::string("\"options.") + key +
                               "\" must be a non-negative number");
    }
    return std::min<std::uint64_t>(static_cast<std::uint64_t>(v->as_int()),
                                   ceiling);
  };
  out.engine.max_steps = static_cast<int>(
      clamp_u64("max_steps", static_cast<std::uint64_t>(service.engine.max_steps),
                static_cast<std::uint64_t>(service.engine.max_steps)));
  out.engine.limits.max_labels = static_cast<std::size_t>(
      clamp_u64("max_labels", service.engine.limits.max_labels,
                service.engine.limits.max_labels));
  out.engine.limits.max_configs =
      clamp_u64("max_configs", service.engine.limits.max_configs,
                service.engine.limits.max_configs);
  out.check_nodes = static_cast<std::size_t>(
      clamp_u64("check_nodes", service.check_nodes_ceiling, 0));
  out.check_budget = clamp_u64("check_budget", service.check_budget_ceiling,
                               service.check_budget_ceiling);
  if (const json::Value* degrees = options_json->find("degrees");
      degrees != nullptr) {
    if (!degrees->is_array()) {
      throw std::runtime_error("\"options.degrees\" must be an array");
    }
    out.engine.degrees.clear();
    for (const auto& d : degrees->as_array()) {
      if (!d.is_number() || d.as_int() < 1 || d.as_int() > 16) {
        throw std::runtime_error(
            "\"options.degrees\" entries must be integers in 1..16");
      }
      out.engine.degrees.push_back(static_cast<int>(d.as_int()));
    }
  }
  const auto read_bool = [options_json](const char* key, bool fallback) {
    const json::Value* v = options_json->find(key);
    if (v == nullptr) return fallback;
    if (!v->is_bool()) {
      throw std::runtime_error(std::string("\"options.") + key +
                               "\" must be a boolean");
    }
    return v->as_bool();
  };
  out.classify_cycles = read_bool("classify_cycles", true);
  out.classify_paths = read_bool("classify_paths", true);
  return out;
}

/// Parses the request body: JSON document with the spec either bare or
/// under "problem" (the dialect `spec_from_json` accepts), plus the
/// optional "options" sibling. Throws std::runtime_error with a
/// user-facing message on any shape problem.
struct ParsedBody {
  lint::ProblemSpec spec;
  RequestOptions options;
  std::string name;  // spec name or "problem"
};

ParsedBody parse_body(const std::string& body,
                      const Service::Options& service) {
  std::string error;
  const auto doc = json::parse(body, &error);
  if (doc == nullptr) {
    throw std::runtime_error("request body is not JSON: " + error);
  }
  ParsedBody out;
  out.spec = lint::spec_from_json_value(
      doc->is_object() && doc->find("problem") != nullptr ? *doc->find("problem")
                                                          : *doc);
  out.options = parse_request_options(doc->find("options"), service);
  out.name = out.spec.name.empty() ? "problem" : out.spec.name;
  return out;
}

/// Lints and builds the spec; throws a pre-rendered HttpResponse (as a
/// simple control-flow carrier inside this TU) when the spec has
/// structural errors.
struct SpecRejected {
  HttpResponse response;
};

NodeEdgeCheckableLcl build_checked(const lint::ProblemSpec& spec,
                                   const std::string& run_id) {
  const lint::LintReport report = lint::lint_spec(spec);
  if (!report.structurally_valid) {
    json::Value detail = report.to_json_value();
    throw SpecRejected{error_response(422, "invalid_spec",
                                      "spec has structural lint errors",
                                      run_id, &detail, "lint")};
  }
  return lint::build_spec(spec);
}

json::Value cache_stats_json(const batch::Cache& cache) {
  const batch::CacheStats stats = cache.stats();
  json::Value value = json::Value::make_object();
  auto& object = value.object();
  object["hits"] = int_value(stats.hits);
  object["misses"] = int_value(stats.misses);
  object["insertions"] = int_value(stats.insertions);
  object["canonical_hits"] = int_value(stats.canonical_hits);
  object["disk_loaded"] = int_value(stats.disk_loaded);
  return value;
}

}  // namespace

/// One async /v1/survey job. The RunContext outlives the pool task (the
/// job is shared_ptr-held by the map and the task), so GET can render
/// progress while the survey runs.
struct Service::SurveyJob {
  explicit SurveyJob(std::string run_id)
      : run(std::move(run_id), "svc") {}

  obs::RunContext run;
  std::mutex mutex;
  bool done = false;
  std::string error;       // task-level failure (empty = clean)
  std::string report_json;  // the survey report, serialized once
  /// Set when the request carried a "shard" block: the job's
  /// `lclscape.shards.v1` manifest, echoed by every GET (a client driving
  /// N sharded survey jobs merges their reports with the same manifests
  /// the CLI path uses).
  bool sharded = false;
  obs::json::Value shard_manifest;
};

Service::Service(Options options)
    : options_(std::move(options)),
      cache_([this]() {
        batch::Cache::Options cache_options;
        cache_options.capacity = options_.cache_capacity;
        cache_options.disk_path = options_.cache_path;
        cache_options.load_existing = options_.cache_resume;
        // The canonical tier is the service's warm path: a re-request under
        // any output-label permutation resolves as a confirmed canonical
        // hit instead of a recompute.
        cache_options.canonical_tier = true;
        return cache_options;
      }()),
      pool_(batch::Pool::Options{options_.jobs}) {}

Service::~Service() { drain(); }

void Service::drain() { pool_.wait_idle(); }

std::string Service::next_run_id() {
  return options_.tool + "-" +
         std::to_string(run_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
}

HttpResponse Service::handle(const HttpRequest& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  try {
    if (request.path == "/healthz") {
      if (request.method != "GET") {
        return error_response(405, "method_not_allowed", "use GET");
      }
      HttpResponse response;
      response.body = "ok\n";
      return response;
    }
    if (request.path == "/metrics") {
      if (request.method != "GET") {
        return error_response(405, "method_not_allowed", "use GET");
      }
      return metrics();
    }
    if (request.path == "/version") {
      if (request.method != "GET") {
        return error_response(405, "method_not_allowed", "use GET");
      }
      return version();
    }
    if (request.path == "/v1/classify") {
      if (request.method != "POST") {
        return error_response(405, "method_not_allowed", "use POST");
      }
      return classify(request);
    }
    if (request.path == "/v1/lint") {
      if (request.method != "POST") {
        return error_response(405, "method_not_allowed", "use POST");
      }
      return lint(request);
    }
    if (request.path == "/v1/synthesize") {
      if (request.method != "POST") {
        return error_response(405, "method_not_allowed", "use POST");
      }
      return synthesize(request);
    }
    if (request.path == "/v1/survey") {
      if (request.method != "POST") {
        return error_response(405, "method_not_allowed", "use POST");
      }
      return survey_post(request);
    }
    constexpr std::string_view kSurveyPrefix = "/v1/survey/";
    if (request.path.rfind(kSurveyPrefix, 0) == 0) {
      if (request.method != "GET") {
        return error_response(405, "method_not_allowed", "use GET");
      }
      return survey_get(request.path.substr(kSurveyPrefix.size()));
    }
    return error_response(
        404, "not_found",
        "routes: /healthz /metrics /version /v1/classify /v1/lint "
        "/v1/synthesize /v1/survey /v1/survey/<id>");
  } catch (const SpecRejected& rejected) {
    return rejected.response;
  } catch (const std::exception& e) {
    // Parse/shape errors from the request body; anything deeper was
    // already mapped by the route handlers.
    return error_response(400, "bad_request", e.what());
  }
}

HttpResponse Service::classify(const HttpRequest& request) {
  const std::string run_id = next_run_id();
  const ParsedBody body = parse_body(request.body, options_);

  AdmissionSlot slot(inflight_, options_.max_inflight);
  if (!slot.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return error_response(429, "overloaded",
                          "max_inflight compute requests already admitted",
                          run_id);
  }

  const NodeEdgeCheckableLcl problem = build_checked(body.spec, run_id);

  batch::Family family;
  family.description = "svc:classify";
  family.members.push_back(batch::FamilyMember{body.name, problem});

  obs::RunContext run(run_id, "svc");
  batch::SurveyOptions survey;
  survey.jobs = 1;  // one member; the pool parallelizes across requests
  survey.engine = body.options.engine;
  survey.classify_cycles = body.options.classify_cycles;
  survey.classify_paths = body.options.classify_paths;
  survey.check_nodes = body.options.check_nodes;
  survey.check_budget = body.options.check_budget;
  survey.cache = &cache_;
  survey.run = &run;

  // The survey pipeline is the single source of verdicts (pinned to
  // SpeedupEngine::run parity by the batch tests); the service never
  // grows a second classify path that could drift.
  batch::SurveyReport report =
      pool_.submit([&family, &survey]() {
             return batch::run_survey(family, survey);
           })
          .get();
  slot.release();

  const batch::ProblemOutcome& outcome = report.outcomes.at(0);
  if (!outcome.error.empty()) {
    // Per-request failure isolation: the row carries the task's exception
    // (StepBudgetExceeded rows additionally carry the exhausted budget);
    // the daemon, pool, and every concurrent request are unaffected.
    json::Value detail = json::Value::make_object();
    if (outcome.error_budget != 0) {
      detail.object()["budget"] = int_value(outcome.error_budget);
      return error_response(422, "step_budget_exceeded", outcome.error,
                            run_id, &detail, "detail");
    }
    return error_response(422, "task_failed", outcome.error, run_id);
  }

  json::Value report_json = report.to_json_value();
  json::Value row = report_json.find("problems")->as_array().at(0);

  json::Value root = json::Value::make_object();
  root.object()["schema"] = json::Value(std::string(kSchema));
  root.object()["run_id"] = json::Value(run_id);
  root.object()["outcome"] = std::move(row);
  root.object()["cache"] = cache_stats_json(cache_);
  return json_response(std::move(root));
}

HttpResponse Service::lint(const HttpRequest& request) {
  const std::string run_id = next_run_id();
  const ParsedBody body = parse_body(request.body, options_);

  lint::LintOptions lint_options;
  lint_options.canonical_labels = true;  // the full lcl_lint pass set
  const lint::LintReport report = lint::lint_spec(body.spec, lint_options);

  json::Value root = json::Value::make_object();
  root.object()["schema"] = json::Value(std::string(kSchema));
  root.object()["run_id"] = json::Value(run_id);
  root.object()["lint"] = report.to_json_value();
  return json_response(std::move(root));
}

HttpResponse Service::synthesize(const HttpRequest& request) {
  const std::string run_id = next_run_id();
  const ParsedBody body = parse_body(request.body, options_);

  AdmissionSlot slot(inflight_, options_.max_inflight);
  if (!slot.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return error_response(429, "overloaded",
                          "max_inflight compute requests already admitted",
                          run_id);
  }

  const NodeEdgeCheckableLcl problem = build_checked(body.spec, run_id);

  try {
    const SpeedupEngine::Options engine_options = body.options.engine;
    auto result =
        pool_.submit([&problem, &engine_options]() {
               SpeedupEngine engine(problem);
               const SpeedupEngine::Outcome outcome = engine.run(engine_options);
               int radius = -1;
               if (outcome.zero_round_step >= 0) {
                 // Materialize the algorithm: synthesize() validates the
                 // whole lift chain, so "radius" is a real certificate,
                 // not just the step index echoed back.
                 radius = engine.synthesize()->radius(0);
               }
               return std::make_pair(outcome, radius);
             })
            .get();
    slot.release();

    const SpeedupEngine::Outcome& outcome = result.first;
    json::Value root = json::Value::make_object();
    auto& top = root.object();
    top["schema"] = json::Value(std::string(kSchema));
    top["run_id"] = json::Value(run_id);
    top["found"] = json::Value(outcome.zero_round_step >= 0);
    top["zero_round_step"] =
        json::Value(static_cast<std::int64_t>(outcome.zero_round_step));
    if (result.second >= 0) {
      top["radius"] = json::Value(static_cast<std::int64_t>(result.second));
    }
    top["fixed_point"] = json::Value(outcome.fixed_point);
    top["budget_exhausted"] = json::Value(outcome.budget_exhausted);
    top["detected_unsolvable"] = json::Value(outcome.detected_unsolvable);
    top["preflight_dead_labels"] = int_value(outcome.preflight_dead_labels);
    if (!outcome.blowup_message.empty()) {
      top["note"] = json::Value(outcome.blowup_message);
    }
    json::Value steps = json::Value::make_array();
    for (const auto& step : outcome.steps) {
      json::Value s = json::Value::make_object();
      s.object()["index"] = json::Value(static_cast<std::int64_t>(step.index));
      s.object()["labels"] = int_value(step.labels_next);
      s.object()["node_configs"] = int_value(step.node_configs);
      s.object()["edge_configs"] = int_value(step.edge_configs);
      s.object()["zero_round_solvable"] =
          json::Value(step.zero_round_solvable);
      steps.array().push_back(std::move(s));
    }
    top["steps"] = std::move(steps);
    return json_response(std::move(root));
  } catch (const StepBudgetExceeded& e) {
    json::Value detail = json::Value::make_object();
    detail.object()["budget"] = int_value(e.budget());
    return error_response(422, "step_budget_exceeded", e.what(), run_id,
                          &detail, "detail");
  } catch (const std::exception& e) {
    return error_response(422, "task_failed", e.what(), run_id);
  }
}

HttpResponse Service::survey_post(const HttpRequest& request) {
  const std::string run_id = next_run_id();

  std::string parse_error;
  const auto doc = json::parse(request.body, &parse_error);
  if (doc == nullptr || !doc->is_object()) {
    return error_response(400, "bad_request",
                          "request body is not a JSON object: " + parse_error,
                          run_id);
  }

  batch::Family family;
  if (const json::Value* fam = doc->find("family"); fam != nullptr) {
    if (!fam->is_object()) {
      return error_response(400, "bad_request", "\"family\" must be an object",
                            run_id);
    }
    const json::Value* kind = fam->find("kind");
    if (kind == nullptr || !kind->is_string() ||
        kind->as_string() != "exhaustive") {
      return error_response(400, "bad_request",
                            "\"family.kind\" must be \"exhaustive\"", run_id);
    }
    batch::ExhaustiveFamilyOptions exhaustive;
    if (const json::Value* d = fam->find("max_degree");
        d != nullptr && d->is_number()) {
      exhaustive.max_degree = static_cast<int>(d->as_int());
    }
    if (const json::Value* l = fam->find("labels");
        l != nullptr && l->is_number()) {
      exhaustive.labels = static_cast<std::size_t>(l->as_int());
    }
    exhaustive.max_problems = options_.max_family;
    if (const json::Value* m = fam->find("max_problems");
        m != nullptr && m->is_number() && m->as_int() > 0) {
      exhaustive.max_problems = std::min<std::size_t>(
          static_cast<std::size_t>(m->as_int()), options_.max_family);
    }
    try {
      family = batch::exhaustive_family(exhaustive);
    } catch (const std::invalid_argument& e) {
      return error_response(422, "invalid_family", e.what(), run_id);
    }
  } else if (const json::Value* problems = doc->find("problems");
             problems != nullptr && problems->is_array()) {
    family.description = "svc:specs";
    std::size_t index = 0;
    for (const auto& entry : problems->as_array()) {
      if (family.members.size() >= options_.max_family) {
        return error_response(
            422, "invalid_family",
            "family exceeds max_family = " +
                std::to_string(options_.max_family),
            run_id);
      }
      lint::ProblemSpec spec;
      try {
        spec = lint::spec_from_json_value(
            entry.is_object() && entry.find("problem") != nullptr
                ? *entry.find("problem")
                : entry);
      } catch (const std::exception& e) {
        return error_response(400, "bad_request",
                              "problems[" + std::to_string(index) +
                                  "]: " + e.what(),
                              run_id);
      }
      const NodeEdgeCheckableLcl problem = build_checked(spec, run_id);
      family.members.push_back(batch::FamilyMember{
          spec.name.empty() ? "p" + std::to_string(index) : spec.name,
          problem});
      ++index;
    }
  } else {
    return error_response(
        400, "bad_request",
        "body must carry \"family\" (exhaustive) or \"problems\" (spec list)",
        run_id);
  }

  // Optional sharding: restrict the job to one deterministic shard of the
  // family and remember its manifest for the status echoes.
  bool sharded = false;
  batch::ShardManifest manifest;
  if (const json::Value* sh = doc->find("shard"); sh != nullptr) {
    if (!sh->is_object()) {
      return error_response(400, "bad_request", "\"shard\" must be an object",
                            run_id);
    }
    const json::Value* index = sh->find("index");
    const json::Value* count = sh->find("count");
    if (index == nullptr || !index->is_number() || count == nullptr ||
        !count->is_number() || count->as_int() < 1 || index->as_int() < 0 ||
        index->as_int() >= count->as_int()) {
      return error_response(400, "bad_request",
                            "\"shard\" wants index/count with 0 <= index < "
                            "count",
                            run_id);
    }
    batch::ShardRef shard;
    shard.index = static_cast<std::size_t>(index->as_int());
    shard.count = static_cast<std::size_t>(count->as_int());
    batch::ShardPlan plan = batch::plan_shard(
        family, shard, options_.cache_path, git_sha());
    family = std::move(plan.members);
    manifest = std::move(plan.manifest);
    sharded = true;
  }

  RequestOptions request_options;
  try {
    request_options = parse_request_options(doc->find("options"), options_);
  } catch (const std::exception& e) {
    return error_response(400, "bad_request", e.what(), run_id);
  }

  AdmissionSlot slot(inflight_, options_.max_inflight);
  if (!slot.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return error_response(429, "overloaded",
                          "max_inflight compute requests already admitted",
                          run_id);
  }

  auto job = std::make_shared<SurveyJob>(run_id);
  if (sharded) {
    job->sharded = true;
    job->shard_manifest = manifest.to_json_value();
  }
  {
    std::lock_guard<std::mutex> lock(surveys_mutex_);
    surveys_.emplace(run_id, job);
  }

  batch::SurveyOptions survey;
  survey.jobs = 1;  // runs as one pool task; the pool is the fan-out
  survey.engine = request_options.engine;
  survey.classify_cycles = request_options.classify_cycles;
  survey.classify_paths = request_options.classify_paths;
  survey.check_nodes = request_options.check_nodes;
  survey.check_budget = request_options.check_budget;
  survey.cache = &cache_;

  // The task owns the family, the options, the admission slot, and a
  // reference on the job; the HTTP response returns immediately. (The
  // member count is read before the move empties `family`.) The returned
  // future is deliberately discarded: completion is signalled via
  // `job->done`, and a stored future would keep the packaged task's shared
  // state - and with it the lambda's reference on `job` - alive forever
  // (future -> shared state -> callable -> job -> future cycle).
  const std::size_t member_count = family.members.size();
  pool_.submit(
      [job, family = std::move(family), survey,
       slot = std::move(slot)]() mutable {
        batch::SurveyOptions options = survey;
        options.run = &job->run;
        try {
          const batch::SurveyReport report =
              batch::run_survey(family, options);
          std::lock_guard<std::mutex> lock(job->mutex);
          job->report_json = report.to_json();
          job->done = true;
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lock(job->mutex);
          job->error = e.what();
          job->done = true;
        }
        slot.release();
      });

  json::Value root = json::Value::make_object();
  root.object()["schema"] = json::Value(std::string(kSchema));
  root.object()["survey_id"] = json::Value(run_id);
  root.object()["run_id"] = json::Value(run_id);
  root.object()["status"] = json::Value(std::string("running"));
  root.object()["problems"] = int_value(member_count);
  if (sharded) root.object()["shard"] = manifest.to_json_value();
  HttpResponse response = json_response(std::move(root), 202);
  return response;
}

HttpResponse Service::survey_get(const std::string& id) {
  std::shared_ptr<SurveyJob> job;
  {
    std::lock_guard<std::mutex> lock(surveys_mutex_);
    const auto it = surveys_.find(id);
    if (it != surveys_.end()) job = it->second;
  }
  if (job == nullptr) {
    return error_response(404, "not_found", "no survey with id " + id);
  }

  json::Value root = json::Value::make_object();
  root.object()["schema"] = json::Value(std::string(kSchema));
  root.object()["survey_id"] = json::Value(id);
  if (job->sharded) root.object()["shard"] = job->shard_manifest;

  std::lock_guard<std::mutex> lock(job->mutex);
  if (!job->done) {
    root.object()["status"] = json::Value(std::string("running"));
    root.object()["progress"] = job->run.progress_value();
    return json_response(std::move(root));
  }
  if (!job->error.empty()) {
    root.object()["status"] = json::Value(std::string("error"));
    json::Value error = json::Value::make_object();
    error.object()["code"] = json::Value(std::string("survey_failed"));
    error.object()["message"] = json::Value(job->error);
    root.object()["error"] = std::move(error);
    return json_response(std::move(root), 500);
  }
  root.object()["status"] = json::Value(std::string("done"));
  std::string parse_error;
  if (auto report = json::parse(job->report_json, &parse_error)) {
    root.object()["report"] = std::move(*report);
  }
  return json_response(std::move(root));
}

HttpResponse Service::metrics() {
  // Service-level state is published as gauges right before rendering, so
  // a scrape always sees the current admission/cache picture without a
  // sampler thread.
  auto& registry = obs::registry();
  registry.gauge("svc.inflight")
      .set(static_cast<std::int64_t>(inflight_.load(std::memory_order_relaxed)));
  registry.gauge("svc.requests")
      .set(static_cast<std::int64_t>(requests_.load(std::memory_order_relaxed)));
  registry.gauge("svc.rejected")
      .set(static_cast<std::int64_t>(rejected_.load(std::memory_order_relaxed)));
  const batch::CacheStats stats = cache_.stats();
  registry.gauge("svc.cache.hits")
      .set(static_cast<std::int64_t>(stats.hits));
  registry.gauge("svc.cache.misses")
      .set(static_cast<std::int64_t>(stats.misses));
  registry.gauge("svc.cache.canonical_hits")
      .set(static_cast<std::int64_t>(stats.canonical_hits));
  registry.gauge("svc.cache.insertions")
      .set(static_cast<std::int64_t>(stats.insertions));

  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = obs::prom::render(registry.snapshot(), options_.const_labels);
  return response;
}

HttpResponse Service::version() const {
  json::Value root = json::Value::make_object();
  root.object()["tool"] = json::Value(options_.tool);
  root.object()["version"] = json::Value(std::string(project_version()));
  root.object()["git_sha"] = json::Value(std::string(git_sha()));
  root.object()["build_type"] = json::Value(std::string(build_type()));
  return json_response(std::move(root));
}

}  // namespace lcl::svc
