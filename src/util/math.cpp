#include "util/math.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace lcl {

int log_star(double n) {
  int count = 0;
  while (n > 1.0) {
    n = std::log2(n);
    ++count;
    if (count > 64) break;  // defensive; unreachable for finite doubles
  }
  return count;
}

std::uint64_t tower(int height) {
  if (height < 0) throw std::invalid_argument("tower: negative height");
  std::uint64_t value = 1;
  for (int i = 0; i < height; ++i) {
    if (value >= 63) throw std::overflow_error("tower: value exceeds 2^63");
    value = std::uint64_t{1} << value;
  }
  return value;
}

int floor_log2(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("floor_log2: zero");
  return 63 - std::countl_zero(n);
}

int ceil_log2(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("ceil_log2: zero");
  const int fl = floor_log2(n);
  return (std::uint64_t{1} << fl) == n ? fl : fl + 1;
}

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

namespace {
bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  if (n % 2 == 0) return n == 2;
  for (std::uint64_t d = 3; d * d <= n; d += 2) {
    if (n % d == 0) return false;
  }
  return true;
}
}  // namespace

std::uint64_t next_prime(std::uint64_t n) {
  if (n < 2) return 2;
  while (!is_prime(n)) ++n;
  return n;
}

}  // namespace lcl
