#pragma once

#include <cstdint>

namespace lcl {

/// The iterated logarithm: the number of times `log2` must be applied to `n`
/// before the result is at most 1. `log_star(1) == 0`, `log_star(2) == 1`,
/// `log_star(16) == 3`, `log_star(65536) == 4`.
int log_star(double n);

/// Iterated-exponential tower of 2s: `tower(0) == 1`, `tower(1) == 2`,
/// `tower(2) == 4`, `tower(3) == 16`, `tower(4) == 65536`.
/// Throws `std::overflow_error` for heights whose value exceeds 2^63.
std::uint64_t tower(int height);

/// Floor of log2; `floor_log2(1) == 0`. Throws `std::invalid_argument` on 0.
int floor_log2(std::uint64_t n);

/// Ceiling of log2; `ceil_log2(1) == 0`. Throws `std::invalid_argument` on 0.
int ceil_log2(std::uint64_t n);

/// Greatest common divisor with gcd(0, x) == x.
std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b);

/// The smallest prime >= n (n >= 2). Used by Linial's coloring construction,
/// which needs a field GF(q) of adequate size.
std::uint64_t next_prime(std::uint64_t n);

}  // namespace lcl
