#include "util/label_set.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>

namespace lcl {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t words_for(std::size_t universe) {
  return (universe + kWordBits - 1) / kWordBits;
}
}  // namespace

LabelSet::LabelSet(std::size_t universe)
    : universe_(universe), words_(words_for(universe), 0) {}

LabelSet::LabelSet(std::size_t universe,
                   std::initializer_list<std::uint32_t> labels)
    : LabelSet(universe) {
  for (auto l : labels) insert(l);
}

LabelSet::LabelSet(std::size_t universe,
                   const std::vector<std::uint32_t>& labels)
    : LabelSet(universe) {
  for (auto l : labels) insert(l);
}

LabelSet LabelSet::full(std::size_t universe) {
  LabelSet s(universe);
  for (std::size_t i = 0; i + 1 < s.words_.size(); ++i) {
    s.words_[i] = ~std::uint64_t{0};
  }
  if (!s.words_.empty()) {
    const std::size_t rem = universe % kWordBits;
    s.words_.back() =
        rem == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rem) - 1);
  }
  return s;
}

LabelSet LabelSet::singleton(std::size_t universe, std::uint32_t label) {
  LabelSet s(universe);
  s.insert(label);
  return s;
}

std::size_t LabelSet::size() const noexcept {
  std::size_t count = 0;
  for (auto w : words_) count += static_cast<std::size_t>(std::popcount(w));
  return count;
}

bool LabelSet::empty() const noexcept {
  return std::all_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w == 0; });
}

void LabelSet::check_label(std::uint32_t label) const {
  if (label >= universe_) {
    throw std::out_of_range("LabelSet: label " + std::to_string(label) +
                            " outside universe of size " +
                            std::to_string(universe_));
  }
}

void LabelSet::check_compatible(const LabelSet& other) const {
  if (universe_ != other.universe_) {
    throw std::invalid_argument(
        "LabelSet: operation on sets over different universes (" +
        std::to_string(universe_) + " vs " + std::to_string(other.universe_) +
        ")");
  }
}

bool LabelSet::contains(std::uint32_t label) const {
  check_label(label);
  return (words_[label / kWordBits] >> (label % kWordBits)) & 1;
}

void LabelSet::insert(std::uint32_t label) {
  check_label(label);
  words_[label / kWordBits] |= std::uint64_t{1} << (label % kWordBits);
}

void LabelSet::erase(std::uint32_t label) {
  check_label(label);
  words_[label / kWordBits] &= ~(std::uint64_t{1} << (label % kWordBits));
}

void LabelSet::clear() noexcept {
  std::fill(words_.begin(), words_.end(), 0);
}

bool LabelSet::is_subset_of(const LabelSet& other) const {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

bool LabelSet::intersects(const LabelSet& other) const {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

LabelSet LabelSet::union_with(const LabelSet& other) const {
  check_compatible(other);
  LabelSet result(universe_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    result.words_[i] = words_[i] | other.words_[i];
  }
  return result;
}

LabelSet LabelSet::intersect_with(const LabelSet& other) const {
  check_compatible(other);
  LabelSet result(universe_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    result.words_[i] = words_[i] & other.words_[i];
  }
  return result;
}

LabelSet LabelSet::minus(const LabelSet& other) const {
  check_compatible(other);
  LabelSet result(universe_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    result.words_[i] = words_[i] & ~other.words_[i];
  }
  return result;
}

std::vector<std::uint32_t> LabelSet::to_vector() const {
  std::vector<std::uint32_t> out;
  out.reserve(size());
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(static_cast<std::uint32_t>(w * kWordBits + bit));
      word &= word - 1;
    }
  }
  return out;
}

std::uint32_t LabelSet::min() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<std::uint32_t>(w * kWordBits +
                                        std::countr_zero(words_[w]));
    }
  }
  throw std::logic_error("LabelSet::min on empty set");
}

std::string LabelSet::to_string() const {
  return to_string([](std::uint32_t l) { return std::to_string(l); });
}

std::string LabelSet::to_string(
    const std::function<std::string(std::uint32_t)>& namer) const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (auto l : to_vector()) {
    if (!first) os << ',';
    os << namer(l);
    first = false;
  }
  os << '}';
  return os.str();
}

bool LabelSet::operator<(const LabelSet& other) const {
  if (universe_ != other.universe_) return universe_ < other.universe_;
  // Compare from the most significant word so that the order matches the
  // numeric order of the bit representation.
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != other.words_[i]) return words_[i] < other.words_[i];
  }
  return false;
}

bool LabelSet::operator==(const LabelSet& other) const {
  return universe_ == other.universe_ && words_ == other.words_;
}

std::size_t LabelSet::hash() const noexcept {
  std::size_t h = universe_ * 0x9e3779b97f4a7c15ULL;
  for (auto w : words_) {
    h ^= static_cast<std::size_t>(w) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

std::vector<LabelSet> all_nonempty_subsets(std::size_t universe,
                                           std::size_t max_universe_bits) {
  if (universe > max_universe_bits) {
    throw std::invalid_argument(
        "all_nonempty_subsets: universe of size " + std::to_string(universe) +
        " exceeds the safety limit of " + std::to_string(max_universe_bits) +
        " (the enumeration is exponential; raise the limit explicitly if "
        "this is intended)");
  }
  const std::uint64_t count = std::uint64_t{1} << universe;
  std::vector<LabelSet> out;
  out.reserve(count - 1);
  for (std::uint64_t mask = 1; mask < count; ++mask) {
    LabelSet s(universe);
    for (std::size_t bit = 0; bit < universe; ++bit) {
      if ((mask >> bit) & 1) s.insert(static_cast<std::uint32_t>(bit));
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace lcl
