#pragma once

#include <string>
#include <string_view>

namespace lcl {

/// Configure-time provenance, identical across every binary of one build
/// tree (the top-level CMakeLists computes the SHA once and bakes it into
/// this translation unit): "abc123def456", "abc123def456-dirty", or
/// "unknown" outside a git checkout.
const char* git_sha() noexcept;

/// CMAKE_BUILD_TYPE of the tree ("RelWithDebInfo", "Release", ...).
const char* build_type() noexcept;

/// Project version from the top-level `project(... VERSION)` stanza.
const char* project_version() noexcept;

/// The one-line form every CLI prints for `--version`:
///   "<tool> <project-version>+<git-sha> (<build-type>)"
std::string version_string(std::string_view tool);

}  // namespace lcl
