#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/label_set.hpp"

namespace lcl {

/// A set of labels over a fixed finite universe of at most `64 * W` labels,
/// packed into `W` `uint64_t` words held inline (no heap allocation).
///
/// `LabelMaskW` is the dense kernel representation behind the
/// round-elimination hot paths, generalized past the historical single-word
/// ceiling: the output alphabet of `R(Pi)` (Definition 3.1) is the power set
/// of `Sigma_out(Pi)`, and the per-iterate passes (reduce's dominated-label
/// elimination, node-configuration memos, cache signatures) operate over
/// iterate alphabets that routinely outgrow 64 labels. The word count is a
/// compile-time *tier* (W in {1, 2, 4, 8}, alphabets up to 512 labels), so
/// every loop below is a fixed-trip word-parallel AND/OR/ANDNOT the
/// compiler unrolls and vectorizes; `kAuto` callers pick the narrowest tier
/// that fits (see `re_kernel::mask_tier_words`).
///
/// `LabelSet` remains the general representation for unbounded universes;
/// the two agree operation-for-operation on every shared universe (fenced
/// exhaustively by `test_util_label_mask` and `test_util_label_mask_w`),
/// `hash()` matches `LabelSet::hash()` bit for bit, and `operator<` induces
/// the same total order - so the two are interchangeable as ordered or
/// hashed keys.
///
/// Error behaviour mirrors `LabelSet`: constructing over a universe larger
/// than `kMaxUniverse` throws `std::invalid_argument`, label arguments are
/// range-checked (`std::out_of_range`), and binary operations require both
/// operands to share the same universe size (`std::invalid_argument`).
template <std::size_t W>
class LabelMaskW {
  static_assert(W >= 1 && W <= 8, "supported mask tiers are 1..8 words");

 public:
  static constexpr std::size_t kWords = W;
  static constexpr std::size_t kMaxUniverse = 64 * W;

  using Words = std::array<std::uint64_t, W>;

  /// Creates an empty set over an empty universe.
  constexpr LabelMaskW() = default;

  /// Creates an empty set over a universe of `universe` labels.
  explicit LabelMaskW(std::size_t universe) : universe_(universe) {
    if (universe > kMaxUniverse) {
      std::ostringstream os;
      os << "LabelMask: universe of size " << universe << " exceeds the " << W
         << "-word limit of " << kMaxUniverse
         << " (use a wider tier or LabelSet)";
      throw std::invalid_argument(os.str());
    }
  }

  /// Creates a set over `universe` labels whose members are the set bits of
  /// `bits` (word 0; the upper words start empty). Throws
  /// `std::out_of_range` if a bit outside the universe is set.
  LabelMaskW(std::size_t universe, std::uint64_t bits)
      : LabelMaskW(universe) {
    if ((bits & ~word_cap(universe, 0)) != 0) {
      std::ostringstream os;
      os << "LabelMask: bits outside the universe of size " << universe;
      throw std::out_of_range(os.str());
    }
    bits_[0] = bits;
  }

  /// The full set `{0, .., universe-1}`.
  static LabelMaskW full(std::size_t universe) {
    LabelMaskW m(universe);
    for (std::size_t i = 0; i < W; ++i) m.bits_[i] = word_cap(universe, i);
    return m;
  }

  /// A singleton set `{label}` over `universe` labels.
  static LabelMaskW singleton(std::size_t universe, std::uint32_t label) {
    LabelMaskW m(universe);
    m.insert(label);
    return m;
  }

  /// Converts from the dynamic-bitset representation. Throws
  /// `std::invalid_argument` when the set's universe exceeds
  /// `kMaxUniverse`.
  static LabelMaskW from_label_set(const LabelSet& set) {
    LabelMaskW m(set.universe());  // throws on universe > 64 * W
    // The universe check above guarantees word_count() <= W; the && keeps
    // that bound visible to the optimizer (GCC 12 -Warray-bounds).
    for (std::size_t i = 0; i < W && i < set.word_count(); ++i) {
      m.bits_[i] = set.word(i);
    }
    return m;
  }

  /// Converts back to the dynamic-bitset representation (same universe,
  /// same members).
  LabelSet to_label_set() const {
    LabelSet set(universe_);
    for (const auto label : to_vector()) set.insert(label);
    return set;
  }

  std::size_t universe() const noexcept { return universe_; }

  /// The raw single word; bit `b` set iff label `b` is a member. Only the
  /// 1-word tier has *a* word - wider tiers expose `words()` / `word(i)`.
  std::uint64_t word() const noexcept
    requires(W == 1)
  {
    return bits_[0];
  }

  /// The raw words, least-significant first; bit `b` of word `b / 64` set
  /// iff label `b` is a member. Words at or above `ceil(universe / 64)` are
  /// always zero (class invariant).
  const Words& words() const noexcept { return bits_; }
  std::uint64_t word(std::size_t i) const { return bits_.at(i); }

  std::size_t size() const noexcept {
    std::size_t count = 0;
    for (const auto w : bits_) {
      count += static_cast<std::size_t>(std::popcount(w));
    }
    return count;
  }
  bool empty() const noexcept {
    std::uint64_t any = 0;
    for (const auto w : bits_) any |= w;
    return any == 0;
  }

  bool contains(std::uint32_t label) const {
    check_label(label);
    return (bits_[word_index(label)] >> (label % 64)) & 1;
  }
  void insert(std::uint32_t label) {
    check_label(label);
    bits_[word_index(label)] |= std::uint64_t{1} << (label % 64);
  }
  void erase(std::uint32_t label) {
    check_label(label);
    bits_[word_index(label)] &= ~(std::uint64_t{1} << (label % 64));
  }
  void clear() noexcept { bits_.fill(0); }

  /// True if `*this` is a subset of `other` (not necessarily proper).
  bool is_subset_of(const LabelMaskW& other) const {
    check_compatible(other);
    std::uint64_t excess = 0;
    for (std::size_t i = 0; i < W; ++i) excess |= bits_[i] & ~other.bits_[i];
    return excess == 0;
  }
  /// True if the two sets share at least one label.
  bool intersects(const LabelMaskW& other) const {
    check_compatible(other);
    std::uint64_t common = 0;
    for (std::size_t i = 0; i < W; ++i) common |= bits_[i] & other.bits_[i];
    return common != 0;
  }

  LabelMaskW union_with(const LabelMaskW& other) const {
    check_compatible(other);
    LabelMaskW out(universe_);
    for (std::size_t i = 0; i < W; ++i) out.bits_[i] = bits_[i] | other.bits_[i];
    return out;
  }
  LabelMaskW intersect_with(const LabelMaskW& other) const {
    check_compatible(other);
    LabelMaskW out(universe_);
    for (std::size_t i = 0; i < W; ++i) out.bits_[i] = bits_[i] & other.bits_[i];
    return out;
  }
  /// Word-parallel ANDNOT - the set difference `*this \ other`.
  LabelMaskW minus(const LabelMaskW& other) const {
    check_compatible(other);
    LabelMaskW out(universe_);
    for (std::size_t i = 0; i < W; ++i) {
      out.bits_[i] = bits_[i] & ~other.bits_[i];
    }
    return out;
  }
  /// `{0, .., universe-1} \ *this`.
  LabelMaskW complement() const {
    LabelMaskW out(universe_);
    for (std::size_t i = 0; i < W; ++i) {
      out.bits_[i] = ~bits_[i] & word_cap(universe_, i);
    }
    return out;
  }

  /// Labels in ascending order.
  std::vector<std::uint32_t> to_vector() const {
    std::vector<std::uint32_t> out;
    out.reserve(size());
    for (std::size_t i = 0; i < W; ++i) {
      std::uint64_t word = bits_[i];
      while (word != 0) {
        out.push_back(static_cast<std::uint32_t>(
            64 * i + static_cast<std::size_t>(std::countr_zero(word))));
        word &= word - 1;
      }
    }
    return out;
  }

  /// Smallest contained label. Throws `std::logic_error` on an empty set.
  std::uint32_t min() const {
    for (std::size_t i = 0; i < W; ++i) {
      if (bits_[i] != 0) {
        return static_cast<std::uint32_t>(
            64 * i + static_cast<std::size_t>(std::countr_zero(bits_[i])));
      }
    }
    throw std::logic_error("LabelMask::min on empty set");
  }

  /// Renders as `{a,b,c}` using `namer` for each label (or the label index
  /// itself when no namer is given). Identical to `LabelSet::to_string`.
  std::string to_string() const {
    return to_string([](std::uint32_t l) { return std::to_string(l); });
  }
  std::string to_string(
      const std::function<std::string(std::uint32_t)>& namer) const {
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const auto l : to_vector()) {
      if (!first) os << ',';
      os << namer(l);
      first = false;
    }
    os << '}';
    return os.str();
  }

  /// Total order matching the numeric order of the bit representation (the
  /// same order `LabelSet::operator<` induces on shared universes).
  bool operator<(const LabelMaskW& other) const {
    if (universe_ != other.universe_) return universe_ < other.universe_;
    for (std::size_t i = W; i-- > 0;) {
      if (bits_[i] != other.bits_[i]) return bits_[i] < other.bits_[i];
    }
    return false;
  }
  bool operator==(const LabelMaskW& other) const {
    return universe_ == other.universe_ && bits_ == other.bits_;
  }
  bool operator!=(const LabelMaskW& other) const { return !(*this == other); }

  /// Stable hash of the contents; equals `LabelSet::hash()` of the same set
  /// over the same universe - the fold runs over exactly the
  /// `ceil(universe / 64)` words a `LabelSet` stores, so the tier width
  /// never leaks into the hash.
  std::size_t hash() const noexcept {
    std::size_t h = universe_ * 0x9e3779b97f4a7c15ULL;
    const std::size_t words = (universe_ + 63) / 64;
    for (std::size_t i = 0; i < W && i < words; ++i) {
      h ^= static_cast<std::size_t>(bits_[i]) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
    }
    return h;
  }

  /// The word with exactly the universe's bits set (all-ones for 64).
  /// Single-word tier only; wider tiers use the per-word `word_cap`.
  static constexpr std::uint64_t universe_word(std::size_t universe) noexcept
    requires(W == 1)
  {
    return word_cap(universe, 0);
  }

  /// Bits of word `i` that lie inside a universe of the given size.
  static constexpr std::uint64_t word_cap(std::size_t universe,
                                          std::size_t i) noexcept {
    if (universe >= 64 * (i + 1)) return ~std::uint64_t{0};
    if (universe <= 64 * i) return 0;
    return (std::uint64_t{1} << (universe - 64 * i)) - 1;
  }

 private:
  // check_label guarantees label < universe_ <= 64 * W; the % W keeps that
  // bound provable for the optimizer (GCC emits -Warray-bounds for the
  // dead out-of-range path otherwise) and folds to an AND for the
  // power-of-two tiers.
  static constexpr std::size_t word_index(std::uint32_t label) noexcept {
    return (label / 64) % W;
  }

  void check_label(std::uint32_t label) const {
    if (label >= universe_) {
      std::ostringstream os;
      os << "LabelMask: label " << label << " outside universe of size "
         << universe_;
      throw std::out_of_range(os.str());
    }
  }
  void check_compatible(const LabelMaskW& other) const {
    if (universe_ != other.universe_) {
      std::ostringstream os;
      os << "LabelMask: operation on sets over different universes ("
         << universe_ << " vs " << other.universe_ << ")";
      throw std::invalid_argument(os.str());
    }
  }

  std::size_t universe_ = 0;
  Words bits_{};
};

/// The historical single-word mask: tier 1 of the template. Everything that
/// only ever sees alphabets <= 64 labels (the operator kernels' base
/// alphabets, cache signatures of small problems) stays on this alias.
using LabelMask = LabelMaskW<1>;

/// Invokes `visit(sub)` for every non-empty submask of `mask`, in strictly
/// decreasing numeric order, via the classic subset walk
/// `sub = (sub - 1) & mask` - `2^popcount(mask) - 1` visits, one subtract
/// and one mask each. This is the power-set enumeration primitive of the
/// round-elimination kernels: the derived alphabet of `R(Pi)` is exactly
/// the non-empty submasks of the full base word, and `g`-compatible derived
/// labels are exactly the non-empty submasks of `g_Pi(l)`.
template <typename Visit>
inline void for_each_nonempty_submask(std::uint64_t mask, Visit&& visit) {
  for (std::uint64_t sub = mask; sub != 0; sub = (sub - 1) & mask) {
    visit(sub);
  }
}

/// Multi-word generalization of the subset walk: visits every non-empty
/// submask of the `W`-word mask, in strictly decreasing numeric order of
/// the `64 * W`-bit integer the words spell (word 0 least significant).
/// The step is the same `sub = (sub - 1) & mask`, with the decrement
/// implemented as a borrow ripple across words - still O(W) per visit.
template <std::size_t W, typename Visit>
inline void for_each_nonempty_submask_words(
    const std::array<std::uint64_t, W>& mask, Visit&& visit) {
  std::array<std::uint64_t, W> sub = mask;
  const auto nonzero = [](const std::array<std::uint64_t, W>& words) {
    std::uint64_t any = 0;
    for (const auto w : words) any |= w;
    return any != 0;
  };
  while (nonzero(sub)) {
    visit(static_cast<const std::array<std::uint64_t, W>&>(sub));
    // sub = (sub - 1) & mask: borrow ripples through zero words.
    for (std::size_t i = 0; i < W; ++i) {
      if (sub[i] != 0) {
        sub[i] -= 1;
        break;
      }
      sub[i] = ~std::uint64_t{0};
    }
    for (std::size_t i = 0; i < W; ++i) sub[i] &= mask[i];
  }
}

/// Submask walk over a `LabelMaskW`: visits each non-empty submask as a
/// mask over the same universe, in strictly decreasing `operator<` order.
template <std::size_t W, typename Visit>
inline void for_each_nonempty_submask(const LabelMaskW<W>& mask,
                                      Visit&& visit) {
  for_each_nonempty_submask_words<W>(
      mask.words(), [&](const std::array<std::uint64_t, W>& words) {
        LabelMaskW<W> sub(mask.universe());
        for (std::size_t i = 0; i < W; ++i) {
          std::uint64_t word = words[i];
          while (word != 0) {
            sub.insert(static_cast<std::uint32_t>(
                64 * i + static_cast<std::size_t>(std::countr_zero(word))));
            word &= word - 1;
          }
        }
        visit(sub);
      });
}

}  // namespace lcl

template <std::size_t W>
struct std::hash<lcl::LabelMaskW<W>> {
  std::size_t operator()(const lcl::LabelMaskW<W>& m) const noexcept {
    return m.hash();
  }
};
