#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/label_set.hpp"

namespace lcl {

/// A set of labels over a fixed finite universe of at most 64 labels,
/// packed into a single `uint64_t` word.
///
/// `LabelMask` is the dense kernel representation behind the
/// round-elimination hot path: the output alphabet of `R(Pi)` (Definition
/// 3.1) is the power set of `Sigma_out(Pi)`, so when the base alphabet fits
/// one word, every derived label *is* a mask and every support test (subset,
/// intersection, membership) is one machine instruction instead of a
/// word-vector walk. `LabelSet` remains the general representation for
/// unbounded universes; the two agree operation-for-operation on every
/// universe `<= 64` (fenced exhaustively by `test_util_label_mask`), and
/// `hash()` matches `LabelSet::hash()` bit for bit so the two are
/// interchangeable as hash keys.
///
/// Error behaviour mirrors `LabelSet`: constructing over a universe larger
/// than `kMaxUniverse` throws `std::invalid_argument`, label arguments are
/// range-checked (`std::out_of_range`), and binary operations require both
/// operands to share the same universe size (`std::invalid_argument`).
class LabelMask {
 public:
  static constexpr std::size_t kMaxUniverse = 64;

  /// Creates an empty set over an empty universe.
  constexpr LabelMask() = default;

  /// Creates an empty set over a universe of `universe` labels.
  explicit LabelMask(std::size_t universe);

  /// Creates a set over `universe` labels whose members are the set bits of
  /// `bits`. Throws `std::out_of_range` if a bit outside the universe is
  /// set.
  LabelMask(std::size_t universe, std::uint64_t bits);

  /// The full set `{0, .., universe-1}`.
  static LabelMask full(std::size_t universe);

  /// A singleton set `{label}` over `universe` labels.
  static LabelMask singleton(std::size_t universe, std::uint32_t label);

  /// Converts from the dynamic-bitset representation. Throws
  /// `std::invalid_argument` when the set's universe exceeds
  /// `kMaxUniverse`.
  static LabelMask from_label_set(const LabelSet& set);

  /// Converts back to the dynamic-bitset representation (same universe,
  /// same members).
  LabelSet to_label_set() const;

  std::size_t universe() const noexcept { return universe_; }

  /// The raw word; bit `b` set iff label `b` is a member.
  std::uint64_t word() const noexcept { return bits_; }

  std::size_t size() const noexcept {
    return static_cast<std::size_t>(std::popcount(bits_));
  }
  bool empty() const noexcept { return bits_ == 0; }

  bool contains(std::uint32_t label) const {
    check_label(label);
    return (bits_ >> label) & 1;
  }
  void insert(std::uint32_t label) {
    check_label(label);
    bits_ |= std::uint64_t{1} << label;
  }
  void erase(std::uint32_t label) {
    check_label(label);
    bits_ &= ~(std::uint64_t{1} << label);
  }
  void clear() noexcept { bits_ = 0; }

  /// True if `*this` is a subset of `other` (not necessarily proper).
  bool is_subset_of(const LabelMask& other) const {
    check_compatible(other);
    return (bits_ & ~other.bits_) == 0;
  }
  /// True if the two sets share at least one label.
  bool intersects(const LabelMask& other) const {
    check_compatible(other);
    return (bits_ & other.bits_) != 0;
  }

  LabelMask union_with(const LabelMask& other) const {
    check_compatible(other);
    return unchecked(universe_, bits_ | other.bits_);
  }
  LabelMask intersect_with(const LabelMask& other) const {
    check_compatible(other);
    return unchecked(universe_, bits_ & other.bits_);
  }
  LabelMask minus(const LabelMask& other) const {
    check_compatible(other);
    return unchecked(universe_, bits_ & ~other.bits_);
  }
  /// `{0, .., universe-1} \ *this`.
  LabelMask complement() const {
    return unchecked(universe_, ~bits_ & universe_word(universe_));
  }

  /// Labels in ascending order.
  std::vector<std::uint32_t> to_vector() const;

  /// Smallest contained label. Throws `std::logic_error` on an empty set.
  std::uint32_t min() const;

  /// Renders as `{a,b,c}` using `namer` for each label (or the label index
  /// itself when no namer is given). Identical to `LabelSet::to_string`.
  std::string to_string() const;
  std::string to_string(
      const std::function<std::string(std::uint32_t)>& namer) const;

  /// Total order matching the numeric order of the bit representation (the
  /// same order `LabelSet::operator<` induces on universes `<= 64`).
  bool operator<(const LabelMask& other) const {
    if (universe_ != other.universe_) return universe_ < other.universe_;
    return bits_ < other.bits_;
  }
  bool operator==(const LabelMask& other) const {
    return universe_ == other.universe_ && bits_ == other.bits_;
  }
  bool operator!=(const LabelMask& other) const { return !(*this == other); }

  /// Stable hash of the contents; equals `LabelSet::hash()` of the same set
  /// over the same universe.
  std::size_t hash() const noexcept;

  /// The word with exactly the universe's bits set (all-ones for 64).
  static constexpr std::uint64_t universe_word(std::size_t universe) noexcept {
    return universe >= 64 ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << universe) - 1;
  }

 private:
  static LabelMask unchecked(std::size_t universe, std::uint64_t bits) {
    LabelMask m;
    m.universe_ = universe;
    m.bits_ = bits;
    return m;
  }
  void check_label(std::uint32_t label) const;
  void check_compatible(const LabelMask& other) const;

  std::size_t universe_ = 0;
  std::uint64_t bits_ = 0;
};

/// Invokes `visit(sub)` for every non-empty submask of `mask`, in strictly
/// decreasing numeric order, via the classic subset walk
/// `sub = (sub - 1) & mask` - `2^popcount(mask) - 1` visits, one subtract
/// and one mask each. This is the power-set enumeration primitive of the
/// round-elimination kernels: the derived alphabet of `R(Pi)` is exactly
/// the non-empty submasks of the full base word, and `g`-compatible derived
/// labels are exactly the non-empty submasks of `g_Pi(l)`.
template <typename Visit>
inline void for_each_nonempty_submask(std::uint64_t mask, Visit&& visit) {
  for (std::uint64_t sub = mask; sub != 0; sub = (sub - 1) & mask) {
    visit(sub);
  }
}

}  // namespace lcl

template <>
struct std::hash<lcl::LabelMask> {
  std::size_t operator()(const lcl::LabelMask& m) const noexcept {
    return m.hash();
  }
};
