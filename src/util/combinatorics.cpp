#include "util/combinatorics.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace lcl {

std::vector<std::vector<std::uint32_t>> enumerate_multisets(
    std::size_t universe, std::size_t size) {
  std::vector<std::vector<std::uint32_t>> out;
  if (size == 0) {
    out.push_back({});
    return out;
  }
  if (universe == 0) return out;  // no multisets of positive size

  std::vector<std::uint32_t> current(size, 0);
  while (true) {
    out.push_back(current);
    // Advance to the next non-decreasing sequence.
    std::size_t i = size;
    while (i > 0) {
      --i;
      if (current[i] + 1 < universe) {
        const std::uint32_t next = current[i] + 1;
        for (std::size_t j = i; j < size; ++j) current[j] = next;
        break;
      }
      if (i == 0) return out;
    }
  }
}

std::uint64_t count_multisets(std::size_t universe, std::size_t size) {
  if (size == 0) return 1;
  if (universe == 0) return 0;
  // C(universe + size - 1, size) with saturation.
  const std::uint64_t n = universe + size - 1;
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= size; ++i) {
    const std::uint64_t factor = n - size + i;
    if (result > std::numeric_limits<std::uint64_t>::max() / factor) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    result = result * factor / i;
  }
  return result;
}

bool for_each_selection(
    const std::vector<LabelSet>& sets,
    const std::function<bool(const std::vector<std::uint32_t>&)>& visit) {
  const std::size_t k = sets.size();
  std::vector<std::vector<std::uint32_t>> elements(k);
  for (std::size_t i = 0; i < k; ++i) {
    elements[i] = sets[i].to_vector();
    if (elements[i].empty()) return false;
  }
  std::vector<std::size_t> index(k, 0);
  std::vector<std::uint32_t> selection(k);
  while (true) {
    for (std::size_t i = 0; i < k; ++i) selection[i] = elements[i][index[i]];
    if (visit(selection)) return true;
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (++index[i] < elements[i].size()) break;
      index[i] = 0;
      if (i == 0) return false;
    }
    if (k == 0) return false;
  }
}

std::vector<std::uint32_t> sorted_multiset(std::vector<std::uint32_t> labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace lcl
