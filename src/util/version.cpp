#include "util/version.hpp"

#ifndef LCL_GIT_SHA
#define LCL_GIT_SHA "unknown"
#endif
#ifndef LCL_BUILD_TYPE
#define LCL_BUILD_TYPE "unknown"
#endif
#ifndef LCL_PROJECT_VERSION
#define LCL_PROJECT_VERSION "0.0.0"
#endif

namespace lcl {

const char* git_sha() noexcept { return LCL_GIT_SHA; }

const char* build_type() noexcept { return LCL_BUILD_TYPE; }

const char* project_version() noexcept { return LCL_PROJECT_VERSION; }

std::string version_string(std::string_view tool) {
  std::string out(tool);
  out += ' ';
  out += LCL_PROJECT_VERSION;
  out += '+';
  out += LCL_GIT_SHA;
  out += " (";
  out += LCL_BUILD_TYPE;
  out += ')';
  return out;
}

}  // namespace lcl
