#pragma once

#include <cstdint>
#include <limits>

namespace lcl {

/// Deterministic, splittable pseudo-random generator (SplitMix64 core).
///
/// Distributed-model simulations need *per-node independent random streams*
/// that are reproducible regardless of the order in which nodes are
/// simulated: the randomized LOCAL model (Definition 2.1) equips every node
/// with a private random bit string. `SplitRng::fork(node_id)` derives such a
/// stream deterministically from a root seed, so re-running a simulation with
/// the same seed replays exactly the same execution.
class SplitRng {
 public:
  explicit SplitRng(std::uint64_t seed) : state_(mix(seed ^ kGamma)) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64() {
    state_ += kGamma;
    return mix(state_);
  }

  /// Uniform value in `[0, bound)`. `bound` must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        (std::numeric_limits<std::uint64_t>::max() % bound);
    std::uint64_t value = next_u64();
    while (value >= limit) value = next_u64();
    return value % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool() { return (next_u64() & 1) != 0; }

  /// Derives an independent child stream. Streams forked with different
  /// `stream_id`s from the same parent are statistically independent.
  SplitRng fork(std::uint64_t stream_id) const {
    return SplitRng(mix(state_ ^ mix(stream_id + kGamma)));
  }

 private:
  static constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

  static std::uint64_t mix(std::uint64_t z) {
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ULL;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z;
  }

  std::uint64_t state_;
};

}  // namespace lcl
