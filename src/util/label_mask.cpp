#include "util/label_mask.hpp"

#include <sstream>
#include <stdexcept>

namespace lcl {

LabelMask::LabelMask(std::size_t universe) : universe_(universe) {
  if (universe > kMaxUniverse) {
    throw std::invalid_argument(
        "LabelMask: universe of size " + std::to_string(universe) +
        " exceeds the single-word limit of " + std::to_string(kMaxUniverse) +
        " (use LabelSet for larger universes)");
  }
}

LabelMask::LabelMask(std::size_t universe, std::uint64_t bits)
    : LabelMask(universe) {
  if ((bits & ~universe_word(universe)) != 0) {
    throw std::out_of_range(
        "LabelMask: bits outside the universe of size " +
        std::to_string(universe));
  }
  bits_ = bits;
}

LabelMask LabelMask::full(std::size_t universe) {
  LabelMask m(universe);
  m.bits_ = universe_word(universe);
  return m;
}

LabelMask LabelMask::singleton(std::size_t universe, std::uint32_t label) {
  LabelMask m(universe);
  m.insert(label);
  return m;
}

LabelMask LabelMask::from_label_set(const LabelSet& set) {
  LabelMask m(set.universe());  // throws on universe > 64
  for (const auto label : set.to_vector()) {
    m.bits_ |= std::uint64_t{1} << label;
  }
  return m;
}

LabelSet LabelMask::to_label_set() const {
  LabelSet set(universe_);
  for (const auto label : to_vector()) set.insert(label);
  return set;
}

std::vector<std::uint32_t> LabelMask::to_vector() const {
  std::vector<std::uint32_t> out;
  out.reserve(size());
  std::uint64_t word = bits_;
  while (word != 0) {
    out.push_back(static_cast<std::uint32_t>(std::countr_zero(word)));
    word &= word - 1;
  }
  return out;
}

std::uint32_t LabelMask::min() const {
  if (bits_ == 0) throw std::logic_error("LabelMask::min on empty set");
  return static_cast<std::uint32_t>(std::countr_zero(bits_));
}

std::string LabelMask::to_string() const {
  return to_string([](std::uint32_t l) { return std::to_string(l); });
}

std::string LabelMask::to_string(
    const std::function<std::string(std::uint32_t)>& namer) const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  std::uint64_t word = bits_;
  while (word != 0) {
    if (!first) os << ',';
    os << namer(static_cast<std::uint32_t>(std::countr_zero(word)));
    first = false;
    word &= word - 1;
  }
  os << '}';
  return os.str();
}

std::size_t LabelMask::hash() const noexcept {
  // Mirrors LabelSet::hash() exactly: universes <= 64 store zero words
  // (universe 0) or one word, folded with the same mixer.
  std::size_t h = universe_ * 0x9e3779b97f4a7c15ULL;
  if (universe_ != 0) {
    h ^= static_cast<std::size_t>(bits_) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

void LabelMask::check_label(std::uint32_t label) const {
  if (label >= universe_) {
    throw std::out_of_range("LabelMask: label " + std::to_string(label) +
                            " outside universe of size " +
                            std::to_string(universe_));
  }
}

void LabelMask::check_compatible(const LabelMask& other) const {
  if (universe_ != other.universe_) {
    throw std::invalid_argument(
        "LabelMask: operation on sets over different universes (" +
        std::to_string(universe_) + " vs " + std::to_string(other.universe_) +
        ")");
  }
}

}  // namespace lcl
