#pragma once

#include <cstdint>

namespace lcl {

/// A label: a dense index into an `Alphabet` (see core/alphabet.hpp).
/// Declared here, below both the core and graph modules, so that graph-side
/// labeling containers need not depend on the LCL machinery.
using Label = std::uint32_t;

}  // namespace lcl
