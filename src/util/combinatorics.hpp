#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/label_set.hpp"

namespace lcl {

/// Enumerates all sorted multisets (combinations with repetition) of
/// cardinality `size` over the universe `{0, .., universe-1}`. Multisets are
/// produced in lexicographic order as sorted vectors.
///
/// Node configurations of an LCL problem (Definition 2.3) are exactly such
/// multisets, so this enumeration drives the faithful round-elimination mode.
std::vector<std::vector<std::uint32_t>> enumerate_multisets(
    std::size_t universe, std::size_t size);

/// Number of multisets of cardinality `size` over a `universe`-element
/// universe, i.e. C(universe + size - 1, size). Saturates at
/// `std::numeric_limits<std::uint64_t>::max()` on overflow.
std::uint64_t count_multisets(std::size_t universe, std::size_t size);

/// Invokes `visit(selection)` for every tuple in the cartesian product
/// `sets[0] x sets[1] x ... x sets.back()`. `selection[i]` is an element of
/// `sets[i]`. Stops early (and returns true) as soon as `visit` returns true;
/// returns false if `visit` never returned true (including when some set is
/// empty, in which case the product is empty).
///
/// This is the quantifier evaluator behind the round-elimination operators:
/// `R(Pi)` asks "does there EXIST a selection in the node constraint"
/// (Definition 3.1) and `Rbar(Pi)` asks "do ALL selections lie in the node
/// constraint" (Definition 3.2) - the latter is evaluated as the negation of
/// an existential over the complement.
bool for_each_selection(
    const std::vector<LabelSet>& sets,
    const std::function<bool(const std::vector<std::uint32_t>&)>& visit);

/// Sorts a copy of `labels` ascending (canonical multiset form).
std::vector<std::uint32_t> sorted_multiset(std::vector<std::uint32_t> labels);

}  // namespace lcl
