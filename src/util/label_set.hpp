#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

namespace lcl {

/// A set of labels over a fixed finite universe `{0, .., universe-1}`,
/// backed by a dynamic bitset.
///
/// `LabelSet` is the workhorse of the round-elimination module: the output
/// alphabet of `R(Pi)` (Definition 3.1 in the paper) is the power set of the
/// output alphabet of `Pi`, so labels of `R(Pi)` *are* `LabelSet`s over the
/// labels of `Pi`. It is also used for the input/output relation `g_Pi`
/// (Definition 2.3), which maps each input label to a set of output labels.
///
/// The universe size is fixed at construction; all binary operations require
/// both operands to share the same universe size.
class LabelSet {
 public:
  /// Creates an empty set over an empty universe.
  LabelSet() = default;

  /// Creates an empty set over a universe of `universe` labels.
  explicit LabelSet(std::size_t universe);

  /// Creates a set over `universe` labels containing exactly `labels`.
  /// Throws `std::out_of_range` if any label is >= `universe`.
  LabelSet(std::size_t universe, std::initializer_list<std::uint32_t> labels);

  /// Creates a set over `universe` labels containing exactly `labels`.
  LabelSet(std::size_t universe, const std::vector<std::uint32_t>& labels);

  /// The full set `{0, .., universe-1}`.
  static LabelSet full(std::size_t universe);

  /// A singleton set `{label}` over `universe` labels.
  static LabelSet singleton(std::size_t universe, std::uint32_t label);

  std::size_t universe() const noexcept { return universe_; }

  /// Number of labels contained in the set.
  std::size_t size() const noexcept;
  bool empty() const noexcept;

  bool contains(std::uint32_t label) const;
  void insert(std::uint32_t label);
  void erase(std::uint32_t label);
  void clear() noexcept;

  /// True if `*this` is a subset of `other` (not necessarily proper).
  bool is_subset_of(const LabelSet& other) const;
  /// True if the two sets share at least one label.
  bool intersects(const LabelSet& other) const;

  LabelSet union_with(const LabelSet& other) const;
  LabelSet intersect_with(const LabelSet& other) const;
  LabelSet minus(const LabelSet& other) const;

  /// Labels in ascending order.
  std::vector<std::uint32_t> to_vector() const;

  /// Smallest contained label. Throws `std::logic_error` on an empty set.
  std::uint32_t min() const;

  /// Renders as `{a,b,c}` using `namer` for each label (or the label index
  /// itself when no namer is given).
  std::string to_string() const;
  std::string to_string(
      const std::function<std::string(std::uint32_t)>& namer) const;

  /// Total order (lexicographic on the bit representation); used to keep
  /// canonical sorted collections of label sets.
  bool operator<(const LabelSet& other) const;
  bool operator==(const LabelSet& other) const;
  bool operator!=(const LabelSet& other) const { return !(*this == other); }

  /// Stable hash of the contents (universe size included).
  std::size_t hash() const noexcept;

  /// Raw storage, least-significant word first: bit `b` of word `b / 64` is
  /// set iff label `b` is a member. `word_count() == ceil(universe / 64)`.
  /// Exposed so the fixed-width mask tiers (`LabelMaskW`) and the batch
  /// cache signature can convert / fold without per-label round trips.
  std::size_t word_count() const noexcept { return words_.size(); }
  std::uint64_t word(std::size_t i) const { return words_.at(i); }

 private:
  void check_label(std::uint32_t label) const;
  void check_compatible(const LabelSet& other) const;

  std::size_t universe_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Enumerates all non-empty subsets of the given universe, in increasing
/// order of their bit representation. Intended for small universes (the
/// faithful round-elimination mode); throws `std::invalid_argument` when
/// `universe > max_universe_bits` (default 20) to guard against accidental
/// exponential blow-ups.
std::vector<LabelSet> all_nonempty_subsets(std::size_t universe,
                                           std::size_t max_universe_bits = 20);

}  // namespace lcl

template <>
struct std::hash<lcl::LabelSet> {
  std::size_t operator()(const lcl::LabelSet& s) const noexcept {
    return s.hash();
  }
};
