// The decidability side (Section 1.4): classify LCLs without inputs on
// cycles into O(1) / Theta(log* n) / Theta(n) / unsolvable with the
// automata-theoretic classifier, and inspect the solvable cycle lengths.
//
//   build/examples/landscape_tour

#include <iomanip>
#include <iostream>

#include "classify/cycle_classifier.hpp"
#include "classify/path_classifier.hpp"
#include "core/problems.hpp"

int main() {
  using namespace lcl;

  const struct {
    const char* name;
    NodeEdgeCheckableLcl problem;
  } battery[] = {
      {"trivial", problems::trivial(2)},
      {"any orientation", problems::any_orientation(2)},
      {"3-coloring", problems::coloring(3, 2)},
      {"4-coloring", problems::coloring(4, 2)},
      {"2-coloring", problems::two_coloring(2)},
      {"MIS", problems::mis(2)},
      {"maximal matching", problems::maximal_matching(2)},
      {"weak 2-coloring", problems::weak_coloring(2, 2)},
      {"3-edge-coloring", problems::edge_coloring(3, 2)},
  };

  std::cout << "LCL classification on cycles (no inputs)\n\n";
  std::cout << std::left << std::setw(20) << "problem" << std::setw(16)
            << "class" << std::setw(12) << "collapse k" << "SCC gcds\n";
  std::cout << std::string(60, '-') << '\n';
  for (const auto& entry : battery) {
    const auto result = classify_on_cycles(entry.problem, 2);
    std::cout << std::left << std::setw(20) << entry.name << std::setw(16)
              << to_string(result.complexity) << std::setw(12)
              << result.zero_round_collapse_step;
    for (const auto g : result.scc_gcds) std::cout << g << ' ';
    std::cout << '\n';
  }

  std::cout << "\nSolvable cycle lengths (automaton closed-walk test):\n";
  const auto two = problems::two_coloring(2);
  const auto three = problems::coloring(3, 2);
  std::cout << "  n:            ";
  for (std::uint64_t n = 3; n <= 12; ++n) std::cout << std::setw(3) << n;
  std::cout << "\n  2-coloring:   ";
  for (std::uint64_t n = 3; n <= 12; ++n) {
    std::cout << std::setw(3) << (solvable_on_cycle_length(two, n) ? "y" : "-");
  }
  std::cout << "\n  3-coloring:   ";
  for (std::uint64_t n = 3; n <= 12; ++n) {
    std::cout << std::setw(3)
              << (solvable_on_cycle_length(three, n) ? "y" : "-");
  }
  std::cout << "\n\n(2-coloring: even lengths only -> Theta(n); 3-coloring: "
               "all lengths, flexible -> Theta(log* n).)\n";

  std::cout << "\nOn paths (degree-1 endpoints constrain the automaton):\n";
  for (const auto& entry : battery) {
    const auto r = classify_on_paths(entry.problem, 2);
    std::cout << "  " << std::left << std::setw(20) << entry.name
              << std::setw(16) << to_string(r.complexity)
              << (r.solvable_for_all_lengths ? "solvable for every n"
                                             : "some lengths unsolvable")
              << '\n';
  }
  std::cout << "\nNote 2-coloring on paths: solvable for EVERY length, yet "
               "Theta(n) -\nlength feasibility is not flexibility.\n";
  return 0;
}
