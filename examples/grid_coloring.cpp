// Oriented grids (Section 5): build a 2-dimensional oriented torus, assign
// PROD-LOCAL identifiers (Definition 5.2), and color it with per-dimension
// Cole-Vishkin in Theta(log* n) rounds; contrast with the Theta(n^{1/d})
// checkerboard 2-coloring.
//
//   build/examples/grid_coloring

#include <iostream>

#include "core/checker.hpp"
#include "core/problems.hpp"
#include "grid/algorithms.hpp"
#include "grid/torus.hpp"
#include "local/global_algorithms.hpp"
#include "local/sync_engine.hpp"

int main() {
  using namespace lcl;

  const OrientedTorus torus({16, 16});
  std::cout << "16x16 oriented torus: " << torus.node_count() << " nodes, "
            << torus.graph().edge_count() << " edges\n";

  SplitRng rng(5);
  const auto prod = random_prod_ids(torus, rng);
  const auto aux = prod.all_tuples(torus);
  const auto ids = combined_ids(torus, prod);
  const auto orientation = torus.orientation_input();

  // O(1) (actually 0-round): echo the orientation labels.
  {
    const auto result = run_synchronous(OrientationEcho{}, torus.graph(),
                                        orientation, ids, 1);
    const bool ok = is_correct_solution(orientation_copy_problem(2),
                                        torus.graph(), orientation,
                                        result.output);
    std::cout << "orientation echo:   " << result.rounds << " rounds, "
              << (ok ? "correct" : "WRONG") << '\n';
  }

  // Theta(log* n): per-dimension Cole-Vishkin product coloring, greedily
  // reduced to 2d+1 = 5 colors.
  {
    const GridColoring algo(2, prod_id_range(prod));
    const auto result = run_synchronous(algo, torus.graph(), orientation,
                                        ids, 1, 0, 1'000'000, &aux);
    const auto dummy = uniform_labeling(torus.graph(), 0);
    const bool ok = is_correct_solution(problems::coloring(algo.colors(), 4),
                                        torus.graph(), dummy, result.output);
    std::cout << "5-coloring:         " << result.rounds << " rounds ("
              << algo.cole_vishkin_rounds() << " CV + "
              << result.rounds - algo.cole_vishkin_rounds()
              << " palette reduction), " << (ok ? "correct" : "WRONG")
              << '\n';
  }

  // Theta(n^{1/d}): the checkerboard needs a global wave.
  {
    const auto dummy = uniform_labeling(torus.graph(), 0);
    const auto result =
        run_synchronous(BfsTwoColoring{}, torus.graph(), dummy, ids, 1);
    const bool ok = is_correct_solution(problems::two_coloring(4),
                                        torus.graph(), dummy, result.output);
    std::cout << "checkerboard:       " << result.rounds
              << " rounds (~ d * side / 2), " << (ok ? "correct" : "WRONG")
              << '\n';
  }
  std::cout << "\nThe three rows are the three classes of Corollary 1.5:\n"
               "O(1), Theta(log* n), Theta(n^{1/d}) - and Theorem 1.4 says\n"
               "nothing exists between the first two.\n";
  return 0;
}
