// The VOLUME model (Section 4 / Definitions 2.8-2.10): adaptive probes,
// probe complexity, order invariance, and the Theorem 2.11 freezing that
// powers the omega(1)-o(log* n) VOLUME gap (Theorem 1.3).
//
//   build/examples/volume_probes

#include <iostream>

#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "local/cole_vishkin.hpp"
#include "volume/algorithms.hpp"
#include "volume/order_invariance.hpp"

int main() {
  using namespace lcl;
  SplitRng rng(11);

  const std::size_t n = 512;
  Graph cycle = make_cycle(n);
  const auto ids = random_distinct_ids(cycle, 3, rng);
  const auto orientation = chain_orientation_input(cycle, true);
  const auto dummy = uniform_labeling(cycle, 0);
  std::uint64_t id_range = 0;
  for (auto id : ids) id_range = std::max(id_range, id + 1);

  std::cout << "VOLUME model on a " << n << "-cycle\n\n";

  {
    const auto r = run_volume_algorithm(VolumeConstant{}, cycle, dummy, ids);
    std::cout << "constant labeling:      max probes = " << r.max_probes
              << "  (class O(1))\n";
  }
  {
    const auto r =
        run_volume_algorithm(VolumeOrientByIds{}, cycle, dummy, ids);
    const bool ok = is_correct_solution(problems::any_orientation(2), cycle,
                                        dummy, r.output);
    std::cout << "orientation by ids:     max probes = " << r.max_probes
              << "  (class O(1), " << (ok ? "correct" : "WRONG") << ")\n";
  }
  {
    const VolumeColeVishkin cv(id_range);
    const auto r = run_volume_algorithm(cv, cycle, orientation, ids);
    const bool ok = is_correct_solution(problems::coloring(3, 2), cycle,
                                        dummy, r.output);
    std::cout << "Cole-Vishkin 3-coloring: max probes = " << r.max_probes
              << "  (class Theta(log* n), " << (ok ? "correct" : "WRONG")
              << ")\n";
  }
  {
    Graph path = make_path(n);
    const auto path_ids = random_distinct_ids(path, 3, rng);
    const auto path_orientation = chain_orientation_input(path, false);
    const auto r = run_volume_algorithm(VolumeTwoColoring{}, path,
                                        path_orientation, path_ids);
    std::cout << "2-coloring (path):      max probes = " << r.max_probes
              << "  (class Theta(n))\n";
  }

  std::cout << "\nOrder invariance (Definition 2.10):\n";
  {
    Graph tree = make_random_tree(64, 3, rng);
    const auto tree_ids = random_distinct_ids(tree, 3, rng);
    const auto tree_input = uniform_labeling(tree, 0);
    const bool oi = check_volume_order_invariance(
        VolumeOrientByIds{}, tree, tree_input, tree_ids, 10, rng);
    std::cout << "  orientation by ids:  "
              << (oi ? "order-invariant" : "NOT order-invariant") << '\n';
    const VolumeColeVishkin cv(std::uint64_t{1} << 62);
    const bool cv_oi = check_volume_order_invariance(cv, cycle, orientation,
                                                     ids, 20, rng);
    std::cout << "  Cole-Vishkin:        "
              << (cv_oi ? "order-invariant" : "NOT order-invariant (it reads "
                                              "identifier bits)")
              << '\n';
  }

  std::cout << "\nTheorem 2.11 freezing (the engine of the VOLUME gap):\n";
  {
    Graph tree = make_random_tree(20000, 3, rng);
    const auto tree_ids = random_distinct_ids(tree, 3, rng);
    const auto tree_input = uniform_labeling(tree, 0);
    const WastefulVolumeOrient wasteful;
    const FrozenVolumeAlgorithm frozen(wasteful, /*n0=*/64);
    const auto raw =
        run_volume_algorithm(wasteful, tree, tree_input, tree_ids);
    const auto cold = run_volume_algorithm(frozen, tree, tree_input,
                                           tree_ids);
    std::cout << "  wasteful (o(log* n)-ish budget): max probes = "
              << raw.max_probes << '\n';
    std::cout << "  frozen at n0 = 64:               max probes = "
              << cold.max_probes << "  (constant for every n)\n";
  }
  return 0;
}
