// The paper's main theorem in action (Theorem 1.1 / 3.10-3.11): walk the
// round-elimination problem sequence pi, f(pi), f^2(pi), ... with
// f = Rbar o R, test 0-round solvability at every step, and - for a problem
// of class O(1) - synthesize the constant-round algorithm and run it.
//
//   build/examples/speedup_tour

#include <iostream>

#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "re/engine.hpp"

namespace {

void tour(const lcl::NodeEdgeCheckableLcl& problem, int max_steps) {
  using namespace lcl;
  std::cout << "---- " << problem.name() << " ----\n";
  SpeedupEngine engine(problem);
  SpeedupEngine::Options options;
  options.max_steps = max_steps;
  options.limits.max_labels = 1u << 14;
  const auto outcome = engine.run(options);

  for (const auto& step : outcome.steps) {
    std::cout << "  f^" << step.index + 1 << ": |Sigma(R)| = "
              << step.labels_psi << ", |Sigma(RbarR)| = " << step.labels_next
              << ", configs = " << step.node_configs << "+"
              << step.edge_configs
              << (step.zero_round_solvable ? "  [0-round solvable!]" : "")
              << '\n';
  }
  if (outcome.zero_round_step >= 0) {
    std::cout << "  => collapses at k = " << outcome.zero_round_step
              << ": the problem is O(1) (in fact <= " << outcome.zero_round_step
              << " rounds) on forests.\n";
    const auto algorithm = engine.synthesize();

    SplitRng rng(99);
    Graph forest = make_random_forest(60, 5, problem.max_degree(), rng);
    const auto input = uniform_labeling(forest, 0);
    const auto ids = random_distinct_ids(forest, 3, rng);
    const auto output = run_ball_algorithm(*algorithm, forest, input, ids);
    const bool ok = is_correct_solution(problem, forest, input, output);
    std::cout << "  synthesized " << algorithm->radius(60)
              << "-round algorithm on a 60-node forest: "
              << (ok ? "CORRECT" : "WRONG") << "\n\n";
  } else if (outcome.fixed_point) {
    std::cout << "  => reached a round-elimination FIXED POINT - the classic "
                 "hardness certificate\n     (sinkless orientation is the "
                 "textbook example: Omega(log n) deterministic).\n\n";
  } else if (outcome.budget_exhausted) {
    std::cout << "  => enumeration budget exhausted: " <<
        outcome.blowup_message << "\n     (the doubly-exponential alphabet "
        "growth the paper's parameter S quantifies).\n\n";
  } else {
    std::cout << "  => no collapse within " << max_steps
              << " steps - consistent with a complexity of Omega(log* n) "
                 "(Theorem 1.1: o(log* n) would imply a collapse).\n\n";
  }
}

}  // namespace

int main() {
  using namespace lcl;
  std::cout << "Round-elimination speedup tour (f = Rbar o R)\n\n";

  // O(1)-class problems collapse...
  tour(problems::trivial(3), 2);
  tour(problems::any_orientation(2), 3);

  // ...Theta(log* n)-class problems do not...
  tour(problems::coloring(3, 2), 3);

  // ...global problems do not either...
  tour(problems::two_coloring(2), 3);

  // ...and sinkless orientation is a fixed point.
  tour(problems::sinkless_orientation(3), 5);
  return 0;
}
