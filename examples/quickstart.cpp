// Quickstart: define LCL problems, run LOCAL algorithms on trees, and check
// solutions - the core workflow of the library.
//
//   build/examples/quickstart

#include <iostream>

#include "core/brute_force.hpp"
#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "local/linial.hpp"
#include "local/sync_engine.hpp"

int main() {
  using namespace lcl;

  // -- 1. A canonical problem: (Delta+1)-coloring on trees with Delta = 3.
  const auto coloring = problems::coloring(4, 3);
  std::cout << "=== The problem ===\n" << coloring.to_string() << "\n";

  // -- 2. A random 200-node tree with random IDs from a polynomial range.
  SplitRng rng(2022);
  const Graph tree = make_random_tree(200, 3, rng);
  const IdAssignment ids = random_distinct_ids(tree, /*range_exponent=*/3,
                                               rng);
  const HalfEdgeLabeling input = uniform_labeling(tree, 0);

  // -- 3. Solve it with Linial's Theta(log* n) algorithm in the synchronous
  //       LOCAL simulator.
  std::uint64_t id_range = 0;
  for (auto id : ids) id_range = std::max(id_range, id + 1);
  const LinialColoring algorithm(/*max_degree=*/3, id_range);
  const SyncResult result =
      run_synchronous(algorithm, tree, input, ids, /*seed=*/1);
  std::cout << "Linial coloring finished in " << result.rounds
            << " rounds (log*-stage: " << algorithm.schedule_rounds()
            << " rounds, palette reduction: "
            << result.rounds - algorithm.schedule_rounds() << " rounds)\n";

  // -- 4. Check the solution against the problem definition.
  const CheckResult check = check_solution(coloring, tree, input,
                                           result.output);
  std::cout << "checker verdict: " << (check.ok() ? "CORRECT" : "WRONG")
            << "\n\n";

  // -- 5. Define your own node-edge-checkable LCL with the builder: "at
  //       most one endpoint of every edge is marked, and every node marks
  //       at most one port".
  Alphabet in({"-"});
  Alphabet out({"mark", "plain"});
  NodeEdgeCheckableLcl::Builder builder("sparse-marking", in, out, 3);
  for (int d = 1; d <= 3; ++d) {
    std::vector<Label> plain(static_cast<std::size_t>(d), 1);
    builder.allow_node(plain);
    std::vector<Label> one = plain;
    one[0] = 0;
    builder.allow_node(one);
  }
  builder.allow_edge(0, 1).allow_edge(1, 1).unrestricted_inputs();
  const auto marking = builder.build();

  // -- 6. Small instances can be solved exactly by the reference
  //       backtracking solver.
  const Graph small = make_star(3);
  const auto small_input = uniform_labeling(small, 0);
  const auto witness = brute_force_solve(marking, small, small_input);
  std::cout << "=== Custom problem on a star ===\n";
  if (witness) {
    std::cout << "brute-force solution found; half-edge labels:";
    for (const auto l : *witness) {
      std::cout << ' ' << marking.output_alphabet().name(l);
    }
    std::cout << '\n';
  } else {
    std::cout << "no solution exists\n";
  }
  return 0;
}
