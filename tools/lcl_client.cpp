// CLI client for a running lcld daemon: posts spec files to the /v1 API
// and prints the JSON responses.
//
//   lcl_client --port=8080 classify mis.json
//   lcl_client --port=8080 lint spec.json
//   lcl_client --port=8080 synthesize spec.json
//   lcl_client --port=8080 survey --delta=2 --labels=2
//   lcl_client --port=8080 status SURVEY_ID [--wait]
//   lcl_client --port=8080 health | metrics | version
//
// Exit codes: 0 = 2xx response, 1 = the daemon answered 4xx/5xx (the
// structured error body is printed), 2 = usage/transport failure.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "svc/http.hpp"
#include "util/version.hpp"

namespace {

namespace json = lcl::obs::json;

int usage(std::ostream& out, int code) {
  out << "usage: lcl_client [--host=H] [--port=N] COMMAND [args]\n"
         "  classify SPEC.json [--max-steps=N] [--degrees=CSV]\n"
         "                     [--check-nodes=N] [--check-budget=N]\n"
         "  lint SPEC.json\n"
         "  synthesize SPEC.json [--max-steps=N] [--degrees=CSV]\n"
         "  survey [--delta=N] [--labels=N] [--max-problems=N]\n"
         "         [--max-steps=N]        start an async exhaustive survey\n"
         "  status SURVEY_ID [--wait]     poll (or wait out) a survey\n"
         "  health | metrics | version    daemon probes\n"
         "  --version                     print client version and exit\n"
         "exit: 0 = 2xx, 1 = daemon error response, 2 = usage/transport\n";
  return code;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  try {
    std::size_t pos = 0;
    const auto value = std::stoull(text, &pos);
    if (pos != text.size()) return false;
    out = value;
    return true;
  } catch (...) {
    return false;
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw std::runtime_error("cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Wraps a spec file's JSON with the request "options" assembled from the
/// command line. The spec may be bare or already a {"problem": ...}
/// wrapper; either way the daemon's parser accepts the result.
std::string request_body(const std::string& spec_text,
                         const std::vector<std::string>& option_args) {
  std::string error;
  const auto spec = json::parse(spec_text, &error);
  if (spec == nullptr) {
    throw std::runtime_error("spec is not JSON: " + error);
  }
  json::Value root = json::Value::make_object();
  if (spec->is_object() && spec->find("problem") != nullptr) {
    root.object()["problem"] = *spec->find("problem");
  } else {
    root.object()["problem"] = *spec;
  }
  if (!option_args.empty()) {
    json::Value options = json::Value::make_object();
    for (const auto& arg : option_args) {
      const auto set_u64 = [&options, &arg](const std::string& prefix,
                                            const char* key) {
        if (arg.rfind(prefix, 0) != 0) return false;
        std::uint64_t value = 0;
        if (!parse_u64(arg.substr(prefix.size()), value)) {
          throw std::runtime_error("bad value in '" + arg + "'");
        }
        options.object()[key] =
            json::Value(static_cast<std::int64_t>(value));
        return true;
      };
      if (set_u64("--max-steps=", "max_steps")) continue;
      if (set_u64("--max-labels=", "max_labels")) continue;
      if (set_u64("--max-configs=", "max_configs")) continue;
      if (set_u64("--check-nodes=", "check_nodes")) continue;
      if (set_u64("--check-budget=", "check_budget")) continue;
      if (arg.rfind("--degrees=", 0) == 0) {
        json::Value degrees = json::Value::make_array();
        std::istringstream in(arg.substr(std::string("--degrees=").size()));
        std::string item;
        while (std::getline(in, item, ',')) {
          std::uint64_t value = 0;
          if (!parse_u64(item, value)) {
            throw std::runtime_error("bad value in '" + arg + "'");
          }
          degrees.array().push_back(
              json::Value(static_cast<std::int64_t>(value)));
        }
        options.object()["degrees"] = std::move(degrees);
        continue;
      }
      throw std::runtime_error("unknown option '" + arg + "'");
    }
    root.object()["options"] = std::move(options);
  }
  return json::dump(root);
}

/// Prints the response body and maps the status to the exit code.
int finish(const lcl::svc::HttpClientResponse& response) {
  std::cout << response.body;
  if (!response.body.empty() && response.body.back() != '\n') {
    std::cout << "\n";
  }
  if (response.status >= 200 && response.status < 300) return 0;
  std::cerr << "lcl_client: daemon answered " << response.status_line << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint64_t port = 8080;
  std::string command;
  std::vector<std::string> rest;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (command.empty()) {
      if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
      if (arg == "--version") {
        std::cout << lcl::version_string("lcl_client") << "\n";
        return 0;
      }
      if (arg.rfind("--host=", 0) == 0) {
        host = arg.substr(std::string("--host=").size());
        continue;
      }
      if (arg.rfind("--port=", 0) == 0) {
        if (!parse_u64(arg.substr(std::string("--port=").size()), port) ||
            port == 0 || port > 65535) {
          return usage(std::cerr, 2);
        }
        continue;
      }
      command = arg;
    } else {
      rest.push_back(arg);
    }
  }
  if (command.empty()) return usage(std::cerr, 2);
  const auto p = static_cast<std::uint16_t>(port);

  try {
    if (command == "health") {
      return finish(lcl::svc::http_request(host, p, "GET", "/healthz"));
    }
    if (command == "metrics") {
      return finish(lcl::svc::http_request(host, p, "GET", "/metrics"));
    }
    if (command == "version") {
      return finish(lcl::svc::http_request(host, p, "GET", "/version"));
    }
    if (command == "classify" || command == "lint" ||
        command == "synthesize") {
      if (rest.empty()) return usage(std::cerr, 2);
      const std::string spec_text = read_file(rest.front());
      const std::string body = request_body(
          spec_text, {rest.begin() + 1, rest.end()});
      return finish(
          lcl::svc::http_request(host, p, "POST", "/v1/" + command, body));
    }
    if (command == "survey") {
      json::Value family = json::Value::make_object();
      family.object()["kind"] = json::Value(std::string("exhaustive"));
      json::Value options = json::Value::make_object();
      for (const auto& arg : rest) {
        std::uint64_t value = 0;
        if (arg.rfind("--delta=", 0) == 0 &&
            parse_u64(arg.substr(8), value)) {
          family.object()["max_degree"] =
              json::Value(static_cast<std::int64_t>(value));
        } else if (arg.rfind("--labels=", 0) == 0 &&
                   parse_u64(arg.substr(9), value)) {
          family.object()["labels"] =
              json::Value(static_cast<std::int64_t>(value));
        } else if (arg.rfind("--max-problems=", 0) == 0 &&
                   parse_u64(arg.substr(15), value)) {
          family.object()["max_problems"] =
              json::Value(static_cast<std::int64_t>(value));
        } else if (arg.rfind("--max-steps=", 0) == 0 &&
                   parse_u64(arg.substr(12), value)) {
          options.object()["max_steps"] =
              json::Value(static_cast<std::int64_t>(value));
        } else {
          std::cerr << "lcl_client: unknown option '" << arg << "'\n";
          return usage(std::cerr, 2);
        }
      }
      json::Value root = json::Value::make_object();
      root.object()["family"] = std::move(family);
      if (!options.as_object().empty()) {
        root.object()["options"] = std::move(options);
      }
      return finish(lcl::svc::http_request(host, p, "POST", "/v1/survey",
                                           json::dump(root)));
    }
    if (command == "status") {
      if (rest.empty()) return usage(std::cerr, 2);
      const std::string id = rest.front();
      const bool wait =
          rest.size() > 1 && std::string(rest[1]) == "--wait";
      for (;;) {
        const auto response =
            lcl::svc::http_request(host, p, "GET", "/v1/survey/" + id);
        if (!wait || response.status != 200) return finish(response);
        std::string error;
        const auto doc = json::parse(response.body, &error);
        const json::Value* status =
            doc != nullptr ? doc->find("status") : nullptr;
        if (status == nullptr || !status->is_string() ||
            status->as_string() != "running") {
          return finish(response);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
    }
    std::cerr << "lcl_client: unknown command '" << command << "'\n";
    return usage(std::cerr, 2);
  } catch (const std::exception& e) {
    std::cerr << "lcl_client: " << e.what() << "\n";
    return 2;
  }
}
