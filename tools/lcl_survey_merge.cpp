// Joins the per-shard reports of a sharded survey run
// (`lcl_batch --shard=i/N ... --report-json=shard-i.json`) back into the
// one `lclscape.survey.v3` report a single-pool run over the full family
// would have produced - byte-for-byte, so the merged report can be diffed
// against single-pool goldens directly.
//
//   lcl_survey_merge --out=merged.json shard-0.json shard-1.json ...
//
// The merge validates the `lclscape.shards.v1` manifests embedded in the
// shard reports (complete index set 0..N-1, agreeing family and
// verdict-relevant option echoes, row sets matching the manifests),
// deduplicates byte-identical rows, and REFUSES when two shards disagree
// on any field of a shared row - a class-verdict conflict means the shard
// tiers were produced by different engine generations and the merged
// report would be a mix.
//
// Exit codes: 0 = merged cleanly, 1 = merge conflict (the shard set does
// not reassemble one survey), 2 = usage or I/O/parse error.

#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "batch/shard.hpp"
#include "batch/survey.hpp"
#include "obs/json.hpp"
#include "util/version.hpp"

namespace {

namespace json = lcl::obs::json;

int usage(std::ostream& out, int code) {
  out << "usage: lcl_survey_merge [options] SHARD.json...\n"
         "  --out=FILE           write the merged lclscape.survey.v3 report\n"
         "                       (byte-identical to a single-pool run)\n"
         "  --manifest-out=FILE  write the combined lclscape.shards.v1\n"
         "                       manifest document (all shard manifests)\n"
         "  --quiet              suppress the merge summary\n"
         "exit: 0 merged, 1 merge conflict, 2 usage/parse\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string manifest_out_path;
  bool quiet = false;
  std::vector<std::string> shard_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--version") {
      std::cout << lcl::version_string("lcl_survey_merge") << "\n";
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--manifest-out=", 0) == 0) {
      manifest_out_path = arg.substr(15);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "lcl_survey_merge: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      shard_paths.push_back(arg);
    }
  }
  if (shard_paths.empty()) {
    std::cerr << "lcl_survey_merge: no shard reports given\n";
    return usage(std::cerr, 2);
  }

  std::vector<json::Value> docs;
  docs.reserve(shard_paths.size());
  for (const auto& path : shard_paths) {
    std::ifstream in(path);
    if (!in.is_open()) {
      std::cerr << "lcl_survey_merge: cannot open '" << path << "'\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto doc = json::parse(buffer.str(), &error);
    if (doc == nullptr) {
      std::cerr << "lcl_survey_merge: '" << path << "': " << error << "\n";
      return 2;
    }
    docs.push_back(*doc);
  }

  lcl::batch::MergeResult result;
  try {
    result = lcl::batch::merge_shard_reports(docs);
  } catch (const lcl::batch::MergeConflictError& e) {
    std::cerr << "lcl_survey_merge: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "lcl_survey_merge: " << e.what() << "\n";
    return 2;
  }

  // Mixed engine generations across shards merge fine when every shared
  // row agrees, but they are worth a warning - the next engine change may
  // not be so lucky.
  {
    std::set<std::string> shas;
    for (const auto& manifest : result.manifests) {
      if (!manifest.git_sha.empty()) shas.insert(manifest.git_sha);
    }
    if (shas.size() > 1) {
      std::cerr << "lcl_survey_merge: warning: shard tiers were produced by "
                << shas.size() << " different engine versions\n";
    }
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out.is_open()) {
      std::cerr << "lcl_survey_merge: cannot write '" << out_path << "'\n";
      return 2;
    }
    // Same rendering as `lcl_batch --report-json` (dump + newline), so the
    // merged file is byte-identical to the single-pool report.
    out << json::dump(result.report.to_json_value()) << "\n";
  }
  if (!manifest_out_path.empty()) {
    std::ofstream out(manifest_out_path);
    if (!out.is_open()) {
      std::cerr << "lcl_survey_merge: cannot write '" << manifest_out_path
                << "'\n";
      return 2;
    }
    json::Value document = json::Value::make_object();
    document.object()["schema"] =
        json::Value(std::string("lclscape.shards.v1"));
    json::Value shards = json::Value::make_array();
    for (const auto& manifest : result.manifests) {
      shards.array().push_back(manifest.to_json_value());
    }
    document.object()["shards"] = std::move(shards);
    out << json::dump(document) << "\n";
  }

  if (!quiet) {
    const auto& report = result.report;
    std::cout << "family:    " << report.family << "\n";
    std::cout << "shards:    " << result.manifests.size() << "\n";
    std::cout << "problems:  " << report.problems << "\n";
    if (result.duplicates != 0) {
      std::cout << "deduped:   " << result.duplicates
                << " identical cross-shard rows\n";
    }
    for (const auto& [name, count] : report.class_counts) {
      std::cout << "  " << name << ": " << count << "\n";
    }
    std::cout << "canonical: " << report.canonical_classes
              << " label-permutation classes\n";
  }
  return 0;
}
