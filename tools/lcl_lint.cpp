// Static analyzer CLI for LCL problem specifications.
//
//   lcl_lint spec.json                # human-readable diagnostics
//   lcl_lint --json spec1 spec2 ...   # machine-readable report per file
//   lcl_lint --fix spec.json          # canonicalize + prune, rewrite in place
//
// Accepts bare problem-spec JSON files and fuzz-corpus cases (any object
// with a "problem" member); `--fix` is restricted to bare specs, since
// rewriting a corpus case would silently drop its graph and provenance.
//
// Exit codes: 0 = clean (at worst info diagnostics), 1 = warnings,
// 2 = errors, 3 = usage or I/O failure.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/spec_io.hpp"
#include "obs/json.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: lcl_lint [options] FILE...\n"
         "  --json   machine-readable output (one report object per file,\n"
         "           wrapped in a top-level array)\n"
         "  --fix    write the canonicalized, pruned spec back in place\n"
         "           (bare spec files only; refused while L001 errors\n"
         "           remain, since the spec has no defined semantics)\n"
         "exit: 0 clean, 1 warnings, 2 errors, 3 usage/I-O\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  bool as_json = false;
  bool fix = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "lcl_lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 3);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(std::cerr, 3);

  int status = 0;
  auto json_reports = lcl::obs::json::Value::make_array();
  for (const auto& file : files) {
    lcl::lint::ProblemSpec spec;
    bool wrapped = false;
    try {
      spec = lcl::lint::load_spec(file, &wrapped);
    } catch (const std::exception& e) {
      std::cerr << "lcl_lint: " << file << ": " << e.what() << "\n";
      status = 3;
      continue;
    }

    const auto report = lcl::lint::lint_spec(spec);
    status = std::max(status, report.status());

    if (as_json) {
      auto entry = lcl::obs::json::Value::make_object();
      entry.object().emplace("file", lcl::obs::json::Value(file));
      entry.object().emplace("report", report.to_json_value());
      json_reports.array().push_back(std::move(entry));
    } else {
      std::cout << file << ":\n" << report.to_text();
    }

    if (fix) {
      if (wrapped) {
        std::cerr << "lcl_lint: " << file
                  << ": --fix only rewrites bare spec files, not fuzz-case "
                     "wrappers\n";
        status = 3;
        continue;
      }
      if (!report.structurally_valid) {
        std::cerr << "lcl_lint: " << file
                  << ": refusing to fix a spec with L001 errors\n";
        continue;  // status already reflects the errors (exit 2)
      }
      try {
        lcl::lint::save_spec(file, report.canonical);
      } catch (const std::exception& e) {
        std::cerr << "lcl_lint: " << file << ": " << e.what() << "\n";
        status = 3;
      }
    }
  }
  if (as_json) std::cout << lcl::obs::json::dump(json_reports) << "\n";
  return status;
}
