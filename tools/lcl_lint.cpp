// Static analyzer CLI for LCL problem specifications.
//
//   lcl_lint spec.json                # human-readable diagnostics
//   lcl_lint --json spec1 spec2 ...   # machine-readable report per file
//   lcl_lint --sarif=out.sarif dir/   # SARIF 2.1.0 log for a directory
//   lcl_lint --fix spec.json          # apply fixable findings in place
//
// Accepts bare problem-spec JSON files and fuzz-corpus cases (any object
// with a "problem" member); a directory argument expands to its `*.json`
// files in sorted order (non-recursive). With two or more inputs the
// cross-file pass runs: specs whose pruned constraint systems are equal up
// to an output-label permutation are reported as L051 duplicates on every
// file after the first.
//
// `--fix` applies the analyzer's canonical spec: dead labels and vacuous
// configurations pruned (L010/L011), duplicates and unsorted entries
// normalized (L040/L041), and the canonical label permutation applied
// (L050). It refuses the whole batch - exit 3, nothing written - when any
// input carries a finding a rewrite cannot fix: L001 (no defined
// semantics), L012/L020 (the defect lives in the constraint system, not
// its presentation), or L051 (deduplication is a human decision).
// Info-only verdicts (L013, L030, L052) never block a fix.
//
// Exit codes: 0 = clean (at worst info diagnostics), 1 = warnings,
// 2 = errors, 3 = usage, I/O failure, or --fix refusal.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/canonical.hpp"
#include "lint/sarif.hpp"
#include "util/version.hpp"
#include "lint/spec_io.hpp"
#include "obs/json.hpp"

namespace {

namespace lint = lcl::lint;
namespace json = lcl::obs::json;

int usage(std::ostream& out, int code) {
  out << "usage: lcl_lint [options] PATH...\n"
         "  PATH          spec/corpus JSON file, or a directory (expands\n"
         "                to its *.json files, sorted, non-recursive)\n"
         "  --json        machine-readable output (one report object per\n"
         "                file, wrapped in a top-level array)\n"
         "  --sarif=FILE  also write a SARIF 2.1.0 log of every finding\n"
         "  --fix         rewrite each spec in place with the fixable\n"
         "                findings applied: L010/L011 pruning, L040/L041\n"
         "                normalization, L050 canonical label order.\n"
         "                Refuses the whole batch (exit 3, nothing\n"
         "                written) on L001, L012, L020, or L051 - those\n"
         "                cannot be fixed by rewriting the file. Bare\n"
         "                spec files only, not fuzz-case wrappers.\n"
         "With 2+ inputs, specs that are permutation-equivalent after\n"
         "pruning are flagged L051 on every file after the first.\n"
         "exit: 0 clean, 1 warnings, 2 errors, 3 usage/I-O/fix refusal\n";
  return code;
}

/// One command-line input after loading: the spec (when `loaded`) and the
/// full analyzer report including any cross-file L051 findings.
struct Input {
  std::string file;
  bool loaded = false;
  bool wrapped = false;
  lint::LintReport report;
};

/// Expands a directory argument to its sorted `*.json` members; passes
/// files (and nonexistent paths - load reports the error) through.
std::vector<std::string> expand_path(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::is_directory(path, ec)) return {path};
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".json") continue;
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Codes `--fix` cannot repair by rewriting the spec file.
bool fix_refuses(const std::string& code) {
  return code == lint::Code::kAlphabetArity ||
         code == lint::Code::kStarvedInput ||
         code == lint::Code::kUnsolvable ||
         code == lint::Code::kPermutationDuplicate;
}

/// Cross-file L051: groups structurally valid, completely canonicalized
/// reports by canonical signature, confirms candidate pairs exactly via
/// name-blind structural equality, and appends a warning to every file
/// after its group's first. Signature collisions that fail confirmation
/// are simply not duplicates - no finding.
void permutation_duplicate_pass(std::vector<Input>& inputs) {
  std::map<std::uint64_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto& r = inputs[i].report;
    if (!inputs[i].loaded || !r.structurally_valid ||
        r.trivially_unsolvable || !r.canonical_complete) {
      continue;
    }
    groups[lint::spec_signature(r.canonical)].push_back(i);
  }
  for (const auto& [signature, members] : groups) {
    (void)signature;
    if (members.size() < 2) continue;
    for (std::size_t m = 1; m < members.size(); ++m) {
      const auto& mine = inputs[members[m]].report.canonical;
      for (std::size_t e = 0; e < m; ++e) {
        const auto& earlier = inputs[members[e]];
        if (!lint::same_structure(mine, earlier.report.canonical)) continue;
        lint::Diagnostic d;
        d.code = lint::Code::kPermutationDuplicate;
        d.severity = lint::Severity::kWarning;
        d.message = "constraint system is permutation-equivalent to '" +
                    earlier.file + "' (identical canonical form after "
                    "pruning)";
        d.object = "problem";
        inputs[members[m]].report.diagnostics.push_back(std::move(d));
        break;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool as_json = false;
  bool fix = false;
  std::string sarif_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--version") {
      std::cout << lcl::version_string("lcl_lint") << "\n";
      return 0;
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
      if (sarif_path.empty()) {
        std::cerr << "lcl_lint: --sarif wants a file path\n";
        return usage(std::cerr, 3);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "lcl_lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 3);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(std::cerr, 3);

  std::vector<std::string> files;
  for (const auto& path : paths) {
    for (auto& file : expand_path(path)) files.push_back(std::move(file));
  }
  if (files.empty()) {
    std::cerr << "lcl_lint: no *.json files found under the given paths\n";
    return 3;
  }

  // Phase 1: load and analyze every input. The semantic tier (L050/L052)
  // is always on here - the CLI is the canonicalization front-end.
  lint::LintOptions options;
  options.canonical_labels = true;
  int status = 0;
  std::vector<Input> inputs;
  inputs.reserve(files.size());
  for (const auto& file : files) {
    Input input;
    input.file = file;
    try {
      const auto spec = lint::load_spec(file, &input.wrapped);
      input.report = lint::lint_spec(spec, options);
      input.loaded = true;
    } catch (const std::exception& e) {
      std::cerr << "lcl_lint: " << file << ": " << e.what() << "\n";
      status = 3;
    }
    inputs.push_back(std::move(input));
  }

  // Phase 2: cross-file duplicates, then per-file verdicts.
  permutation_duplicate_pass(inputs);
  for (const auto& input : inputs) {
    if (input.loaded) status = std::max(status, input.report.status());
  }

  // Phase 3: render.
  if (as_json) {
    auto json_reports = json::Value::make_array();
    for (const auto& input : inputs) {
      if (!input.loaded) continue;
      auto entry = json::Value::make_object();
      entry.object().emplace("file", json::Value(input.file));
      entry.object().emplace("report", input.report.to_json_value());
      json_reports.array().push_back(std::move(entry));
    }
    std::cout << json::dump(json_reports) << "\n";
  } else {
    for (const auto& input : inputs) {
      if (!input.loaded) continue;
      std::cout << input.file << ":\n" << input.report.to_text();
    }
  }

  if (!sarif_path.empty()) {
    std::vector<lint::SarifArtifact> artifacts;
    for (const auto& input : inputs) {
      if (!input.loaded) continue;
      artifacts.push_back({input.file, input.report.diagnostics});
    }
    std::ofstream out(sarif_path);
    out << lint::sarif_json(artifacts) << "\n";
    if (!out) {
      std::cerr << "lcl_lint: cannot write SARIF log to '" << sarif_path
                << "'\n";
      status = 3;
    }
  }

  // Phase 4: --fix. All-or-nothing: collect every reason to refuse before
  // writing a single byte, so a refusal never leaves the batch half
  // rewritten.
  if (fix) {
    std::vector<std::string> refusals;
    for (const auto& input : inputs) {
      if (!input.loaded) {
        refusals.push_back(input.file + ": unreadable input");
        continue;
      }
      if (input.wrapped) {
        refusals.push_back(input.file +
                           ": --fix only rewrites bare spec files, not "
                           "fuzz-case wrappers");
        continue;
      }
      for (const auto& d : input.report.diagnostics) {
        if (fix_refuses(d.code)) {
          refusals.push_back(input.file + ": " + d.code +
                             " is not fixable by rewriting the spec");
          break;
        }
      }
    }
    if (!refusals.empty()) {
      std::cerr << "lcl_lint: refusing --fix, nothing written:\n";
      for (const auto& reason : refusals) {
        std::cerr << "  " << reason << "\n";
      }
      return 3;
    }
    for (const auto& input : inputs) {
      try {
        lint::save_spec(input.file, input.report.canonical);
      } catch (const std::exception& e) {
        std::cerr << "lcl_lint: " << input.file << ": " << e.what() << "\n";
        status = 3;
      }
    }
  }
  return status;
}
