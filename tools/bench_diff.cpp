// Regression gate over `lclscape.bench.v1` documents (the `--json` output
// of every bench_* binary).
//
//   bench_diff --baseline=OLD.json --current=NEW.json [--max-regress=0.25]
//       Match benchmarks by name and fail when any current wall time
//       exceeds its baseline by more than the threshold (default +25%).
//       Benchmarks present on only one side are reported but not fatal -
//       renames must not brick CI.
//
//   bench_diff --current=RUN.json --min-speedup=SLOW:FAST:X
//       Machine-independent ratio gate within one document: fail unless
//       real_time(SLOW) / real_time(FAST) >= X. This is how CI pins the
//       mask-kernel speedup without trusting absolute runner speed.
//
// Both gates may be combined in one invocation. Exit codes: 0 = all gates
// pass, 1 = a gate failed, 2 = usage or parse failure.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/version.hpp"

namespace {

namespace json = lcl::obs::json;

int usage(std::ostream& out, int code) {
  out << "usage: bench_diff [options]\n"
         "  --baseline=FILE        lclscape.bench.v1 document to compare "
         "against\n"
         "  --current=FILE         document under test (required)\n"
         "  --max-regress=FRAC     allowed wall-time growth vs baseline\n"
         "                         (default 0.25 = +25%)\n"
         "  --min-speedup=S:F:X    require real_time(S) / real_time(F) >= X\n"
         "                         within the current document (repeatable)\n"
         "exit: 0 gates pass, 1 gate failed, 2 usage/parse\n";
  return code;
}

/// Benchmark rows by name, wall time normalized to nanoseconds.
std::optional<std::map<std::string, double>> load_rows(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::cerr << "bench_diff: cannot open '" << path << "'\n";
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const auto doc = json::parse(buffer.str(), &error);
  if (doc == nullptr || !doc->is_object()) {
    std::cerr << "bench_diff: '" << path << "': " << error << "\n";
    return std::nullopt;
  }
  const auto* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "lclscape.bench.v1") {
    std::cerr << "bench_diff: '" << path
              << "' is not an lclscape.bench.v1 document\n";
    return std::nullopt;
  }
  const auto* benchmarks = doc->find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    std::cerr << "bench_diff: '" << path << "' has no benchmarks array\n";
    return std::nullopt;
  }
  std::map<std::string, double> rows;
  for (const auto& row : benchmarks->as_array()) {
    if (!row.is_object()) continue;
    const auto* name = row.find("name");
    const auto* real_time = row.find("real_time");
    const auto* unit = row.find("time_unit");
    if (name == nullptr || !name->is_string() || real_time == nullptr ||
        !real_time->is_number()) {
      continue;
    }
    double to_ns = 1.0;
    if (unit != nullptr && unit->is_string()) {
      const std::string& u = unit->as_string();
      if (u == "us") to_ns = 1e3;
      else if (u == "ms") to_ns = 1e6;
      else if (u == "s") to_ns = 1e9;
      else if (u != "ns") {
        std::cerr << "bench_diff: '" << path << "': unknown time unit '" << u
                  << "' for " << name->as_string() << "\n";
        return std::nullopt;
      }
    }
    rows[name->as_string()] = real_time->as_double() * to_ns;
  }
  return rows;
}

std::string format_ns(double ns) {
  char buffer[64];
  if (ns >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.3f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.3f us", ns / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f ns", ns);
  }
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  double max_regress = 0.25;
  struct SpeedupGate {
    std::string slow, fast;
    double ratio;
  };
  std::vector<SpeedupGate> speedup_gates;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--version") {
      std::cout << lcl::version_string("bench_diff") << "\n";
      return 0;
    }
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--current=", 0) == 0) {
      current_path = arg.substr(10);
    } else if (arg.rfind("--max-regress=", 0) == 0) {
      char* end = nullptr;
      max_regress = std::strtod(arg.c_str() + 14, &end);
      if (end == nullptr || *end != '\0' || max_regress < 0) {
        std::cerr << "bench_diff: bad --max-regress '" << arg << "'\n";
        return usage(std::cerr, 2);
      }
    } else if (arg.rfind("--min-speedup=", 0) == 0) {
      const std::string spec = arg.substr(14);
      const auto first = spec.find(':');
      const auto second =
          first == std::string::npos ? first : spec.find(':', first + 1);
      if (first == std::string::npos || second == std::string::npos) {
        std::cerr << "bench_diff: --min-speedup expects SLOW:FAST:RATIO\n";
        return usage(std::cerr, 2);
      }
      SpeedupGate gate;
      gate.slow = spec.substr(0, first);
      gate.fast = spec.substr(first + 1, second - first - 1);
      char* end = nullptr;
      gate.ratio = std::strtod(spec.c_str() + second + 1, &end);
      if (end == nullptr || *end != '\0' || gate.ratio <= 0 ||
          gate.slow.empty() || gate.fast.empty()) {
        std::cerr << "bench_diff: bad --min-speedup '" << spec << "'\n";
        return usage(std::cerr, 2);
      }
      speedup_gates.push_back(std::move(gate));
    } else {
      std::cerr << "bench_diff: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }
  if (current_path.empty()) {
    std::cerr << "bench_diff: --current is required\n";
    return usage(std::cerr, 2);
  }
  if (baseline_path.empty() && speedup_gates.empty()) {
    std::cerr << "bench_diff: nothing to check (need --baseline and/or "
                 "--min-speedup)\n";
    return usage(std::cerr, 2);
  }

  const auto current = load_rows(current_path);
  if (!current.has_value()) return 2;

  bool failed = false;

  if (!baseline_path.empty()) {
    const auto baseline = load_rows(baseline_path);
    if (!baseline.has_value()) return 2;
    for (const auto& [name, base_ns] : *baseline) {
      const auto found = current->find(name);
      if (found == current->end()) {
        std::cout << "MISSING  " << name << " (in baseline only)\n";
        continue;
      }
      const double ratio = base_ns > 0 ? found->second / base_ns : 1.0;
      const bool regressed = ratio > 1.0 + max_regress;
      std::cout << (regressed ? "REGRESS  " : "ok       ") << name << "  "
                << format_ns(base_ns) << " -> " << format_ns(found->second)
                << "  (" << static_cast<int>(ratio * 100.0) << "% of baseline"
                << ", limit " << static_cast<int>((1.0 + max_regress) * 100.0)
                << "%)\n";
      if (regressed) failed = true;
    }
    for (const auto& [name, ns] : *current) {
      if (baseline->find(name) == baseline->end()) {
        std::cout << "NEW      " << name << "  " << format_ns(ns) << "\n";
      }
    }
  }

  for (const auto& gate : speedup_gates) {
    const auto slow = current->find(gate.slow);
    const auto fast = current->find(gate.fast);
    if (slow == current->end() || fast == current->end()) {
      std::cerr << "bench_diff: --min-speedup: benchmark '"
                << (slow == current->end() ? gate.slow : gate.fast)
                << "' not in " << current_path << "\n";
      return 2;
    }
    const double ratio =
        fast->second > 0 ? slow->second / fast->second : 0.0;
    const bool ok = ratio >= gate.ratio;
    std::cout << (ok ? "ok       " : "TOO-SLOW ") << gate.slow << " / "
              << gate.fast << " = " << ratio << "x (require >= " << gate.ratio
              << "x)\n";
    if (!ok) failed = true;
  }

  return failed ? 1 : 0;
}
