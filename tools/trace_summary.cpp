// trace_summary: reads a trace produced by `lcl::obs::TraceSession` (the
// compact JSONL form or the Chrome trace_event JSON array) and prints a
// per-phase wall-time breakdown: total/self time per span name, top-level
// span coverage of wall time, instant events, and whether the metrics
// footer is present.
//
//   trace_summary out.jsonl
//   trace_summary --validate out.jsonl   # parse only; exit status is the
//                                        # well-formedness verdict
//   trace_summary --progress out.jsonl   # per-phase wall-clock breakdown
//                                        # of the run's progress/resource
//                                        # telemetry + final rows/s
//
// Exit codes: 0 ok, 1 usage/IO error, 2 malformed trace.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace_reader.hpp"
#include "util/version.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--validate | --progress] <trace.jsonl | trace.json>\n",
      argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool validate_only = false;
  bool progress_only = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s\n", lcl::version_string("trace_summary").c_str());
      return 0;
    } else if (std::strcmp(argv[i], "--validate") == 0) {
      validate_only = true;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      progress_only = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (path == nullptr) return usage(argv[0]);

  std::ifstream file(path);
  if (!file.is_open()) {
    std::fprintf(stderr, "trace_summary: cannot open '%s'\n", path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();

  lcl::obs::ParsedTrace trace;
  std::string error;
  if (!lcl::obs::parse_trace(buffer.str(), &trace, &error)) {
    std::fprintf(stderr, "trace_summary: malformed trace: %s\n",
                 error.c_str());
    return 2;
  }
  if (validate_only) {
    std::printf("ok: %zu records, metrics footer %s\n", trace.records.size(),
                trace.has_metrics_footer ? "present" : "absent");
    return 0;
  }
  if (progress_only) {
    const auto progress = lcl::obs::summarize_progress(trace);
    std::fputs(lcl::obs::format_progress(progress).c_str(), stdout);
    return 0;
  }

  const auto summary = lcl::obs::summarize(trace);
  std::fputs(lcl::obs::format_summary(summary).c_str(), stdout);
  return 0;
}
