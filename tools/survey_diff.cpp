// Atlas regression gate over `lclscape.survey.v3` reports - the survey
// counterpart of `bench_diff`.
//
//   survey_diff --baseline=GOLDEN.json --current=RUN.json [--allow-growth]
//       Structural diff: rows are matched on their canonical sort key
//       ("key"). Any class-verdict flip, canonical-key drift, removed
//       member, or changed verdict-relevant option echo fails. Added
//       members fail too unless --allow-growth, so enlarging the atlas
//       passes review while a verdict flip never does.
//
//   survey_diff --strict --baseline=A.json --current=B.json
//       Byte comparison of the two files (the determinism gate: reports
//       from different --jobs values or shard merges must be identical).
//
// Exit codes: 0 = reports match (under the chosen gate), 1 = a difference
// failed the gate, 2 = usage or I/O/parse error.

#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/version.hpp"

namespace {

namespace json = lcl::obs::json;

int usage(std::ostream& out, int code) {
  out << "usage: survey_diff [options]\n"
         "  --baseline=FILE   lclscape.survey.v3 report to compare against\n"
         "  --current=FILE    report under test\n"
         "  --allow-growth    added members (and the canonical-class growth\n"
         "                    they bring) pass; verdict flips still fail\n"
         "  --strict          byte comparison instead of the structural "
         "diff\n"
         "exit: 0 match, 1 difference, 2 usage/parse\n";
  return code;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::cerr << "survey_diff: cannot open '" << path << "'\n";
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// One report, reduced to what the structural gate compares.
struct Report {
  /// Verdict-relevant "survey" echoes rendered back to strings, keyed by
  /// field name ("family", "engine_max_steps", ...).
  std::map<std::string, std::string> options;
  std::int64_t canonical_classes = 0;
  /// Row key -> (landscape class, canonical key, member name).
  struct Row {
    std::string landscape_class;
    std::string canonical_key;
    std::string name;
  };
  std::map<std::string, Row> rows;
};

std::optional<Report> load_report(const std::string& path) {
  const auto text = read_file(path);
  if (!text.has_value()) return std::nullopt;
  std::string error;
  const auto doc = json::parse(*text, &error);
  if (doc == nullptr || !doc->is_object()) {
    std::cerr << "survey_diff: '" << path << "': " << error << "\n";
    return std::nullopt;
  }
  const auto* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "lclscape.survey.v3") {
    std::cerr << "survey_diff: '" << path
              << "' is not an lclscape.survey.v3 document\n";
    return std::nullopt;
  }
  const auto* survey = doc->find("survey");
  if (survey == nullptr || !survey->is_object()) {
    std::cerr << "survey_diff: '" << path << "' has no survey block\n";
    return std::nullopt;
  }
  Report report;
  // Everything in the "survey" block except the derived aggregates is a
  // verdict-relevant echo; unknown (schema-additive) fields on one side
  // only are tolerated, so a new echo column does not brick the gate
  // against an older golden.
  for (const auto& [name, value] : survey->as_object()) {
    if (name == "errors" || name == "canonical_classes" ||
        name == "problems") {
      continue;
    }
    report.options[name] = json::dump(value);
  }
  if (const auto* canonical = survey->find("canonical_classes");
      canonical != nullptr && canonical->is_number()) {
    report.canonical_classes = canonical->as_int();
  }
  const auto* rows = doc->find("problems");
  if (rows == nullptr || !rows->is_array()) {
    std::cerr << "survey_diff: '" << path << "' has no problems array\n";
    return std::nullopt;
  }
  for (const auto& row : rows->as_array()) {
    if (!row.is_object()) continue;
    const auto* key = row.find("key");
    const auto* klass = row.find("class");
    if (key == nullptr || !key->is_string() || klass == nullptr ||
        !klass->is_string()) {
      std::cerr << "survey_diff: '" << path
                << "' has a row without key/class\n";
      return std::nullopt;
    }
    Report::Row entry;
    entry.landscape_class = klass->as_string();
    if (const auto* canonical = row.find("canonical_key");
        canonical != nullptr && canonical->is_string()) {
      entry.canonical_key = canonical->as_string();
    }
    if (const auto* name = row.find("name");
        name != nullptr && name->is_string()) {
      entry.name = name->as_string();
    }
    report.rows.emplace(key->as_string(), std::move(entry));
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  bool allow_growth = false;
  bool strict = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--version") {
      std::cout << lcl::version_string("survey_diff") << "\n";
      return 0;
    } else if (arg == "--allow-growth") {
      allow_growth = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--current=", 0) == 0) {
      current_path = arg.substr(10);
    } else {
      std::cerr << "survey_diff: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::cerr << "survey_diff: --baseline and --current are required\n";
    return usage(std::cerr, 2);
  }

  if (strict) {
    const auto baseline = read_file(baseline_path);
    const auto current = read_file(current_path);
    if (!baseline.has_value() || !current.has_value()) return 2;
    if (*baseline == *current) {
      std::cout << "survey_diff: byte-identical (" << baseline->size()
                << " bytes)\n";
      return 0;
    }
    std::size_t offset = 0;
    while (offset < baseline->size() && offset < current->size() &&
           (*baseline)[offset] == (*current)[offset]) {
      ++offset;
    }
    std::cout << "survey_diff: FAIL: reports differ (first difference at "
              << "byte " << offset << "; " << baseline->size() << " vs "
              << current->size() << " bytes)\n";
    return 1;
  }

  const auto baseline = load_report(baseline_path);
  const auto current = load_report(current_path);
  if (!baseline.has_value() || !current.has_value()) return 2;

  int failures = 0;
  std::size_t added = 0;

  // Echo options present on both sides must agree: a report produced with
  // a different engine budget or classifier setting is not comparable.
  for (const auto& [name, value] : baseline->options) {
    const auto it = current->options.find(name);
    if (it == current->options.end()) continue;
    if (it->second == value) continue;
    if (name == "family" && allow_growth) {
      std::cout << "survey_diff: family changed: " << value << " -> "
                << it->second << " (allowed by --allow-growth)\n";
      continue;
    }
    std::cout << "survey_diff: FAIL: option " << name << " changed: " << value
              << " -> " << it->second << "\n";
    ++failures;
  }

  for (const auto& [key, row] : baseline->rows) {
    const auto it = current->rows.find(key);
    if (it == current->rows.end()) {
      std::cout << "survey_diff: FAIL: member removed: " << key << " ("
                << row.landscape_class << ")\n";
      ++failures;
      continue;
    }
    if (it->second.landscape_class != row.landscape_class) {
      std::cout << "survey_diff: FAIL: verdict flip on " << key << ": "
                << row.landscape_class << " -> "
                << it->second.landscape_class << "\n";
      ++failures;
    }
    if (it->second.canonical_key != row.canonical_key) {
      std::cout << "survey_diff: FAIL: canonical key drift on " << key << ": "
                << row.canonical_key << " -> " << it->second.canonical_key
                << "\n";
      ++failures;
    }
  }
  for (const auto& [key, row] : current->rows) {
    if (baseline->rows.count(key) != 0) continue;
    ++added;
    if (allow_growth) continue;
    std::cout << "survey_diff: FAIL: member added: " << key << " ("
              << row.landscape_class << ")\n";
    ++failures;
  }

  if (current->canonical_classes != baseline->canonical_classes) {
    // Growth brings new canonical classes; shrink or same-set drift means
    // the canonicalization itself changed.
    const bool explained = allow_growth && added != 0 &&
                           current->canonical_classes >
                               baseline->canonical_classes;
    std::cout << "survey_diff: " << (explained ? "" : "FAIL: ")
              << "canonical_classes drift: " << baseline->canonical_classes
              << " -> " << current->canonical_classes
              << (explained ? " (allowed by --allow-growth)" : "") << "\n";
    if (!explained) ++failures;
  }

  if (failures == 0) {
    std::cout << "survey_diff: OK: " << baseline->rows.size()
              << " members matched";
    if (added != 0) std::cout << ", " << added << " added";
    std::cout << "\n";
    return 0;
  }
  std::cout << "survey_diff: " << failures << " difference(s) failed the "
            << "gate\n";
  return 1;
}
