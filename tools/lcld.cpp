// Long-running LCL classification daemon: serves the versioned /v1 API
// (classify / lint / synthesize / survey) on the shared batch runtime,
// with admission control and a warm, resumable result cache.
//
//   lcld --port=8080 --jobs=4 --cache-dir=/var/lib/lcld
//   lcld --port=0 --port-file=port.txt      # ephemeral port for tests/CI
//
// SIGTERM/SIGINT drain gracefully: the listener closes, in-flight requests
// (including async surveys) finish, the cache's JSONL tier is already
// flushed per insert, and the process exits 0.
//
// Exit codes: 0 = clean start and drain, 2 = usage or startup failure.

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "obs/exporter.hpp"
#include "obs/obs.hpp"
#include "obs/run_context.hpp"
#include "svc/http.hpp"
#include "svc/service.hpp"
#include "util/version.hpp"

namespace {

// Written by the signal handler, polled by the main loop. sig_atomic_t is
// the only type the standard guarantees for this handshake.
volatile std::sig_atomic_t g_shutdown = 0;

void on_signal(int) { g_shutdown = 1; }

int usage(std::ostream& out, int code) {
  out << "usage: lcld [options]\n"
         "  --port=N           TCP port (default 8080; 0 = pick a free "
         "port)\n"
         "  --bind=ADDR        bind address (default 127.0.0.1)\n"
         "  --port-file=FILE   write the bound port here once listening\n"
         "  --jobs=N           worker threads (default 0 = all cores)\n"
         "  --max-inflight=N   compute requests admitted at once before\n"
         "                     429 (default 8)\n"
         "  --max-connections=N  live HTTP connections before 503 "
         "(default 32)\n"
         "  --cache-dir=DIR    keep the on-disk result cache here\n"
         "  --no-resume        truncate an existing cache instead of\n"
         "                     replaying it (default resumes)\n"
         "  --max-steps=N      per-request step-budget ceiling (default 4)\n"
         "  --max-labels=N     per-request label ceiling (default 4096)\n"
         "  --max-configs=N    per-request config ceiling (default "
         "4000000)\n"
         "  --run-id=ID        correlation id prefix (default lcld)\n"
         "  --version          print version and exit\n"
         "exit: 0 clean drain, 2 usage/startup failure\n";
  return code;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  try {
    std::size_t pos = 0;
    const auto value = std::stoull(text, &pos);
    if (pos != text.size()) return false;
    out = value;
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string bind_address = "127.0.0.1";
  std::uint64_t port = 8080;
  std::string port_file;
  std::string cache_dir;
  bool resume = true;
  lcl::svc::Service::Options service_options;
  service_options.engine.max_steps = 4;
  std::uint64_t max_connections = 32;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    std::uint64_t value = 0;
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--version") {
      std::cout << lcl::version_string("lcld") << "\n";
      return 0;
    } else if (arg == "--no-resume") {
      resume = false;
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!parse_u64(value_of("--port="), port) || port > 65535) {
        return usage(std::cerr, 2);
      }
    } else if (arg.rfind("--bind=", 0) == 0) {
      bind_address = value_of("--bind=");
    } else if (arg.rfind("--port-file=", 0) == 0) {
      port_file = value_of("--port-file=");
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!parse_u64(value_of("--jobs="), value)) return usage(std::cerr, 2);
      service_options.jobs = static_cast<std::size_t>(value);
    } else if (arg.rfind("--max-inflight=", 0) == 0) {
      if (!parse_u64(value_of("--max-inflight="), value) || value == 0) {
        return usage(std::cerr, 2);
      }
      service_options.max_inflight = static_cast<std::size_t>(value);
    } else if (arg.rfind("--max-connections=", 0) == 0) {
      if (!parse_u64(value_of("--max-connections="), max_connections) ||
          max_connections == 0) {
        return usage(std::cerr, 2);
      }
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      cache_dir = value_of("--cache-dir=");
    } else if (arg.rfind("--max-steps=", 0) == 0) {
      if (!parse_u64(value_of("--max-steps="), value)) {
        return usage(std::cerr, 2);
      }
      service_options.engine.max_steps = static_cast<int>(value);
    } else if (arg.rfind("--max-labels=", 0) == 0) {
      if (!parse_u64(value_of("--max-labels="), value)) {
        return usage(std::cerr, 2);
      }
      service_options.engine.limits.max_labels =
          static_cast<std::size_t>(value);
    } else if (arg.rfind("--max-configs=", 0) == 0) {
      if (!parse_u64(value_of("--max-configs="),
                     service_options.engine.limits.max_configs)) {
        return usage(std::cerr, 2);
      }
    } else if (arg.rfind("--run-id=", 0) == 0) {
      service_options.tool = value_of("--run-id=");
    } else {
      std::cerr << "lcld: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }

  try {
    // Metrics are the daemon's primary observability surface; turn the
    // runtime switch on unless the operator said otherwise.
    if (lcl::obs::telemetry_compiled_in()) {
      const char* env = std::getenv("LCL_OBS");
      lcl::obs::set_metrics_enabled(env == nullptr ||
                                    std::string(env) != "0");
    }

    if (!cache_dir.empty()) {
      std::filesystem::create_directories(cache_dir);
      service_options.cache_path =
          (std::filesystem::path(cache_dir) / "cache.jsonl").string();
      service_options.cache_resume = resume;
    }
    service_options.const_labels = {{"service", service_options.tool}};

    lcl::svc::Service service(service_options);

    lcl::svc::HttpServer::Options http;
    http.bind_address = bind_address;
    http.port = static_cast<std::uint16_t>(port);
    http.max_connections = static_cast<std::size_t>(max_connections);
    http.handler = [&service](const lcl::svc::HttpRequest& request) {
      return service.handle(request);
    };
    lcl::svc::HttpServer server(std::move(http));
    if (!server.start()) {
      std::cerr << "lcld: " << server.error() << "\n";
      return 2;
    }

    if (!port_file.empty()) {
      std::ofstream out(port_file);
      if (!out.is_open()) {
        std::cerr << "lcld: cannot write '" << port_file << "'\n";
        return 2;
      }
      out << server.port() << "\n";
    }

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);

    std::cout << lcl::version_string("lcld") << "\n"
              << "listening:  http://" << bind_address << ":" << server.port()
              << "  (jobs="
              << (service_options.jobs == 0
                      ? static_cast<std::size_t>(
                            std::thread::hardware_concurrency())
                      : service_options.jobs)
              << ", max_inflight=" << service_options.max_inflight << ")\n";
    if (!service_options.cache_path.empty()) {
      const auto stats = service.cache().stats();
      std::cout << "cache:      " << service_options.cache_path << "  ("
                << stats.disk_loaded << " entries replayed)\n";
    }
    std::cout.flush();

    while (g_shutdown == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    // Two-phase drain: stop accepting and finish in-flight HTTP first,
    // then wait out admitted async work (surveys) on the pool.
    std::cout << "draining...\n" << std::flush;
    server.drain();
    service.drain();
    server.stop();
    std::cout << "drained: " << server.requests_served()
              << " requests served, " << service.rejected()
              << " rejected\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "lcld: " << e.what() << "\n";
    return 2;
  }
}
