// Parallel landscape-survey CLI: sweeps a problem family through
// lint -> classify -> speedup-synthesis on a worker pool, with a shared
// content-addressed result cache.
//
//   lcl_batch --family=exhaustive --delta=2 --labels=2 --jobs=8
//   lcl_batch --family=generator --seeds=200 --jobs=0 --cache-dir=.cache
//   lcl_batch --spec-dir=tests/corpus --report-json=report.json
//   lcl_batch --family=exhaustive --cache-dir=.cache --resume   # warm rerun
//
// The report JSON is deterministic: byte-identical for any --jobs value and
// for cold vs. warm caches.
//
// Exit codes: 0 = survey completed and every member was processed cleanly,
// 1 = at least one member recorded a task error, 2 = usage or I/O error.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "batch/cache.hpp"
#include "batch/survey.hpp"
#include "fuzz/generator.hpp"
#include "util/rng.hpp"

namespace {

using lcl::batch::Cache;
using lcl::batch::Family;
using lcl::batch::SurveyOptions;

int usage(std::ostream& out, int code) {
  out << "usage: lcl_batch [options]\n"
         "  --family=KIND          exhaustive (default) | generator\n"
         "  --spec-dir=DIR         survey every *.json spec under DIR\n"
         "                         (overrides --family)\n"
         "  --jobs=N               worker threads (default 1; 0 = all "
         "cores)\n"
         "  --cache-dir=DIR        keep the on-disk result cache here\n"
         "  --resume               reuse an existing on-disk cache (default\n"
         "                         truncates it)\n"
         "  --report-json=FILE     write the landscape report JSON here\n"
         "  --delta=N              exhaustive family: max degree (default "
         "2)\n"
         "  --labels=N             exhaustive family: output labels "
         "(default 2)\n"
         "  --max-problems=N       cap the family size (0 = no cap)\n"
         "  --seeds=N              generator family: problem count "
         "(default 50)\n"
         "  --seed-start=N         generator family: first seed (default "
         "1)\n"
         "  --max-steps=N          speedup-synthesis step budget (default "
         "3)\n"
         "  --degrees=CSV          degree set, e.g. 2 or 2,3; empty = "
         "forest\n"
         "  --check-nodes=N        brute-force cross-check on an N-node "
         "path\n"
         "  --check-budget=N       cross-check step budget (default "
         "250000)\n"
         "  --quiet                suppress the per-class summary\n";
  return code;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  try {
    std::size_t pos = 0;
    const auto value = std::stoull(text, &pos);
    if (pos != text.size()) return false;
    out = value;
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_degrees(const std::string& text, std::vector<int>& out) {
  out.clear();
  if (text.empty() || text == "forest") return true;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    std::uint64_t value = 0;
    if (!parse_u64(item, value) || value == 0) return false;
    out.push_back(static_cast<int>(value));
  }
  return !out.empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string family_kind = "exhaustive";
  std::string spec_dir;
  std::string cache_dir;
  std::string report_path;
  bool resume = false;
  bool quiet = false;
  lcl::batch::ExhaustiveFamilyOptions exhaustive;
  std::uint64_t seeds = 50;
  std::uint64_t seed_start = 1;
  SurveyOptions survey;
  survey.engine.max_steps = 3;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    std::uint64_t value = 0;
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--family=", 0) == 0) {
      family_kind = value_of("--family=");
      if (family_kind != "exhaustive" && family_kind != "generator") {
        std::cerr << "lcl_batch: unknown family '" << family_kind << "'\n";
        return 2;
      }
    } else if (arg.rfind("--spec-dir=", 0) == 0) {
      spec_dir = value_of("--spec-dir=");
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      cache_dir = value_of("--cache-dir=");
    } else if (arg.rfind("--report-json=", 0) == 0) {
      report_path = value_of("--report-json=");
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!parse_u64(value_of("--jobs="), value)) return usage(std::cerr, 2);
      survey.jobs = static_cast<std::size_t>(value);
    } else if (arg.rfind("--delta=", 0) == 0) {
      if (!parse_u64(value_of("--delta="), value)) return usage(std::cerr, 2);
      exhaustive.max_degree = static_cast<int>(value);
    } else if (arg.rfind("--labels=", 0) == 0) {
      if (!parse_u64(value_of("--labels="), value)) return usage(std::cerr, 2);
      exhaustive.labels = static_cast<std::size_t>(value);
    } else if (arg.rfind("--max-problems=", 0) == 0) {
      if (!parse_u64(value_of("--max-problems="), value)) {
        return usage(std::cerr, 2);
      }
      exhaustive.max_problems = static_cast<std::size_t>(value);
    } else if (arg.rfind("--seeds=", 0) == 0) {
      if (!parse_u64(value_of("--seeds="), seeds)) return usage(std::cerr, 2);
    } else if (arg.rfind("--seed-start=", 0) == 0) {
      if (!parse_u64(value_of("--seed-start="), seed_start)) {
        return usage(std::cerr, 2);
      }
    } else if (arg.rfind("--max-steps=", 0) == 0) {
      if (!parse_u64(value_of("--max-steps="), value)) {
        return usage(std::cerr, 2);
      }
      survey.engine.max_steps = static_cast<int>(value);
    } else if (arg.rfind("--degrees=", 0) == 0) {
      if (!parse_degrees(value_of("--degrees="), survey.engine.degrees)) {
        return usage(std::cerr, 2);
      }
    } else if (arg.rfind("--check-nodes=", 0) == 0) {
      if (!parse_u64(value_of("--check-nodes="), value)) {
        return usage(std::cerr, 2);
      }
      survey.check_nodes = static_cast<std::size_t>(value);
    } else if (arg.rfind("--check-budget=", 0) == 0) {
      if (!parse_u64(value_of("--check-budget="), survey.check_budget)) {
        return usage(std::cerr, 2);
      }
    } else {
      std::cerr << "lcl_batch: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }

  try {
    Family family;
    if (!spec_dir.empty()) {
      family = lcl::batch::spec_dir_family(spec_dir);
    } else if (family_kind == "generator") {
      // The generator corpus is assembled here (not in lcl_batch the
      // library) so the library stays independent of lcl_fuzz - which
      // itself uses the batch pool for --jobs.
      family.description = "generator:s" + std::to_string(seed_start) + "+" +
                           std::to_string(seeds);
      lcl::fuzz::GeneratorOptions generator;
      generator.max_input_labels = 1;  // keep the classifiers applicable
      for (std::uint64_t s = 0; s < seeds; ++s) {
        const std::uint64_t seed = seed_start + s;
        lcl::SplitRng rng(seed);
        family.members.push_back(lcl::batch::FamilyMember{
            "seed" + std::to_string(seed),
            lcl::fuzz::random_problem(generator, rng)});
      }
    } else {
      family = lcl::batch::exhaustive_family(exhaustive);
    }

    std::unique_ptr<Cache> cache;
    if (!cache_dir.empty()) {
      std::filesystem::create_directories(cache_dir);
      Cache::Options cache_options;
      cache_options.disk_path =
          (std::filesystem::path(cache_dir) / "cache.jsonl").string();
      cache_options.load_existing = resume;
      cache = std::make_unique<Cache>(std::move(cache_options));
      survey.cache = cache.get();
    }

    const auto report = lcl::batch::run_survey(family, survey);

    if (!report_path.empty()) {
      std::ofstream out(report_path);
      if (!out.is_open()) {
        std::cerr << "lcl_batch: cannot write '" << report_path << "'\n";
        return 2;
      }
      out << report.to_json() << "\n";
    }
    if (!quiet) {
      std::cout << "family:    " << report.family << "\n";
      std::cout << "problems:  " << report.problems << "\n";
      for (const auto& [name, count] : report.class_counts) {
        std::cout << "  " << name << ": " << count << "  (e.g. "
                  << report.class_exemplars.at(name) << ")\n";
      }
      if (cache != nullptr) {
        const auto stats = cache->stats();
        std::cout << "cache:     " << stats.hits << " hits, " << stats.misses
                  << " misses, " << stats.collisions << " collisions, "
                  << stats.disk_loaded << " loaded from disk\n";
      }
      if (report.errors != 0) {
        std::cout << "errors:    " << report.errors << "\n";
      }
    }
    return report.errors == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "lcl_batch: " << e.what() << "\n";
    return 2;
  }
}
