// Parallel landscape-survey CLI: sweeps a problem family through
// lint -> classify -> speedup-synthesis on a worker pool, with a shared
// content-addressed result cache.
//
//   lcl_batch --family=exhaustive --delta=2 --labels=2 --jobs=8
//   lcl_batch --family=generator --seeds=200 --jobs=0 --cache-dir=.cache
//   lcl_batch --spec-dir=tests/corpus --report-json=report.json
//   lcl_batch --family=exhaustive --cache-dir=.cache --resume   # warm rerun
//   lcl_batch --shard=0/4 --cache-dir=.cache --report-json=shard0.json
//
// The report JSON is deterministic: byte-identical for any --jobs value and
// for cold vs. warm caches. `--shard=I/N` restricts the run to the members
// whose deterministic shard key lands on shard I; N independent processes
// cover the family exactly once, each writing its own cache tier
// (`cache-shard-I-of-N.jsonl`) and a report carrying its
// `lclscape.shards.v1` manifest, which `lcl_survey_merge` joins back into
// the byte-identical single-pool report.
//
// Exit codes: 0 = survey completed and every member was processed cleanly,
// 1 = at least one member recorded a task error, 2 = usage or I/O error.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "batch/cache.hpp"
#include "batch/shard.hpp"
#include "batch/survey.hpp"
#include "fuzz/generator.hpp"
#include "obs/exporter.hpp"
#include "obs/obs.hpp"
#include "obs/resource_sampler.hpp"
#include "obs/run_context.hpp"
#include "util/rng.hpp"
#include "util/version.hpp"

namespace {

using lcl::batch::Cache;
using lcl::batch::Family;
using lcl::batch::SurveyOptions;
namespace json = lcl::obs::json;

/// Runtime leg of the LCL_OBS kill switch: telemetry defaults on in this
/// tool, LCL_OBS=0 in the environment turns it off (and an LCL_OBS=0
/// *build* compiles it out - telemetry_compiled_in() is then false).
bool telemetry_wanted() {
  if (!lcl::obs::telemetry_compiled_in()) return false;
  const char* env = std::getenv("LCL_OBS");
  return env == nullptr || std::string(env) != "0";
}

/// The obs counter/gauge delta (start -> end) embedded in v2 reports:
/// cache hit/miss/evict/collision stats and peak RSS travel with the
/// report instead of requiring a separate trace file.
json::Value telemetry_block(const lcl::obs::RunContext& run,
                            const lcl::obs::MetricsRegistry::Snapshot& start,
                            const lcl::obs::MetricsRegistry::Snapshot& end) {
  json::Value block = json::Value::make_object();
  auto& top = block.object();
  top.emplace("run_id", json::Value(run.run_id()));
  top.emplace("elapsed_s", json::Value(run.elapsed_seconds()));
  top.emplace("rows_per_s", json::Value(run.rows_per_second()));

  json::Value counters = json::Value::make_object();
  for (const auto& [name, value] : end.counters) {
    const auto before = start.counters.find(name);
    const std::uint64_t delta =
        value - (before == start.counters.end() ? 0 : before->second);
    if (delta != 0) {
      counters.object().emplace(
          name, json::Value(static_cast<std::int64_t>(delta)));
    }
  }
  top.emplace("counters", std::move(counters));

  json::Value gauges = json::Value::make_object();
  for (const auto& [name, gauge] : end.gauges) {
    gauges.object().emplace(name, json::Value(gauge.value));
  }
  top.emplace("gauges", std::move(gauges));

  const auto busy = run.busy_fractions();
  if (!busy.empty()) {
    json::Value fractions = json::Value::make_array();
    for (const double f : busy) fractions.array().emplace_back(f);
    top.emplace("worker_busy", std::move(fractions));
  }
  return block;
}

int usage(std::ostream& out, int code) {
  out << "usage: lcl_batch [options]\n"
         "  --family=KIND          exhaustive (default) | generator\n"
         "  --spec-dir=DIR         survey every *.json spec under DIR\n"
         "                         (overrides --family)\n"
         "  --jobs=N               worker threads (default 1; 0 = all "
         "cores)\n"
         "  --cache-dir=DIR        keep the on-disk result cache here\n"
         "  --cache-key=KIND       raw (default) | canonical: canonical also\n"
         "                         indexes results by the label-permutation\n"
         "                         canonical signature, so permutation-\n"
         "                         equivalent members replay each other's\n"
         "                         verdicts (each hit confirmed exactly;\n"
         "                         implies an in-memory cache even without\n"
         "                         --cache-dir)\n"
         "  --resume[=strict]      reuse an existing on-disk cache (default\n"
         "                         truncates it); a tier recorded by a\n"
         "                         different engine git SHA warns, or errors\n"
         "                         under --resume=strict\n"
         "  --shard=I/N            survey only shard I of N (deterministic\n"
         "                         signature-keyed partition; the report\n"
         "                         embeds the shard manifest and the cache\n"
         "                         tier becomes cache-shard-I-of-N.jsonl)\n"
         "  --manifest=FILE        also write the lclscape.shards.v1 shard\n"
         "                         manifest JSON here (requires --shard)\n"
         "  --classify=on|off      run the cycle/path classifiers (default\n"
         "                         on; off records \"n/a\" columns and the\n"
         "                         landscape class falls through to the\n"
         "                         engine verdicts)\n"
         "  --report-json=FILE     write the landscape report JSON here\n"
         "  --delta=N              exhaustive family: max degree (default "
         "2)\n"
         "  --labels=N             exhaustive family: output labels "
         "(default 2)\n"
         "  --max-problems=N       cap the family size (0 = no cap)\n"
         "  --seeds=N              generator family: problem count "
         "(default 50)\n"
         "  --seed-start=N         generator family: first seed (default "
         "1)\n"
         "  --max-steps=N          speedup-synthesis step budget (default "
         "3)\n"
         "  --degrees=CSV          degree set, e.g. 2 or 2,3; empty = "
         "forest\n"
         "  --check-nodes=N        brute-force cross-check on an N-node "
         "path\n"
         "  --check-budget=N       cross-check step budget (default "
         "250000)\n"
         "  --quiet                suppress the per-class summary\n"
         "  --run-id=ID            correlation id for telemetry (default\n"
         "                         run-<unix-time>-<pid>)\n"
         "  --metrics-port=N       serve GET /metrics, /healthz, /progress\n"
         "                         on 127.0.0.1:N (0 = pick a free port;\n"
         "                         the bound port is printed)\n"
         "  --progress-interval=MS periodic progress records every MS ms\n"
         "                         (default 2000; resource samples at the\n"
         "                         same cadence)\n"
         "  --progress-log=FILE    append progress/resource JSONL records\n"
         "                         (trace dialect; see trace_summary "
         "--progress)\n"
         "  --report-telemetry=B   on (default) | off: embed the obs\n"
         "                         counter/gauge delta in --report-json\n"
         "                         (off gives byte-reproducible reports)\n"
         "  (set LCL_OBS=0 in the environment to disable all telemetry)\n";
  return code;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  try {
    std::size_t pos = 0;
    const auto value = std::stoull(text, &pos);
    if (pos != text.size()) return false;
    out = value;
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_shard(const std::string& text, lcl::batch::ShardRef& out) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return false;
  std::uint64_t index = 0;
  std::uint64_t count = 0;
  if (!parse_u64(text.substr(0, slash), index) ||
      !parse_u64(text.substr(slash + 1), count)) {
    return false;
  }
  if (count == 0 || index >= count) return false;
  out.index = static_cast<std::size_t>(index);
  out.count = static_cast<std::size_t>(count);
  return true;
}

bool parse_degrees(const std::string& text, std::vector<int>& out) {
  out.clear();
  if (text.empty() || text == "forest") return true;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    std::uint64_t value = 0;
    if (!parse_u64(item, value) || value == 0) return false;
    out.push_back(static_cast<int>(value));
  }
  return !out.empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string family_kind = "exhaustive";
  std::string spec_dir;
  std::string cache_dir;
  std::string report_path;
  bool resume = false;
  bool resume_strict = false;
  bool quiet = false;
  bool canonical_key = false;
  bool sharded = false;
  lcl::batch::ShardRef shard;
  std::string manifest_path;
  lcl::batch::ExhaustiveFamilyOptions exhaustive;
  std::uint64_t seeds = 50;
  std::uint64_t seed_start = 1;
  std::string run_id;
  bool metrics_server = false;
  std::uint64_t metrics_port = 0;
  std::uint64_t progress_interval_ms = 2000;
  std::string progress_log;
  bool report_telemetry = true;
  SurveyOptions survey;
  survey.engine.max_steps = 3;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    std::uint64_t value = 0;
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--version") {
      std::cout << lcl::version_string("lcl_batch") << "\n";
      return 0;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--resume=strict") {
      resume = true;
      resume_strict = true;
    } else if (arg.rfind("--shard=", 0) == 0) {
      if (!parse_shard(value_of("--shard="), shard)) {
        std::cerr << "lcl_batch: --shard wants I/N with I < N\n";
        return 2;
      }
      sharded = true;
    } else if (arg.rfind("--manifest=", 0) == 0) {
      manifest_path = value_of("--manifest=");
    } else if (arg.rfind("--classify=", 0) == 0) {
      const std::string mode = value_of("--classify=");
      if (mode == "on") {
        survey.classify_cycles = true;
        survey.classify_paths = true;
      } else if (mode == "off") {
        survey.classify_cycles = false;
        survey.classify_paths = false;
      } else {
        std::cerr << "lcl_batch: --classify wants on|off\n";
        return 2;
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--family=", 0) == 0) {
      family_kind = value_of("--family=");
      if (family_kind != "exhaustive" && family_kind != "generator") {
        std::cerr << "lcl_batch: unknown family '" << family_kind << "'\n";
        return 2;
      }
    } else if (arg.rfind("--spec-dir=", 0) == 0) {
      spec_dir = value_of("--spec-dir=");
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      cache_dir = value_of("--cache-dir=");
    } else if (arg.rfind("--cache-key=", 0) == 0) {
      const std::string mode = value_of("--cache-key=");
      if (mode == "raw") {
        canonical_key = false;
      } else if (mode == "canonical") {
        canonical_key = true;
      } else {
        std::cerr << "lcl_batch: --cache-key wants raw|canonical\n";
        return 2;
      }
    } else if (arg.rfind("--report-json=", 0) == 0) {
      report_path = value_of("--report-json=");
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!parse_u64(value_of("--jobs="), value)) return usage(std::cerr, 2);
      survey.jobs = static_cast<std::size_t>(value);
    } else if (arg.rfind("--delta=", 0) == 0) {
      if (!parse_u64(value_of("--delta="), value)) return usage(std::cerr, 2);
      exhaustive.max_degree = static_cast<int>(value);
    } else if (arg.rfind("--labels=", 0) == 0) {
      if (!parse_u64(value_of("--labels="), value)) return usage(std::cerr, 2);
      exhaustive.labels = static_cast<std::size_t>(value);
    } else if (arg.rfind("--max-problems=", 0) == 0) {
      if (!parse_u64(value_of("--max-problems="), value)) {
        return usage(std::cerr, 2);
      }
      exhaustive.max_problems = static_cast<std::size_t>(value);
    } else if (arg.rfind("--seeds=", 0) == 0) {
      if (!parse_u64(value_of("--seeds="), seeds)) return usage(std::cerr, 2);
    } else if (arg.rfind("--seed-start=", 0) == 0) {
      if (!parse_u64(value_of("--seed-start="), seed_start)) {
        return usage(std::cerr, 2);
      }
    } else if (arg.rfind("--max-steps=", 0) == 0) {
      if (!parse_u64(value_of("--max-steps="), value)) {
        return usage(std::cerr, 2);
      }
      survey.engine.max_steps = static_cast<int>(value);
    } else if (arg.rfind("--degrees=", 0) == 0) {
      if (!parse_degrees(value_of("--degrees="), survey.engine.degrees)) {
        return usage(std::cerr, 2);
      }
    } else if (arg.rfind("--check-nodes=", 0) == 0) {
      if (!parse_u64(value_of("--check-nodes="), value)) {
        return usage(std::cerr, 2);
      }
      survey.check_nodes = static_cast<std::size_t>(value);
    } else if (arg.rfind("--check-budget=", 0) == 0) {
      if (!parse_u64(value_of("--check-budget="), survey.check_budget)) {
        return usage(std::cerr, 2);
      }
    } else if (arg.rfind("--run-id=", 0) == 0) {
      run_id = value_of("--run-id=");
    } else if (arg.rfind("--metrics-port=", 0) == 0) {
      if (!parse_u64(value_of("--metrics-port="), metrics_port) ||
          metrics_port > 65535) {
        return usage(std::cerr, 2);
      }
      metrics_server = true;
    } else if (arg.rfind("--progress-interval=", 0) == 0) {
      if (!parse_u64(value_of("--progress-interval="),
                     progress_interval_ms) ||
          progress_interval_ms == 0) {
        return usage(std::cerr, 2);
      }
    } else if (arg.rfind("--progress-log=", 0) == 0) {
      progress_log = value_of("--progress-log=");
    } else if (arg.rfind("--report-telemetry=", 0) == 0) {
      const std::string mode = value_of("--report-telemetry=");
      if (mode == "on") {
        report_telemetry = true;
      } else if (mode == "off") {
        report_telemetry = false;
      } else {
        std::cerr << "lcl_batch: --report-telemetry wants on|off\n";
        return 2;
      }
    } else {
      std::cerr << "lcl_batch: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }
  if (!manifest_path.empty() && !sharded) {
    std::cerr << "lcl_batch: --manifest requires --shard\n";
    return 2;
  }

  try {
    const bool telemetry = telemetry_wanted();
    if (telemetry) lcl::obs::set_metrics_enabled(true);
    if (run_id.empty()) run_id = lcl::obs::default_run_id();

    // Declaration order doubles as teardown order: the exporter and the
    // sampler (destroyed first) must stop before the RunContext and the
    // progress log they read from go away.
    lcl::obs::RunContext run(run_id, "survey");
    survey.run = &run;
    lcl::obs::RunContext::set_current(&run);

    std::unique_ptr<lcl::obs::TraceSession> progress_session;
    if (!progress_log.empty()) {
      progress_session = std::make_unique<lcl::obs::TraceSession>(
          progress_log, lcl::obs::TraceFormat::kJsonl);
      lcl::obs::TraceSession::set_current(progress_session.get());
    }

    lcl::obs::ResourceSampler::Options sampler_options;
    sampler_options.resource_interval =
        std::chrono::milliseconds(progress_interval_ms);
    sampler_options.progress_interval =
        std::chrono::milliseconds(progress_interval_ms);
    sampler_options.run = &run;
    lcl::obs::ResourceSampler sampler(std::move(sampler_options));
    if (telemetry) sampler.start();

    lcl::obs::Exporter::Options exporter_options;
    exporter_options.port = static_cast<std::uint16_t>(metrics_port);
    exporter_options.const_labels = {{"run_id", run_id}};
    exporter_options.progress_provider = [&run]() {
      return run.progress_json() + "\n";
    };
    lcl::obs::Exporter exporter(std::move(exporter_options));
    if (metrics_server) {
      if (!telemetry) {
        std::cerr << "lcl_batch: --metrics-port ignored: telemetry is "
                     "disabled (LCL_OBS=0)\n";
      } else if (!exporter.start()) {
        std::cerr << "lcl_batch: metrics exporter: " << exporter.error()
                  << "\n";
        return 2;
      } else if (!quiet) {
        std::cout << "metrics:   http://127.0.0.1:" << exporter.port()
                  << "/metrics  (run_id " << run_id << ")\n";
      }
    }

    lcl::obs::MetricsRegistry::Snapshot start_snapshot;
    if (telemetry && report_telemetry) {
      start_snapshot = lcl::obs::registry().snapshot();
    }

    Family family;
    if (!spec_dir.empty()) {
      family = lcl::batch::spec_dir_family(spec_dir);
    } else if (family_kind == "generator") {
      // The generator corpus is assembled here (not in lcl_batch the
      // library) so the library stays independent of lcl_fuzz - which
      // itself uses the batch pool for --jobs.
      family.description = "generator:s" + std::to_string(seed_start) + "+" +
                           std::to_string(seeds);
      lcl::fuzz::GeneratorOptions generator;
      generator.max_input_labels = 1;  // keep the classifiers applicable
      for (std::uint64_t s = 0; s < seeds; ++s) {
        const std::uint64_t seed = seed_start + s;
        lcl::SplitRng rng(seed);
        family.members.push_back(lcl::batch::FamilyMember{
            "seed" + std::to_string(seed),
            lcl::fuzz::random_problem(generator, rng)});
      }
    } else {
      family = lcl::batch::exhaustive_family(exhaustive);
    }

    // Each shard owns its cache tier, so N shard processes never contend on
    // one file and a single shard can be killed and resumed independently.
    std::string cache_tier;
    if (!cache_dir.empty()) {
      const std::string file =
          sharded ? "cache-shard-" + std::to_string(shard.index) + "-of-" +
                        std::to_string(shard.count) + ".jsonl"
                  : "cache.jsonl";
      cache_tier = (std::filesystem::path(cache_dir) / file).string();
    }

    lcl::batch::ShardPlan plan;
    if (sharded) {
      plan = lcl::batch::plan_shard(family, shard, cache_tier,
                                    lcl::git_sha());
      family = std::move(plan.members);
    }

    std::unique_ptr<Cache> cache;
    if (!cache_tier.empty() || canonical_key) {
      Cache::Options cache_options;
      if (!cache_tier.empty()) {
        std::filesystem::create_directories(cache_dir);
        cache_options.disk_path = cache_tier;
        cache_options.load_existing = resume;
        cache_options.meta_git_sha = lcl::git_sha();
      }
      cache_options.canonical_tier = canonical_key;
      cache = std::make_unique<Cache>(std::move(cache_options));
      survey.cache = cache.get();
      if (resume) {
        // A tier written by a different engine silently mixes verdict
        // generations into one report - surface it.
        const auto loaded_sha = cache->loaded_git_sha();
        if (loaded_sha.has_value() && *loaded_sha != lcl::git_sha()) {
          std::cerr << "lcl_batch: " << (resume_strict ? "error" : "warning")
                    << ": resumed cache tier '" << cache_tier
                    << "' was written by engine " << *loaded_sha
                    << " but this binary is " << lcl::git_sha()
                    << (resume_strict
                            ? ""
                            : " (use --resume=strict to refuse, or delete "
                              "the tier)")
                    << "\n";
          if (resume_strict) return 2;
        }
      }
    }

    if (!manifest_path.empty()) {
      std::ofstream out(manifest_path);
      if (!out.is_open()) {
        std::cerr << "lcl_batch: cannot write '" << manifest_path << "'\n";
        return 2;
      }
      out << plan.manifest.to_json();
    }

    const auto report = lcl::batch::run_survey(family, survey);

    // Final samples + gauges land before the end snapshot is taken.
    sampler.stop();
    lcl::obs::RunContext::set_current(nullptr);

    if (!report_path.empty()) {
      std::ofstream out(report_path);
      if (!out.is_open()) {
        std::cerr << "lcl_batch: cannot write '" << report_path << "'\n";
        return 2;
      }
      json::Value document = report.to_json_value();
      if (sharded) {
        document.object()["shard"] = plan.manifest.to_json_value();
      }
      if (telemetry && report_telemetry) {
        document.object()["telemetry"] = telemetry_block(
            run, start_snapshot, lcl::obs::registry().snapshot());
      }
      out << json::dump(document) << "\n";
    }
    if (!quiet) {
      std::cout << "family:    " << report.family << "\n";
      if (sharded) {
        std::cout << "shard:     " << shard.index << "/" << shard.count
                  << "  (" << report.problems << " of "
                  << plan.manifest.members_total << " members)\n";
      }
      std::cout << "problems:  " << report.problems << "\n";
      for (const auto& [name, count] : report.class_counts) {
        std::cout << "  " << name << ": " << count << "  (e.g. "
                  << report.class_exemplars.at(name) << ")\n";
      }
      std::cout << "canonical: " << report.canonical_classes
                << " label-permutation classes\n";
      if (cache != nullptr) {
        const auto stats = cache->stats();
        std::cout << "cache:     " << stats.hits << " hits, " << stats.misses
                  << " misses, " << stats.collisions << " collisions, "
                  << stats.disk_loaded << " loaded from disk\n";
        if (canonical_key) {
          std::cout << "           " << stats.canonical_hits
                    << " canonical hits, " << stats.canonical_collisions
                    << " canonical collisions\n";
        }
      }
      if (report.errors != 0) {
        std::cout << "errors:    " << report.errors << "\n";
      }
    }
    return report.errors == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "lcl_batch: " << e.what() << "\n";
    return 2;
  }
}
