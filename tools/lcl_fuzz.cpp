// Differential fuzzing CLI for the lclscape libraries.
//
//   lcl_fuzz --seeds=500                 # fuzz 500 seeds over the whole bank
//   lcl_fuzz --seeds=100000 --budget=60s # stop after ~60 seconds
//   lcl_fuzz --replay=tests/corpus       # re-check every saved counterexample
//   lcl_fuzz --list-oracles
//
// Exit codes: 0 = all checks passed, 1 = at least one oracle failure,
// 2 = usage or I/O error.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/case_io.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/oracles.hpp"
#include "obs/exporter.hpp"
#include "obs/obs.hpp"
#include "obs/resource_sampler.hpp"
#include "obs/run_context.hpp"
#include "util/version.hpp"

namespace {

using lcl::fuzz::FuzzRunOptions;

/// Runtime leg of the LCL_OBS kill switch (same contract as lcl_batch):
/// telemetry defaults on, LCL_OBS=0 in the environment disables it.
bool telemetry_wanted() {
  if (!lcl::obs::telemetry_compiled_in()) return false;
  const char* env = std::getenv("LCL_OBS");
  return env == nullptr || std::string(env) != "0";
}

int usage(std::ostream& out, int code) {
  out << "usage: lcl_fuzz [options]\n"
         "  --seeds=N              number of generator seeds (default 100)\n"
         "  --seed-start=N         first seed (default 1)\n"
         "  --jobs=N               worker threads (default 1; 0 = all "
         "cores)\n"
         "  --budget=T             wall-clock budget, e.g. 45, 60s, 10m\n"
         "  --corpus-dir=DIR       write shrunk failing cases here\n"
         "  --oracle=ID            run only this oracle\n"
         "  --lint=POLICY          degenerate-problem policy: off, annotate\n"
         "                         (default; lint codes land in the case\n"
         "                         note), or reject (redraw)\n"
         "  --wide-alphabets       draw 64-130 label alphabets with a small\n"
         "                         live core (exercises the multi-word mask\n"
         "                         tiers; pairs well with --oracle=synthesis\n"
         "                         or --oracle=lift-soundness)\n"
         "  --no-shrink            keep failing cases unminimized\n"
         "  --inject-bug=NAME      fault injection (drop-rbar-config)\n"
         "  --replay=FILE_OR_DIR   replay saved case(s) instead of fuzzing\n"
         "  --list-oracles         print the oracle bank and exit\n"
         "  --run-id=ID            correlation id for telemetry (default\n"
         "                         run-<unix-time>-<pid>)\n"
         "  --metrics-port=N       serve GET /metrics, /healthz, /progress\n"
         "                         on 127.0.0.1:N (0 = pick a free port)\n"
         "  --progress-interval=MS periodic progress/resource records\n"
         "                         every MS ms (default 2000)\n"
         "  --progress-log=FILE    append progress/resource JSONL records\n"
         "  (set LCL_OBS=0 in the environment to disable all telemetry)\n";
  return code;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  try {
    std::size_t pos = 0;
    const auto value = std::stoull(text, &pos);
    if (pos != text.size()) return false;
    out = value;
    return true;
  } catch (...) {
    return false;
  }
}

/// "45" / "45s" -> 45 seconds, "10m" -> 600 seconds.
bool parse_budget(const std::string& text, double& out) {
  if (text.empty()) return false;
  double scale = 1.0;
  std::string digits = text;
  if (digits.back() == 's') {
    digits.pop_back();
  } else if (digits.back() == 'm') {
    scale = 60.0;
    digits.pop_back();
  }
  std::uint64_t value = 0;
  if (!parse_u64(digits, value)) return false;
  out = static_cast<double>(value) * scale;
  return true;
}

int replay(const std::string& target, const lcl::fuzz::OracleOptions& oracle) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  if (fs::is_directory(target)) {
    for (const auto& entry : fs::directory_iterator(target)) {
      if (entry.is_regular_file() && entry.path().extension() == ".json") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
  } else {
    files.push_back(target);
  }
  if (files.empty()) {
    std::cerr << "lcl_fuzz: no .json cases under '" << target << "'\n";
    return 2;
  }

  int failures = 0;
  for (const auto& file : files) {
    lcl::fuzz::FuzzCase fuzz_case;
    try {
      fuzz_case = lcl::fuzz::load_case(file);
    } catch (const std::exception& e) {
      std::cerr << "lcl_fuzz: " << e.what() << "\n";
      return 2;
    }
    const auto result = lcl::fuzz::replay_case(fuzz_case, oracle);
    const char* verdict = !result.applicable ? "SKIP"
                          : result.failed    ? "FAIL"
                                             : "PASS";
    std::cout << verdict << " " << file << " [" << fuzz_case.oracle << "]";
    if (!fuzz_case.note.empty()) std::cout << " (" << fuzz_case.note << ")";
    std::cout << "\n";
    if (result.failed) {
      std::cout << "  " << result.message << "\n";
      ++failures;
    }
  }
  std::cout << files.size() << " case(s), " << failures << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzRunOptions options;
  std::string replay_target;
  bool list_oracles = false;
  std::string run_id;
  bool metrics_server = false;
  std::uint64_t metrics_port = 0;
  std::uint64_t progress_interval_ms = 2000;
  std::string progress_log;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--version") {
      std::cout << lcl::version_string("lcl_fuzz") << "\n";
      return 0;
    } else if (arg == "--list-oracles") {
      list_oracles = true;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--wide-alphabets") {
      options.generator.wide_alphabets = true;
    } else if (arg.rfind("--seeds=", 0) == 0) {
      if (!parse_u64(value_of("--seeds="), options.seeds)) {
        return usage(std::cerr, 2);
      }
    } else if (arg.rfind("--seed-start=", 0) == 0) {
      if (!parse_u64(value_of("--seed-start="), options.seed_start)) {
        return usage(std::cerr, 2);
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      std::uint64_t jobs = 0;
      if (!parse_u64(value_of("--jobs="), jobs)) {
        return usage(std::cerr, 2);
      }
      options.jobs = static_cast<std::size_t>(jobs);
    } else if (arg.rfind("--budget=", 0) == 0) {
      if (!parse_budget(value_of("--budget="), options.budget_seconds)) {
        return usage(std::cerr, 2);
      }
    } else if (arg.rfind("--corpus-dir=", 0) == 0) {
      options.corpus_dir = value_of("--corpus-dir=");
    } else if (arg.rfind("--oracle=", 0) == 0) {
      options.only_oracle = value_of("--oracle=");
    } else if (arg.rfind("--lint=", 0) == 0) {
      const std::string policy = value_of("--lint=");
      if (policy == "off") {
        options.generator.lint_policy = lcl::fuzz::LintPolicy::kOff;
      } else if (policy == "annotate") {
        options.generator.lint_policy = lcl::fuzz::LintPolicy::kAnnotate;
      } else if (policy == "reject") {
        options.generator.lint_policy = lcl::fuzz::LintPolicy::kReject;
      } else {
        std::cerr << "lcl_fuzz: unknown lint policy '" << policy
                  << "' (off | annotate | reject)\n";
        return 2;
      }
    } else if (arg.rfind("--inject-bug=", 0) == 0) {
      options.oracle.inject = value_of("--inject-bug=");
      if (options.oracle.inject != "drop-rbar-config") {
        std::cerr << "lcl_fuzz: unknown injection '" << options.oracle.inject
                  << "'\n";
        return 2;
      }
    } else if (arg.rfind("--replay=", 0) == 0) {
      replay_target = value_of("--replay=");
    } else if (arg.rfind("--run-id=", 0) == 0) {
      run_id = value_of("--run-id=");
    } else if (arg.rfind("--metrics-port=", 0) == 0) {
      std::uint64_t port = 0;
      if (!parse_u64(value_of("--metrics-port="), port) || port > 65535) {
        return usage(std::cerr, 2);
      }
      metrics_port = port;
      metrics_server = true;
    } else if (arg.rfind("--progress-interval=", 0) == 0) {
      if (!parse_u64(value_of("--progress-interval="),
                     progress_interval_ms) ||
          progress_interval_ms == 0) {
        return usage(std::cerr, 2);
      }
    } else if (arg.rfind("--progress-log=", 0) == 0) {
      progress_log = value_of("--progress-log=");
    } else {
      std::cerr << "lcl_fuzz: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }

  if (list_oracles) {
    for (const auto& entry : lcl::fuzz::oracle_bank()) {
      std::cout << entry.id << "\n  " << entry.description << "\n";
    }
    return 0;
  }
  if (!replay_target.empty()) {
    return replay(replay_target, options.oracle);
  }
  if (!options.only_oracle.empty()) {
    try {
      // Validate the id up front so a typo is exit 2, not a silent no-op run.
      (void)lcl::fuzz::oracle_bank();
      bool known = false;
      for (const auto& entry : lcl::fuzz::oracle_bank()) {
        known = known || options.only_oracle == entry.id;
      }
      if (!known) {
        std::cerr << "lcl_fuzz: unknown oracle '" << options.only_oracle
                  << "' (see --list-oracles)\n";
        return 2;
      }
    } catch (...) {
      return 2;
    }
  }

  const bool telemetry = telemetry_wanted();
  if (telemetry) lcl::obs::set_metrics_enabled(true);
  if (run_id.empty()) run_id = lcl::obs::default_run_id();

  // Teardown order mirrors declaration order: exporter and sampler stop
  // before the RunContext / progress log they read go away.
  lcl::obs::RunContext run(run_id, "fuzz");
  options.run = &run;
  lcl::obs::RunContext::set_current(&run);

  std::unique_ptr<lcl::obs::TraceSession> progress_session;
  if (!progress_log.empty()) {
    try {
      progress_session = std::make_unique<lcl::obs::TraceSession>(
          progress_log, lcl::obs::TraceFormat::kJsonl);
    } catch (const std::exception& e) {
      std::cerr << "lcl_fuzz: " << e.what() << "\n";
      return 2;
    }
    lcl::obs::TraceSession::set_current(progress_session.get());
  }

  lcl::obs::ResourceSampler::Options sampler_options;
  sampler_options.resource_interval =
      std::chrono::milliseconds(progress_interval_ms);
  sampler_options.progress_interval =
      std::chrono::milliseconds(progress_interval_ms);
  sampler_options.run = &run;
  lcl::obs::ResourceSampler sampler(std::move(sampler_options));
  if (telemetry) sampler.start();

  lcl::obs::Exporter::Options exporter_options;
  exporter_options.port = static_cast<std::uint16_t>(metrics_port);
  exporter_options.const_labels = {{"run_id", run_id}};
  exporter_options.progress_provider = [&run]() {
    return run.progress_json() + "\n";
  };
  lcl::obs::Exporter exporter(std::move(exporter_options));
  if (metrics_server) {
    if (!telemetry) {
      std::cerr << "lcl_fuzz: --metrics-port ignored: telemetry is "
                   "disabled (LCL_OBS=0)\n";
    } else if (!exporter.start()) {
      std::cerr << "lcl_fuzz: metrics exporter: " << exporter.error() << "\n";
      return 2;
    } else {
      std::cout << "metrics:    http://127.0.0.1:" << exporter.port()
                << "/metrics  (run_id " << run_id << ")\n";
    }
  }

  const auto report = lcl::fuzz::run_fuzz(options);

  sampler.stop();
  lcl::obs::RunContext::set_current(nullptr);

  std::cout << "seeds run:  " << report.seeds_run << "/" << options.seeds
            << (report.budget_exhausted ? " (budget exhausted)" : "") << "\n";
  std::cout << "checks:     " << report.checks << "\n";
  std::cout << "skipped:    " << report.skipped << "\n";
  std::cout << "failures:   " << report.failures << "\n";
  for (const auto& [id, tally] : report.per_oracle) {
    std::cout << "  " << id << ": " << tally.checks << " checked, "
              << tally.skipped << " skipped, " << tally.failures
              << " failed\n";
  }
  for (const auto& message : report.failure_messages) {
    std::cout << "FAIL " << message << "\n";
  }
  for (const auto& file : report.corpus_files) {
    std::cout << "wrote " << file << "\n";
  }
  return report.ok() ? 0 : 1;
}
