# lcld container image: multi-stage so the runtime layer carries only the
# daemon, the client, and the C++ runtime - no toolchain, no sources.
#
#   docker build -t lcld .
#   docker run -p 8080:8080 -v lcld-cache:/var/lib/lcld lcld
#
# The daemon binds 0.0.0.0 inside the container (the container boundary is
# the network policy; the default 127.0.0.1 would make the published port
# unreachable). SIGTERM drains gracefully, so `docker stop` exits 0.

FROM debian:bookworm-slim AS build
RUN apt-get update && apt-get install -y --no-install-recommends \
        cmake g++ make git ca-certificates \
    && rm -rf /var/lib/apt/lists/*
WORKDIR /src
COPY . .
# Tests and benches need GTest/google-benchmark; the image only ships the
# daemon, so configure without them and build just the two tools.
RUN cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DLCLSCAPE_TESTS=OFF \
    && cmake --build build -j"$(nproc)" --target lcld lcl_client

FROM debian:bookworm-slim
RUN apt-get update && apt-get install -y --no-install-recommends \
        libstdc++6 curl \
    && rm -rf /var/lib/apt/lists/* \
    && useradd --system --home /var/lib/lcld --create-home lcld
COPY --from=build /src/build/tools/lcld /usr/local/bin/lcld
COPY --from=build /src/build/tools/lcl_client /usr/local/bin/lcl_client
USER lcld
VOLUME /var/lib/lcld
EXPOSE 8080
HEALTHCHECK --interval=10s --timeout=2s --start-period=5s \
  CMD curl -fsS http://127.0.0.1:8080/healthz || exit 1
ENTRYPOINT ["lcld"]
CMD ["--bind=0.0.0.0", "--port=8080", "--cache-dir=/var/lib/lcld"]
