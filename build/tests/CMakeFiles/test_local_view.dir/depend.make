# Empty dependencies file for test_local_view.
# This may be replaced when dependencies are built.
