file(REMOVE_RECURSE
  "CMakeFiles/test_local_view.dir/test_local_view.cpp.o"
  "CMakeFiles/test_local_view.dir/test_local_view.cpp.o.d"
  "test_local_view"
  "test_local_view.pdb"
  "test_local_view[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
