file(REMOVE_RECURSE
  "CMakeFiles/test_util_label_set.dir/test_util_label_set.cpp.o"
  "CMakeFiles/test_util_label_set.dir/test_util_label_set.cpp.o.d"
  "test_util_label_set"
  "test_util_label_set.pdb"
  "test_util_label_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_label_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
