# Empty dependencies file for test_util_label_set.
# This may be replaced when dependencies are built.
