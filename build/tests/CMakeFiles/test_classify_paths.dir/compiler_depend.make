# Empty compiler generated dependencies file for test_classify_paths.
# This may be replaced when dependencies are built.
