file(REMOVE_RECURSE
  "CMakeFiles/test_classify_paths.dir/test_classify_paths.cpp.o"
  "CMakeFiles/test_classify_paths.dir/test_classify_paths.cpp.o.d"
  "test_classify_paths"
  "test_classify_paths.pdb"
  "test_classify_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classify_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
