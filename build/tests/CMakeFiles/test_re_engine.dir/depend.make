# Empty dependencies file for test_re_engine.
# This may be replaced when dependencies are built.
