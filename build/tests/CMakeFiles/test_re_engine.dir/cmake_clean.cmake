file(REMOVE_RECURSE
  "CMakeFiles/test_re_engine.dir/test_re_engine.cpp.o"
  "CMakeFiles/test_re_engine.dir/test_re_engine.cpp.o.d"
  "test_re_engine"
  "test_re_engine.pdb"
  "test_re_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_re_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
