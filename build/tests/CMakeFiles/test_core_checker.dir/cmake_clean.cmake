file(REMOVE_RECURSE
  "CMakeFiles/test_core_checker.dir/test_core_checker.cpp.o"
  "CMakeFiles/test_core_checker.dir/test_core_checker.cpp.o.d"
  "test_core_checker"
  "test_core_checker.pdb"
  "test_core_checker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
