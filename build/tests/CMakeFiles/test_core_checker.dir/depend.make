# Empty dependencies file for test_core_checker.
# This may be replaced when dependencies are built.
