# Empty compiler generated dependencies file for test_re_operators.
# This may be replaced when dependencies are built.
