file(REMOVE_RECURSE
  "CMakeFiles/test_re_operators.dir/test_re_operators.cpp.o"
  "CMakeFiles/test_re_operators.dir/test_re_operators.cpp.o.d"
  "test_re_operators"
  "test_re_operators.pdb"
  "test_re_operators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_re_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
