file(REMOVE_RECURSE
  "CMakeFiles/test_core_lcl.dir/test_core_lcl.cpp.o"
  "CMakeFiles/test_core_lcl.dir/test_core_lcl.cpp.o.d"
  "test_core_lcl"
  "test_core_lcl.pdb"
  "test_core_lcl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_lcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
