file(REMOVE_RECURSE
  "CMakeFiles/test_re_properties.dir/test_re_properties.cpp.o"
  "CMakeFiles/test_re_properties.dir/test_re_properties.cpp.o.d"
  "test_re_properties"
  "test_re_properties.pdb"
  "test_re_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_re_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
