# Empty dependencies file for test_re_properties.
# This may be replaced when dependencies are built.
