file(REMOVE_RECURSE
  "CMakeFiles/test_local_failure.dir/test_local_failure.cpp.o"
  "CMakeFiles/test_local_failure.dir/test_local_failure.cpp.o.d"
  "test_local_failure"
  "test_local_failure.pdb"
  "test_local_failure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
