# Empty dependencies file for test_local_failure.
# This may be replaced when dependencies are built.
