# Empty dependencies file for test_local_algorithms.
# This may be replaced when dependencies are built.
