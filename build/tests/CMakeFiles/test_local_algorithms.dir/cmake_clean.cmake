file(REMOVE_RECURSE
  "CMakeFiles/test_local_algorithms.dir/test_local_algorithms.cpp.o"
  "CMakeFiles/test_local_algorithms.dir/test_local_algorithms.cpp.o.d"
  "test_local_algorithms"
  "test_local_algorithms.pdb"
  "test_local_algorithms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
