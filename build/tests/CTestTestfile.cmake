# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util_label_set[1]_include.cmake")
include("/root/repo/build/tests/test_util_math[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_core_lcl[1]_include.cmake")
include("/root/repo/build/tests/test_core_checker[1]_include.cmake")
include("/root/repo/build/tests/test_checker_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_local_algorithms[1]_include.cmake")
include("/root/repo/build/tests/test_local_view[1]_include.cmake")
include("/root/repo/build/tests/test_local_failure[1]_include.cmake")
include("/root/repo/build/tests/test_re_operators[1]_include.cmake")
include("/root/repo/build/tests/test_re_engine[1]_include.cmake")
include("/root/repo/build/tests/test_re_properties[1]_include.cmake")
include("/root/repo/build/tests/test_volume[1]_include.cmake")
include("/root/repo/build/tests/test_grid[1]_include.cmake")
include("/root/repo/build/tests/test_classify[1]_include.cmake")
include("/root/repo/build/tests/test_classify_paths[1]_include.cmake")
include("/root/repo/build/tests/test_cross_model[1]_include.cmake")
