# Empty compiler generated dependencies file for lcl_util.
# This may be replaced when dependencies are built.
