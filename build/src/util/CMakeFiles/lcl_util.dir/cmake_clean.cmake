file(REMOVE_RECURSE
  "CMakeFiles/lcl_util.dir/combinatorics.cpp.o"
  "CMakeFiles/lcl_util.dir/combinatorics.cpp.o.d"
  "CMakeFiles/lcl_util.dir/label_set.cpp.o"
  "CMakeFiles/lcl_util.dir/label_set.cpp.o.d"
  "CMakeFiles/lcl_util.dir/math.cpp.o"
  "CMakeFiles/lcl_util.dir/math.cpp.o.d"
  "liblcl_util.a"
  "liblcl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
