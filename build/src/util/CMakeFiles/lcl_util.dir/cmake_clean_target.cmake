file(REMOVE_RECURSE
  "liblcl_util.a"
)
