file(REMOVE_RECURSE
  "liblcl_classify.a"
)
