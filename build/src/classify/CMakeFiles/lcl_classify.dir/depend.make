# Empty dependencies file for lcl_classify.
# This may be replaced when dependencies are built.
