file(REMOVE_RECURSE
  "CMakeFiles/lcl_classify.dir/automaton.cpp.o"
  "CMakeFiles/lcl_classify.dir/automaton.cpp.o.d"
  "CMakeFiles/lcl_classify.dir/cycle_classifier.cpp.o"
  "CMakeFiles/lcl_classify.dir/cycle_classifier.cpp.o.d"
  "CMakeFiles/lcl_classify.dir/path_classifier.cpp.o"
  "CMakeFiles/lcl_classify.dir/path_classifier.cpp.o.d"
  "liblcl_classify.a"
  "liblcl_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcl_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
