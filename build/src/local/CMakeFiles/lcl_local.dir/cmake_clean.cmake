file(REMOVE_RECURSE
  "CMakeFiles/lcl_local.dir/cole_vishkin.cpp.o"
  "CMakeFiles/lcl_local.dir/cole_vishkin.cpp.o.d"
  "CMakeFiles/lcl_local.dir/failure.cpp.o"
  "CMakeFiles/lcl_local.dir/failure.cpp.o.d"
  "CMakeFiles/lcl_local.dir/forest_transform.cpp.o"
  "CMakeFiles/lcl_local.dir/forest_transform.cpp.o.d"
  "CMakeFiles/lcl_local.dir/global_algorithms.cpp.o"
  "CMakeFiles/lcl_local.dir/global_algorithms.cpp.o.d"
  "CMakeFiles/lcl_local.dir/greedy_from_coloring.cpp.o"
  "CMakeFiles/lcl_local.dir/greedy_from_coloring.cpp.o.d"
  "CMakeFiles/lcl_local.dir/linial.cpp.o"
  "CMakeFiles/lcl_local.dir/linial.cpp.o.d"
  "CMakeFiles/lcl_local.dir/order_invariant.cpp.o"
  "CMakeFiles/lcl_local.dir/order_invariant.cpp.o.d"
  "CMakeFiles/lcl_local.dir/rand_coloring.cpp.o"
  "CMakeFiles/lcl_local.dir/rand_coloring.cpp.o.d"
  "CMakeFiles/lcl_local.dir/rooted_tree.cpp.o"
  "CMakeFiles/lcl_local.dir/rooted_tree.cpp.o.d"
  "CMakeFiles/lcl_local.dir/sinkless.cpp.o"
  "CMakeFiles/lcl_local.dir/sinkless.cpp.o.d"
  "CMakeFiles/lcl_local.dir/sync_engine.cpp.o"
  "CMakeFiles/lcl_local.dir/sync_engine.cpp.o.d"
  "CMakeFiles/lcl_local.dir/view.cpp.o"
  "CMakeFiles/lcl_local.dir/view.cpp.o.d"
  "liblcl_local.a"
  "liblcl_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcl_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
