# Empty dependencies file for lcl_local.
# This may be replaced when dependencies are built.
