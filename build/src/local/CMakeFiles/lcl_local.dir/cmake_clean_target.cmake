file(REMOVE_RECURSE
  "liblcl_local.a"
)
