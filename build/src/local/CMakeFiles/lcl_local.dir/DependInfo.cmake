
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/local/cole_vishkin.cpp" "src/local/CMakeFiles/lcl_local.dir/cole_vishkin.cpp.o" "gcc" "src/local/CMakeFiles/lcl_local.dir/cole_vishkin.cpp.o.d"
  "/root/repo/src/local/failure.cpp" "src/local/CMakeFiles/lcl_local.dir/failure.cpp.o" "gcc" "src/local/CMakeFiles/lcl_local.dir/failure.cpp.o.d"
  "/root/repo/src/local/forest_transform.cpp" "src/local/CMakeFiles/lcl_local.dir/forest_transform.cpp.o" "gcc" "src/local/CMakeFiles/lcl_local.dir/forest_transform.cpp.o.d"
  "/root/repo/src/local/global_algorithms.cpp" "src/local/CMakeFiles/lcl_local.dir/global_algorithms.cpp.o" "gcc" "src/local/CMakeFiles/lcl_local.dir/global_algorithms.cpp.o.d"
  "/root/repo/src/local/greedy_from_coloring.cpp" "src/local/CMakeFiles/lcl_local.dir/greedy_from_coloring.cpp.o" "gcc" "src/local/CMakeFiles/lcl_local.dir/greedy_from_coloring.cpp.o.d"
  "/root/repo/src/local/linial.cpp" "src/local/CMakeFiles/lcl_local.dir/linial.cpp.o" "gcc" "src/local/CMakeFiles/lcl_local.dir/linial.cpp.o.d"
  "/root/repo/src/local/order_invariant.cpp" "src/local/CMakeFiles/lcl_local.dir/order_invariant.cpp.o" "gcc" "src/local/CMakeFiles/lcl_local.dir/order_invariant.cpp.o.d"
  "/root/repo/src/local/rand_coloring.cpp" "src/local/CMakeFiles/lcl_local.dir/rand_coloring.cpp.o" "gcc" "src/local/CMakeFiles/lcl_local.dir/rand_coloring.cpp.o.d"
  "/root/repo/src/local/rooted_tree.cpp" "src/local/CMakeFiles/lcl_local.dir/rooted_tree.cpp.o" "gcc" "src/local/CMakeFiles/lcl_local.dir/rooted_tree.cpp.o.d"
  "/root/repo/src/local/sinkless.cpp" "src/local/CMakeFiles/lcl_local.dir/sinkless.cpp.o" "gcc" "src/local/CMakeFiles/lcl_local.dir/sinkless.cpp.o.d"
  "/root/repo/src/local/sync_engine.cpp" "src/local/CMakeFiles/lcl_local.dir/sync_engine.cpp.o" "gcc" "src/local/CMakeFiles/lcl_local.dir/sync_engine.cpp.o.d"
  "/root/repo/src/local/view.cpp" "src/local/CMakeFiles/lcl_local.dir/view.cpp.o" "gcc" "src/local/CMakeFiles/lcl_local.dir/view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lcl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
