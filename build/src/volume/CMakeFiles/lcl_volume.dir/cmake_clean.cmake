file(REMOVE_RECURSE
  "CMakeFiles/lcl_volume.dir/algorithms.cpp.o"
  "CMakeFiles/lcl_volume.dir/algorithms.cpp.o.d"
  "CMakeFiles/lcl_volume.dir/model.cpp.o"
  "CMakeFiles/lcl_volume.dir/model.cpp.o.d"
  "CMakeFiles/lcl_volume.dir/order_invariance.cpp.o"
  "CMakeFiles/lcl_volume.dir/order_invariance.cpp.o.d"
  "liblcl_volume.a"
  "liblcl_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcl_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
