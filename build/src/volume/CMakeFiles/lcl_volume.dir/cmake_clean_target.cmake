file(REMOVE_RECURSE
  "liblcl_volume.a"
)
