# Empty compiler generated dependencies file for lcl_volume.
# This may be replaced when dependencies are built.
