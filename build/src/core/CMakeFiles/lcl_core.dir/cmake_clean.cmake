file(REMOVE_RECURSE
  "CMakeFiles/lcl_core.dir/alphabet.cpp.o"
  "CMakeFiles/lcl_core.dir/alphabet.cpp.o.d"
  "CMakeFiles/lcl_core.dir/brute_force.cpp.o"
  "CMakeFiles/lcl_core.dir/brute_force.cpp.o.d"
  "CMakeFiles/lcl_core.dir/checker.cpp.o"
  "CMakeFiles/lcl_core.dir/checker.cpp.o.d"
  "CMakeFiles/lcl_core.dir/configuration.cpp.o"
  "CMakeFiles/lcl_core.dir/configuration.cpp.o.d"
  "CMakeFiles/lcl_core.dir/lcl.cpp.o"
  "CMakeFiles/lcl_core.dir/lcl.cpp.o.d"
  "CMakeFiles/lcl_core.dir/problems.cpp.o"
  "CMakeFiles/lcl_core.dir/problems.cpp.o.d"
  "liblcl_core.a"
  "liblcl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
