
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alphabet.cpp" "src/core/CMakeFiles/lcl_core.dir/alphabet.cpp.o" "gcc" "src/core/CMakeFiles/lcl_core.dir/alphabet.cpp.o.d"
  "/root/repo/src/core/brute_force.cpp" "src/core/CMakeFiles/lcl_core.dir/brute_force.cpp.o" "gcc" "src/core/CMakeFiles/lcl_core.dir/brute_force.cpp.o.d"
  "/root/repo/src/core/checker.cpp" "src/core/CMakeFiles/lcl_core.dir/checker.cpp.o" "gcc" "src/core/CMakeFiles/lcl_core.dir/checker.cpp.o.d"
  "/root/repo/src/core/configuration.cpp" "src/core/CMakeFiles/lcl_core.dir/configuration.cpp.o" "gcc" "src/core/CMakeFiles/lcl_core.dir/configuration.cpp.o.d"
  "/root/repo/src/core/lcl.cpp" "src/core/CMakeFiles/lcl_core.dir/lcl.cpp.o" "gcc" "src/core/CMakeFiles/lcl_core.dir/lcl.cpp.o.d"
  "/root/repo/src/core/problems.cpp" "src/core/CMakeFiles/lcl_core.dir/problems.cpp.o" "gcc" "src/core/CMakeFiles/lcl_core.dir/problems.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lcl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lcl_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
