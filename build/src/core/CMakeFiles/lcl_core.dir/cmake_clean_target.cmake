file(REMOVE_RECURSE
  "liblcl_core.a"
)
