# Empty dependencies file for lcl_core.
# This may be replaced when dependencies are built.
