file(REMOVE_RECURSE
  "liblcl_grid.a"
)
