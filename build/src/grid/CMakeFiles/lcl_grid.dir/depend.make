# Empty dependencies file for lcl_grid.
# This may be replaced when dependencies are built.
