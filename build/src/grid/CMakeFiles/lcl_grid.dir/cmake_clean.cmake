file(REMOVE_RECURSE
  "CMakeFiles/lcl_grid.dir/algorithms.cpp.o"
  "CMakeFiles/lcl_grid.dir/algorithms.cpp.o.d"
  "CMakeFiles/lcl_grid.dir/torus.cpp.o"
  "CMakeFiles/lcl_grid.dir/torus.cpp.o.d"
  "liblcl_grid.a"
  "liblcl_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcl_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
