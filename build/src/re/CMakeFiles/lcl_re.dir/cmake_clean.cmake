file(REMOVE_RECURSE
  "CMakeFiles/lcl_re.dir/engine.cpp.o"
  "CMakeFiles/lcl_re.dir/engine.cpp.o.d"
  "CMakeFiles/lcl_re.dir/lift.cpp.o"
  "CMakeFiles/lcl_re.dir/lift.cpp.o.d"
  "CMakeFiles/lcl_re.dir/operators.cpp.o"
  "CMakeFiles/lcl_re.dir/operators.cpp.o.d"
  "CMakeFiles/lcl_re.dir/reduce.cpp.o"
  "CMakeFiles/lcl_re.dir/reduce.cpp.o.d"
  "CMakeFiles/lcl_re.dir/zero_round.cpp.o"
  "CMakeFiles/lcl_re.dir/zero_round.cpp.o.d"
  "liblcl_re.a"
  "liblcl_re.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcl_re.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
