file(REMOVE_RECURSE
  "liblcl_re.a"
)
