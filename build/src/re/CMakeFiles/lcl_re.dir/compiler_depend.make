# Empty compiler generated dependencies file for lcl_re.
# This may be replaced when dependencies are built.
