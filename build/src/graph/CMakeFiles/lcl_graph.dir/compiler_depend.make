# Empty compiler generated dependencies file for lcl_graph.
# This may be replaced when dependencies are built.
