file(REMOVE_RECURSE
  "liblcl_graph.a"
)
