file(REMOVE_RECURSE
  "CMakeFiles/lcl_graph.dir/generators.cpp.o"
  "CMakeFiles/lcl_graph.dir/generators.cpp.o.d"
  "CMakeFiles/lcl_graph.dir/graph.cpp.o"
  "CMakeFiles/lcl_graph.dir/graph.cpp.o.d"
  "CMakeFiles/lcl_graph.dir/labeling.cpp.o"
  "CMakeFiles/lcl_graph.dir/labeling.cpp.o.d"
  "liblcl_graph.a"
  "liblcl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
