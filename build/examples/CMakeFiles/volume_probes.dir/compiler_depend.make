# Empty compiler generated dependencies file for volume_probes.
# This may be replaced when dependencies are built.
