file(REMOVE_RECURSE
  "CMakeFiles/volume_probes.dir/volume_probes.cpp.o"
  "CMakeFiles/volume_probes.dir/volume_probes.cpp.o.d"
  "volume_probes"
  "volume_probes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
