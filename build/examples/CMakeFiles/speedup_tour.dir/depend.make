# Empty dependencies file for speedup_tour.
# This may be replaced when dependencies are built.
