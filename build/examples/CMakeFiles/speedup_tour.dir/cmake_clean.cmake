file(REMOVE_RECURSE
  "CMakeFiles/speedup_tour.dir/speedup_tour.cpp.o"
  "CMakeFiles/speedup_tour.dir/speedup_tour.cpp.o.d"
  "speedup_tour"
  "speedup_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedup_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
