# Empty dependencies file for grid_coloring.
# This may be replaced when dependencies are built.
