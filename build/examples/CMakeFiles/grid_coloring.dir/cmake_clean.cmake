file(REMOVE_RECURSE
  "CMakeFiles/grid_coloring.dir/grid_coloring.cpp.o"
  "CMakeFiles/grid_coloring.dir/grid_coloring.cpp.o.d"
  "grid_coloring"
  "grid_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
