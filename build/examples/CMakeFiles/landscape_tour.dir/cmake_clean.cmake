file(REMOVE_RECURSE
  "CMakeFiles/landscape_tour.dir/landscape_tour.cpp.o"
  "CMakeFiles/landscape_tour.dir/landscape_tour.cpp.o.d"
  "landscape_tour"
  "landscape_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landscape_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
