# Empty compiler generated dependencies file for landscape_tour.
# This may be replaced when dependencies are built.
