
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/classify/CMakeFiles/lcl_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/re/CMakeFiles/lcl_re.dir/DependInfo.cmake"
  "/root/repo/build/src/volume/CMakeFiles/lcl_volume.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/lcl_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/local/CMakeFiles/lcl_local.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lcl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lcl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
