file(REMOVE_RECURSE
  "../bench/bench_volume_orderinv"
  "../bench/bench_volume_orderinv.pdb"
  "CMakeFiles/bench_volume_orderinv.dir/bench_volume_orderinv.cpp.o"
  "CMakeFiles/bench_volume_orderinv.dir/bench_volume_orderinv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_volume_orderinv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
