# Empty compiler generated dependencies file for bench_volume_orderinv.
# This may be replaced when dependencies are built.
