file(REMOVE_RECURSE
  "../bench/bench_gap_collapse"
  "../bench/bench_gap_collapse.pdb"
  "CMakeFiles/bench_gap_collapse.dir/bench_gap_collapse.cpp.o"
  "CMakeFiles/bench_gap_collapse.dir/bench_gap_collapse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gap_collapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
