file(REMOVE_RECURSE
  "../bench/bench_fig1_general"
  "../bench/bench_fig1_general.pdb"
  "CMakeFiles/bench_fig1_general.dir/bench_fig1_general.cpp.o"
  "CMakeFiles/bench_fig1_general.dir/bench_fig1_general.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
