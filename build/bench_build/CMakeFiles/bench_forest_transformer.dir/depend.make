# Empty dependencies file for bench_forest_transformer.
# This may be replaced when dependencies are built.
