file(REMOVE_RECURSE
  "../bench/bench_forest_transformer"
  "../bench/bench_forest_transformer.pdb"
  "CMakeFiles/bench_forest_transformer.dir/bench_forest_transformer.cpp.o"
  "CMakeFiles/bench_forest_transformer.dir/bench_forest_transformer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forest_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
