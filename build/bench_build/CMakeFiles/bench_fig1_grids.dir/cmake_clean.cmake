file(REMOVE_RECURSE
  "../bench/bench_fig1_grids"
  "../bench/bench_fig1_grids.pdb"
  "CMakeFiles/bench_fig1_grids.dir/bench_fig1_grids.cpp.o"
  "CMakeFiles/bench_fig1_grids.dir/bench_fig1_grids.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_grids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
