# Empty dependencies file for bench_fig1_grids.
# This may be replaced when dependencies are built.
