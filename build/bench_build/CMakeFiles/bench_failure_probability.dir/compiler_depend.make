# Empty compiler generated dependencies file for bench_failure_probability.
# This may be replaced when dependencies are built.
