file(REMOVE_RECURSE
  "../bench/bench_failure_probability"
  "../bench/bench_failure_probability.pdb"
  "CMakeFiles/bench_failure_probability.dir/bench_failure_probability.cpp.o"
  "CMakeFiles/bench_failure_probability.dir/bench_failure_probability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failure_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
