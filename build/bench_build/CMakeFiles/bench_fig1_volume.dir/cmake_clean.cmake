file(REMOVE_RECURSE
  "../bench/bench_fig1_volume"
  "../bench/bench_fig1_volume.pdb"
  "CMakeFiles/bench_fig1_volume.dir/bench_fig1_volume.cpp.o"
  "CMakeFiles/bench_fig1_volume.dir/bench_fig1_volume.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
