# Empty dependencies file for bench_fig1_volume.
# This may be replaced when dependencies are built.
