file(REMOVE_RECURSE
  "../bench/bench_synthesis"
  "../bench/bench_synthesis.pdb"
  "CMakeFiles/bench_synthesis.dir/bench_synthesis.cpp.o"
  "CMakeFiles/bench_synthesis.dir/bench_synthesis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
