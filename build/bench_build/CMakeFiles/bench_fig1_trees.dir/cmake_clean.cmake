file(REMOVE_RECURSE
  "../bench/bench_fig1_trees"
  "../bench/bench_fig1_trees.pdb"
  "CMakeFiles/bench_fig1_trees.dir/bench_fig1_trees.cpp.o"
  "CMakeFiles/bench_fig1_trees.dir/bench_fig1_trees.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
