file(REMOVE_RECURSE
  "../bench/bench_classifier"
  "../bench/bench_classifier.pdb"
  "CMakeFiles/bench_classifier.dir/bench_classifier.cpp.o"
  "CMakeFiles/bench_classifier.dir/bench_classifier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
