# Empty compiler generated dependencies file for bench_re_ablation.
# This may be replaced when dependencies are built.
