file(REMOVE_RECURSE
  "../bench/bench_re_ablation"
  "../bench/bench_re_ablation.pdb"
  "CMakeFiles/bench_re_ablation.dir/bench_re_ablation.cpp.o"
  "CMakeFiles/bench_re_ablation.dir/bench_re_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_re_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
