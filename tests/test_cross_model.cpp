// Cross-model consistency: the same textbook algorithm implemented in
// different models (LOCAL synchronous, VOLUME, PROD-LOCAL grids) must
// produce *identical* outputs on the same instance - a strong mutual
// correctness check for the three simulators.

#include <gtest/gtest.h>

#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "grid/algorithms.hpp"
#include "grid/torus.hpp"
#include "local/cole_vishkin.hpp"
#include "local/order_invariant.hpp"
#include "local/sync_engine.hpp"
#include "volume/algorithms.hpp"

namespace lcl {
namespace {

std::uint64_t id_range_for(const IdAssignment& ids) {
  std::uint64_t max_id = 0;
  for (auto id : ids) max_id = std::max(max_id, id);
  return max_id + 1;
}

class CrossModelPathTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrossModelPathTest, VolumeCvEqualsLocalCvOnPaths) {
  const std::size_t n = GetParam();
  Graph g = make_path(n);
  SplitRng rng(n * 7 + 3);
  const auto ids = random_distinct_ids(g, 3, rng);
  const auto input = chain_orientation_input(g, false);
  const std::uint64_t range = id_range_for(ids);

  const auto local = run_synchronous(ColeVishkin(range), g, input, ids, 1);
  const auto volume =
      run_volume_algorithm(VolumeColeVishkin(range), g, input, ids);
  EXPECT_EQ(local.output, volume.output) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrossModelPathTest,
                         ::testing::Values(2, 3, 5, 9, 33, 200));

class CrossModelCycleTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrossModelCycleTest, GridColoringD1EqualsColeVishkinOnCycles) {
  // A 1-dimensional oriented torus IS an oriented cycle; GridColoring with
  // the node's id as its (single) PROD-LOCAL identifier must reproduce the
  // chain Cole-Vishkin coloring bit for bit.
  const std::size_t n = GetParam();
  const OrientedTorus torus({n});
  const Graph& g = torus.graph();
  SplitRng rng(n + 13);
  const auto ids = random_distinct_ids(g, 3, rng);
  const std::uint64_t range = id_range_for(ids);

  // Grid side: aux tuple = (id) per node; torus orientation input.
  std::vector<std::vector<std::uint64_t>> aux(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) aux[v] = {ids[v]};
  const auto grid_result =
      run_synchronous(GridColoring(1, range), g, torus.orientation_input(),
                      ids, 1, 0, 1'000'000, &aux);

  // Chain side: same graph, orientation labels translated (forward = succ).
  HalfEdgeLabeling chain_input(g.half_edge_count(), kCvPlain);
  const auto torus_input = torus.orientation_input();
  for (HalfEdgeId h = 0; h < g.half_edge_count(); ++h) {
    if (torus_input[h] == OrientedTorus::forward_label(0)) {
      chain_input[h] = kCvSuccessor;
    }
  }
  const auto cv_result =
      run_synchronous(ColeVishkin(range), g, chain_input, ids, 1);

  EXPECT_EQ(grid_result.output, cv_result.output) << "n=" << n;
  const auto dummy = uniform_labeling(g, 0);
  EXPECT_TRUE(is_correct_solution(problems::coloring(3, 2), g, dummy,
                                  grid_result.output));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrossModelCycleTest,
                         ::testing::Values(3, 4, 7, 64, 500));

TEST(CrossModel, FrozenLocalAndVolumeAgreeOnOrientation) {
  // The LOCAL and VOLUME orientation algorithms implement the same rule
  // (edge toward the larger id), so their outputs coincide.
  SplitRng rng(21);
  Graph g = make_random_tree(120, 3, rng);
  const auto input = uniform_labeling(g, 0);
  const auto ids = random_distinct_ids(g, 3, rng);

  const auto volume =
      run_volume_algorithm(VolumeOrientByIds{}, g, input, ids);
  // LOCAL side via the ball-algorithm runner.
  const OrientByIdOrder local_algo;
  const auto local = run_ball_algorithm(local_algo, g, input, ids);
  EXPECT_EQ(volume.output, local);
}

}  // namespace
}  // namespace lcl
