#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "util/rng.hpp"

namespace lcl {
namespace {

TEST(GraphBuilder, BasicTriangle) {
  Graph g = Graph::Builder()
                .add_edge(0, 1)
                .add_edge(1, 2)
                .add_edge(2, 0)
                .build();
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.half_edge_count(), 6u);
  EXPECT_EQ(g.max_degree(), 2);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2);
}

TEST(GraphBuilder, RejectsSelfLoopsAndParallelEdges) {
  Graph::Builder b;
  b.add_edge(0, 1);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(b.add_edge(1, 0), std::invalid_argument);
}

TEST(GraphBuilder, IsolatedNodes) {
  Graph g = Graph::Builder(5).add_edge(0, 1).build();
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.degree(4), 0);
  EXPECT_EQ(g.component_count(), 4u);
}

TEST(Graph, PortsAndHalfEdges) {
  // Node 1 gains ports in edge-insertion order: {1,0} then {1,2} then {1,3}.
  Graph g =
      Graph::Builder().add_edge(1, 0).add_edge(1, 2).add_edge(1, 3).build();
  EXPECT_EQ(g.degree(1), 3);
  EXPECT_EQ(g.neighbor(1, 0), 0u);
  EXPECT_EQ(g.neighbor(1, 1), 2u);
  EXPECT_EQ(g.neighbor(1, 2), 3u);
  EXPECT_EQ(g.port_of(1, g.edge_at(1, 1)), 1);

  const HalfEdgeId h = g.half_edge(1, 0);
  EXPECT_EQ(g.node_of(h), 1u);
  EXPECT_EQ(g.node_of(Graph::twin(h)), 0u);
  EXPECT_EQ(Graph::edge_of(h), g.edge_at(1, 0));
  EXPECT_EQ(Graph::twin(Graph::twin(h)), h);
}

TEST(Graph, HalfEdgeOfThrowsForNonIncident) {
  Graph g = Graph::Builder().add_edge(0, 1).add_edge(1, 2).build();
  EXPECT_THROW(g.half_edge_of(0, g.edge_at(1, 1)), std::invalid_argument);
  EXPECT_THROW(g.port_of(2, g.edge_at(0, 0)), std::invalid_argument);
}

TEST(Graph, BallAndDistances) {
  Graph g = make_path(10);
  const auto ball = g.ball(5, 2);
  const std::set<NodeId> got(ball.begin(), ball.end());
  EXPECT_EQ(got, (std::set<NodeId>{3, 4, 5, 6, 7}));
  EXPECT_EQ(ball.front(), 5u);  // BFS order: center first

  const auto dist = g.distances_from(0);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(dist[i], static_cast<int>(i));
  }
}

TEST(Graph, DistancesUnreachable) {
  Graph g = Graph::Builder(4).add_edge(0, 1).add_edge(2, 3).build();
  const auto dist = g.distances_from(0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(Generators, PathCycleStar) {
  EXPECT_TRUE(make_path(1).is_tree());
  EXPECT_TRUE(make_path(50).is_tree());
  EXPECT_EQ(make_path(50).max_degree(), 2);

  Graph cycle = make_cycle(17);
  EXPECT_FALSE(cycle.is_forest());
  EXPECT_EQ(cycle.edge_count(), 17u);
  EXPECT_EQ(cycle.max_degree(), 2);

  Graph star = make_star(9);
  EXPECT_TRUE(star.is_tree());
  EXPECT_EQ(star.max_degree(), 9);
  EXPECT_THROW(make_cycle(2), std::invalid_argument);
}

TEST(Generators, RegularTree) {
  Graph t = make_regular_tree(3, 3);
  EXPECT_TRUE(t.is_tree());
  EXPECT_EQ(t.max_degree(), 3);
  // 1 + 3 + 6 + 12 = 22 nodes.
  EXPECT_EQ(t.node_count(), 22u);
  EXPECT_EQ(make_regular_tree(3, 0).node_count(), 1u);
}

class RandomTreeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTreeTest, AlwaysTreeWithBoundedDegree) {
  SplitRng rng(GetParam());
  for (std::size_t n : {1u, 2u, 5u, 50u, 500u}) {
    for (int delta : {2, 3, 5}) {
      Graph t = make_random_tree(n, delta, rng);
      EXPECT_TRUE(t.is_tree()) << "n=" << n << " delta=" << delta;
      EXPECT_LE(t.max_degree(), delta);
      EXPECT_EQ(t.node_count(), n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

class RandomForestTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(RandomForestTest, ComponentsAndAcyclicity) {
  const auto [n, components] = GetParam();
  SplitRng rng(7);
  Graph f = make_random_forest(n, components, 3, rng);
  EXPECT_TRUE(f.is_forest());
  EXPECT_EQ(f.component_count(), components);
  EXPECT_EQ(f.node_count(), n);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomForestTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{10, 1},
                      std::pair<std::size_t, std::size_t>{10, 3},
                      std::pair<std::size_t, std::size_t>{100, 7},
                      std::pair<std::size_t, std::size_t>{5, 5}));

TEST(Generators, Caterpillar) {
  Graph c = make_caterpillar(5, 3);
  EXPECT_TRUE(c.is_tree());
  EXPECT_EQ(c.node_count(), 5u + 15u);
  EXPECT_EQ(c.max_degree(), 5);  // interior spine: 2 spine + 3 legs
}

TEST(Generators, ShortcutPathHasLogDiameterAndBoundedDegree) {
  for (std::size_t n : {2u, 7u, 64u, 1000u}) {
    Graph g = make_shortcut_path(n);
    EXPECT_LE(g.max_degree(), 3) << "n=" << n;
    // The construction intentionally contains cycles (the paper notes the
    // [BHKLOS18] problems need shortcuts and hence cycles); it must however
    // be connected.
    EXPECT_EQ(g.component_count(), 1u) << "n=" << n;
    EXPECT_FALSE(g.is_tree());
  }
}

TEST(Generators, ShortcutPathBallCoversExponentialSpine) {
  const std::size_t n = 256;
  Graph g = make_shortcut_path(n);
  // From spine node 0, radius 2*log2(n) reaches every spine node via the
  // binary tree.
  const auto dist = g.distances_from(0);
  int max_spine_dist = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_spine_dist = std::max(max_spine_dist, dist[i]);
  }
  EXPECT_LE(max_spine_dist, 2 * 8 + 2);
}

TEST(Labeling, UniformAndRandom) {
  Graph g = make_cycle(10);
  const auto uni = uniform_labeling(g, 3);
  EXPECT_EQ(uni.size(), g.half_edge_count());
  for (auto l : uni) EXPECT_EQ(l, 3u);

  SplitRng rng(1);
  const auto rnd = random_labeling(g, 4, rng);
  EXPECT_EQ(rnd.size(), g.half_edge_count());
  for (auto l : rnd) EXPECT_LT(l, 4u);
  EXPECT_THROW(random_labeling(g, 0, rng), std::invalid_argument);
}

TEST(Ids, SequentialAndShuffled) {
  Graph g = make_path(20);
  const auto seq = sequential_ids(g);
  EXPECT_EQ(seq.front(), 1u);
  EXPECT_EQ(seq.back(), 20u);

  SplitRng rng(3);
  const auto shuffled = shuffled_sequential_ids(g, rng);
  std::set<std::uint64_t> values(shuffled.begin(), shuffled.end());
  EXPECT_EQ(values.size(), 20u);
  EXPECT_EQ(*values.begin(), 1u);
  EXPECT_EQ(*values.rbegin(), 20u);
}

TEST(Ids, RandomDistinct) {
  Graph g = make_path(100);
  SplitRng rng(9);
  const auto ids = random_distinct_ids(g, 3, rng);
  std::set<std::uint64_t> values(ids.begin(), ids.end());
  EXPECT_EQ(values.size(), 100u);
  for (auto id : ids) EXPECT_GE(id, 1u);
}

TEST(Ids, OrderPreservingRemapKeepsOrder) {
  Graph g = make_path(50);
  SplitRng rng(11);
  const auto ids = random_distinct_ids(g, 2, rng);
  const auto remapped = order_preserving_remap(ids, 4, rng);
  ASSERT_EQ(remapped.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = 0; j < ids.size(); ++j) {
      EXPECT_EQ(ids[i] < ids[j], remapped[i] < remapped[j]);
    }
  }
}

}  // namespace
}  // namespace lcl
