#include <gtest/gtest.h>

#include "core/checker.hpp"
#include "core/problems.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "local/cole_vishkin.hpp"
#include "local/global_algorithms.hpp"
#include "local/greedy_from_coloring.hpp"
#include "local/linial.hpp"
#include "local/rand_coloring.hpp"
#include "local/rooted_tree.hpp"
#include "local/sinkless.hpp"
#include "local/sync_engine.hpp"
#include "util/math.hpp"

namespace lcl {
namespace {

struct Instance {
  Graph graph;
  HalfEdgeLabeling input;
  IdAssignment ids;
};

Instance tree_instance(std::size_t n, int delta, std::uint64_t seed) {
  SplitRng rng(seed);
  Graph g = make_random_tree(n, delta, rng);
  HalfEdgeLabeling input = uniform_labeling(g, 0);
  IdAssignment ids = random_distinct_ids(g, 3, rng);
  return {std::move(g), std::move(input), std::move(ids)};
}

std::uint64_t id_range_for(const IdAssignment& ids) {
  std::uint64_t max_id = 0;
  for (auto id : ids) max_id = std::max(max_id, id);
  return max_id + 1;
}

class LinialTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, int>> {};

TEST_P(LinialTest, ProducesProperColoringOnRandomTrees) {
  const auto [n, delta, seed] = GetParam();
  auto inst = tree_instance(n, delta, static_cast<std::uint64_t>(seed));
  const LinialColoring algo(delta, id_range_for(inst.ids));
  const auto result = run_synchronous(algo, inst.graph, inst.input, inst.ids,
                                      /*seed=*/1);
  const auto problem = problems::coloring(delta + 1, delta);
  const auto check =
      check_solution(problem, inst.graph, inst.input, result.output);
  EXPECT_TRUE(check.ok()) << check.to_string();
  EXPECT_EQ(result.rounds, algo.total_rounds());
  EXPECT_FALSE(result.quiesced);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LinialTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 5, 30, 200, 1000),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(1, 7)));

TEST(Linial, ScheduleShrinksLikeLogStar) {
  // The palette stage should take Theta(log*) steps: tiny for any realistic
  // id range, growing extremely slowly.
  const auto s1 = LinialSchedule::compute(1u << 10, 3);
  const auto s2 = LinialSchedule::compute(1u << 30, 3);
  const auto s3 = LinialSchedule::compute(std::uint64_t{1} << 60, 3);
  EXPECT_LE(s1.steps.size(), 4u);
  EXPECT_LE(s3.steps.size(), 6u);
  EXPECT_GE(s2.steps.size(), s1.steps.size());
  EXPECT_GE(s3.steps.size(), s2.steps.size());
  // Final palettes are O(Delta^2 log^2 Delta)-ish constants.
  EXPECT_LE(s3.final_palette, 200u);
}

TEST(Linial, WorksOnPathAndStar) {
  for (auto make : {+[](std::size_t n) { return make_path(n); },
                    +[](std::size_t n) { return make_star(n - 1); }}) {
    Graph g = make(20);
    SplitRng rng(3);
    const auto ids = shuffled_sequential_ids(g, rng);
    const int delta = g.max_degree();
    const LinialColoring algo(delta, id_range_for(ids));
    const auto input = uniform_labeling(g, 0);
    const auto result = run_synchronous(algo, g, input, ids, 1);
    const auto problem = problems::coloring(delta + 1, delta);
    EXPECT_TRUE(is_correct_solution(problem, g, input, result.output));
  }
}

TEST(Linial, RejectsIdOutOfRange) {
  Graph g = make_path(3);
  const LinialColoring algo(2, /*id_range=*/2);  // ids go up to 3
  const auto input = uniform_labeling(g, 0);
  const auto ids = sequential_ids(g);
  EXPECT_THROW(run_synchronous(algo, g, input, ids, 1), std::invalid_argument);
}

class ColeVishkinTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ColeVishkinTest, ThreeColorsOrientedCycle) {
  const std::size_t n = GetParam();
  Graph g = make_cycle(n);
  SplitRng rng(n);
  const auto ids = random_distinct_ids(g, 3, rng);
  const auto input = chain_orientation_input(g, /*is_cycle=*/true);
  const ColeVishkin algo(id_range_for(ids));
  const auto result = run_synchronous(algo, g, input, ids, 1);
  // Check properness as a 3-coloring; CV input labels are not the coloring
  // problem's input alphabet, so check against a uniform dummy input.
  const auto problem = problems::coloring(3, 2);
  const auto dummy = uniform_labeling(g, 0);
  const auto check = check_solution(problem, g, dummy, result.output);
  EXPECT_TRUE(check.ok()) << "n=" << n << "\n" << check.to_string();
  EXPECT_EQ(result.rounds, algo.total_rounds());
}

INSTANTIATE_TEST_SUITE_P(Sizes, ColeVishkinTest,
                         ::testing::Values(3, 4, 5, 10, 100, 1000, 4096));

TEST(ColeVishkin, ThreeColorsOrientedPath) {
  for (std::size_t n : {2u, 3u, 17u, 256u}) {
    Graph g = make_path(n);
    SplitRng rng(n);
    const auto ids = random_distinct_ids(g, 3, rng);
    const auto input = chain_orientation_input(g, false);
    const ColeVishkin algo(id_range_for(ids));
    const auto result = run_synchronous(algo, g, input, ids, 1);
    const auto problem = problems::coloring(3, 2);
    const auto dummy = uniform_labeling(g, 0);
    EXPECT_TRUE(is_correct_solution(problem, g, dummy, result.output))
        << "n=" << n;
  }
}

TEST(ColeVishkin, RoundsGrowLikeLogStar) {
  const ColeVishkin small(1u << 10);
  const ColeVishkin large(std::uint64_t{1} << 62);
  EXPECT_LT(small.total_rounds(), 12);
  EXPECT_LT(large.total_rounds(), 14);
  EXPECT_GE(large.shrink_rounds(), small.shrink_rounds());
}

TEST(ColeVishkin, RejectsHighDegree) {
  Graph g = make_star(3);
  const auto ids = sequential_ids(g);
  const auto input = uniform_labeling(g, kCvPlain);
  const ColeVishkin algo(16);
  EXPECT_THROW(run_synchronous(algo, g, input, ids, 1), std::invalid_argument);
}

class RandColoringTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(RandColoringTest, ProperWithHighProbability) {
  const auto [n, delta] = GetParam();
  auto inst = tree_instance(n, delta, 42 + n);
  const RandomGreedyColoring algo(delta);
  const auto result = run_synchronous(algo, inst.graph, inst.input, inst.ids,
                                      /*seed=*/99);
  const auto problem = problems::coloring(delta + 1, delta);
  EXPECT_TRUE(
      is_correct_solution(problem, inst.graph, inst.input, result.output));
  // O(log n) rounds with overwhelming probability (factor 2: phases).
  EXPECT_LE(result.rounds, 20 * (ceil_log2(n) + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandColoringTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 10, 100, 2000),
                       ::testing::Values(2, 3, 5)));

class MisTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, int>> {};

TEST_P(MisTest, ValidMisOnRandomTrees) {
  const auto [n, delta, seed] = GetParam();
  auto inst = tree_instance(n, delta, static_cast<std::uint64_t>(seed));
  const MisByColoring algo(delta, id_range_for(inst.ids));
  const auto result = run_synchronous(algo, inst.graph, inst.input, inst.ids,
                                      /*seed=*/1);
  const auto problem = problems::mis(delta);
  const auto check =
      check_solution(problem, inst.graph, inst.input, result.output);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MisTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 25, 300),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(5, 11)));

class MatchingTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, int>> {};

TEST_P(MatchingTest, ValidMaximalMatchingOnRandomTrees) {
  const auto [n, delta, seed] = GetParam();
  auto inst = tree_instance(n, delta, static_cast<std::uint64_t>(seed));
  const MatchingByColoring algo(delta, id_range_for(inst.ids));
  const auto result = run_synchronous(algo, inst.graph, inst.input, inst.ids,
                                      /*seed=*/1);
  const auto problem = problems::maximal_matching(delta);
  const auto check =
      check_solution(problem, inst.graph, inst.input, result.output);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatchingTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 25, 300),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(5, 11)));

TEST(Matching, WorksOnCycles) {
  for (std::size_t n : {4u, 7u, 100u}) {
    Graph g = make_cycle(n);
    SplitRng rng(n);
    const auto ids = random_distinct_ids(g, 3, rng);
    const auto input = uniform_labeling(g, 0);
    const MatchingByColoring algo(2, id_range_for(ids));
    const auto result = run_synchronous(algo, g, input, ids, 1);
    const auto problem = problems::maximal_matching(2);
    EXPECT_TRUE(is_correct_solution(problem, g, input, result.output))
        << "n=" << n;
  }
}

TEST(BfsTwoColoring, ProperOnPathsAndRoundsLinear) {
  for (std::size_t n : {2u, 9u, 64u, 257u}) {
    Graph g = make_path(n);
    SplitRng rng(n);
    const auto ids = shuffled_sequential_ids(g, rng);
    const auto input = uniform_labeling(g, 0);
    const BfsTwoColoring algo;
    const auto result = run_synchronous(algo, g, input, ids, 1);
    const auto problem = problems::two_coloring(2);
    EXPECT_TRUE(is_correct_solution(problem, g, input, result.output))
        << "n=" << n;
    EXPECT_TRUE(result.quiesced);
    // Rounds ~ eccentricity of the min-id node: Theta(n) on paths.
    if (n >= 9) {
      EXPECT_GE(result.rounds, static_cast<int>(n) / 2 - 1);
    }
    EXPECT_LE(result.rounds, static_cast<int>(n) + 1);
  }
}

TEST(BfsTwoColoring, ProperOnEvenCyclesAndTrees) {
  {
    Graph g = make_cycle(10);
    const auto ids = sequential_ids(g);
    const auto input = uniform_labeling(g, 0);
    const auto result = run_synchronous(BfsTwoColoring{}, g, input, ids, 1);
    EXPECT_TRUE(is_correct_solution(problems::two_coloring(2), g, input,
                                    result.output));
  }
  {
    SplitRng rng(5);
    Graph g = make_random_tree(60, 3, rng);
    const auto ids = random_distinct_ids(g, 2, rng);
    const auto input = uniform_labeling(g, 0);
    const auto result = run_synchronous(BfsTwoColoring{}, g, input, ids, 1);
    EXPECT_TRUE(is_correct_solution(problems::two_coloring(3), g, input,
                                    result.output));
  }
}

class RootedColoringTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, int>> {};

TEST_P(RootedColoringTest, ThreeColorsAnyDegreeRootedTree) {
  const auto [n, delta, seed] = GetParam();
  auto inst = tree_instance(n, delta, static_cast<std::uint64_t>(seed));
  const auto input = root_tree_input(inst.graph, /*root=*/0);
  const RootedTreeColoring algo(id_range_for(inst.ids));
  const auto result =
      run_synchronous(algo, inst.graph, input, inst.ids, /*seed=*/1);
  // A proper *3*-coloring regardless of the degree bound - the rooted
  // orientation is what makes this possible in Theta(log* n) rounds.
  const auto problem = problems::coloring(3, delta);
  const auto dummy = uniform_labeling(inst.graph, 0);
  const auto check = check_solution(problem, inst.graph, dummy, result.output);
  EXPECT_TRUE(check.ok()) << check.to_string();
  EXPECT_EQ(result.rounds, algo.total_rounds());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RootedColoringTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 20, 200, 1500),
                       ::testing::Values(2, 3, 6),
                       ::testing::Values(1, 9)));

TEST(RootedColoring, WorksOnStarsAndDeepTrees) {
  for (int delta : {2, 5}) {
    Graph g = delta == 2 ? make_path(40) : make_star(30);
    SplitRng rng(8);
    const auto ids = random_distinct_ids(g, 3, rng);
    const auto input = root_tree_input(g, 0);
    const RootedTreeColoring algo(id_range_for(ids));
    const auto result = run_synchronous(algo, g, input, ids, 1);
    const auto dummy = uniform_labeling(g, 0);
    EXPECT_TRUE(is_correct_solution(problems::coloring(3, g.max_degree()), g,
                                    dummy, result.output));
  }
}

TEST(RootedColoring, RejectsNonTrees) {
  Graph g = make_cycle(5);
  EXPECT_THROW(root_tree_input(g, 0), std::invalid_argument);
}

class SinklessTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(SinklessTest, ValidOrientationOnRandomTrees) {
  const auto [n, seed] = GetParam();
  auto inst = tree_instance(n, 3, static_cast<std::uint64_t>(seed));
  const SinklessOrientationTree algo(3);
  const auto result = run_synchronous(algo, inst.graph, inst.input, inst.ids,
                                      /*seed=*/1);
  const auto problem = problems::sinkless_orientation(3);
  const auto check =
      check_solution(problem, inst.graph, inst.input, result.output);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SinklessTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 10, 100, 1500),
                       ::testing::Values(1, 2, 3, 4, 50)));

TEST(Sinkless, LogRoundsOnCompleteTrees) {
  // On complete Delta-regular trees the distance-to-boundary wave makes the
  // measured rounds track the depth, i.e. Theta(log n).
  for (int depth : {2, 4, 6, 8}) {
    Graph g = make_regular_tree(3, depth);
    SplitRng rng(depth);
    const auto ids = random_distinct_ids(g, 3, rng);
    const auto input = uniform_labeling(g, 0);
    const SinklessOrientationTree algo(3);
    const auto result = run_synchronous(algo, g, input, ids, 1);
    const auto problem = problems::sinkless_orientation(3);
    EXPECT_TRUE(is_correct_solution(problem, g, input, result.output));
    EXPECT_GE(result.rounds, depth / 2);
    EXPECT_LE(result.rounds, depth + 3);
  }
}

TEST(Sinkless, WorksOnStarsAndPaths) {
  for (auto make : {+[](std::size_t n) { return make_star(n - 1); },
                    +[](std::size_t n) { return make_path(n); }}) {
    Graph g = make(12);
    SplitRng rng(4);
    const auto ids = random_distinct_ids(g, 3, rng);
    const auto input = uniform_labeling(g, 0);
    const int delta = std::max(2, g.max_degree());
    const SinklessOrientationTree algo(delta);
    const auto result = run_synchronous(algo, g, input, ids, 1);
    const auto problem = problems::sinkless_orientation(delta);
    EXPECT_TRUE(is_correct_solution(problem, g, input, result.output));
  }
}

TEST(SyncEngine, ValidatesArguments) {
  Graph g = make_path(4);
  const BfsTwoColoring algo;
  const auto ids = sequential_ids(g);
  EXPECT_THROW(
      run_synchronous(algo, g, HalfEdgeLabeling(3, 0), ids, 1),
      std::invalid_argument);
  EXPECT_THROW(
      run_synchronous(algo, g, uniform_labeling(g, 0), IdAssignment(2), 1),
      std::invalid_argument);
}

TEST(SyncEngine, RoundCapThrows) {
  Graph g = make_path(4);
  // BfsTwoColoring never halts; with quiescence it stops, so craft a cap
  // smaller than the quiescence time.
  const auto ids = sequential_ids(g);
  EXPECT_THROW(run_synchronous(BfsTwoColoring{}, g, uniform_labeling(g, 0),
                               ids, 1, 0, /*max_rounds=*/1),
               std::runtime_error);
}

}  // namespace
}  // namespace lcl
